"""BatchScheduler: cross-session coalescing of gate and circuit jobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import BatchScheduler, FheContext
from repro.tfhe.circuits import bits_to_int, encrypt_integer
from repro.tfhe.executor import schedule_circuit
from repro.tfhe.gates import (
    PLAINTEXT_GATES,
    decrypt_bit,
    decrypt_bits,
    encrypt_bit,
)
from repro.tfhe.keys import generate_keys
from repro.tfhe.netlist import adder_netlist
from repro.tfhe.params import TEST_TINY
from repro.tfhe.transform import NaiveNegacyclicTransform


@pytest.fixture()
def scheduler(tiny_keys_naive):
    _, cloud = tiny_keys_naive
    scheduler = BatchScheduler()
    scheduler.register_client("alice", cloud)
    return scheduler


class TestGateCoalescing:
    def test_one_flush_one_batched_call(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        names = ["nand", "and", "or", "xor", "nor", "xnor"]
        sessions = [scheduler.session("alice") for _ in names]
        cases = []
        for i, (session, name) in enumerate(zip(sessions, names)):
            bit_a, bit_b = i & 1, (i >> 1) & 1
            handle = session.submit_gate(
                name,
                encrypt_bit(secret, bit_a, rng=100 + i),
                encrypt_bit(secret, bit_b, rng=200 + i),
            )
            cases.append((name, bit_a, bit_b, handle))
        assert scheduler.pending_jobs == len(names)
        rows = scheduler.flush()
        assert rows == len(names)
        assert scheduler.stats.batched_calls == 1  # all six jobs, one sweep
        assert scheduler.stats.max_rows_per_call == len(names)
        assert scheduler.pending_jobs == 0
        for name, bit_a, bit_b, handle in cases:
            assert decrypt_bit(secret, handle.result()) == PLAINTEXT_GATES[name](
                bit_a, bit_b
            )

    def test_coalesced_rows_bit_identical_to_scalar_evaluator(
        self, scheduler, tiny_keys_naive
    ):
        secret, cloud = tiny_keys_naive
        evaluator = cloud.default_context().evaluator()
        session = scheduler.session("alice")
        ca, cb = encrypt_bit(secret, 1, rng=31), encrypt_bit(secret, 0, rng=32)
        handles = {
            name: session.submit_gate(name, ca, cb) for name in ("nand", "xor", "oryn")
        }
        scheduler.flush()
        for name, handle in handles.items():
            expected = evaluator.gate(name, ca, cb)
            got = handle.result()
            assert np.array_equal(got.a, expected.a), name
            assert np.int32(got.b) == np.int32(expected.b), name

    def test_chained_handles_schedule_in_rounds(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        ca, cb = encrypt_bit(secret, 1, rng=41), encrypt_bit(secret, 0, rng=42)
        first = session.submit_gate("nand", ca, cb)  # = 1
        second = session.submit_gate("and", first, ca)  # = 1
        third = session.submit_gate("xor", second, first)  # = 0
        with pytest.raises(RuntimeError, match="flush"):
            first.result()
        scheduler.flush()
        # Three dependent gates cannot share a bootstrap: three rounds.
        assert scheduler.stats.batched_calls == 3
        assert decrypt_bit(secret, first.result()) == 1
        assert decrypt_bit(secret, second.result()) == 1
        assert decrypt_bit(secret, third.result()) == 0

    def test_not_on_ciphertext_is_free(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        flipped = session.not_(encrypt_bit(secret, 1, rng=43))
        assert decrypt_bit(secret, flipped) == 0  # resolved without any flush
        assert scheduler.stats.batched_calls == 0

    def test_max_rows_per_call_chunks(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        scheduler = BatchScheduler(max_rows_per_call=2)
        scheduler.register_client("alice", cloud)
        session = scheduler.session("alice")
        handles = [
            session.submit_gate(
                "nand",
                encrypt_bit(secret, 1, rng=50 + i),
                encrypt_bit(secret, 1, rng=60 + i),
            )
            for i in range(5)
        ]
        scheduler.flush()
        assert scheduler.stats.batched_calls == 3  # ceil(5 / 2)
        assert scheduler.stats.max_rows_per_call == 2
        for handle in handles:
            assert decrypt_bit(secret, handle.result()) == 0


class TestMultiTenant:
    def test_jobs_group_per_client_key(self, tiny_keys_naive):
        secret_a, cloud_a = tiny_keys_naive
        engine = NaiveNegacyclicTransform(TEST_TINY.N)
        secret_b, cloud_b = generate_keys(TEST_TINY, engine, rng=77)
        scheduler = BatchScheduler()
        scheduler.register_client("alice", cloud_a)
        scheduler.register_client("bob", FheContext(cloud_b))
        ha = scheduler.session("alice").submit_gate(
            "and",
            encrypt_bit(secret_a, 1, rng=1),
            encrypt_bit(secret_a, 1, rng=2),
        )
        hb = scheduler.session("bob").submit_gate(
            "or",
            encrypt_bit(secret_b, 0, rng=3),
            encrypt_bit(secret_b, 1, rng=4),
        )
        scheduler.flush()
        # Different keys can never share a bootstrapping call.
        assert scheduler.stats.batched_calls == 2
        assert decrypt_bit(secret_a, ha.result()) == 1
        assert decrypt_bit(secret_b, hb.result()) == 1

    def test_cross_client_handles_rejected(self, tiny_keys_naive):
        secret_a, cloud_a = tiny_keys_naive
        engine = NaiveNegacyclicTransform(TEST_TINY.N)
        secret_b, cloud_b = generate_keys(TEST_TINY, engine, rng=78)
        scheduler = BatchScheduler()
        scheduler.register_client("alice", cloud_a)
        scheduler.register_client("bob", cloud_b)
        alice_handle = scheduler.session("alice").submit_gate(
            "nand",
            encrypt_bit(secret_a, 1, rng=1),
            encrypt_bit(secret_a, 1, rng=2),
        )
        bob_session = scheduler.session("bob")
        with pytest.raises(ValueError, match="different clients"):
            bob_session.submit_gate(
                "and", alice_handle, encrypt_bit(secret_b, 1, rng=3)
            )
        with pytest.raises(ValueError, match="different clients"):
            bob_session.submit_circuit(
                adder_netlist(1),
                {"a": [alice_handle], "b": [encrypt_bit(secret_b, 1, rng=4)]},
            )
        scheduler.flush()
        assert decrypt_bit(secret_a, alice_handle.result()) == 0

    def test_register_and_lookup_validation(self, scheduler, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        with pytest.raises(ValueError, match="already registered"):
            scheduler.register_client("alice", cloud)
        with pytest.raises(KeyError, match="unknown client"):
            scheduler.session("mallory")

    def test_unknown_gate_rejected(self, scheduler):
        session = scheduler.session("alice")
        with pytest.raises(ValueError, match="unknown gate"):
            session.submit_gate("nandy", None, None)


class TestCircuitJobs:
    def test_sessions_advance_levels_in_lockstep(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        width = 4
        circuit = adder_netlist(width)
        depth = schedule_circuit(circuit).depth
        cases = [(5, 7), (9, 3)]
        handles = []
        for i, (a_val, b_val) in enumerate(cases):
            session = scheduler.session("alice")
            handles.append(
                session.submit_circuit(
                    circuit,
                    {
                        "a": encrypt_integer(secret, a_val, width, rng=300 + i),
                        "b": encrypt_integer(secret, b_val, width, rng=400 + i),
                    },
                )
            )
        scheduler.flush()
        # Both jobs walk the same schedule, so each dependency level of the
        # two adders shares one mixed-gate batched bootstrapping.
        assert scheduler.stats.batched_calls == depth
        for (a_val, b_val), handle in zip(cases, handles):
            total = bits_to_int(decrypt_bits(secret, handle.result()["sum"]))
            assert total == a_val + b_val

    def test_gate_and_circuit_jobs_share_calls(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        width = 3
        circuit = adder_netlist(width)
        depth = schedule_circuit(circuit).depth
        circuit_handle = scheduler.session("alice").submit_circuit(
            circuit,
            {
                "a": encrypt_integer(secret, 3, width, rng=500),
                "b": encrypt_integer(secret, 2, width, rng=501),
            },
        )
        gate_handle = scheduler.session("alice").submit_gate(
            "nand",
            encrypt_bit(secret, 1, rng=502),
            encrypt_bit(secret, 1, rng=503),
        )
        scheduler.flush()
        # The single gate rode along with the circuit's first level.
        assert scheduler.stats.batched_calls == depth
        assert decrypt_bit(secret, gate_handle.result()) == 0
        total = bits_to_int(decrypt_bits(secret, circuit_handle.result()["sum"]))
        assert total == 5

    def test_circuit_inputs_must_be_resolved(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        pending = session.submit_gate(
            "and", encrypt_bit(secret, 1, rng=1), encrypt_bit(secret, 1, rng=2)
        )
        with pytest.raises(ValueError, match="pending job handles"):
            session.submit_circuit(
                adder_netlist(1),
                {"a": [pending], "b": [encrypt_bit(secret, 1, rng=3)]},
            )


class TestLutJobs:
    """submit_lut rows coalesce with gates and circuits via the
    mixed-test-vector bootstrapping path."""

    def test_lut_job_resolves_majority(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        bits = [1, 0, 1]
        handle = session.submit_lut(
            0xE8, [encrypt_bit(secret, b, rng=600 + i) for i, b in enumerate(bits)]
        )
        scheduler.flush()
        assert decrypt_bit(secret, handle.result()) == 1  # MAJ3(1, 0, 1)

    def test_lut_rows_bit_identical_to_scalar_evaluator(
        self, scheduler, tiny_keys_naive
    ):
        secret, cloud = tiny_keys_naive
        evaluator = cloud.default_context().evaluator()
        inputs = [encrypt_bit(secret, b, rng=610 + i) for i, b in enumerate((1, 1, 0))]
        handle = scheduler.session("alice").submit_lut(0x96, inputs)
        scheduler.flush()
        expected = evaluator.lut(0x96, inputs)
        got = handle.result()
        assert np.array_equal(got.a, expected.a)
        assert np.int32(got.b) == np.int32(expected.b)

    def test_infeasible_table_fails_at_submit(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        inputs = [encrypt_bit(secret, 0, rng=620 + i) for i in range(4)]
        with pytest.raises(ValueError, match="no.*single-bootstrap"):
            session.submit_lut(0x1669, inputs)
        assert scheduler.pending_jobs == 0  # nothing was enqueued

    def test_gates_and_luts_share_one_call(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        lut_handle = session.submit_lut(
            0x96, [encrypt_bit(secret, b, rng=630 + i) for i, b in enumerate((1, 1, 1))]
        )
        gate_handle = session.submit_gate(
            "xor", encrypt_bit(secret, 1, rng=640), encrypt_bit(secret, 0, rng=641)
        )
        rows = scheduler.flush()
        assert rows == 2
        assert scheduler.stats.batched_calls == 1  # one mixed fused rotation
        assert decrypt_bit(secret, lut_handle.result()) == 1  # XOR3(1,1,1)
        assert decrypt_bit(secret, gate_handle.result()) == 1

    def test_chained_lut_handles(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        first = session.submit_gate(
            "and", encrypt_bit(secret, 1, rng=650), encrypt_bit(secret, 1, rng=651)
        )
        second = session.submit_lut(
            0xE8,
            [first, encrypt_bit(secret, 1, rng=652), encrypt_bit(secret, 0, rng=653)],
        )
        scheduler.flush()
        assert scheduler.stats.batched_calls == 2  # dependency forces two rounds
        assert decrypt_bit(secret, second.result()) == 1  # MAJ3(1, 1, 0)

    def test_luts_coalesce_with_lut_pipelined_circuits(
        self, scheduler, tiny_keys_naive
    ):
        from repro.compiler.passes import LUT_PIPELINE, PassManager

        secret, _ = tiny_keys_naive
        width = 3
        circuit = PassManager(passes=LUT_PIPELINE, verify=True, trials=8, rng=6).run(
            adder_netlist(width)
        )
        depth = schedule_circuit(circuit).depth
        circuit_handle = scheduler.session("alice").submit_circuit(
            circuit,
            {
                "a": encrypt_integer(secret, 5, width, rng=660),
                "b": encrypt_integer(secret, 6, width, rng=661),
            },
        )
        lut_handle = scheduler.session("alice").submit_lut(
            0x6996,
            [encrypt_bit(secret, b, rng=670 + i) for i, b in enumerate((1, 0, 1, 1))],
        )
        scheduler.flush()
        # The standalone lut rode along with the circuit's first level.
        assert scheduler.stats.batched_calls == depth
        assert decrypt_bit(secret, lut_handle.result()) == 1  # parity of 3 ones
        total = bits_to_int(decrypt_bits(secret, circuit_handle.result()["sum"]))
        assert total == 11


class TestZeroLevelCircuitJobs:
    """Optimized circuits can shrink to zero bootstrapped levels; the
    scheduler must resolve them without a flush and still keep honest
    stats when they coalesce with real work."""

    @staticmethod
    def _constant_only_circuit():
        from repro.tfhe.netlist import Circuit

        c = Circuit("const_out")
        c.inputs("a", 2)
        c.output("out", [c.constant(1), c.constant(0)])
        return c

    @staticmethod
    def _passthrough_circuit():
        from repro.tfhe.netlist import Circuit

        c = Circuit("passthrough")
        a = c.inputs("a", 2)
        c.output("out", [c.copy(a[0]), c.not_(a[1])])
        return c

    def test_constant_only_outputs_resolve_at_submit(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        handle = session.submit_circuit(
            self._constant_only_circuit(),
            {"a": encrypt_integer(secret, 2, 2, rng=900)},
        )
        assert handle.done  # zero bootstrapped levels: no flush needed
        assert scheduler.stats.jobs_completed == 1
        assert scheduler.pending_jobs == 0
        assert scheduler.flush() == 0  # nothing left to bootstrap
        bits = [decrypt_bit(secret, bit) for bit in handle.result()["out"]]
        assert bits == [1, 0]

    def test_copy_not_only_outputs_resolve_at_submit(self, scheduler, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        handle = session.submit_circuit(
            self._passthrough_circuit(),
            {"a": encrypt_integer(secret, 0b01, 2, rng=901)},
        )
        assert handle.done
        assert scheduler.stats.jobs_completed == 1
        bits = [decrypt_bit(secret, bit) for bit in handle.result()["out"]]
        assert bits == [1, 1]  # copy(1), not(0)

    def test_optimizer_shrunk_traced_circuit_resolves_at_submit(
        self, scheduler, tiny_keys_naive
    ):
        from repro.compiler import FheUint4, fhe_select, optimize, trace

        secret, _ = tiny_keys_naive
        circuit = optimize(
            trace(lambda a: fhe_select(a == a, 5, 1), FheUint4("a")), verify=True
        )
        assert schedule_circuit(circuit).depth == 0
        session = scheduler.session("alice")
        handle = session.submit_circuit(
            circuit, {"a": encrypt_integer(secret, 7, 4, rng=902)}
        )
        assert handle.done
        assert bits_to_int(decrypt_bits(secret, handle.result()["out"])) == 5

    def test_mixed_gate_and_zero_level_circuit_coalescing(
        self, scheduler, tiny_keys_naive
    ):
        # One session's circuit collapses to zero levels while another
        # session's gates still need bootstraps: the flush must batch only
        # the real rows and complete every job exactly once in the stats.
        secret, _ = tiny_keys_naive
        shrunk = scheduler.session("alice")
        gates = scheduler.session("alice")
        circuit_handle = shrunk.submit_circuit(
            self._constant_only_circuit(),
            {"a": encrypt_integer(secret, 1, 2, rng=903)},
        )
        gate_handles = [
            gates.submit_gate(
                "and",
                encrypt_bit(secret, 1, rng=910 + i),
                encrypt_bit(secret, 1, rng=920 + i),
            )
            for i in range(3)
        ]
        assert circuit_handle.done
        assert scheduler.pending_jobs == 3
        rows = scheduler.flush()
        assert rows == 3  # the zero-level circuit contributed no rows
        assert scheduler.stats.batched_calls == 1
        assert scheduler.stats.jobs_completed == 4
        for handle in gate_handles:
            assert decrypt_bit(secret, handle.result()) == 1
        bits = [decrypt_bit(secret, bit) for bit in circuit_handle.result()["out"]]
        assert bits == [1, 0]

    def test_zero_level_job_between_flushes_of_chained_work(
        self, scheduler, tiny_keys_naive
    ):
        # A chained gate (operand is a pending handle) forces two rounds in
        # one flush; a zero-level circuit submitted alongside must neither
        # add rows nor deadlock the round loop.
        secret, _ = tiny_keys_naive
        session = scheduler.session("alice")
        first = session.submit_gate(
            "and",
            encrypt_bit(secret, 1, rng=930),
            encrypt_bit(secret, 1, rng=931),
        )
        chained = session.submit_gate(
            "or", first, encrypt_bit(secret, 0, rng=932)
        )
        zero = session.submit_circuit(
            self._passthrough_circuit(),
            {"a": encrypt_integer(secret, 0b10, 2, rng=933)},
        )
        assert zero.done
        rows = scheduler.flush()
        assert rows == 2  # the two chained gates, one per round
        assert decrypt_bit(secret, chained.result()) == 1
        assert scheduler.stats.jobs_completed == 3

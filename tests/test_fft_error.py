"""Tests for the Figure 8 error-measurement harness."""

import math

import pytest

from repro.core.fft_error import (
    FftErrorSample,
    error_floor_db,
    polynomial_product_error,
    sweep_twiddle_bits,
)
from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.transform import DoubleFFTNegacyclicTransform, NaiveNegacyclicTransform

DEGREE = 256


class TestErrorMeasurement:
    def test_exact_transform_has_zero_error(self):
        error = polynomial_product_error(NaiveNegacyclicTransform(DEGREE), DEGREE, trials=1, rng=0)
        assert error == 0.0

    def test_double_transform_error_is_tiny(self):
        error = polynomial_product_error(DoubleFFTNegacyclicTransform(DEGREE), DEGREE, trials=1, rng=0)
        assert error < 1e-9

    def test_approximate_error_larger_than_double(self):
        double = polynomial_product_error(DoubleFFTNegacyclicTransform(DEGREE), DEGREE, trials=1, rng=1)
        approx = polynomial_product_error(
            ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64), DEGREE, trials=1, rng=1
        )
        assert approx > double

    def test_error_db_conversion(self):
        sample = FftErrorSample(label="x", twiddle_bits=16, rms_torus_error=1e-5)
        assert sample.error_db == pytest.approx(-100.0)

    def test_zero_error_maps_to_minus_infinity(self):
        sample = FftErrorSample(label="exact", twiddle_bits=None, rms_torus_error=0.0)
        assert sample.error_db == -math.inf


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_twiddle_bits(degree=DEGREE, twiddle_bits=(12, 20, 32, 50), trials=1, rng=0)

    def test_sweep_contains_double_baseline(self, sweep):
        assert sweep[-1].twiddle_bits is None

    def test_error_decreases_with_bits(self, sweep):
        approx = [s for s in sweep if s.twiddle_bits is not None]
        dbs = [s.error_db for s in approx]
        assert dbs[0] > dbs[1] > dbs[2]

    def test_floor_is_above_double_precision(self, sweep):
        """Figure 8: the approximate transform saturates above the double line."""
        floor = error_floor_db(sweep)
        double_db = sweep[-1].error_db
        assert floor > double_db

    def test_floor_helper_requires_approx_samples(self):
        with pytest.raises(ValueError):
            error_floor_db([FftErrorSample("double", None, 1e-9)])

"""Tests for the table/figure generators in repro.analysis."""

import pytest

from repro.analysis.breakdown import (
    FIGURE1_GATES,
    gate_latency_breakdown,
    measure_gate_breakdown,
    render_figure1,
)
from repro.analysis.comparison import (
    platform_comparison,
    render_figure9,
    render_figure10,
    render_figure11,
    render_table2,
)
from repro.analysis.fft_sweep import (
    depth_first_comparison,
    fft_error_sweep,
    render_figure2,
    render_figure8,
)
from repro.analysis.noise_tables import (
    dvqtf_failure_study,
    render_dvqtf_study,
    render_table3,
    table3_rows,
)
from repro.analysis.schemes import (
    TABLE1_SCHEMES,
    bootstrapping_speedup_over,
    fastest_bootstrapping,
    render_table1,
    table1_rows,
)
from repro.tfhe.params import TEST_MEDIUM


class TestTable1:
    def test_has_five_schemes(self):
        assert len(table1_rows()) == 5

    def test_tfhe_has_fastest_bootstrapping(self):
        assert fastest_bootstrapping().scheme == "TFHE"

    def test_speedup_over_bgv_is_large(self):
        assert bootstrapping_speedup_over("BGV") > 1e4

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError):
            bootstrapping_speedup_over("RSA")

    def test_only_boolean_schemes_support_gates(self):
        for entry in TABLE1_SCHEMES:
            assert entry.supports_boolean_gates == (entry.data_type == "binary")

    def test_render_contains_all_schemes(self):
        text = render_table1()
        for entry in TABLE1_SCHEMES:
            assert entry.scheme in text


class TestFigure1:
    def test_bootstrapping_dominates_gate_latency(self):
        """The paper: the bootstrapping costs ~99 % of a TFHE gate."""
        for breakdown in gate_latency_breakdown():
            assert breakdown.bootstrap_fraction > 0.95

    def test_transforms_dominate_bootstrapping(self):
        """The paper: FFT+IFFT are ~80 % of the bootstrapping latency."""
        for breakdown in gate_latency_breakdown():
            assert 0.6 <= breakdown.transform_fraction_of_bootstrap <= 0.95

    def test_ifft_bucket_larger_than_fft_bucket(self):
        for breakdown in gate_latency_breakdown():
            assert breakdown.ifft_s > breakdown.fft_s

    def test_totals_near_cpu_anchor(self):
        nand = next(b for b in gate_latency_breakdown() if b.gate == "nand")
        assert nand.total_s == pytest.approx(13.1e-3, rel=0.15)

    def test_percentages_sum_to_100(self):
        for breakdown in gate_latency_breakdown():
            assert sum(breakdown.percentages().values()) == pytest.approx(100.0)

    def test_all_figure_gates_present(self):
        assert {b.gate for b in gate_latency_breakdown()} == set(FIGURE1_GATES)

    def test_measured_breakdown_matches_model_ordering(self):
        measured = measure_gate_breakdown(TEST_MEDIUM, gate="nand", rng=0)
        assert measured.bootstrap_fraction > 0.9
        assert measured.ifft_s > measured.fft_s

    def test_render_mentions_every_gate(self):
        text = render_figure1()
        for gate in FIGURE1_GATES:
            assert gate.upper() in text


class TestFigure2And8:
    def test_depth_first_comparison_properties(self):
        comparison = depth_first_comparison(transform_size=256)
        assert comparison.depth_first
        assert comparison.twiddle_read_reduction >= 2.0

    def test_render_figure2(self):
        assert "twiddle" in render_figure2().lower()

    def test_fft_error_sweep_shape(self):
        samples = fft_error_sweep(degree=256, twiddle_bits=(16, 32), trials=1)
        assert len(samples) == 3  # two approximate points + the double baseline
        assert samples[0].error_db > samples[1].error_db

    def test_render_figure8(self):
        text = render_figure8(fft_error_sweep(degree=256, twiddle_bits=(16, 32), trials=1))
        assert "double" in text


class TestTable3AndDvqtf:
    def test_rows_cover_requested_unroll_factors(self):
        rows = table3_rows(unroll_factors=(2, 3, 4))
        assert [r[0] for r in rows] == [2, 3, 4]

    def test_bk_column_is_exponential(self):
        rows = table3_rows(unroll_factors=(2, 3, 4, 5))
        assert [r[3] for r in rows] == ["3 BK", "7 BK", "15 BK", "31 BK"]

    def test_render_table3(self):
        assert "BK per group" in render_table3()

    def test_dvqtf_study_budget_shrinks_with_m(self):
        """The total error headroom (budget^2 x products per gate) shrinks with m."""
        from repro.tfhe.noise import TfheNoiseModel
        from repro.tfhe.params import PAPER_110BIT

        rows = dvqtf_failure_study(
            configurations=((2, 20), (5, 20)), degree=256, trials=1
        )
        headrooms = [
            row.max_safe_stddev**2
            * TfheNoiseModel(PAPER_110BIT, row.unroll_factor).iterations
            for row in rows
        ]
        assert headrooms[0] > headrooms[1]

    def test_dvqtf_study_error_depends_only_on_bits(self):
        rows = dvqtf_failure_study(
            configurations=((2, 20), (5, 20)), degree=256, trials=1
        )
        assert rows[0].fft_error_stddev == pytest.approx(rows[1].fft_error_stddev)

    def test_wide_dvqtfs_are_safe(self):
        rows = dvqtf_failure_study(configurations=((3, 64),), degree=256, trials=1)
        assert rows[0].safe

    def test_render_dvqtf_study(self):
        text = render_dvqtf_study(
            dvqtf_failure_study(configurations=((2, 64),), degree=256, trials=1)
        )
        assert "DVQTF" in text


class TestComparisonFigures:
    @pytest.fixture(scope="class")
    def result(self):
        return platform_comparison()

    def test_headline_throughput_ratio(self, result):
        """Paper: 2.3x over GPU; the model reproduces the win with margin."""
        assert result.matcha_vs_gpu_throughput > 1.5

    def test_headline_efficiency_ratio(self, result):
        """Paper: 6.3x over ASIC throughput/Watt."""
        assert result.matcha_vs_asic_throughput_per_watt > 3.0

    def test_cpu_latency_reduction_near_half(self, result):
        assert 0.4 <= result.cpu_bku_latency_reduction <= 0.55

    def test_cpu_best_at_m2(self, result):
        assert result.cpu_best_unroll == 2

    def test_matcha_best_latency_at_m3(self, result):
        assert result.matcha_best_latency_unroll == 3

    def test_renderers_mention_all_platforms(self, result):
        for render in (render_figure9, render_figure10, render_figure11):
            text = render(result)
            for name in ("CPU", "GPU", "MATCHA", "FPGA", "ASIC"):
                assert name in text

    def test_table2_render(self):
        text = render_table2()
        assert "39.98" in text or "39.99" in text

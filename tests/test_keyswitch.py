"""Tests for LWE key switching."""

import numpy as np
import pytest

from repro.tfhe.keyswitch import keyswitch_apply, keyswitch_key_generate
from repro.tfhe.lwe import (
    gate_message,
    lwe_decrypt_bit,
    lwe_encrypt,
    lwe_key_generate,
    lwe_noise,
    lwe_phase,
)
from repro.tfhe.params import TEST_SMALL, TEST_TINY
from repro.tfhe.torus import torus_distance


@pytest.fixture(scope="module")
def keys():
    params = TEST_SMALL
    input_key = lwe_key_generate(
        type(params.lwe)(dimension=params.N, noise_stddev=params.lwe.noise_stddev), rng=51
    )
    output_key = lwe_key_generate(params.lwe, rng=52)
    ks = keyswitch_key_generate(input_key, output_key, params.keyswitch, rng=53)
    return params, input_key, output_key, ks


class TestKeyGeneration:
    def test_key_shape(self, keys):
        params, input_key, output_key, ks = keys
        base = params.keyswitch.base
        assert ks.data.shape == (
            input_key.dimension,
            params.keyswitch.length,
            base,
            output_key.dimension + 1,
        )

    def test_dimensions_recorded(self, keys):
        _, input_key, output_key, ks = keys
        assert ks.input_dimension == input_key.dimension
        assert ks.output_dimension == output_key.dimension

    def test_zero_digit_rows_encrypt_zero(self, keys):
        """The v = 0 entries must encrypt 0 so skipped digits add only noise."""
        _, _, output_key, ks = keys
        row = ks.data[0, 0, 0]
        from repro.tfhe.lwe import LweSample

        sample = LweSample(a=row[:-1], b=np.int32(row[-1]))
        assert float(torus_distance(lwe_phase(output_key, sample), 0)) < 1e-3


class TestKeySwitching:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_switched_sample_decrypts_under_new_key(self, keys, bit):
        _, input_key, output_key, ks = keys
        sample = lwe_encrypt(input_key, gate_message(bit), rng=54 + bit)
        switched = keyswitch_apply(ks, sample)
        assert switched.dimension == output_key.dimension
        assert lwe_decrypt_bit(output_key, switched) == bit

    def test_keyswitch_noise_is_bounded(self, keys):
        _, input_key, output_key, ks = keys
        mu = gate_message(1)
        sample = lwe_encrypt(input_key, mu, rng=60)
        switched = keyswitch_apply(ks, sample)
        assert abs(lwe_noise(output_key, switched, mu)) < 1.0 / 32.0

    def test_dimension_mismatch_rejected(self, keys):
        _, _, output_key, ks = keys
        bad = lwe_encrypt(output_key, gate_message(0), rng=61)
        with pytest.raises(ValueError):
            keyswitch_apply(ks, bad)

    def test_many_samples_roundtrip(self, keys):
        _, input_key, output_key, ks = keys
        rng = np.random.default_rng(62)
        failures = 0
        for i in range(20):
            bit = int(rng.integers(0, 2))
            sample = lwe_encrypt(input_key, gate_message(bit), rng=rng)
            if lwe_decrypt_bit(output_key, keyswitch_apply(ks, sample)) != bit:
                failures += 1
        assert failures == 0


class TestWrapAroundMasks:
    """Regression: mask coefficients near the torus wrap-around.

    ``keyswitch_apply`` adds a rounding offset to the unsigned mask
    coefficients; for ``a ≈ 2^32 − 1`` the sum carries into bit 32 and must be
    reduced back onto the 32-bit torus before digit extraction.
    """

    def _reference_apply(self, ks, sample):
        """Digit-by-digit scalar reference with explicit mod-2^32 arithmetic."""
        params = ks.params
        t = params.length
        base_bits = params.base_bits
        n_out = ks.output_dimension
        rounding = 1 << (32 - base_bits * t - 1) if 32 - base_bits * t - 1 >= 0 else 0
        totals = np.zeros(n_out + 1, dtype=np.int64)
        for i in range(ks.input_dimension):
            a_in = ((int(np.int64(sample.a[i])) & 0xFFFFFFFF) + rounding) % (1 << 32)
            for j in range(t):
                digit = (a_in >> (32 - base_bits * (j + 1))) & (params.base - 1)
                totals += ks.data[i, j, digit].astype(np.int64)
        from repro.tfhe.torus import torus32_from_int64
        from repro.tfhe.lwe import LweSample

        a_out = torus32_from_int64(-totals[:n_out])
        b_out = torus32_from_int64(int(np.int64(sample.b)) - int(totals[n_out]))
        return LweSample(a=a_out, b=np.int32(b_out))

    def test_wraparound_sample_matches_reference(self, keys):
        from repro.tfhe.lwe import LweSample

        _, input_key, _, ks = keys
        n_in = input_key.dimension
        # Every mask coefficient sits right at the wrap-around boundary, so the
        # rounding offset carries out of 32 bits for all of them.
        a = np.full(n_in, -1, dtype=np.int32)  # unsigned 0xFFFFFFFF
        a[::3] = np.int32(2**31 - 1)
        a[1::3] = np.int32(-(2**31))
        sample = LweSample(a=a, b=np.int32(1234567))
        switched = keyswitch_apply(ks, sample)
        reference = self._reference_apply(ks, sample)
        assert np.array_equal(switched.a, reference.a)
        assert int(switched.b) == int(reference.b)

    def test_wraparound_sample_still_decrypts(self, keys):
        """An honest encryption whose mask is forced near the wrap-around."""
        _, input_key, output_key, ks = keys
        rng = np.random.default_rng(77)
        for bit in (0, 1):
            sample = lwe_encrypt(input_key, gate_message(bit), rng=rng)
            # Push a few coefficients to the boundary and patch b to keep the
            # phase: adding delta to a_i adds delta * s_i to a·s.
            delta_total = 0
            for idx in (0, 1, 2):
                target = np.int32(-1)
                delta = int(np.int64(target) - np.int64(sample.a[idx]))
                delta_total += delta * int(input_key.key[idx])
                sample.a[idx] = target
            from repro.tfhe.torus import torus32_from_int64

            sample.b = np.int32(torus32_from_int64(int(np.int64(sample.b)) + delta_total))
            assert lwe_decrypt_bit(output_key, keyswitch_apply(ks, sample)) == bit


class TestTinyParameters:
    def test_keyswitch_with_tiny_parameters(self):
        params = TEST_TINY
        input_key = lwe_key_generate(
            type(params.lwe)(dimension=params.N, noise_stddev=params.lwe.noise_stddev), rng=63
        )
        output_key = lwe_key_generate(params.lwe, rng=64)
        ks = keyswitch_key_generate(input_key, output_key, params.keyswitch, rng=65)
        sample = lwe_encrypt(input_key, gate_message(1), rng=66)
        assert lwe_decrypt_bit(output_key, keyswitch_apply(ks, sample)) == 1

"""Unit tests for :class:`repro.runtime.resilient.ResilientClient`.

These exercise the retry machinery itself — backoff schedule, deadlines,
typed retry policy, reconnect/resubmit bookkeeping — with a seeded jitter
source and an injectable sleep, so every assertion is deterministic.  The
end-to-end chaos scenarios (proxies dropping/corrupting frames mid-flight)
live in ``tests/test_chaos.py``.
"""

from __future__ import annotations

import random
import socket

import pytest

from repro.runtime.protocol import JobShed, ServerError, ServingClient
from repro.runtime.resilient import DeadlineExceeded, ResilientClient
from repro.tfhe.gates import decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_TINY
from repro.tfhe.transform import DoubleFFTNegacyclicTransform


@pytest.fixture(scope="module")
def wire_keys():
    transform = DoubleFFTNegacyclicTransform(TEST_TINY.N)
    return generate_keys(TEST_TINY, transform, unroll_factor=1, rng=61, eager=False)


def _dead_port() -> int:
    """A port with nothing listening (bound, then released)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def test_max_attempts_must_be_positive():
    with pytest.raises(ValueError):
        ResilientClient(max_attempts=0)


def test_backoff_schedule_is_deterministic():
    """Seeded jitter + injected sleep: the retry schedule replays exactly."""
    slept = []
    client = ResilientClient(
        port=_dead_port(),
        max_attempts=4,
        base_delay=0.05,
        max_delay=2.0,
        rng=random.Random(7),
        sleep=slept.append,
    )
    request_id = client.submit("hello")
    with pytest.raises((ConnectionError, OSError)):
        client.result(request_id)

    # Attempts 1..3 back off before re-dialling; attempt 4 hits the cap.
    assert len(slept) == 3
    replay = random.Random(7)
    expected = [
        min(2.0, 0.05 * 2 ** (k - 1)) * (0.5 + replay.random()) for k in (1, 2, 3)
    ]
    assert slept == pytest.approx(expected)
    assert client.stats.retries == 3
    assert client.stats.backoff_seconds == pytest.approx(sum(expected))
    assert client.stats.connects == 0  # every dial was refused
    # The request is no longer pending — the failure was surfaced, not lost.
    with pytest.raises(KeyError):
        client.result(request_id)


def test_deadline_exceeded_is_typed_and_final():
    client = ResilientClient(
        port=_dead_port(),
        max_attempts=1000,
        sleep=lambda _d: None,
    )
    request_id = client.submit("hello", deadline=1e-6)
    with pytest.raises(DeadlineExceeded) as excinfo:
        client.result(request_id)
    assert excinfo.value.retryable is False
    with pytest.raises(KeyError):
        client.result(request_id)


def test_non_retryable_server_error_raises_immediately(server_factory):
    server = server_factory()
    with ResilientClient(port=server.port, max_attempts=8) as client:
        with pytest.raises(ServerError) as excinfo:
            client.call("no_such_op")
        assert excinfo.value.kind == "unsupported"
        assert not excinfo.value.retryable
        # No retries were burned on a permanent failure.
        assert client.stats.retries == 0
        assert client.stats.connects == 1


def test_shed_job_raises_jobshed_without_retry(server_factory, wire_keys):
    # A long coalescing window guarantees a 1 ms deadline cannot be met, so
    # the server sheds the job up front; JobShed is not retryable.
    server = server_factory(flush_interval=0.5)
    secret, cloud = wire_keys
    with ResilientClient(port=server.port) as client:
        client.register_key(cloud)
        ca = encrypt_bit(secret, True, rng=11)
        cb = encrypt_bit(secret, False, rng=12)
        with pytest.raises(JobShed):
            client.gate("nand", ca, cb, deadline=0.001)
        assert client.stats.retries == 0
        metrics = client.metrics()
        assert metrics["jobs_shed"] >= 1


def test_reconnect_reregisters_and_resubmits(server_factory, wire_keys):
    """Killing the socket mid-session loses nothing: the next result()
    re-dials, replays the key registration (answered from the server's
    session cache) and resubmits the pending request under its original id."""
    server = server_factory()
    secret, cloud = wire_keys
    with ResilientClient(port=server.port, base_delay=0.001) as client:
        client.register_key(cloud)
        ca = encrypt_bit(secret, True, rng=21)
        cb = encrypt_bit(secret, True, rng=22)
        out = client.gate("nand", ca, cb)
        assert not decrypt_bit(secret, out)

        # Simulate a mid-flight connection loss *before* the submit.
        client._client._sock.shutdown(socket.SHUT_RDWR)
        out = client.gate("and", ca, cb)
        assert decrypt_bit(secret, out)
        assert client.stats.reconnects >= 1
        assert client.stats.resubmitted >= 1

        metrics = client.metrics()
        assert metrics["sessions"] == 1
        # The replayed register_key was answered from the session cache.
        assert metrics["jobs_deduped"] >= 1


def test_session_token_defaults_unique():
    a = ResilientClient(port=1)  # never dialled: submit() absorbs failures
    b = ResilientClient(port=1)
    assert a.session != b.session
    assert len(a.session) == 32


def test_plain_client_can_share_session_token(server_factory, wire_keys):
    """The session protocol is client-agnostic: a plain ServingClient that
    resends a request id under the same token gets the cached bytes back —
    exactly-once, bit-identical."""
    server = server_factory()
    secret, cloud = wire_keys
    ca = encrypt_bit(secret, False, rng=31)
    cb = encrypt_bit(secret, True, rng=32)

    from repro.runtime.protocol import pack_parts
    from repro.tfhe.serialize import to_bytes

    first = ServingClient(port=server.port, session="tok-shared")
    first.register_key(cloud)
    request_id = first.submit_gate("xor", ca, cb)
    _, body_first = first.result(request_id)
    first.close()

    # A later connection resends the same request under the same id/token.
    second = ServingClient(port=server.port, session="tok-shared")
    second.submit(
        "gate",
        pack_parts([to_bytes(ca), to_bytes(cb)]),
        request_id=request_id,
        gate="xor",
    )
    _, body_retry = second.result(request_id)
    second.close()

    assert body_retry == body_first  # cached, not re-executed
    assert server.metrics()["jobs_deduped"] >= 1

"""The unified telemetry subsystem: registry, tracing, exposition, end-to-end.

Unit layers first (metric families, histogram bucket-edge semantics, the
Prometheus render→parse round trip, the tracer ring), then the integration
properties PR 10 is really about:

* a traced job submitted through an **inline** scheduler leaves the full
  span taxonomy in the ring, correctly parented;
* spans recorded inside **forked worker processes** cross the result pipe
  and land in the parent's ring, stitched under the round's flush span;
* a circuit submitted over the wire with a client trace id exports a valid
  Chrome trace-event document covering every serving stage;
* a :class:`ResilientClient` disconnect mid-request resubmits under the
  *same* trace id, so the server records one trace with two reply attempts;
* ``FheServer.metrics()`` keeps its legacy dict shape (the ops-tooling
  contract) while gaining the registry-backed uptime/busy numbers.
"""

from __future__ import annotations

import json
import math
import socket
import struct
import time

import pytest

from repro.runtime import BatchScheduler, WorkerPool
from repro.runtime.protocol import ServingClient, pack_parts, unpack_parts
from repro.runtime.resilient import ResilientClient
from repro.telemetry import (
    MetricError,
    MetricsRegistry,
    PrometheusParseError,
    Telemetry,
    Tracer,
    parse_prometheus_text,
    render_prometheus,
)
from repro.tfhe.gates import decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.lwe import LweBatch
from repro.tfhe.netlist import adder_netlist
from repro.tfhe.params import TEST_TINY
from repro.tfhe.serialize import circuit_to_json, from_bytes, to_bytes
from repro.tfhe.transform import DoubleFFTNegacyclicTransform

pytestmark = pytest.mark.filterwarnings("error::UserWarning")


@pytest.fixture(scope="module")
def wire_keys():
    """One TEST_TINY double-engine keypair shared by the telemetry tests."""
    return generate_keys(
        TEST_TINY,
        DoubleFFTNegacyclicTransform(TEST_TINY.N),
        unroll_factor=1,
        rng=61,
        eager=False,
    )


# --------------------------------------------------------------------------- #
# metrics registry                                                            #
# --------------------------------------------------------------------------- #


def test_counter_gauge_basics():
    reg = MetricsRegistry()
    jobs = reg.counter("fhe_jobs_total", "jobs", labelnames=("op",))
    jobs.labels(op="gate").inc()
    jobs.labels(op="gate").inc(2)
    jobs.labels(op="lut").inc()
    depth = reg.gauge("fhe_queue_depth", "queue")
    depth.set(7)
    depth.dec(3)

    snap = reg.snapshot()
    gate = next(
        s for s in snap["fhe_jobs_total"]["series"] if s["labels"] == {"op": "gate"}
    )
    assert gate["value"] == 3
    assert snap["fhe_queue_depth"]["series"][0]["value"] == 4

    # Re-declaration is get-or-create; a shape mismatch is an error, not a
    # silent second family.
    assert reg.counter("fhe_jobs_total", labelnames=("op",)) is jobs
    with pytest.raises(MetricError):
        reg.counter("fhe_jobs_total", labelnames=("kind",))
    with pytest.raises(MetricError):
        reg.gauge("fhe_jobs_total")
    with pytest.raises(MetricError):
        reg.counter("0-bad-name")

    reg.reset()
    assert all(
        s["value"] == 0 for s in reg.snapshot()["fhe_jobs_total"]["series"]
    )


def test_histogram_bucket_edges():
    """An observation equal to a bound lands in that bound's bucket
    (Prometheus inclusive ``le``); past the last bound only +Inf grows."""
    reg = MetricsRegistry()
    hist = reg.histogram("fhe_lat_seconds", "lat", buckets=(0.1, 1.0, 5.0))

    hist.observe(0.1)  # == first bound → first bucket
    hist.observe(1.0)  # == second bound → second bucket
    hist.observe(0.5)  # interior → second bucket
    hist.observe(99.0)  # overflow → +Inf only

    (series,) = reg.snapshot()["fhe_lat_seconds"]["series"]
    buckets = {le: n for le, n in series["buckets"]}
    assert buckets[0.1] == 1
    assert buckets[1.0] == 3  # cumulative: the 0.1 obs plus both le-1.0 obs
    assert buckets[5.0] == 3  # overflow did NOT land here
    assert buckets[math.inf] == 4 == series["count"]
    assert series["sum"] == pytest.approx(100.6)
    assert hist.quantile(0.5) == 1.0

    with pytest.raises(MetricError):
        reg.histogram("fhe_bad", buckets=(1.0, 1.0))
    with pytest.raises(MetricError):
        reg.histogram("fhe_lat_seconds", buckets=(0.25, 2.0))  # shape mismatch


def test_prometheus_render_parse_roundtrip():
    reg = MetricsRegistry()
    reg.counter("fhe_jobs_total", "submitted jobs", labelnames=("op",)).labels(
        op='we"ird\\op'
    ).inc(5)
    reg.gauge("fhe_uptime_seconds", "uptime").set(12.5)
    hist = reg.histogram("fhe_flush_seconds", "flush", buckets=(0.01, 0.1))
    hist.observe(0.05)
    hist.observe(3.0)

    text = render_prometheus(reg.snapshot())
    families = parse_prometheus_text(text)

    assert families["fhe_jobs_total"]["type"] == "counter"
    ((name, labels, value),) = families["fhe_jobs_total"]["samples"]
    assert labels == {"op": 'we"ird\\op'} and value == 5

    assert families["fhe_uptime_seconds"]["samples"][0][2] == 12.5

    flush = families["fhe_flush_seconds"]
    assert flush["type"] == "histogram"
    by_name = {}
    for name, labels, value in flush["samples"]:
        by_name.setdefault(name, []).append((labels, value))
    assert [v for _, v in by_name["fhe_flush_seconds_bucket"]] == [0, 1, 2]
    assert by_name["fhe_flush_seconds_count"][0][1] == 2
    assert by_name["fhe_flush_seconds_sum"][0][1] == pytest.approx(3.05)

    # The parser is a validator too: a non-monotone bucket series is refused.
    broken = text.replace(
        'fhe_flush_seconds_bucket{le="+Inf"} 2',
        'fhe_flush_seconds_bucket{le="+Inf"} 1',
    )
    with pytest.raises(PrometheusParseError):
        parse_prometheus_text(broken)


def test_telemetry_hot_path_helpers():
    """`count`/`observe` cache the bound series and honour the kill switch."""
    tel = Telemetry()
    tel.count("fhe_x_total")
    tel.count("fhe_x_total", amount=2)
    tel.count("fhe_y_total", op="gate")
    tel.observe("fhe_z_seconds", 0.2, buckets=(0.1, 1.0))

    snap = tel.registry.snapshot()
    assert snap["fhe_x_total"]["series"][0]["value"] == 3
    assert snap["fhe_y_total"]["series"][0]["labels"] == {"op": "gate"}
    assert snap["fhe_z_seconds"]["series"][0]["count"] == 1

    # Cached handles survive a reset (children are zeroed in place).
    tel.registry.reset()
    tel.count("fhe_x_total")
    assert tel.registry.snapshot()["fhe_x_total"]["series"][0]["value"] == 1

    off = Telemetry(metrics=False)
    off.count("fhe_x_total")
    off.observe("fhe_z_seconds", 1.0)
    assert off.registry.snapshot() == {}


# --------------------------------------------------------------------------- #
# tracer                                                                      #
# --------------------------------------------------------------------------- #


def test_tracer_ring_is_bounded_and_filterable():
    tracer = Tracer(ring_size=4)
    for i in range(7):
        tracer.record(f"s{i}", trace_id=f"t{i % 2}", start=float(i), duration=0.1)
    spans = tracer.spans()
    assert [s.name for s in spans] == ["s3", "s4", "s5", "s6"]  # oldest dropped
    assert [s.name for s in tracer.spans("t0")] == ["s4", "s6"]
    assert tracer.trace_ids() == ["t1", "t0"]

    # Batch spans list their participants; membership resolves either way.
    tracer.record(
        "flush", trace_id="t0", start=8.0, duration=0.2, attrs={"traces": ["t0", "t1"]}
    )
    assert "flush" in [s.name for s in tracer.spans("t1")]

    disabled = Tracer(enabled=False)
    assert disabled.record("x", trace_id="t", start=0.0, duration=0.0) is None
    assert disabled.spans() == []


def test_tracer_exports_and_pipe_tuples():
    tracer = Tracer()
    root = tracer.record("job", trace_id="t", start=1.0, duration=0.5)
    tracer.record(
        "keyswitch", trace_id="t", start=1.1, duration=0.1, parent_id=root
    )

    doc = json.loads(tracer.export_json())
    assert [d["name"] for d in doc] == ["job", "keyswitch"]
    assert doc[1]["parent_id"] == root

    chrome = json.loads(tracer.export_chrome())
    assert chrome["displayTimeUnit"] == "ms"
    for event in chrome["traceEvents"]:
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float) and isinstance(event["dur"], float)
    assert chrome["traceEvents"][0]["ts"] == pytest.approx(1.0e6)

    # Worker-side spans travel as tuples and are re-ingested verbatim.
    other = Tracer()
    for record in [s.to_tuple() for s in tracer.spans()]:
        other.ingest(record)
    assert [s.name for s in other.spans("t")] == ["job", "keyswitch"]
    with pytest.raises(ValueError):
        other.ingest((1, 2, 3, 4, 5, 6, 7))


# --------------------------------------------------------------------------- #
# scheduler integration                                                       #
# --------------------------------------------------------------------------- #


def _span_index(spans):
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)
    return by_name


def test_inline_scheduler_records_full_taxonomy(wire_keys):
    secret, cloud = wire_keys
    tel = Telemetry()
    scheduler = BatchScheduler(telemetry=tel)
    scheduler.register_client("tenant", cloud)
    session = scheduler.session("tenant")

    handles = [
        session.submit_gate(
            "nand",
            encrypt_bit(secret, i & 1, rng=300 + 2 * i),
            encrypt_bit(secret, (i >> 1) & 1, rng=301 + 2 * i),
            trace_id=f"trace-{i}",
        )
        for i in range(4)
    ]
    scheduler.flush()
    assert decrypt_bit(secret, handles[3].result()) == 0  # NAND(1, 1)

    spans = tel.tracer.spans("trace-3")
    by_name = _span_index(spans)
    for must in ("enqueue", "coalesce_wait", "flush", "engine_contract",
                 "keyswitch", "job"):
        assert must in by_name, f"missing {must!r} in {sorted(by_name)}"

    # Parenting: batch stages hang off the round's flush span; the per-job
    # wait and root spans carry the job's own trace.
    (flush_span,) = by_name["flush"]
    assert by_name["engine_contract"][0].parent_id == flush_span.span_id
    assert by_name["keyswitch"][0].parent_id == flush_span.span_id
    assert by_name["coalesce_wait"][0].trace_id == "trace-3"
    (job_span,) = by_name["job"]
    assert job_span.parent_id is None
    assert job_span.duration >= by_name["coalesce_wait"][0].duration >= 0.0

    # All four traces share the one batched flush round.
    assert set(flush_span.attrs["traces"]) == {f"trace-{i}" for i in range(4)}

    # Metrics moved in lockstep.
    snap = tel.registry.snapshot()
    submitted = snap["fhe_jobs_submitted_total"]["series"]
    assert sum(s["value"] for s in submitted) == 4
    assert snap["fhe_flushes_total"]["series"][0]["value"] >= 1
    assert snap["fhe_rows_bootstrapped_total"]["series"][0]["value"] >= 4
    assert snap["fhe_rows_per_call"]["series"][0]["count"] >= 1


def test_untraced_scheduler_records_nothing(wire_keys):
    """telemetry=None keeps the ring and registry out of the picture entirely
    (the zero-overhead contract's observable half)."""
    secret, cloud = wire_keys
    scheduler = BatchScheduler()
    scheduler.register_client("tenant", cloud)
    session = scheduler.session("tenant")
    handle = session.submit_gate(
        "nand", encrypt_bit(secret, 1, rng=310), encrypt_bit(secret, 1, rng=311)
    )
    scheduler.flush()
    assert decrypt_bit(secret, handle.result()) == 0
    assert scheduler.telemetry is None


def test_trace_crosses_worker_pool_process_boundary(wire_keys):
    """Spans recorded inside forked workers come back over the result pipe
    into the parent ring, parented under the round's flush span."""
    secret, cloud = wire_keys
    tel = Telemetry()
    with WorkerPool(2, task_timeout=60.0) as pool:
        scheduler = BatchScheduler(dispatcher=pool, telemetry=tel)
        scheduler.register_client("tenant", cloud)
        session = scheduler.session("tenant")
        handles = [
            session.submit_gate(
                "xor",
                encrypt_bit(secret, i & 1, rng=400 + 2 * i),
                encrypt_bit(secret, (i >> 1) & 1, rng=401 + 2 * i),
                trace_id=f"pooled-{i}",
            )
            for i in range(6)
        ]
        scheduler.flush()
        for i, handle in enumerate(handles):
            assert decrypt_bit(secret, handle.result()) == (i & 1) ^ ((i >> 1) & 1)

    by_name = _span_index(tel.tracer.spans("pooled-0"))
    (flush_span,) = by_name["flush"]
    assert "worker_dispatch" in by_name
    for dispatch in by_name["worker_dispatch"]:
        assert dispatch.parent_id == flush_span.span_id

    # The engine stages ran inside the forked workers: their span ids carry
    # the *worker's* pid prefix, proving they crossed the pipe rather than
    # being re-recorded by the parent.
    parent_prefix = tel.tracer._id_prefix
    contracts = by_name["engine_contract"]
    assert contracts and all(
        not span.span_id.startswith(parent_prefix) for span in contracts
    )
    assert "keyswitch" in by_name

    # Worker accounting (batch calls, engine transform deltas measured
    # inside the forked processes) reached the parent registry.
    snap = tel.registry.snapshot()
    assert snap["fhe_batched_calls_total"]["series"][0]["value"] >= 1
    assert snap["fhe_rows_per_call"]["series"][0]["count"] >= 1
    transform = snap["fhe_engine_transform_calls_total"]["series"]
    assert sum(s["value"] for s in transform) > 0


# --------------------------------------------------------------------------- #
# server end to end                                                           #
# --------------------------------------------------------------------------- #


def test_server_end_to_end_trace_and_prometheus(server_factory, wire_keys):
    """The PR's acceptance path: a circuit submitted over the wire with a
    client-chosen trace id, served by a 2-worker pool, exports a valid
    Chrome trace-event document spanning every serving stage; the metrics
    endpoint renders parseable Prometheus text."""
    secret, cloud = wire_keys
    with WorkerPool(2, task_timeout=120.0) as pool:
        server = server_factory(dispatcher=pool, flush_interval=0.02)
        with ServingClient(port=server.port) as client:
            client.register_key(cloud)
            a_val, b_val = 3, 1
            bits = [encrypt_bit(secret, (a_val >> i) & 1, rng=500 + i) for i in range(2)]
            bits += [encrypt_bit(secret, (b_val >> i) & 1, rng=510 + i) for i in range(2)]
            request_id = client.submit(
                "circuit",
                pack_parts([to_bytes(LweBatch.from_samples(bits))]),
                circuit=json.loads(circuit_to_json(adder_netlist(2))),
                trace="acceptance-trace",
            )
            _, body = client.result(request_id)
            out = from_bytes(unpack_parts(body, expected=1)[0])
            total = sum(
                decrypt_bit(secret, s) << i for i, s in enumerate(out.to_samples())
            )
            assert total == a_val + b_val

            # Chrome trace-event export, filtered to our trace.
            _, trace_body = client.call("trace_export", trace="acceptance-trace")
            doc = json.loads(trace_body.decode("utf-8"))
            names = {event["name"] for event in doc["traceEvents"]}
            for must in ("enqueue", "coalesce_wait", "flush", "worker_dispatch",
                         "engine_contract", "keyswitch", "job", "reply"):
                assert must in names, f"missing {must!r} in {sorted(names)}"
            for event in doc["traceEvents"]:
                assert event["ph"] == "X"
                for key in ("name", "ts", "dur", "pid", "tid", "args"):
                    assert key in event
                assert event["args"]["trace_id"]

            # Prometheus exposition parses and carries the serving families.
            _, prom_body = client.call("metrics_prom")
            families = parse_prometheus_text(prom_body.decode("utf-8"))
            for must in ("fhe_jobs_submitted_total", "fhe_flushes_total",
                         "fhe_requests_total", "fhe_server_uptime_seconds",
                         "fhe_server_busy_seconds_total", "fhe_flush_seconds",
                         "fhe_pool_workers_alive"):
                assert must in families, f"missing {must!r}"
            alive = families["fhe_pool_workers_alive"]["samples"][0][2]
            assert alive == 2


def test_server_metrics_keeps_legacy_shape(server_factory, wire_keys):
    """`metrics()` is an ops contract: every pre-telemetry key survives,
    and the registry-backed additions sit beside them."""
    secret, cloud = wire_keys
    server = server_factory(flush_interval=0.02)
    with ServingClient(port=server.port) as client:
        client.register_key(cloud)
        out = client.gate(
            "nand", encrypt_bit(secret, 1, rng=520), encrypt_bit(secret, 1, rng=521)
        )
        assert decrypt_bit(secret, out) == 0

        metrics = client.metrics()
        for legacy in ("flushes", "jobs_completed", "queue_depth",
                       "rows_bootstrapped", "bootstraps_per_sec", "connections",
                       "draining", "awaiting_results", "sessions",
                       "flush_latency_p50", "flush_latency_p99"):
            assert legacy in metrics, f"legacy key {legacy!r} dropped"
        assert metrics["uptime_seconds"] > 0
        assert 0.0 <= metrics["busy_fraction"] <= 1.0
        assert isinstance(metrics["top_sessions"], list)


def test_telemetry_disabled_server_still_serves(server_factory, wire_keys):
    secret, cloud = wire_keys
    server = server_factory(telemetry=False, flush_interval=0.02)
    with ServingClient(port=server.port) as client:
        client.register_key(cloud)
        out = client.gate(
            "or", encrypt_bit(secret, 0, rng=530), encrypt_bit(secret, 1, rng=531)
        )
        assert decrypt_bit(secret, out) == 1
        metrics = client.metrics()  # legacy view works without the registry
        assert metrics["jobs_completed"] >= 1
        from repro.runtime.protocol import ServerError

        with pytest.raises(ServerError):
            client.call("metrics_prom")


def test_resilient_retry_keeps_one_trace_two_reply_attempts(
    server_factory, wire_keys
):
    """A disconnect after the server replied (but before the client read it)
    forces a resubmit.  The client minted the trace id once at submit time,
    so both delivery attempts — the lost original and the cache-replayed
    retry — land in ONE server-side trace with TWO reply spans."""
    secret, cloud = wire_keys
    server = server_factory(flush_interval=0.02)
    with ResilientClient(port=server.port, base_delay=0.001) as client:
        client.register_key(cloud)
        ca = encrypt_bit(secret, 1, rng=540)
        cb = encrypt_bit(secret, 1, rng=541)
        request_id = client.submit(
            "gate", pack_parts([to_bytes(ca), to_bytes(cb)]), gate="nand"
        )
        trace_id = client._pending[request_id].fields["trace"]

        # Wait until the server has *sent* the first reply (span recorded),
        # then hard-close the socket with an RST so the buffered reply is
        # discarded unread — the first delivery attempt is genuinely lost.
        tracer = server.telemetry.tracer
        deadline = time.monotonic() + 30.0
        while not any(s.name == "reply" for s in tracer.spans(trace_id)):
            assert time.monotonic() < deadline, "first reply never recorded"
            time.sleep(0.01)
        sock = client._client._sock
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()

        _, body = client.result(request_id)
        out = from_bytes(unpack_parts(body, expected=1)[0])
        assert decrypt_bit(secret, out) == 0
        assert client.stats.resubmitted >= 1

        # The reply span is recorded just after the frame is flushed, so the
        # client can observe the retried reply a beat before the server's
        # coroutine records it — poll briefly rather than racing it.
        deadline = time.monotonic() + 30.0
        while True:
            spans = tracer.spans(trace_id)
            replies = [s for s in spans if s.name == "reply"]
            if len(replies) >= 2:
                break
            assert time.monotonic() < deadline, (
                "retry did not produce a second reply span"
            )
            time.sleep(0.01)
        jobs = [s for s in spans if s.name == "job"]
        assert len(jobs) == 1, "the job must have executed exactly once"
        assert {s.trace_id for s in replies} == {trace_id}
        assert client.stats.reconnects >= 1


def test_resilient_client_counts_into_registry(server_factory, wire_keys):
    """With a Telemetry bundle attached, the retry machinery mirrors its
    bookkeeping into fhe_client_* counters."""
    secret, cloud = wire_keys
    server = server_factory(flush_interval=0.02)
    tel = Telemetry()
    with ResilientClient(
        port=server.port, base_delay=0.001, telemetry=tel
    ) as client:
        client.register_key(cloud)
        out = client.gate(
            "and", encrypt_bit(secret, 1, rng=550), encrypt_bit(secret, 1, rng=551)
        )
        assert decrypt_bit(secret, out) == 1
        client._client._sock.shutdown(socket.SHUT_RDWR)
        out = client.gate(
            "xor", encrypt_bit(secret, 1, rng=552), encrypt_bit(secret, 0, rng=553)
        )
        assert decrypt_bit(secret, out) == 1

    snap = tel.registry.snapshot()
    assert snap["fhe_client_connects_total"]["series"][0]["value"] >= 2
    assert snap["fhe_client_reconnects_total"]["series"][0]["value"] >= 1
    assert snap["fhe_client_resubmits_total"]["series"][0]["value"] >= 1

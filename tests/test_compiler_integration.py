"""End-to-end compiler tests: traced + optimized circuits on real ciphertexts.

The wiring contract of the subsystem: anything :func:`repro.compiler.trace`
produces — before or after :class:`repro.compiler.PassManager` — must run
unchanged through the eager executor, the level-parallel
:class:`repro.tfhe.executor.CircuitExecutor`, and
:meth:`repro.runtime.scheduler.EvaluationSession.submit_circuit`, and agree
with plaintext co-simulation.
"""

import pytest

from repro.compiler import (
    FheUint,
    FheUint4,
    PassManager,
    fhe_max,
    fhe_select,
    optimize,
    simulate,
    trace,
)
from repro.compiler.passes import live_gate_count
from repro.runtime import BatchScheduler
from repro.tfhe.circuits import (
    decrypt_integer,
    decrypt_integers,
    encrypt_integer,
    encrypt_integers,
)
from repro.tfhe.executor import CircuitExecutor, execute, schedule_circuit
from repro.tfhe.gates import TFHEGateEvaluator
from repro.tfhe.serialize import circuit_from_json, circuit_to_json

WIDTH = 4


@pytest.fixture(scope="module")
def traced_pair():
    circuit = trace(
        lambda a, b: fhe_max(a * 3 + b, b - a),
        FheUint(WIDTH, "a"),
        FheUint(WIDTH, "b"),
    )
    manager = PassManager(verify=True, rng=11)
    return circuit, manager.run(circuit)


def _reference(a: int, b: int) -> int:
    modulus = 2**WIDTH
    return max((a * 3 + b) % modulus, (b - a) % modulus)


class TestEncryptedExecution:
    def test_optimization_actually_shrank_the_circuit(self, traced_pair):
        circuit, optimized = traced_pair
        assert live_gate_count(optimized) < live_gate_count(circuit)

    def test_eager_executor_matches_simulation(self, tiny_keys_naive, traced_pair):
        secret, cloud = tiny_keys_naive
        _, optimized = traced_pair
        evaluator = TFHEGateEvaluator(cloud)
        a, b = 13, 6
        out = execute(
            optimized,
            evaluator,
            {
                "a": encrypt_integer(secret, a, WIDTH, rng=21),
                "b": encrypt_integer(secret, b, WIDTH, rng=22),
            },
        )
        got = decrypt_integer(secret, out["out"])
        assert got == simulate(optimized, {"a": a, "b": b})["out"] == _reference(a, b)

    def test_level_executor_batch_matches_simulation(
        self, tiny_keys_naive, traced_pair
    ):
        secret, cloud = tiny_keys_naive
        _, optimized = traced_pair
        values_a, values_b = [3, 15, 0], [9, 2, 0]
        executor = CircuitExecutor.for_context(
            cloud.default_context(), batch_size=len(values_a)
        )
        planes = executor.run(
            optimized,
            {
                "a": encrypt_integers(secret, values_a, WIDTH, rng=31),
                "b": encrypt_integers(secret, values_b, WIDTH, rng=32),
            },
        )
        got = decrypt_integers(secret, planes["out"])
        assert got == [_reference(a, b) for a, b in zip(values_a, values_b)]

    def test_scheduler_runs_optimized_circuit(self, tiny_keys_naive, traced_pair):
        secret, cloud = tiny_keys_naive
        _, optimized = traced_pair
        scheduler = BatchScheduler()
        scheduler.register_client("tenant", cloud.default_context())
        session = scheduler.session("tenant")
        handle = session.submit_circuit(
            optimized,
            {
                "a": encrypt_integer(secret, 7, WIDTH, rng=41),
                "b": encrypt_integer(secret, 12, WIDTH, rng=42),
            },
        )
        scheduler.flush()
        got = decrypt_integer(secret, handle.result()["out"])
        assert got == _reference(7, 12)

    def test_serialized_optimized_circuit_still_runs(
        self, tiny_keys_naive, traced_pair
    ):
        secret, cloud = tiny_keys_naive
        _, optimized = traced_pair
        shipped = circuit_from_json(circuit_to_json(optimized))
        evaluator = TFHEGateEvaluator(cloud)
        out = execute(
            shipped,
            evaluator,
            {
                "a": encrypt_integer(secret, 5, WIDTH, rng=51),
                "b": encrypt_integer(secret, 10, WIDTH, rng=52),
            },
        )
        assert decrypt_integer(secret, out["out"]) == _reference(5, 10)

    def test_optimization_reduces_executor_level_calls(
        self, tiny_keys_naive, traced_pair
    ):
        circuit, optimized = traced_pair
        assert (
            schedule_circuit(optimized).depth <= schedule_circuit(circuit).depth
        )
        assert (
            schedule_circuit(optimized).gate_count
            < schedule_circuit(circuit).gate_count
        )

    def test_zero_gate_circuit_through_all_executors(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        # a == a folds to constant truth: the whole select collapses.
        circuit = optimize(
            trace(lambda a: fhe_select(a == a, 9, 2), FheUint4("a")), verify=True
        )
        assert live_gate_count(circuit) == 0
        bits = encrypt_integer(secret, 4, WIDTH, rng=61)
        evaluator = TFHEGateEvaluator(cloud)
        eager = execute(circuit, evaluator, {"a": bits})
        assert decrypt_integer(secret, eager["out"]) == 9

        executor = CircuitExecutor.for_context(cloud.default_context(), batch_size=1)
        levelized = executor.run_samples(circuit, {"a": bits})
        assert decrypt_integer(secret, levelized["out"]) == 9

        scheduler = BatchScheduler()
        scheduler.register_client("tenant", cloud.default_context())
        handle = scheduler.session("tenant").submit_circuit(circuit, {"a": bits})
        scheduler.flush()
        assert decrypt_integer(secret, handle.result()["out"]) == 9

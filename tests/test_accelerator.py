"""Tests for the MatchaAccelerator facade and its functional execution path."""

import pytest

from repro.core.accelerator import MatchaAccelerator, MatchaConfig
from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.gates import PLAINTEXT_GATES, decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_secret_key
from repro.tfhe.params import TEST_SMALL


class TestConfig:
    def test_defaults_follow_paper(self):
        config = MatchaConfig()
        assert config.twiddle_bits == 64
        assert config.unroll_factor == 3
        assert config.pipeline_count == 8
        assert config.clock_hz == pytest.approx(2.0e9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"twiddle_bits": 0},
            {"unroll_factor": 0},
            {"pipeline_count": 0},
            {"clock_hz": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MatchaConfig(**kwargs)


class TestFunctionalExecution:
    @pytest.fixture(scope="class")
    def accelerator_setup(self):
        config = MatchaConfig(twiddle_bits=64, unroll_factor=2)
        accelerator = MatchaAccelerator(params=TEST_SMALL, config=config)
        secret = generate_secret_key(TEST_SMALL, rng=7)
        cloud = accelerator.build_cloud_key(secret, rng=8)
        return accelerator, secret, cloud

    def test_transform_is_approximate_integer_fft(self, accelerator_setup):
        accelerator, _, _ = accelerator_setup
        assert isinstance(accelerator.transform, ApproximateNegacyclicTransform)
        assert accelerator.transform.twiddle_bits == 64

    def test_cloud_key_uses_configured_unrolling(self, accelerator_setup):
        _, _, cloud = accelerator_setup
        assert cloud.unroll_factor == 2

    def test_gates_decrypt_correctly(self, accelerator_setup):
        """Section 4.1: approximate FFTs cause no decryption errors."""
        accelerator, secret, cloud = accelerator_setup
        evaluator = accelerator.evaluator(cloud)
        for a, b in ((0, 0), (0, 1), (1, 0), (1, 1)):
            ca = encrypt_bit(secret, a, rng=10 + a)
            cb = encrypt_bit(secret, b, rng=20 + b)
            got = decrypt_bit(secret, evaluator.nand(ca, cb))
            assert got == PLAINTEXT_GATES["nand"](a, b)

    def test_mismatched_parameters_rejected(self):
        from repro.tfhe.params import TEST_TINY

        accelerator = MatchaAccelerator(params=TEST_SMALL)
        wrong_secret = generate_secret_key(TEST_TINY, rng=9)
        with pytest.raises(ValueError):
            accelerator.build_cloud_key(wrong_secret)


class TestModelingBridges:
    def test_performance_report(self):
        accelerator = MatchaAccelerator()
        report = accelerator.performance()
        assert report.platform == "MATCHA"
        assert report.unroll_factor == 3
        assert report.gate_latency_ms < 1.0
        assert report.throughput_gates_per_s > 1000

    def test_area_power_bridge(self):
        envelope = MatchaAccelerator().area_and_power()
        assert envelope.total_power_w == pytest.approx(39.98, abs=0.02)

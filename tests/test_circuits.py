"""Tests for the reusable encrypted-circuit building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tfhe.circuits import (
    add,
    bits_to_int,
    decrypt_integer,
    encrypt_integer,
    equal,
    greater_than,
    int_to_bits,
    maximum,
    negate,
    select,
    subtract,
)
from repro.tfhe.executor import CircuitExecutor
from repro.tfhe.gates import BatchGateEvaluator, TFHEGateEvaluator, decrypt_bit
from repro.tfhe import netlist


@pytest.fixture(scope="module")
def circuit_env(tiny_keys_naive):
    secret, cloud = tiny_keys_naive
    return secret, TFHEGateEvaluator(cloud)


class TestBitHelpers:
    def test_roundtrip(self):
        for value in (0, 1, 5, 12, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_width_truncates(self):
        assert bits_to_int(int_to_bits(9, 2)) == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            int_to_bits(3, 0)

    def test_encrypt_decrypt_integer(self, circuit_env):
        secret, _ = circuit_env
        cipher = encrypt_integer(secret, 11, 4, rng=1)
        assert decrypt_integer(secret, cipher) == 11


class TestArithmetic:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (2, 1)])
    def test_addition(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=10 + a)
        cb = encrypt_integer(secret, b, 2, rng=20 + b)
        assert decrypt_integer(secret, add(evaluator, ca, cb)) == a + b

    def test_negate_is_twos_complement(self, circuit_env):
        secret, evaluator = circuit_env
        cipher = encrypt_integer(secret, 3, 3, rng=30)
        assert decrypt_integer(secret, negate(evaluator, cipher)) == (-3) % 8

    @pytest.mark.parametrize("a,b", [(3, 1), (2, 2), (1, 3)])
    def test_subtraction_mod_width(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=40 + a)
        cb = encrypt_integer(secret, b, 2, rng=50 + b)
        assert decrypt_integer(secret, subtract(evaluator, ca, cb)) == (a - b) % 4

    def test_width_mismatch_rejected(self, circuit_env):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, 1, 2, rng=60)
        cb = encrypt_integer(secret, 1, 3, rng=61)
        with pytest.raises(ValueError):
            add(evaluator, ca, cb)

    def test_empty_operands_rejected(self, circuit_env):
        _, evaluator = circuit_env
        with pytest.raises(ValueError):
            add(evaluator, [], [])


class TestComparisonsAndSelection:
    @pytest.mark.parametrize("a,b", [(0, 0), (2, 2), (1, 2), (3, 0)])
    def test_equality(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=70 + a)
        cb = encrypt_integer(secret, b, 2, rng=80 + b)
        assert decrypt_bit(secret, equal(evaluator, ca, cb)) == int(a == b)

    @pytest.mark.parametrize("a,b", [(0, 0), (2, 1), (1, 2), (3, 3)])
    def test_greater_than(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=90 + a)
        cb = encrypt_integer(secret, b, 2, rng=100 + b)
        assert decrypt_bit(secret, greater_than(evaluator, ca, cb)) == int(a > b)

    def test_select_picks_branch(self, circuit_env):
        secret, evaluator = circuit_env
        high = encrypt_integer(secret, 3, 2, rng=110)
        low = encrypt_integer(secret, 1, 2, rng=111)
        chosen = select(evaluator, evaluator.constant(1), high, low)
        assert decrypt_integer(secret, chosen) == 3
        chosen = select(evaluator, evaluator.constant(0), high, low)
        assert decrypt_integer(secret, chosen) == 1

    @pytest.mark.parametrize("a,b", [(2, 1), (1, 3), (2, 2)])
    def test_maximum(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=120 + a)
        cb = encrypt_integer(secret, b, 2, rng=130 + b)
        assert decrypt_integer(secret, maximum(evaluator, ca, cb)) == max(a, b)


class TestEdgeCases:
    """Width-mismatch errors and degenerate (zero/one-bit) operand shapes."""

    @pytest.mark.parametrize(
        "block", [add, subtract, equal, greater_than, maximum]
    )
    def test_width_mismatch_rejected_everywhere(self, circuit_env, block):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, 1, 2, rng=140)
        cb = encrypt_integer(secret, 1, 3, rng=141)
        with pytest.raises(ValueError):
            block(evaluator, ca, cb)

    def test_select_width_mismatch_rejected(self, circuit_env):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, 1, 2, rng=142)
        cb = encrypt_integer(secret, 1, 3, rng=143)
        with pytest.raises(ValueError):
            select(evaluator, evaluator.constant(1), ca, cb)

    @pytest.mark.parametrize(
        "block", [add, subtract, equal, greater_than, maximum]
    )
    def test_zero_bit_operands_rejected_everywhere(self, circuit_env, block):
        _, evaluator = circuit_env
        with pytest.raises(ValueError):
            block(evaluator, [], [])

    def test_negate_zero_bits_rejected(self, circuit_env):
        _, evaluator = circuit_env
        with pytest.raises(ValueError):
            negate(evaluator, [])

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_one_bit_operands(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 1, rng=150 + 2 * a + b)
        cb = encrypt_integer(secret, b, 1, rng=160 + 2 * a + b)
        assert decrypt_integer(secret, add(evaluator, ca, cb)) == a + b
        assert decrypt_bit(secret, equal(evaluator, ca, cb)) == int(a == b)
        assert decrypt_bit(secret, greater_than(evaluator, ca, cb)) == int(a > b)
        assert decrypt_integer(secret, maximum(evaluator, ca, cb)) == max(a, b)

    def test_one_bit_negate_is_identity_mod_two(self, circuit_env):
        secret, evaluator = circuit_env
        for value in (0, 1):
            cipher = encrypt_integer(secret, value, 1, rng=170 + value)
            assert decrypt_integer(secret, negate(evaluator, cipher)) == value


class TestNetlistEagerEquivalence:
    """The eager helpers and the levelized executor agree on random integers.

    Equivalence is checked at the strongest possible level: the output
    *ciphertexts* must match bit for bit, not just their decryptions.
    """

    @settings(max_examples=5, deadline=None)
    @given(data=st.data())
    def test_helpers_match_levelized_executor(self, tiny_keys_naive, data):
        secret, cloud = tiny_keys_naive
        width = data.draw(st.integers(1, 4))
        a = data.draw(st.integers(0, 2**width - 1))
        b = data.draw(st.integers(0, 2**width - 1))
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        ca = encrypt_integer(secret, a, width, rng=rng)
        cb = encrypt_integer(secret, b, width, rng=rng)

        evaluator = TFHEGateEvaluator(cloud)
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=1))
        cases = [
            (add, netlist.adder_netlist(width), "sum", True),
            (subtract, netlist.subtractor_netlist(width), "diff", True),
            (greater_than, netlist.greater_than_netlist(width), "gt", False),
            (maximum, netlist.maximum_netlist(width), "max", True),
        ]
        for block, circuit, output, is_vector in cases:
            eager = block(evaluator, ca, cb)
            if not is_vector:
                eager = [eager]
            levelized = executor.run_samples(circuit, {"a": ca, "b": cb})[output]
            assert len(eager) == len(levelized)
            for bit_eager, bit_level in zip(eager, levelized):
                assert np.array_equal(bit_eager.a, bit_level.a), (block, a, b)
                assert int(bit_eager.b) == int(bit_level.b), (block, a, b)

"""Tests for the reusable encrypted-circuit building blocks."""

import pytest

from repro.tfhe.circuits import (
    add,
    bits_to_int,
    decrypt_integer,
    encrypt_integer,
    equal,
    greater_than,
    int_to_bits,
    maximum,
    negate,
    select,
    subtract,
)
from repro.tfhe.gates import TFHEGateEvaluator, decrypt_bit


@pytest.fixture(scope="module")
def circuit_env(tiny_keys_naive):
    secret, cloud = tiny_keys_naive
    return secret, TFHEGateEvaluator(cloud)


class TestBitHelpers:
    def test_roundtrip(self):
        for value in (0, 1, 5, 12, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_width_truncates(self):
        assert bits_to_int(int_to_bits(9, 2)) == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            int_to_bits(3, 0)

    def test_encrypt_decrypt_integer(self, circuit_env):
        secret, _ = circuit_env
        cipher = encrypt_integer(secret, 11, 4, rng=1)
        assert decrypt_integer(secret, cipher) == 11


class TestArithmetic:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (2, 1)])
    def test_addition(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=10 + a)
        cb = encrypt_integer(secret, b, 2, rng=20 + b)
        assert decrypt_integer(secret, add(evaluator, ca, cb)) == a + b

    def test_negate_is_twos_complement(self, circuit_env):
        secret, evaluator = circuit_env
        cipher = encrypt_integer(secret, 3, 3, rng=30)
        assert decrypt_integer(secret, negate(evaluator, cipher)) == (-3) % 8

    @pytest.mark.parametrize("a,b", [(3, 1), (2, 2), (1, 3)])
    def test_subtraction_mod_width(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=40 + a)
        cb = encrypt_integer(secret, b, 2, rng=50 + b)
        assert decrypt_integer(secret, subtract(evaluator, ca, cb)) == (a - b) % 4

    def test_width_mismatch_rejected(self, circuit_env):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, 1, 2, rng=60)
        cb = encrypt_integer(secret, 1, 3, rng=61)
        with pytest.raises(ValueError):
            add(evaluator, ca, cb)

    def test_empty_operands_rejected(self, circuit_env):
        _, evaluator = circuit_env
        with pytest.raises(ValueError):
            add(evaluator, [], [])


class TestComparisonsAndSelection:
    @pytest.mark.parametrize("a,b", [(0, 0), (2, 2), (1, 2), (3, 0)])
    def test_equality(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=70 + a)
        cb = encrypt_integer(secret, b, 2, rng=80 + b)
        assert decrypt_bit(secret, equal(evaluator, ca, cb)) == int(a == b)

    @pytest.mark.parametrize("a,b", [(0, 0), (2, 1), (1, 2), (3, 3)])
    def test_greater_than(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=90 + a)
        cb = encrypt_integer(secret, b, 2, rng=100 + b)
        assert decrypt_bit(secret, greater_than(evaluator, ca, cb)) == int(a > b)

    def test_select_picks_branch(self, circuit_env):
        secret, evaluator = circuit_env
        high = encrypt_integer(secret, 3, 2, rng=110)
        low = encrypt_integer(secret, 1, 2, rng=111)
        chosen = select(evaluator, evaluator.constant(1), high, low)
        assert decrypt_integer(secret, chosen) == 3
        chosen = select(evaluator, evaluator.constant(0), high, low)
        assert decrypt_integer(secret, chosen) == 1

    @pytest.mark.parametrize("a,b", [(2, 1), (1, 3), (2, 2)])
    def test_maximum(self, circuit_env, a, b):
        secret, evaluator = circuit_env
        ca = encrypt_integer(secret, a, 2, rng=120 + a)
        cb = encrypt_integer(secret, b, 2, rng=130 + b)
        assert decrypt_integer(secret, maximum(evaluator, ca, cb)) == max(a, b)

"""Tests for the analytic noise model (Table 3 / Section 4.3)."""

import math

import pytest

from repro.tfhe.noise import (
    GATE_DECISION_MARGIN,
    NoiseBudget,
    TfheNoiseModel,
    max_safe_fft_error,
)
from repro.tfhe.params import PAPER_110BIT, TEST_SMALL


class TestBudgetArithmetic:
    def test_total_is_sum_of_sources(self):
        budget = NoiseBudget(0.0, 1e-6, 2e-6, 3e-6, 4e-6)
        assert budget.total_variance == pytest.approx(1e-5)
        assert budget.total_stddev == pytest.approx(math.sqrt(1e-5))

    def test_failure_probability_monotone_in_noise(self):
        quiet = NoiseBudget(0, 1e-8, 1e-8, 0, 1e-8)
        loud = NoiseBudget(0, 1e-4, 1e-4, 0, 1e-4)
        assert quiet.failure_probability() < loud.failure_probability()

    def test_zero_noise_never_fails(self):
        assert NoiseBudget(0, 0, 0, 0, 0).failure_probability() == 0.0

    def test_expected_failures_scale_with_gate_count(self):
        budget = NoiseBudget(0, 1e-4, 1e-4, 0, 1e-4)
        assert budget.expected_failures(2e8) == pytest.approx(2 * budget.expected_failures(1e8))


class TestModelStructure:
    def test_iterations_shrink_with_m(self):
        assert TfheNoiseModel(PAPER_110BIT, 1).iterations == 630
        assert TfheNoiseModel(PAPER_110BIT, 2).iterations == 315
        assert TfheNoiseModel(PAPER_110BIT, 3).iterations == 210

    def test_keys_per_group_grow_exponentially(self):
        assert [TfheNoiseModel(PAPER_110BIT, m).keys_per_group for m in (1, 2, 3, 4, 5)] == [
            1,
            3,
            7,
            15,
            31,
        ]

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ValueError):
            TfheNoiseModel(PAPER_110BIT, 0)

    def test_paper_parameters_decrypt_reliably(self):
        """Without FFT error the 110-bit parameters practically never fail."""
        for m in (1, 2, 3, 4):
            budget = TfheNoiseModel(PAPER_110BIT, m).gate_budget()
            assert budget.expected_failures(1.0e8) < 1e-3

    def test_total_noise_grows_with_m(self):
        """Table 3: the exponentially growing BK term dominates at large m."""
        sigmas = [TfheNoiseModel(PAPER_110BIT, m).gate_budget().total_stddev for m in (1, 2, 3, 4, 5)]
        assert sigmas == sorted(sigmas)

    def test_pre_bootstrap_margin_holds_for_gates(self):
        model = TfheNoiseModel(PAPER_110BIT, 2)
        assert model.pre_bootstrap_margin_ok(operand_count=2, scale=1)
        assert model.pre_bootstrap_margin_ok(operand_count=2, scale=2)

    def test_fft_variance_adds_to_budget(self):
        clean = TfheNoiseModel(PAPER_110BIT, 2).gate_budget().total_variance
        noisy = TfheNoiseModel(PAPER_110BIT, 2, fft_error_stddev=1e-5).gate_budget().total_variance
        assert noisy > clean


class TestTable3Metrics:
    def test_relative_scalings(self):
        metrics = TfheNoiseModel(PAPER_110BIT, 4).table3_relative_metrics()
        assert metrics["external_product_noise_scale"] == pytest.approx(0.25)
        assert metrics["rounding_noise_scale"] == pytest.approx(0.25)
        assert metrics["bootstrapping_keys_per_group"] == 15

    def test_fft_error_db_conversion(self):
        metrics = TfheNoiseModel(PAPER_110BIT, 2, fft_error_stddev=1e-7).table3_relative_metrics()
        assert metrics["fft_error_db"] == pytest.approx(-140.0, abs=0.1)

    def test_zero_fft_error_reports_minus_infinity(self):
        metrics = TfheNoiseModel(PAPER_110BIT, 2).table3_relative_metrics()
        assert metrics["fft_error_db"] == float("-inf")


class TestFftErrorBudget:
    def test_budget_shrinks_with_m(self):
        """Section 4.3: the exponentially growing bootstrapping-key noise eats
        the total error headroom left for the approximate FFT as m grows."""
        headrooms = []
        for m in (2, 3, 4, 5):
            per_product = max_safe_fft_error(PAPER_110BIT, m)
            model = TfheNoiseModel(PAPER_110BIT, m)
            headrooms.append(per_product**2 * model.iterations * (PAPER_110BIT.k + 1))
        assert all(h > 0 for h in headrooms)
        assert headrooms == sorted(headrooms, reverse=True)

    def test_budget_is_respected_by_model(self):
        budget = max_safe_fft_error(PAPER_110BIT, 2, target_failures=1.0, gates=1e8)
        model = TfheNoiseModel(PAPER_110BIT, 2, fft_error_stddev=budget * 0.99)
        assert model.gate_budget().expected_failures(1e8) <= 1.1

    def test_exceeding_budget_causes_failures(self):
        budget = max_safe_fft_error(PAPER_110BIT, 2, target_failures=1.0, gates=1e8)
        model = TfheNoiseModel(PAPER_110BIT, 2, fft_error_stddev=budget * 5.0)
        assert model.gate_budget().expected_failures(1e8) > 1.0

    def test_margin_constant(self):
        assert GATE_DECISION_MARGIN == pytest.approx(1.0 / 16.0)

    def test_small_parameters_have_budget_too(self):
        assert max_safe_fft_error(TEST_SMALL, 2) > 0

"""Slow tests on the paper's full 110-bit parameter set.

These exercise the exact configuration the paper evaluates (N = 1024, n = 630,
Bg = 1024, l = 3) end to end in the functional simulator.  They take minutes in
pure Python and are therefore marked ``slow``; run them with

    pytest -m slow tests/test_slow_paper_params.py
"""

import pytest

from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.gates import PLAINTEXT_GATES, TFHEGateEvaluator, decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import PAPER_110BIT
from repro.tfhe.transform import DoubleFFTNegacyclicTransform

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def paper_keys_double():
    transform = DoubleFFTNegacyclicTransform(PAPER_110BIT.N)
    return generate_keys(PAPER_110BIT, transform, unroll_factor=1, rng=1)


@pytest.fixture(scope="module")
def paper_keys_matcha():
    transform = ApproximateNegacyclicTransform(PAPER_110BIT.N, twiddle_bits=64)
    return generate_keys(PAPER_110BIT, transform, unroll_factor=2, rng=2)


class TestPaperParametersDouble:
    def test_nand_gate(self, paper_keys_double):
        secret, cloud = paper_keys_double
        evaluator = TFHEGateEvaluator(cloud)
        for a, b in ((0, 0), (1, 1)):
            ca = encrypt_bit(secret, a, rng=10 + a)
            cb = encrypt_bit(secret, b, rng=20 + b)
            assert decrypt_bit(secret, evaluator.nand(ca, cb)) == PLAINTEXT_GATES["nand"](a, b)


class TestPaperParametersMatcha:
    def test_nand_gate_with_approximate_fft_and_bku(self, paper_keys_matcha):
        """The headline functional claim at full parameters: 64-bit DVQTFs plus
        BKU do not cause decryption errors."""
        secret, cloud = paper_keys_matcha
        evaluator = TFHEGateEvaluator(cloud)
        for a, b in ((0, 1), (1, 1)):
            ca = encrypt_bit(secret, a, rng=30 + a)
            cb = encrypt_bit(secret, b, rng=40 + b)
            assert decrypt_bit(secret, evaluator.nand(ca, cb)) == PLAINTEXT_GATES["nand"](a, b)

"""Programmable bootstrapping: LUT test vectors, digit margins, engine sweep.

The encrypted LUT tests run every supported digit width (2–4 message bits) on
all three transform engines (naive exact, double-precision FFT, MATCHA's
approximate integer transform) and both rotators (classical m = 1 CMux chain
and the unrolled m = 2 BKU rotator); the noise-margin property tests check the
model admits exactly the encodings whose 1/(4P) decision margin clears 4σ.
"""

from __future__ import annotations

import dataclasses
import functools
import types

import numpy as np
import pytest

from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.runtime.context import FheContext
from repro.tfhe.bootstrap import (
    bootstrap_without_keyswitch,
    context_programmable_bootstrap,
    context_programmable_bootstrap_batch,
    encode_lut,
)
from repro.tfhe.gates import MU
from repro.tfhe.lwe import (
    LweBatch,
    decrypt_digit,
    digit_message,
    encrypt_digit,
)
from repro.tfhe.noise import validate_digit_encoding
from repro.tfhe.params import (
    DigitEncoding,
    PAPER_110BIT,
    TEST_PBS,
    TFHEParameters,
)
from repro.tfhe.transform import (
    DoubleFFTNegacyclicTransform,
    NaiveNegacyclicTransform,
)

ENGINES = ("naive", "double", "approx")
UNROLL_FACTORS = (1, 2)
MESSAGE_WIDTHS = (2, 3, 4)


@functools.lru_cache(maxsize=None)
def _pbs_backend(engine: str, unroll_factor: int):
    """Session-cached TEST_PBS keys per (engine, rotator) point of the sweep."""
    transform = {
        "naive": lambda: NaiveNegacyclicTransform(TEST_PBS.N),
        "double": lambda: DoubleFFTNegacyclicTransform(TEST_PBS.N),
        "approx": lambda: ApproximateNegacyclicTransform(TEST_PBS.N, twiddle_bits=64),
    }[engine]()
    seed = 100 + 10 * ENGINES.index(engine) + unroll_factor
    return FheContext.generate(
        TEST_PBS, transform, unroll_factor=unroll_factor, rng=seed
    )


# --------------------------------------------------------------------------- #
# encode_lut: test-vector structure and validation                            #
# --------------------------------------------------------------------------- #


def test_encode_lut_redundant_run_structure():
    encoding = DigitEncoding(message_bits=2)
    space = encoding.space
    table = [3, 0, 2, 1]
    vector = encode_lut(TEST_PBS, table, encoding.message_bits)
    assert vector.shape == (TEST_PBS.N,)
    assert vector.dtype == np.int32

    run = TEST_PBS.N // space
    encoded = [digit_message(v, encoding) for v in table]
    for j in range(TEST_PBS.N):
        slot = (j + run // 2) // run
        if slot < space:
            # Coefficient j sits in digit `slot`'s redundant run.
            assert vector[j] == encoded[slot], f"coefficient {j}"
        else:
            # Guard half-run: negacyclic wrap of digit 0's lower noise tail.
            assert vector[j] == -encoded[0], f"coefficient {j}"


def test_encode_lut_is_cached_and_write_protected():
    table = list(range(8))
    first = encode_lut(TEST_PBS, table, 3)
    second = encode_lut(TEST_PBS, tuple(table), 3)
    assert first is second
    with pytest.raises(ValueError):
        first[0] = 0


def test_encode_lut_rejects_bad_tables():
    with pytest.raises(ValueError, match="exactly P=8 entries"):
        encode_lut(TEST_PBS, [0, 1, 2], 3)
    with pytest.raises(ValueError, match=r"must lie in \[0, 8\)"):
        encode_lut(TEST_PBS, [0, 1, 2, 3, 4, 5, 6, 8], 3)
    with pytest.raises(ValueError, match="must lie in"):
        encode_lut(TEST_PBS, [0, 1, 2, 3, 4, 5, 6, -1], 3)


def test_encode_lut_rejects_oversized_encoding():
    # 3+3 bits needs 128 torus slots; TEST_PBS is rated for 64.
    with pytest.raises(ValueError, match="rated for message_space=64"):
        encode_lut(TEST_PBS, list(range(64)), 3, carry_bits=3)


# --------------------------------------------------------------------------- #
# digit encode/decrypt round-trips                                            #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "encoding",
    [DigitEncoding(2), DigitEncoding(3), DigitEncoding(4), DigitEncoding(2, 2)],
    ids=lambda e: f"{e.message_bits}+{e.carry_bits}",
)
def test_digit_roundtrip(encoding, rng):
    secret, _ = _pbs_backend("double", 1)
    for value in range(encoding.space):
        sample = encrypt_digit(secret.lwe_key, value, encoding, rng=rng)
        assert decrypt_digit(secret.lwe_key, sample, encoding) == value


def test_digit_message_rejects_out_of_range():
    encoding = DigitEncoding(2, 1)
    with pytest.raises(ValueError, match=r"out of range \[0, 8\)"):
        digit_message(8, encoding)
    with pytest.raises(ValueError, match="out of range"):
        digit_message(-1, encoding)


# --------------------------------------------------------------------------- #
# programmable bootstrapping across engines, rotators and digit widths        #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("message_bits", MESSAGE_WIDTHS)
@pytest.mark.parametrize("unroll_factor", UNROLL_FACTORS)
@pytest.mark.parametrize("engine", ENGINES)
def test_programmable_bootstrap_square_lut(engine, unroll_factor, message_bits, rng):
    secret, context = _pbs_backend(engine, unroll_factor)
    encoding = DigitEncoding(message_bits)
    # The width must clear the noise margin before we trust decryptions.
    validate_digit_encoding(TEST_PBS, encoding, unroll_factor=unroll_factor)
    space = encoding.space
    table = [(v * v) % space for v in range(space)]
    for value in range(space):
        sample = encrypt_digit(secret.lwe_key, value, encoding, rng=rng)
        out = context_programmable_bootstrap(context, sample, table, encoding)
        assert decrypt_digit(secret.lwe_key, out, encoding) == table[value], value


@pytest.mark.parametrize("unroll_factor", UNROLL_FACTORS)
@pytest.mark.parametrize("engine", ENGINES)
def test_programmable_bootstrap_identity_with_carry(engine, unroll_factor, rng):
    """An identity LUT on the 2+2 working encoding refreshes every slot."""
    secret, context = _pbs_backend(engine, unroll_factor)
    encoding = DigitEncoding(2, 2)
    table = list(range(encoding.space))
    for value in range(encoding.space):
        sample = encrypt_digit(secret.lwe_key, value, encoding, rng=rng)
        out = context_programmable_bootstrap(context, sample, table, encoding)
        assert decrypt_digit(secret.lwe_key, out, encoding) == value


def test_programmable_bootstrap_batch_matches_scalar(rng):
    secret, context = _pbs_backend("double", 1)
    encoding = DigitEncoding(2, 2)
    space = encoding.space
    tables = [
        [(v * v) % space for v in range(space)],
        list(range(space)),
        [(v + 3) % space for v in range(space)],
        [v % encoding.base for v in range(space)],
    ]
    values = [5, 11, 0, 15]
    samples = [encrypt_digit(secret.lwe_key, v, encoding, rng=rng) for v in values]
    batch_out = context_programmable_bootstrap_batch(
        context, LweBatch.from_samples(samples), tables, encoding
    )
    for i, (value, table, sample) in enumerate(zip(values, tables, samples)):
        ref = context_programmable_bootstrap(context, sample, table, encoding)
        assert np.array_equal(batch_out.a[i], ref.a)
        assert int(batch_out.b[i]) == int(ref.b)
        assert decrypt_digit(secret.lwe_key, ref, encoding) == table[value]


def test_programmable_bootstrap_batch_shared_table(rng):
    secret, context = _pbs_backend("double", 1)
    encoding = DigitEncoding(3)
    table = [(2 * v + 1) % encoding.space for v in range(encoding.space)]
    values = list(range(encoding.space))
    samples = [encrypt_digit(secret.lwe_key, v, encoding, rng=rng) for v in values]
    out = context_programmable_bootstrap_batch(
        context, LweBatch.from_samples(samples), table, encoding
    )
    decrypted = [
        decrypt_digit(secret.lwe_key, s, encoding) for s in out.to_samples()
    ]
    assert decrypted == [table[v] for v in values]


def test_programmable_bootstrap_batch_table_count_mismatch(rng):
    secret, context = _pbs_backend("double", 1)
    encoding = DigitEncoding(2)
    table = list(range(encoding.space))
    samples = [encrypt_digit(secret.lwe_key, v, encoding, rng=rng) for v in (0, 1, 2)]
    with pytest.raises(ValueError, match="2 lookup tables for 3 rows"):
        context_programmable_bootstrap_batch(
            context, LweBatch.from_samples(samples), [table, table], encoding
        )


# --------------------------------------------------------------------------- #
# noise-margin properties per LUT width                                       #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("unroll_factor", UNROLL_FACTORS)
@pytest.mark.parametrize(
    "encoding",
    [DigitEncoding(2), DigitEncoding(2, 2), DigitEncoding(3), DigitEncoding(4)],
    ids=lambda e: f"{e.message_bits}+{e.carry_bits}",
)
def test_margin_admits_supported_widths(encoding, unroll_factor):
    validate_digit_encoding(TEST_PBS, encoding, unroll_factor=unroll_factor)


@pytest.mark.parametrize("unroll_factor", UNROLL_FACTORS)
@pytest.mark.parametrize(
    "encoding",
    [DigitEncoding(3, 2), DigitEncoding(4, 1)],
    ids=lambda e: f"{e.message_bits}+{e.carry_bits}",
)
def test_margin_rejects_narrow_widths(encoding, unroll_factor):
    """Encodings that fit structurally but leave < 4σ of headroom are refused."""
    with pytest.raises(ValueError, match=r"exceeds the 1/\(4P\) decision margin"):
        validate_digit_encoding(TEST_PBS, encoding, unroll_factor=unroll_factor)


def test_margin_rejects_structural_misfits_first():
    # PAPER_110BIT is rated for the 8-ary gate space only.
    with pytest.raises(ValueError, match="rated for message_space=8"):
        validate_digit_encoding(PAPER_110BIT, DigitEncoding(2, 2))


def test_margin_study_agrees_with_validator():
    from repro.analysis.noise_tables import digit_margin_study, render_digit_margins

    rows = digit_margin_study(TEST_PBS)
    assert rows, "study produced no rows"
    for row in rows:
        encoding = DigitEncoding(row.message_bits, row.carry_bits)
        if encoding.torus_space > TEST_PBS.message_space:
            continue  # the study also tabulates structurally unrepresentable splits
        fits = True
        try:
            validate_digit_encoding(
                TEST_PBS, encoding, unroll_factor=row.unroll_factor
            )
        except ValueError:
            fits = False
        assert fits == row.fits, f"{row}"
    rendered = render_digit_margins(TEST_PBS, rows)
    assert TEST_PBS.name in rendered


# --------------------------------------------------------------------------- #
# message_space rating: construction and gate-path failure modes              #
# --------------------------------------------------------------------------- #


def test_message_space_must_be_power_of_two():
    with pytest.raises(ValueError, match="power of two"):
        dataclasses.replace(TEST_PBS, message_space=5)
    with pytest.raises(ValueError, match="power of two"):
        dataclasses.replace(TEST_PBS, message_space=2)


def test_message_space_capped_by_ring_degree():
    # 2N = 512 torus slots are resolvable at N = 256.
    with pytest.raises(ValueError, match="torus slots resolvable"):
        dataclasses.replace(TEST_PBS, message_space=1024)


def test_gate_bootstrapping_requires_8ary_rating():
    cramped = dataclasses.replace(TEST_PBS, message_space=4)
    assert isinstance(cramped, TFHEParameters)
    with pytest.raises(ValueError, match="needs the 8-ary message space"):
        bootstrap_without_keyswitch(None, int(MU), None, cramped)


def test_digit_encoding_slots_must_divide_degree():
    # Real parameter sets always have N a power of two >= message_space/2, so
    # the fractional-run guard is exercised with a duck-typed stand-in.
    odd = types.SimpleNamespace(name="odd", message_space=64, N=24)
    with pytest.raises(ValueError, match="fractional"):
        DigitEncoding(4).validate_for(odd)

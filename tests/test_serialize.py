"""Round-trip tests for the versioned npz serialization layer."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.runtime import FheContext
from repro.tfhe import serialize
from repro.tfhe.gates import PLAINTEXT_GATES, decrypt_bit, encrypt_bit, encrypt_bit_batch
from repro.tfhe.keys import generate_keys
from repro.tfhe.lwe import LweBatch, LweSample
from repro.tfhe.params import TEST_TINY
from repro.tfhe.serialize import SerializationError
from repro.tfhe.transform import NaiveNegacyclicTransform

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestSecretKeyRoundTrip:
    def test_fields_and_decryption_survive(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "secret.npz"
        serialize.save_secret_key(path, secret)
        loaded = serialize.load_secret_key(path)
        assert loaded.params == secret.params
        assert np.array_equal(loaded.lwe_key.key, secret.lwe_key.key)
        assert np.array_equal(loaded.tlwe_key.key, secret.tlwe_key.key)
        assert np.array_equal(loaded.extracted_key.key, secret.extracted_key.key)
        ct = encrypt_bit(secret, 1, rng=3)
        assert decrypt_bit(loaded, ct) == 1


class TestCloudKeyRoundTrip:
    def test_classical_key_evaluates_bit_identically(self, tmp_path, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        path = tmp_path / "cloud.npz"
        serialize.save_cloud_key(path, cloud)
        loaded = serialize.load_cloud_key(path)
        assert loaded.params == cloud.params
        assert loaded.unroll_factor == 1
        assert loaded.transform_spec == cloud.transform_spec
        context = FheContext(loaded)
        ca, cb = encrypt_bit(secret, 1, rng=5), encrypt_bit(secret, 0, rng=6)
        reference = cloud.default_context().evaluator()
        evaluator = context.evaluator()
        for name in sorted(PLAINTEXT_GATES):
            expected = reference.gate(name, ca, cb)
            got = evaluator.gate(name, ca, cb)
            assert np.array_equal(got.a, expected.a), name
            assert np.int32(got.b) == np.int32(expected.b), name

    def test_unrolled_key_evaluates_bit_identically(self, tmp_path, tiny_keys_naive_m2):
        secret, cloud = tiny_keys_naive_m2
        path = tmp_path / "cloud-m2.npz"
        serialize.save_cloud_key(path, cloud)
        loaded = serialize.load_cloud_key(path)
        assert loaded.unroll_factor == 2
        assert loaded.tgsw_sample_count == cloud.tgsw_sample_count
        ca, cb = encrypt_bit(secret, 1, rng=7), encrypt_bit(secret, 1, rng=8)
        expected = cloud.default_context().evaluator().and_(ca, cb)
        got = FheContext(loaded).evaluator().and_(ca, cb)
        assert np.array_equal(got.a, expected.a)
        assert np.int32(got.b) == np.int32(expected.b)
        assert decrypt_bit(secret, got) == 1

    def test_unserializable_adhoc_engine_rejected(self, tmp_path):
        engine = NaiveNegacyclicTransform(TEST_TINY.N)
        _, cloud = generate_keys(TEST_TINY, engine, rng=13)
        cloud.transform_spec = None
        with pytest.raises(SerializationError, match="unregistered engine"):
            serialize.save_cloud_key(tmp_path / "bad.npz", cloud)


class TestCiphertextRoundTrip:
    def test_lwe_sample(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        sample = encrypt_bit(secret, 1, rng=21)
        path = tmp_path / "ct.npz"
        serialize.save_lwe_sample(path, sample)
        loaded = serialize.load_lwe_sample(path)
        assert isinstance(loaded, LweSample)
        assert np.array_equal(loaded.a, sample.a)
        assert np.int32(loaded.b) == np.int32(sample.b)

    def test_lwe_batch(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        batch = encrypt_bit_batch(secret, [0, 1, 1, 0], rng=22)
        path = tmp_path / "batch.npz"
        serialize.save_lwe_batch(path, batch)
        loaded = serialize.load_lwe_batch(path)
        assert isinstance(loaded, LweBatch)
        assert np.array_equal(loaded.a, batch.a)
        assert np.array_equal(loaded.b, batch.b)


class TestDispatchAndVersioning:
    def test_save_load_dispatch_on_type_and_header(self, tmp_path, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        objs = {
            "secret.npz": secret,
            "cloud.npz": cloud,
            "ct.npz": encrypt_bit(secret, 0, rng=23),
            "batch.npz": encrypt_bit_batch(secret, [1, 0], rng=24),
        }
        for name, obj in objs.items():
            path = tmp_path / name
            serialize.save(path, obj)
            assert type(serialize.load(path)) is type(obj)

    def test_bytes_round_trip(self, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        sample = encrypt_bit(secret, 1, rng=25)
        loaded = serialize.from_bytes(serialize.to_bytes(sample))
        assert np.array_equal(loaded.a, sample.a)

    def test_version_mismatch_rejected(self, tmp_path, tiny_keys_naive, monkeypatch):
        secret, _ = tiny_keys_naive
        path = tmp_path / "future.npz"
        monkeypatch.setattr(serialize, "FORMAT_VERSION", serialize.FORMAT_VERSION + 1)
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=26))
        monkeypatch.undo()
        with pytest.raises(SerializationError, match="version"):
            serialize.load_lwe_sample(path)

    def test_unknown_format_rejected(self, tmp_path, tiny_keys_naive, monkeypatch):
        secret, _ = tiny_keys_naive
        path = tmp_path / "alien.npz"
        monkeypatch.setattr(serialize, "FORMAT", "someone-elses-format")
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=27))
        monkeypatch.undo()
        with pytest.raises(SerializationError, match="format"):
            serialize.load(path)

    def test_wrong_artifact_kind_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "ct.npz"
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=28))
        with pytest.raises(SerializationError, match="expected"):
            serialize.load_secret_key(path)

    def test_not_an_archive_rejected(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(SerializationError):
            serialize.load(path)

    def test_unsupported_object_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot serialize"):
            serialize.save(tmp_path / "x.npz", object())


class TestKeygenCli:
    def test_generates_loadable_keypair(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                str(ROOT / "tools" / "keygen.py"),
                "--params",
                "test-tiny",
                "--engine",
                "naive",
                "--seed",
                "3",
                "--out-dir",
                str(tmp_path),
                "--prefix",
                "t",
            ],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
        assert result.returncode == 0, result.stderr
        secret = serialize.load_secret_key(tmp_path / "t.secret.npz")
        cloud = serialize.load_cloud_key(tmp_path / "t.cloud.npz")
        # The pair matches: a fresh encryption survives a bootstrapped gate.
        ca, cb = encrypt_bit(secret, 1, rng=1), encrypt_bit(secret, 1, rng=2)
        out = FheContext(cloud).evaluator().and_(ca, cb)
        assert decrypt_bit(secret, out) == 1


class TestCircuitJsonRoundTrip:
    @staticmethod
    def _circuit():
        from repro.compiler import FheUint8, fhe_max, optimize, trace

        return optimize(
            trace(lambda a, b: fhe_max(a * 3, b + 1), FheUint8("a"), FheUint8("b"))
        )

    def test_round_trip_is_structurally_identical(self):
        circuit = self._circuit()
        restored = serialize.circuit_from_json(serialize.circuit_to_json(circuit))
        assert restored.name == circuit.name
        assert restored.nodes == circuit.nodes
        assert restored.input_wires == circuit.input_wires
        assert restored.output_wires == circuit.output_wires

    def test_round_trip_preserves_semantics(self):
        from repro.compiler import verify_equivalent

        circuit = self._circuit()
        restored = serialize.circuit_from_json(serialize.circuit_to_json(circuit))
        verify_equivalent(circuit, restored, trials=20, rng=1)

    def test_file_round_trip(self, tmp_path):
        circuit = self._circuit()
        path = tmp_path / "circuit.json"
        serialize.save_circuit(path, circuit)
        restored = serialize.load_circuit(path)
        assert restored.nodes == circuit.nodes

    def test_unknown_format_rejected(self):
        import json

        payload = json.loads(serialize.circuit_to_json(self._circuit()))
        payload["format"] = "not-a-circuit"
        with pytest.raises(SerializationError, match="format"):
            serialize.circuit_from_json(json.dumps(payload))

    def test_version_mismatch_rejected(self):
        import json

        payload = json.loads(serialize.circuit_to_json(self._circuit()))
        payload["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            serialize.circuit_from_json(json.dumps(payload))

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            serialize.circuit_from_json("{this is not json")
        with pytest.raises(SerializationError):
            serialize.circuit_from_json("[1, 2, 3]")

    def test_structural_tampering_rejected(self):
        import json

        text = serialize.circuit_to_json(self._circuit())

        def corrupted(mutate):
            payload = json.loads(text)
            mutate(payload)
            return json.dumps(payload)

        cases = [
            lambda p: p["nodes"].__setitem__(4, {"op": "mystery", "args": [0, 1]}),
            lambda p: p["nodes"].__setitem__(
                next(i for i, n in enumerate(p["nodes"]) if n["op"] == "and"),
                {"op": "and", "args": [-1, 0]},
            ),
            lambda p: p["nodes"].append({"op": "const", "value": 7}),
            lambda p: p["outputs"].__setitem__("out", [10**9]),
            lambda p: p["outputs"].__setitem__("out", []),
            lambda p: p["inputs"].__setitem__("a", [0, 1, 2]),
            lambda p: p["nodes"].append({"op": "input", "name": "ghost", "bit": 0}),
            lambda p: p["nodes"].__setitem__(
                4, {"op": "and", "args": [len(p["nodes"]) + 5, 0]}
            ),
            lambda p: p.pop("nodes"),
        ]
        for mutate in cases:
            with pytest.raises(SerializationError):
                serialize.circuit_from_json(corrupted(mutate))

    def test_circuit_format_is_distinct_from_npz_family(self):
        assert serialize.CIRCUIT_FORMAT != serialize.FORMAT

"""Round-trip tests for the versioned npz serialization layer."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.runtime import FheContext
from repro.tfhe import serialize
from repro.tfhe.gates import PLAINTEXT_GATES, decrypt_bit, encrypt_bit, encrypt_bit_batch
from repro.tfhe.keys import generate_keys
from repro.tfhe.lwe import LweBatch, LweSample
from repro.tfhe.params import TEST_TINY
from repro.tfhe.serialize import SerializationError
from repro.tfhe.transform import NaiveNegacyclicTransform

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestSecretKeyRoundTrip:
    def test_fields_and_decryption_survive(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "secret.npz"
        serialize.save_secret_key(path, secret)
        loaded = serialize.load_secret_key(path)
        assert loaded.params == secret.params
        assert np.array_equal(loaded.lwe_key.key, secret.lwe_key.key)
        assert np.array_equal(loaded.tlwe_key.key, secret.tlwe_key.key)
        assert np.array_equal(loaded.extracted_key.key, secret.extracted_key.key)
        ct = encrypt_bit(secret, 1, rng=3)
        assert decrypt_bit(loaded, ct) == 1


class TestCloudKeyRoundTrip:
    def test_classical_key_evaluates_bit_identically(self, tmp_path, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        path = tmp_path / "cloud.npz"
        serialize.save_cloud_key(path, cloud)
        loaded = serialize.load_cloud_key(path)
        assert loaded.params == cloud.params
        assert loaded.unroll_factor == 1
        assert loaded.transform_spec == cloud.transform_spec
        context = FheContext(loaded)
        ca, cb = encrypt_bit(secret, 1, rng=5), encrypt_bit(secret, 0, rng=6)
        reference = cloud.default_context().evaluator()
        evaluator = context.evaluator()
        for name in sorted(PLAINTEXT_GATES):
            expected = reference.gate(name, ca, cb)
            got = evaluator.gate(name, ca, cb)
            assert np.array_equal(got.a, expected.a), name
            assert np.int32(got.b) == np.int32(expected.b), name

    def test_unrolled_key_evaluates_bit_identically(self, tmp_path, tiny_keys_naive_m2):
        secret, cloud = tiny_keys_naive_m2
        path = tmp_path / "cloud-m2.npz"
        serialize.save_cloud_key(path, cloud)
        loaded = serialize.load_cloud_key(path)
        assert loaded.unroll_factor == 2
        assert loaded.tgsw_sample_count == cloud.tgsw_sample_count
        ca, cb = encrypt_bit(secret, 1, rng=7), encrypt_bit(secret, 1, rng=8)
        expected = cloud.default_context().evaluator().and_(ca, cb)
        got = FheContext(loaded).evaluator().and_(ca, cb)
        assert np.array_equal(got.a, expected.a)
        assert np.int32(got.b) == np.int32(expected.b)
        assert decrypt_bit(secret, got) == 1

    def test_unserializable_adhoc_engine_rejected(self, tmp_path):
        engine = NaiveNegacyclicTransform(TEST_TINY.N)
        _, cloud = generate_keys(TEST_TINY, engine, rng=13)
        cloud.transform_spec = None
        with pytest.raises(SerializationError, match="unregistered engine"):
            serialize.save_cloud_key(tmp_path / "bad.npz", cloud)


class TestCiphertextRoundTrip:
    def test_lwe_sample(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        sample = encrypt_bit(secret, 1, rng=21)
        path = tmp_path / "ct.npz"
        serialize.save_lwe_sample(path, sample)
        loaded = serialize.load_lwe_sample(path)
        assert isinstance(loaded, LweSample)
        assert np.array_equal(loaded.a, sample.a)
        assert np.int32(loaded.b) == np.int32(sample.b)

    def test_lwe_batch(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        batch = encrypt_bit_batch(secret, [0, 1, 1, 0], rng=22)
        path = tmp_path / "batch.npz"
        serialize.save_lwe_batch(path, batch)
        loaded = serialize.load_lwe_batch(path)
        assert isinstance(loaded, LweBatch)
        assert np.array_equal(loaded.a, batch.a)
        assert np.array_equal(loaded.b, batch.b)


class TestRadixIntRoundTrip:
    ENCODING = None  # set lazily to keep module import cheap

    @staticmethod
    def _value(secret, value=173, width=4):
        from repro.tfhe.integers import encrypt_radix
        from repro.tfhe.params import DigitEncoding

        encoding = DigitEncoding(message_bits=2, carry_bits=2)
        return encrypt_radix(secret.lwe_key, value, width, encoding, rng=44)

    def test_round_trip_preserves_digits_bounds_and_encoding(
        self, tmp_path, tiny_keys_naive
    ):
        from repro.tfhe.integers import decrypt_radix

        secret, _ = tiny_keys_naive
        x = self._value(secret)
        path = tmp_path / "radix.npz"
        serialize.save_radix_int(path, x)
        loaded = serialize.load_radix_int(path)
        assert loaded.encoding == x.encoding
        assert loaded.bounds == x.bounds
        assert loaded.width == x.width
        for got, expected in zip(loaded.digits, x.digits):
            assert np.array_equal(got.a, expected.a)
            assert np.int32(got.b) == np.int32(expected.b)
        assert decrypt_radix(secret.lwe_key, loaded) == 173

    def test_unnormalised_bounds_survive(self, tmp_path, tiny_keys_naive):
        from repro.tfhe.integers import RadixInt

        secret, _ = tiny_keys_naive
        x = self._value(secret)
        grown = RadixInt(
            digits=x.digits, bounds=(7, 11, 3, 15), encoding=x.encoding
        )
        path = tmp_path / "radix-wide.npz"
        serialize.save_radix_int(path, grown)
        assert serialize.load_radix_int(path).bounds == (7, 11, 3, 15)

    def test_dispatch_recognises_radix_ints(self, tmp_path, tiny_keys_naive):
        from repro.tfhe.integers import RadixInt

        secret, _ = tiny_keys_naive
        path = tmp_path / "radix.npz"
        serialize.save(path, self._value(secret))
        assert isinstance(serialize.load(path), RadixInt)

    def test_malformed_radix_metadata_rejected(self, tmp_path, tiny_keys_naive):
        import json

        secret, _ = tiny_keys_naive
        x = self._value(secret)
        cases = [
            lambda m: m.pop("encoding"),
            lambda m: m["encoding"].__setitem__("message_bits", 9),
            lambda m: m.__setitem__("bounds", "not-a-list"),
            lambda m: m.__setitem__("bounds", [1, 2]),  # wrong digit count
            lambda m: m.__setitem__("bounds", [99, 0, 0, 0]),  # above P − 1
        ]
        for i, mutate in enumerate(cases):
            path = tmp_path / f"radix-bad-{i}.npz"
            serialize.save_radix_int(path, x)
            with np.load(path) as archive:
                arrays = {n: archive[n] for n in archive.files}
            meta = json.loads(bytes(arrays.pop("__meta__").tobytes()).decode())
            mutate(meta)
            arrays["__meta__"] = np.frombuffer(
                json.dumps(meta).encode(), dtype=np.uint8
            )
            with open(path, "wb") as handle:
                np.savez(handle, **arrays)
            with pytest.raises(SerializationError):
                serialize.load_radix_int(path)

    def test_row_count_disagreement_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        x = self._value(secret)
        path = tmp_path / "radix-rows.npz"
        serialize.save_radix_int(path, x)
        arrays = {}
        with np.load(path) as archive:
            for name in archive.files:
                arrays[name] = archive[name]
        arrays["b"] = arrays["b"][:-1]  # drop one digit's b row
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(SerializationError, match="disagree"):
            serialize.load_radix_int(path)


class TestCorruptArchives:
    """Every artifact kind must fail loudly, not load garbage."""

    @staticmethod
    def _rewrite(path, mutate):
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        mutate(arrays)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)

    def test_truncated_archive_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "ct.npz"
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=61))
        blob = path.read_bytes()
        for cut in (len(blob) // 2, 100, 10):
            path.write_bytes(blob[:cut])
            with pytest.raises(SerializationError):
                serialize.load_lwe_sample(path)

    def test_wrong_dtype_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "ct.npz"
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=62))
        self._rewrite(
            path, lambda a: a.__setitem__("a", a["a"].astype(np.float64))
        )
        with pytest.raises(SerializationError, match="dtype"):
            serialize.load_lwe_sample(path)

    def test_wrong_rank_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "batch.npz"
        serialize.save_lwe_batch(path, encrypt_bit_batch(secret, [1, 0], rng=63))
        self._rewrite(path, lambda a: a.__setitem__("a", a["a"].ravel()))
        with pytest.raises(SerializationError, match="rank"):
            serialize.load_lwe_batch(path)

    def test_missing_entry_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "ct.npz"
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=64))
        self._rewrite(path, lambda a: a.pop("b"))
        with pytest.raises(SerializationError):
            serialize.load_lwe_sample(path)

    def test_secret_key_dtype_corruption_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "secret.npz"
        serialize.save_secret_key(path, secret)
        self._rewrite(
            path, lambda a: a.__setitem__("tlwe_key", a["tlwe_key"].astype(np.int64))
        )
        with pytest.raises(SerializationError, match="dtype"):
            serialize.load_secret_key(path)

    def test_cloud_key_dtype_corruption_rejected(self, tmp_path, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        path = tmp_path / "cloud.npz"
        serialize.save_cloud_key(path, cloud)

        def degrade(arrays):
            for name in arrays:
                if name.startswith(("bootstrapping", "keyswitch")):
                    arrays[name] = arrays[name].astype(np.float32)
                    return
            raise AssertionError("no key material entry found")

        self._rewrite(path, degrade)
        with pytest.raises(SerializationError, match="dtype"):
            serialize.load_cloud_key(path)

    def test_radix_dtype_corruption_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "radix.npz"
        serialize.save_radix_int(path, TestRadixIntRoundTrip._value(secret))
        self._rewrite(
            path, lambda a: a.__setitem__("a", a["a"].astype(np.uint32))
        )
        with pytest.raises(SerializationError, match="dtype"):
            serialize.load_radix_int(path)

    def test_version_skew_rejected_for_every_kind(
        self, tmp_path, tiny_keys_naive, monkeypatch
    ):
        secret, cloud = tiny_keys_naive
        objs = {
            "secret.npz": secret,
            "cloud.npz": cloud,
            "ct.npz": encrypt_bit(secret, 0, rng=65),
            "batch.npz": encrypt_bit_batch(secret, [1, 0], rng=66),
            "radix.npz": TestRadixIntRoundTrip._value(secret),
        }
        monkeypatch.setattr(serialize, "FORMAT_VERSION", 1)
        for name, obj in objs.items():
            serialize.save(tmp_path / name, obj)
        monkeypatch.undo()
        for name in objs:
            with pytest.raises(SerializationError, match="version"):
                serialize.load(tmp_path / name)


class TestDispatchAndVersioning:
    def test_save_load_dispatch_on_type_and_header(self, tmp_path, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        objs = {
            "secret.npz": secret,
            "cloud.npz": cloud,
            "ct.npz": encrypt_bit(secret, 0, rng=23),
            "batch.npz": encrypt_bit_batch(secret, [1, 0], rng=24),
        }
        for name, obj in objs.items():
            path = tmp_path / name
            serialize.save(path, obj)
            assert type(serialize.load(path)) is type(obj)

    def test_bytes_round_trip(self, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        sample = encrypt_bit(secret, 1, rng=25)
        loaded = serialize.from_bytes(serialize.to_bytes(sample))
        assert np.array_equal(loaded.a, sample.a)

    def test_version_mismatch_rejected(self, tmp_path, tiny_keys_naive, monkeypatch):
        secret, _ = tiny_keys_naive
        path = tmp_path / "future.npz"
        monkeypatch.setattr(serialize, "FORMAT_VERSION", serialize.FORMAT_VERSION + 1)
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=26))
        monkeypatch.undo()
        with pytest.raises(SerializationError, match="version"):
            serialize.load_lwe_sample(path)

    def test_unknown_format_rejected(self, tmp_path, tiny_keys_naive, monkeypatch):
        secret, _ = tiny_keys_naive
        path = tmp_path / "alien.npz"
        monkeypatch.setattr(serialize, "FORMAT", "someone-elses-format")
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=27))
        monkeypatch.undo()
        with pytest.raises(SerializationError, match="format"):
            serialize.load(path)

    def test_wrong_artifact_kind_rejected(self, tmp_path, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        path = tmp_path / "ct.npz"
        serialize.save_lwe_sample(path, encrypt_bit(secret, 1, rng=28))
        with pytest.raises(SerializationError, match="expected"):
            serialize.load_secret_key(path)

    def test_not_an_archive_rejected(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(SerializationError):
            serialize.load(path)

    def test_unsupported_object_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot serialize"):
            serialize.save(tmp_path / "x.npz", object())


class TestKeygenCli:
    def test_generates_loadable_keypair(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                str(ROOT / "tools" / "keygen.py"),
                "--params",
                "test-tiny",
                "--engine",
                "naive",
                "--seed",
                "3",
                "--out-dir",
                str(tmp_path),
                "--prefix",
                "t",
            ],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
        assert result.returncode == 0, result.stderr
        secret = serialize.load_secret_key(tmp_path / "t.secret.npz")
        cloud = serialize.load_cloud_key(tmp_path / "t.cloud.npz")
        # The pair matches: a fresh encryption survives a bootstrapped gate.
        ca, cb = encrypt_bit(secret, 1, rng=1), encrypt_bit(secret, 1, rng=2)
        out = FheContext(cloud).evaluator().and_(ca, cb)
        assert decrypt_bit(secret, out) == 1


class TestCircuitJsonRoundTrip:
    @staticmethod
    def _circuit():
        from repro.compiler import FheUint8, fhe_max, optimize, trace

        return optimize(
            trace(lambda a, b: fhe_max(a * 3, b + 1), FheUint8("a"), FheUint8("b"))
        )

    def test_round_trip_is_structurally_identical(self):
        circuit = self._circuit()
        restored = serialize.circuit_from_json(serialize.circuit_to_json(circuit))
        assert restored.name == circuit.name
        assert restored.nodes == circuit.nodes
        assert restored.input_wires == circuit.input_wires
        assert restored.output_wires == circuit.output_wires

    def test_round_trip_preserves_semantics(self):
        from repro.compiler import verify_equivalent

        circuit = self._circuit()
        restored = serialize.circuit_from_json(serialize.circuit_to_json(circuit))
        verify_equivalent(circuit, restored, trials=20, rng=1)

    def test_file_round_trip(self, tmp_path):
        circuit = self._circuit()
        path = tmp_path / "circuit.json"
        serialize.save_circuit(path, circuit)
        restored = serialize.load_circuit(path)
        assert restored.nodes == circuit.nodes

    def test_unknown_format_rejected(self):
        import json

        payload = json.loads(serialize.circuit_to_json(self._circuit()))
        payload["format"] = "not-a-circuit"
        with pytest.raises(SerializationError, match="format"):
            serialize.circuit_from_json(json.dumps(payload))

    def test_version_mismatch_rejected(self):
        import json

        payload = json.loads(serialize.circuit_to_json(self._circuit()))
        payload["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            serialize.circuit_from_json(json.dumps(payload))

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            serialize.circuit_from_json("{this is not json")
        with pytest.raises(SerializationError):
            serialize.circuit_from_json("[1, 2, 3]")

    def test_structural_tampering_rejected(self):
        import json

        text = serialize.circuit_to_json(self._circuit())

        def corrupted(mutate):
            payload = json.loads(text)
            mutate(payload)
            return json.dumps(payload)

        cases = [
            lambda p: p["nodes"].__setitem__(4, {"op": "mystery", "args": [0, 1]}),
            lambda p: p["nodes"].__setitem__(
                next(i for i, n in enumerate(p["nodes"]) if n["op"] == "and"),
                {"op": "and", "args": [-1, 0]},
            ),
            lambda p: p["nodes"].append({"op": "const", "value": 7}),
            lambda p: p["outputs"].__setitem__("out", [10**9]),
            lambda p: p["outputs"].__setitem__("out", []),
            lambda p: p["inputs"].__setitem__("a", [0, 1, 2]),
            lambda p: p["nodes"].append({"op": "input", "name": "ghost", "bit": 0}),
            lambda p: p["nodes"].__setitem__(
                4, {"op": "and", "args": [len(p["nodes"]) + 5, 0]}
            ),
            lambda p: p.pop("nodes"),
        ]
        for mutate in cases:
            with pytest.raises(SerializationError):
                serialize.circuit_from_json(corrupted(mutate))

    def test_lut_nodes_round_trip(self):
        from repro.compiler import verify_equivalent
        from repro.compiler.passes import LUT_PIPELINE, PassManager
        from repro.tfhe.netlist import adder_netlist

        circuit = PassManager(passes=LUT_PIPELINE, verify=True, trials=8, rng=7).run(
            adder_netlist(4)
        )
        live = circuit.live_nodes()
        assert any(circuit.node(n).op == "lut" for n in live)
        restored = serialize.circuit_from_json(serialize.circuit_to_json(circuit))
        assert restored.nodes == circuit.nodes
        verify_equivalent(circuit, restored, trials=16, rng=8)

    def test_tampered_lut_table_rejected(self):
        import json

        from repro.tfhe.netlist import Circuit

        c = Circuit("one_lut")
        a, b, d = c.inputs("x", 3)
        c.output("out", [c.lut(0x96, [a, b, d])])
        payload = json.loads(serialize.circuit_to_json(c))
        for node in payload["nodes"]:
            if node["op"] == "lut":
                node["value"] = 0x1669  # no single-bootstrap realisation
                node["args"] = node["args"] + [0]
        with pytest.raises(SerializationError):
            serialize.circuit_from_json(json.dumps(payload))

    def test_circuit_format_is_distinct_from_npz_family(self):
        assert serialize.CIRCUIT_FORMAT != serialize.FORMAT

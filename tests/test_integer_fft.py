"""Tests for the approximate multiplication-less integer negacyclic transform."""

import numpy as np
import pytest

from repro.core.integer_fft import ApproximateNegacyclicTransform, IntegerSpectrum
from repro.tfhe.polynomial import negacyclic_convolution, negacyclic_convolution_int64
from repro.tfhe.torus import TORUS_SCALE

DEGREE = 256


def random_operands(seed=0, degree=DEGREE, int_bound=512):
    rng = np.random.default_rng(seed)
    int_poly = rng.integers(-int_bound, int_bound, degree)
    torus_poly = rng.integers(-(2**31), 2**31, degree).astype(np.int32)
    return int_poly, torus_poly


class TestRoundTrip:
    def test_forward_backward_recovers_small_polynomial(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        poly, _ = random_operands(1)
        recovered = transform.backward(transform.forward(poly))
        assert np.array_equal(recovered, poly)

    def test_forward_backward_recovers_torus_polynomial(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        _, poly = random_operands(2)
        recovered = transform.backward(transform.forward(poly))
        assert np.max(np.abs(recovered - poly.astype(np.int64))) <= 4

    def test_forward_attaches_scale_to_small_inputs(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        small, big = random_operands(3)
        assert transform.forward(small).scale_bits > transform.forward(big).scale_bits


class TestMultiplication:
    def test_product_is_close_to_exact(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        a, b = random_operands(4)
        exact = negacyclic_convolution_int64(a, b)
        approx = transform.backward(
            transform.spectrum_mul(transform.forward(a), transform.forward(b))
        )
        relative = np.abs(approx - exact) / TORUS_SCALE
        assert relative.max() < 1e-5

    def test_multiply_wraps_onto_torus(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        a, b = random_operands(5)
        wrapped = transform.multiply(a, b)
        exact = negacyclic_convolution(a, b)
        diff = (wrapped.astype(np.int64) - exact.astype(np.int64)) & 0xFFFFFFFF
        diff = np.minimum(diff, 2**32 - diff)
        assert diff.max() < 2**14

    def test_error_decreases_with_twiddle_bits(self):
        a, b = random_operands(6)
        exact = negacyclic_convolution_int64(a, b)
        errors = []
        for bits in (12, 20, 32):
            transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=bits)
            approx = transform.backward(
                transform.spectrum_mul(transform.forward(a), transform.forward(b))
            )
            errors.append(float(np.sqrt(np.mean((approx - exact) ** 2.0))))
        assert errors[0] > errors[1] > errors[2]

    def test_error_floor_independent_of_bits_beyond_50(self):
        a, b = random_operands(7)
        exact = negacyclic_convolution_int64(a, b)
        rms = []
        for bits in (54, 64):
            transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=bits)
            approx = transform.backward(
                transform.spectrum_mul(transform.forward(a), transform.forward(b))
            )
            rms.append(float(np.sqrt(np.mean((approx - exact) ** 2.0))))
        assert rms[1] <= rms[0] * 1.5 + 1.0

    def test_multiply_accumulate_matches_sum(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        rng = np.random.default_rng(8)
        ints = [rng.integers(-512, 512, DEGREE) for _ in range(3)]
        toruses = [rng.integers(-(2**31), 2**31, DEGREE).astype(np.int32) for _ in range(3)]
        got = transform.multiply_accumulate(ints, [transform.forward(t) for t in toruses])
        expected = np.zeros(DEGREE, dtype=np.int64)
        for i, t in zip(ints, toruses):
            expected += negacyclic_convolution_int64(i, t)
        expected_wrapped = (expected & 0xFFFFFFFF).astype(np.uint32).astype(np.int32)
        diff = (got.astype(np.int64) - expected_wrapped.astype(np.int64)) & 0xFFFFFFFF
        diff = np.minimum(diff, 2**32 - diff)
        assert diff.max() < 2**14


class TestSpectrumAlgebra:
    def test_spectrum_add_aligns_scales(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        small, big = random_operands(9)
        sum_spectrum = transform.spectrum_add(transform.forward(small), transform.forward(big))
        summed = transform.backward(sum_spectrum)
        expected = small.astype(np.int64) + big.astype(np.int64)
        assert np.max(np.abs(summed - expected)) <= 8

    def test_spectrum_zero_behaves_as_identity_for_add(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        poly, _ = random_operands(10)
        spectrum = transform.forward(poly)
        total = transform.spectrum_add(transform.spectrum_zero(), spectrum)
        assert np.array_equal(transform.backward(total), poly)

    def test_spectrum_copy_is_independent(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        poly, _ = random_operands(11)
        spectrum = transform.forward(poly)
        clone = transform.spectrum_copy(spectrum)
        clone.values[0] += 1000.0
        assert spectrum.values[0] != clone.values[0]

    def test_stats_track_directions(self):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        a, b = random_operands(12)
        transform.multiply(a, b)
        assert transform.stats.forward_calls == 2
        assert transform.stats.backward_calls == 1


class TestValidation:
    def test_wrong_degree_rejected(self):
        with pytest.raises(ValueError):
            ApproximateNegacyclicTransform(100)

    def test_wrong_length_input_rejected(self):
        transform = ApproximateNegacyclicTransform(DEGREE)
        with pytest.raises(ValueError):
            transform.forward(np.zeros(DEGREE // 2))

    def test_invalid_twiddle_bits_rejected(self):
        with pytest.raises(ValueError):
            ApproximateNegacyclicTransform(DEGREE, twiddle_bits=0)

    def test_spectrum_length_checked_on_backward(self):
        transform = ApproximateNegacyclicTransform(DEGREE)
        with pytest.raises(ValueError):
            transform.backward(IntegerSpectrum(np.zeros(DEGREE, dtype=np.complex128), 0))

"""Tests for the data-flow-graph substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.dfg import DataFlowGraph
from repro.arch.ops import OpType


def linear_chain(lengths):
    dfg = DataFlowGraph()
    previous = None
    for work in lengths:
        preds = [previous] if previous is not None else []
        previous = dfg.add_node(OpType.POLY_LINEAR, work, predecessors=preds)
    return dfg


class TestConstruction:
    def test_node_ids_are_sequential(self):
        dfg = DataFlowGraph()
        ids = [dfg.add_node(OpType.IFFT, 1.0) for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_negative_work_rejected(self):
        dfg = DataFlowGraph()
        with pytest.raises(ValueError):
            dfg.add_node(OpType.FFT, -1.0)

    def test_edge_requires_existing_nodes(self):
        dfg = DataFlowGraph()
        a = dfg.add_node(OpType.FFT, 1.0)
        with pytest.raises(KeyError):
            dfg.add_edge(a, 99)

    def test_self_loop_rejected(self):
        dfg = DataFlowGraph()
        a = dfg.add_node(OpType.FFT, 1.0)
        with pytest.raises(ValueError):
            dfg.add_edge(a, a)

    def test_len_counts_nodes(self):
        assert len(linear_chain([1, 2, 3])) == 3


class TestTopology:
    def test_topological_order_respects_edges(self):
        dfg = linear_chain([1, 1, 1, 1])
        order = dfg.topological_order()
        assert order == sorted(order)

    def test_cycle_detection(self):
        dfg = DataFlowGraph()
        a = dfg.add_node(OpType.FFT, 1.0)
        b = dfg.add_node(OpType.IFFT, 1.0, predecessors=[a])
        dfg.add_edge(b, a)
        with pytest.raises(ValueError):
            dfg.topological_order()

    def test_validate_passes_for_acyclic_graph(self):
        linear_chain([1, 2]).validate()

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
    def test_critical_path_of_chain_is_total_work(self, works):
        dfg = linear_chain(works)
        assert dfg.critical_path_work() == pytest.approx(sum(works))

    def test_critical_path_of_diamond(self):
        dfg = DataFlowGraph()
        src = dfg.add_node(OpType.POLY_LINEAR, 1.0)
        left = dfg.add_node(OpType.IFFT, 10.0, predecessors=[src])
        right = dfg.add_node(OpType.IFFT, 3.0, predecessors=[src])
        dfg.add_node(OpType.FFT, 1.0, predecessors=[left, right])
        assert dfg.critical_path_work() == pytest.approx(12.0)


class TestAggregation:
    def test_work_by_op(self):
        dfg = DataFlowGraph()
        dfg.add_node(OpType.IFFT, 5.0)
        dfg.add_node(OpType.IFFT, 7.0)
        dfg.add_node(OpType.FFT, 2.0)
        totals = dfg.work_by_op()
        assert totals[OpType.IFFT] == 12.0
        assert totals[OpType.FFT] == 2.0

    def test_count_by_op(self):
        dfg = DataFlowGraph()
        dfg.add_node(OpType.KEYSWITCH, 5.0)
        dfg.add_node(OpType.KEYSWITCH, 5.0)
        assert dfg.count_by_op()[OpType.KEYSWITCH] == 2


class TestLevelize:
    def diamond(self):
        # a -> b, c -> d (b and c independent)
        dfg = DataFlowGraph()
        a = dfg.add_node(OpType.FFT, 1.0)
        b = dfg.add_node(OpType.FFT, 1.0, predecessors=[a])
        c = dfg.add_node(OpType.FFT, 1.0, predecessors=[a])
        d = dfg.add_node(OpType.FFT, 1.0, predecessors=[b, c])
        return dfg, (a, b, c, d)

    def test_diamond_levels(self):
        dfg, (a, b, c, d) = self.diamond()
        buckets = dfg.levelize()
        assert buckets[1] == [a]
        assert buckets[2] == [b, c]
        assert buckets[3] == [d]
        assert dfg.depth() == 3

    def test_zero_cost_nodes_share_predecessor_level(self):
        dfg = DataFlowGraph()
        src = dfg.add_node(OpType.LINEAR_GATE, 0.0)
        gate = dfg.add_node(OpType.BOOTSTRAPPED_GATE, 1.0, predecessors=[src])
        inv = dfg.add_node(OpType.LINEAR_GATE, 0.0, predecessors=[gate])
        cost = lambda n: 1 if n.op is OpType.BOOTSTRAPPED_GATE else 0
        levels = dfg.node_levels(cost)
        assert levels[src] == 0
        assert levels[gate] == 1
        assert levels[inv] == 1  # NOT rides along with its producer's level
        assert dfg.depth(cost) == 1

    def test_level_buckets_partition_all_nodes(self):
        dfg, _ = self.diamond()
        buckets = dfg.levelize()
        flattened = [nid for bucket in buckets for nid in bucket]
        assert sorted(flattened) == [n.node_id for n in dfg.nodes()]

    def test_empty_graph(self):
        dfg = DataFlowGraph()
        assert dfg.levelize() == [[]]
        assert dfg.depth() == 0

    def test_within_level_nodes_are_independent(self):
        dfg, _ = self.diamond()
        for bucket in dfg.levelize():
            for nid in bucket:
                assert not (set(dfg.node(nid).predecessors) & set(bucket))

"""Tests for the TFHE parameter sets."""

import pytest

from repro.tfhe.params import (
    PAPER_110BIT,
    PARAMETER_SETS,
    TEST_SMALL,
    TEST_TINY,
    KeySwitchParams,
    LweParams,
    TFHEParameters,
    TgswParams,
    TlweParams,
    get_parameters,
)


class TestPaperParameters:
    """The Section 5 parameter values must match the paper."""

    def test_ring_degree(self):
        assert PAPER_110BIT.N == 1024

    def test_tlwe_dimension(self):
        assert PAPER_110BIT.k == 1

    def test_gadget_base(self):
        assert PAPER_110BIT.Bg == 1024

    def test_decomposition_length(self):
        assert PAPER_110BIT.l == 3

    def test_lwe_dimension(self):
        assert PAPER_110BIT.n == 630

    def test_security_level(self):
        assert PAPER_110BIT.security_bits == 110

    def test_message_space_is_gate_bootstrapping(self):
        assert PAPER_110BIT.message_space == 8

    def test_describe_mentions_key_facts(self):
        text = PAPER_110BIT.describe()
        assert "n=630" in text and "N=1024" in text and "110" in text


class TestParameterValidation:
    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            LweParams(dimension=0, noise_stddev=1e-5)

    def test_noise_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LweParams(dimension=8, noise_stddev=1.5)

    def test_non_power_of_two_degree_rejected(self):
        with pytest.raises(ValueError):
            TlweParams(degree=1000, mask_count=1, noise_stddev=1e-9)

    def test_decomposition_base_bits_bounds(self):
        with pytest.raises(ValueError):
            TgswParams(decomp_length=3, decomp_base_bits=0)
        with pytest.raises(ValueError):
            TgswParams(decomp_length=3, decomp_base_bits=40)

    def test_keyswitch_lengths_positive(self):
        with pytest.raises(ValueError):
            KeySwitchParams(base_bits=2, length=0, noise_stddev=1e-5)

    def test_extracted_dimension(self):
        assert PAPER_110BIT.tlwe.extracted_lwe_dimension == 1024


class TestRegistry:
    def test_all_sets_registered(self):
        assert set(PARAMETER_SETS) >= {"paper-110bit", "test-small", "test-tiny"}

    def test_lookup_by_name(self):
        assert get_parameters("paper-110bit") is PAPER_110BIT

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_parameters("nonexistent")

    def test_test_sets_are_smaller(self):
        assert TEST_SMALL.N < PAPER_110BIT.N
        assert TEST_TINY.N < TEST_SMALL.N
        assert TEST_SMALL.n < PAPER_110BIT.n

    def test_parameter_sets_are_frozen(self):
        with pytest.raises(Exception):
            PAPER_110BIT.message_space = 4  # type: ignore[misc]

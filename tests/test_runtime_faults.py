"""Fault injection against the bootstrap worker pool.

The contract under test: a lost, hung or lying worker degrades *throughput*,
never *correctness*.  Every scenario runs the same workload through a
faulted pool and asserts the results are bit-identical to the inline
single-process path, that the scheduler's ``jobs_completed`` accounting
balances, and that the pool replaced exactly the workers it should have.

Fault plans are keyed by worker *spawn index* and interpreted against the
worker-local task counter (see :mod:`repro.runtime.workers`), so each
scenario is deterministic: worker 0's first task crashes, hangs, errors or
returns a poisoned result; its replacement (a fresh spawn index, no plan)
picks the requeued task up.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.runtime import BatchScheduler, WorkerPool, WorkerPoolError
from repro.runtime.scheduler import SchedulerStats, execute_rows
from repro.tfhe.gates import encrypt_bit

pytestmark = pytest.mark.filterwarnings("error::UserWarning")

BITS_A = [1, 0, 1, 1, 0, 0, 1, 0]
BITS_B = [1, 1, 0, 1, 0, 1, 0, 0]


def _same_sample(x, y) -> bool:
    return np.array_equal(x.a, y.a) and int(x.b) == int(y.b)


@pytest.fixture(scope="module")
def workload(tiny_keys_naive):
    """Eight mixed gate/LUT rows plus their inline reference outputs."""
    secret, cloud = tiny_keys_naive
    context = cloud.default_context()
    cas = [encrypt_bit(secret, b, rng=310 + i) for i, b in enumerate(BITS_A)]
    cbs = [encrypt_bit(secret, b, rng=340 + i) for i, b in enumerate(BITS_B)]
    rows = []
    for i, (ca, cb) in enumerate(zip(cas, cbs)):
        if i % 4 == 3:  # every fourth row is a programmable LUT row
            rows.append(("lut", 0b0110, (ca, cb)))  # XOR as a lookup
        else:
            rows.append(("gate", "nand", ca, cb))
    reference = execute_rows(context, rows, stats=SchedulerStats())
    return context, cas, cbs, rows, reference


def _run_with_pool(workload, pool, scheduler=None) -> tuple:
    """One scheduler flush of the workload's jobs through ``pool``."""
    context, cas, cbs, _rows, _reference = workload
    if scheduler is None:
        scheduler = BatchScheduler(dispatcher=pool)
        scheduler.register_client("tenant", context)
    session = scheduler.session("tenant")
    handles = []
    for i, (ca, cb) in enumerate(zip(cas, cbs)):
        if i % 4 == 3:
            handles.append(session.submit_lut(0b0110, [ca, cb]))
        else:
            handles.append(session.submit_gate("nand", ca, cb))
    scheduler.flush()
    return scheduler, [handle.result() for handle in handles]


FAULT_PLANS = {
    "crash": {0: {"crash_on_task": 0}},
    "hang": {0: {"hang_on_task": 0, "hang_seconds": 3600.0}},
    "error": {1: {"error_on_task": 0}},
    "poison-short": {0: {"poison_on_task": 0, "poison_mode": "short"}},
    "poison-wrong-task": {1: {"poison_on_task": 0, "poison_mode": "wrong_task"}},
    "poison-garbage": {0: {"poison_on_task": 0, "poison_mode": "garbage"}},
}


@pytest.mark.parametrize("fault", sorted(FAULT_PLANS))
def test_fault_recovers_bit_identical(workload, fault):
    """Each injected fault requeues; the flush output never changes."""
    reference = workload[4]
    with WorkerPool(
        2, task_timeout=2.0, max_retries=3, fault_plans=FAULT_PLANS[fault]
    ) as pool:
        scheduler, results = _run_with_pool(workload, pool)
        assert all(_same_sample(got, want) for got, want in zip(results, reference))
        # Accounting balances: every submitted job completed exactly once.
        assert scheduler.stats.jobs_completed == len(BITS_A)
        # The faulted worker was replaced, its chunk retried, nothing lost.
        assert pool.stats.workers_restarted == 1
        assert pool.stats.tasks_retried == 1
        assert pool.stats.tasks_dispatched == pool.stats.tasks_completed + 1
        assert pool.stats.rows_executed == len(BITS_A)
        # The pool healed: every slot alive again.
        assert all(worker.alive for worker in pool.health)


def test_kill_worker_mid_flush(workload):
    """A worker SIGKILLed from outside (no plan, no warning) is survived."""
    reference = workload[4]
    with WorkerPool(2, task_timeout=30.0) as pool:
        victim_pid = pool._workers[0].process.pid

        def _kill() -> None:
            try:
                os.kill(victim_pid, signal.SIGKILL)
            except ProcessLookupError:  # already gone: equivalent outcome
                pass

        # Kill the worker while the flush is in progress: TEST_TINY rows are
        # fast, so fire from a timer racing the flush.
        killer = threading.Timer(0.01, _kill)
        killer.start()
        try:
            scheduler, results = _run_with_pool(workload, pool)
        finally:
            killer.cancel()
        assert all(_same_sample(got, want) for got, want in zip(results, reference))
        assert scheduler.stats.jobs_completed == len(BITS_A)
        # Depending on timing the kill lands mid-task (requeue) or between
        # flushes (replaced at next assign) — either way nothing is lost and
        # at most one restart happened.
        assert pool.stats.workers_restarted <= 1
        assert all(worker.alive for worker in pool.health)


def test_timeout_is_bounded(workload):
    """A hung worker delays one flush by ~task_timeout, not forever."""
    reference = workload[4]
    with WorkerPool(
        2,
        task_timeout=1.5,
        fault_plans={0: {"hang_on_task": 0, "hang_seconds": 3600.0}},
    ) as pool:
        begin = time.monotonic()
        _, results = _run_with_pool(workload, pool)
        elapsed = time.monotonic() - begin
        assert all(_same_sample(got, want) for got, want in zip(results, reference))
        assert elapsed < 30.0  # far below the injected hang
        assert pool.stats.workers_restarted == 1


def test_retry_budget_exhaustion_raises(workload):
    """Deterministic faults surface as WorkerPoolError, not wrong results."""
    context, _cas, _cbs, rows, _reference = workload
    # Every spawn (initial worker + each replacement) errors on its first
    # task, so the task can never succeed inside max_retries.
    plans = {i: {"error_on_task": 0} for i in range(8)}
    with WorkerPool(1, task_timeout=5.0, max_retries=2, fault_plans=plans) as pool:
        with pytest.raises(WorkerPoolError, match="injected worker fault"):
            pool.run_rows("tenant", context, rows, SchedulerStats())
        # Retry accounting balances on exhaustion: the task was requeued
        # max_retries + 1 times (each attempt failed), every attempt was a
        # fresh dispatch, and NO row was ever counted as executed — a
        # failed flush contributes nothing, so rows can't double-execute.
        assert pool.stats.tasks_retried == 3
        assert pool.stats.tasks_dispatched == 3
        assert pool.stats.tasks_completed == 0
        assert pool.stats.rows_executed == 0


def test_pool_usable_after_exhaustion(workload):
    """A fatal task failure does not poison later flushes."""
    context, _cas, _cbs, rows, reference = workload
    plans = {0: {"crash_on_task": 0}, 1: {"crash_on_task": 0}}
    with WorkerPool(1, task_timeout=5.0, max_retries=1, fault_plans=plans) as pool:
        with pytest.raises(WorkerPoolError):
            pool.run_rows("tenant", context, rows, SchedulerStats())
        # Spawn index 2 carries no plan: the next flush must succeed and be
        # bit-identical (no stale results from the abandoned attempts).
        outputs = pool.run_rows("tenant", context, rows, SchedulerStats())
        assert all(_same_sample(got, want) for got, want in zip(outputs, reference))


def test_requeued_rows_never_double_execute(workload):
    """One fault, one requeue: rows execute exactly once, bit-identically."""
    reference = workload[4]
    with WorkerPool(
        2, task_timeout=2.0, max_retries=3, fault_plans={0: {"crash_on_task": 0}}
    ) as pool:
        scheduler, results = _run_with_pool(workload, pool)
        assert all(_same_sample(got, want) for got, want in zip(results, reference))
        # The requeued chunk ran once on its replacement worker — the pool's
        # row counter matches the workload exactly (no double execution),
        # and the per-worker completion counters account every task once.
        assert pool.stats.rows_executed == len(BITS_A)
        assert sum(w.tasks_completed for w in pool.health) == pool.stats.tasks_completed


def test_breaker_trips_on_restart_storm_and_degrades_inline(workload):
    """A refork storm opens the breaker; flushes degrade to inline, then heal."""
    context, _cas, _cbs, rows, reference = workload
    clock = [0.0]
    # Spawns 0-2 crash their first task; spawn 3 is healthy.  With a
    # threshold of 3 inside a 10 s window the third restart trips the
    # breaker mid-run (the run itself still completes on spawn 3).
    plans = {i: {"crash_on_task": 0} for i in range(3)}
    with WorkerPool(
        1,
        task_timeout=5.0,
        max_retries=5,
        breaker_threshold=3,
        breaker_window=10.0,
        breaker_cooldown=5.0,
        clock=lambda: clock[0],
        fault_plans=plans,
    ) as pool:
        outputs = pool.run_rows("tenant", context, rows, SchedulerStats())
        assert all(_same_sample(got, want) for got, want in zip(outputs, reference))
        assert pool.stats.workers_restarted == 3
        assert pool.stats.breaker_trips == 1
        assert pool.breaker_open
        # While open, run_rows computes in-process — bit-identically — and
        # touches no worker.
        done_before = sum(w.tasks_completed for w in pool.health)
        outputs = pool.run_rows("tenant", context, rows, SchedulerStats())
        assert all(_same_sample(got, want) for got, want in zip(outputs, reference))
        assert pool.stats.inline_fallbacks == 1
        assert sum(w.tasks_completed for w in pool.health) == done_before
        # Past the cooldown the breaker half-opens (restart history cleared)
        # and the pool serves again.
        clock[0] += 6.0
        assert not pool.breaker_open
        outputs = pool.run_rows("tenant", context, rows, SchedulerStats())
        assert all(_same_sample(got, want) for got, want in zip(outputs, reference))
        assert pool.stats.breaker_trips == 1  # no re-trip without a new storm


def test_scheduler_falls_back_inline_when_pool_exhausts(workload):
    """Pool exhaustion fails the *pool*, not the clients' jobs."""
    reference = workload[4]
    plans = {i: {"error_on_task": 0} for i in range(8)}
    with WorkerPool(1, task_timeout=5.0, max_retries=1, fault_plans=plans) as pool:
        scheduler, results = _run_with_pool(workload, pool)
        assert all(_same_sample(got, want) for got, want in zip(results, reference))
        assert scheduler.stats.inline_fallbacks == 1
        assert scheduler.stats.jobs_completed == len(BITS_A)


def test_worker_engine_fault_triggers_failover():
    """A deterministic worker-side EngineFault quarantines the engine kind.

    Every worker attempt raises EngineFault, so retry exhaustion surfaces
    EngineFault (not WorkerPoolError) to the scheduler, which quarantines
    ``double``, rebuilds the context on the ``compiled`` fallback (same
    fft64 family — bit-identical), republishes the client to the pool and
    replays the round.
    """
    from repro.runtime.context import FheContext
    from repro.tfhe.keys import generate_keys
    from repro.tfhe.params import TEST_TINY
    from repro.tfhe.transform import (
        DoubleFFTNegacyclicTransform,
        clear_engine_quarantine,
        quarantined_engines,
    )

    secret, cloud = generate_keys(
        TEST_TINY,
        DoubleFFTNegacyclicTransform(TEST_TINY.N),
        unroll_factor=1,
        rng=77,
        eager=False,
    )
    cas = [encrypt_bit(secret, b, rng=510 + i) for i, b in enumerate(BITS_A)]
    cbs = [encrypt_bit(secret, b, rng=540 + i) for i, b in enumerate(BITS_B)]
    reference_rows = [("gate", "nand", ca, cb) for ca, cb in zip(cas, cbs)]
    reference = execute_rows(FheContext(cloud), reference_rows, stats=SchedulerStats())
    # Spawns 0 and 1 cover both pre-failover attempts (max_retries=1); the
    # workers spawned for the post-failover replay carry no plan — the
    # fault "lives in" the quarantined engine, as a real engine bug would.
    plans = {0: {"engine_fault_always": True}, 1: {"engine_fault_always": True}}
    try:
        with WorkerPool(1, task_timeout=5.0, max_retries=1, fault_plans=plans) as pool:
            scheduler = BatchScheduler(dispatcher=pool)
            context = scheduler.register_client("tenant", cloud)
            session = scheduler.session("tenant")
            handles = [
                session.submit_gate("nand", ca, cb) for ca, cb in zip(cas, cbs)
            ]
            scheduler.flush()
            results = [handle.result() for handle in handles]
            assert all(
                _same_sample(got, want) for got, want in zip(results, reference)
            )
            assert scheduler.stats.engine_failovers == 1
            assert "double" in quarantined_engines()
            assert context.engine.engine_kind == "compiled"
            assert scheduler.stats.jobs_completed == len(BITS_A)
    finally:
        clear_engine_quarantine()


def test_fault_storm_many_flushes(workload):
    """Back-to-back faulted flushes keep balancing their accounting."""
    reference = workload[4]
    plans = {
        0: {"crash_on_task": 0},
        # The first replacement poisons its first task too: two generations
        # of faults inside one pool lifetime.
        2: {"poison_on_task": 0, "poison_mode": "short"},
    }
    with WorkerPool(2, task_timeout=5.0, fault_plans=plans) as pool:
        scheduler = BatchScheduler(dispatcher=pool)
        scheduler.register_client("tenant", workload[0])
        for _ in range(3):
            _, results = _run_with_pool(workload, pool, scheduler)
            assert all(
                _same_sample(got, want) for got, want in zip(results, reference)
            )
        assert scheduler.stats.jobs_completed == 3 * len(BITS_A)
        assert pool.stats.rows_executed == 3 * len(BITS_A)
        assert pool.stats.workers_restarted == 2
        assert all(worker.alive for worker in pool.health)

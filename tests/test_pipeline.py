"""Tests for the TGSW-cluster / EP-core pipeline model (Figure 6)."""

import pytest

from repro.core.pipeline import (
    PipelineStageTimes,
    schedule_bootstrapping,
    steady_state_throughput,
)


class TestStageTimes:
    def test_bottleneck_and_imbalance(self):
        times = PipelineStageTimes(tgsw_cluster_cycles=100, ep_core_cycles=50)
        assert times.bottleneck_cycles == 100
        assert times.imbalance == 2.0

    def test_balanced_stages(self):
        times = PipelineStageTimes(tgsw_cluster_cycles=80, ep_core_cycles=80)
        assert times.imbalance == 1.0


class TestSchedule:
    def test_pipelined_latency_is_fill_plus_bottleneck(self):
        times = PipelineStageTimes(100, 60)
        schedule = schedule_bootstrapping(10, times, pipelined=True)
        assert schedule.total_cycles == 100 + 10 * 100

    def test_sequential_latency_adds_stages(self):
        times = PipelineStageTimes(100, 60)
        schedule = schedule_bootstrapping(10, times, pipelined=False)
        assert schedule.total_cycles == 10 * 160

    def test_pipelining_always_helps_or_ties(self):
        for tgsw, ep in ((10, 200), (200, 10), (100, 100)):
            times = PipelineStageTimes(tgsw, ep)
            pipelined = schedule_bootstrapping(50, times, pipelined=True).total_cycles
            sequential = schedule_bootstrapping(50, times, pipelined=False).total_cycles
            assert pipelined <= sequential

    def test_speedup_approaches_two_when_balanced(self):
        times = PipelineStageTimes(100, 100)
        schedule = schedule_bootstrapping(1000, times, pipelined=True)
        assert schedule.speedup_over_sequential == pytest.approx(2.0, rel=0.01)

    def test_zero_iterations(self):
        schedule = schedule_bootstrapping(0, PipelineStageTimes(10, 10))
        assert schedule.total_cycles == 0.0

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            schedule_bootstrapping(-1, PipelineStageTimes(10, 10))

    def test_utilisation_of_bottleneck_is_one(self):
        schedule = schedule_bootstrapping(10, PipelineStageTimes(100, 60))
        util = schedule.stage_utilisation
        assert util["tgsw_cluster"] == 1.0
        assert util["ep_core"] == pytest.approx(0.6)


class TestThroughput:
    def test_scales_with_pipeline_count(self):
        times = PipelineStageTimes(100, 80)
        one = steady_state_throughput(times, 100, 1, 2.0e9)
        eight = steady_state_throughput(times, 100, 8, 2.0e9)
        assert eight == pytest.approx(8 * one)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 0, 2.0e9)
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 1, 0.0)

"""Tests for the TGSW-cluster / EP-core pipeline model (Figure 6)."""

import pytest

from repro.core.pipeline import (
    PipelineStageTimes,
    batching_speedup,
    schedule_bootstrapping,
    steady_state_throughput,
)


class TestStageTimes:
    def test_bottleneck_and_imbalance(self):
        times = PipelineStageTimes(tgsw_cluster_cycles=100, ep_core_cycles=50)
        assert times.bottleneck_cycles == 100
        assert times.imbalance == 2.0

    def test_balanced_stages(self):
        times = PipelineStageTimes(tgsw_cluster_cycles=80, ep_core_cycles=80)
        assert times.imbalance == 1.0


class TestSchedule:
    def test_pipelined_latency_is_fill_plus_bottleneck(self):
        times = PipelineStageTimes(100, 60)
        schedule = schedule_bootstrapping(10, times, pipelined=True)
        assert schedule.total_cycles == 100 + 10 * 100

    def test_sequential_latency_adds_stages(self):
        times = PipelineStageTimes(100, 60)
        schedule = schedule_bootstrapping(10, times, pipelined=False)
        assert schedule.total_cycles == 10 * 160

    def test_pipelining_always_helps_or_ties(self):
        for tgsw, ep in ((10, 200), (200, 10), (100, 100)):
            times = PipelineStageTimes(tgsw, ep)
            pipelined = schedule_bootstrapping(50, times, pipelined=True).total_cycles
            sequential = schedule_bootstrapping(50, times, pipelined=False).total_cycles
            assert pipelined <= sequential

    def test_speedup_approaches_two_when_balanced(self):
        times = PipelineStageTimes(100, 100)
        schedule = schedule_bootstrapping(1000, times, pipelined=True)
        assert schedule.speedup_over_sequential == pytest.approx(2.0, rel=0.01)

    def test_zero_iterations(self):
        schedule = schedule_bootstrapping(0, PipelineStageTimes(10, 10))
        assert schedule.total_cycles == 0.0

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            schedule_bootstrapping(-1, PipelineStageTimes(10, 10))

    def test_utilisation_of_bottleneck_is_one(self):
        schedule = schedule_bootstrapping(10, PipelineStageTimes(100, 60))
        util = schedule.stage_utilisation
        assert util["tgsw_cluster"] == 1.0
        assert util["ep_core"] == pytest.approx(0.6)


class TestThroughput:
    def test_scales_with_pipeline_count(self):
        times = PipelineStageTimes(100, 80)
        one = steady_state_throughput(times, 100, 1, 2.0e9)
        eight = steady_state_throughput(times, 100, 8, 2.0e9)
        assert eight == pytest.approx(8 * one)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 0, 2.0e9)
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 1, 0.0)
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 1, 2.0e9, batch_width=0)


class TestBatchedThroughput:
    TIMES = PipelineStageTimes(tgsw_cluster_cycles=100, ep_core_cycles=80)

    def test_batch_width_one_matches_unbatched_model(self):
        single = steady_state_throughput(self.TIMES, 100, 4, 2.0e9)
        explicit = steady_state_throughput(self.TIMES, 100, 4, 2.0e9, batch_width=1)
        assert explicit == pytest.approx(single)

    def test_throughput_grows_monotonically_with_batch_width(self):
        rates = [
            steady_state_throughput(self.TIMES, 100, 1, 2.0e9, batch_width=w)
            for w in (1, 8, 64, 256)
        ]
        assert all(lo < hi for lo, hi in zip(rates, rates[1:]))

    def test_batched_throughput_approaches_bottleneck_bound(self):
        """As the batch grows the fill cost vanishes and only the bottleneck paces."""
        clock = 2.0e9
        iterations = 100
        bound = clock / (iterations * self.TIMES.bottleneck_cycles)
        big = steady_state_throughput(self.TIMES, iterations, 1, clock, batch_width=4096)
        assert big < bound
        assert big == pytest.approx(bound, rel=0.01)

    def test_batching_speedup_is_fill_amortisation(self):
        # fill = 100 cycles, steady = 100 * 100 cycles: speedup is tiny when
        # the fill is already negligible per gate.
        assert batching_speedup(self.TIMES, 100, 64) == pytest.approx(
            (100 + 100 * 100) / (100 / 64 + 100 * 100), rel=1e-9
        )
        # With a single iteration the fill dominates and batching nearly
        # doubles the rate (fill ≈ bottleneck here).
        assert batching_speedup(self.TIMES, 1, 4096) > 1.9

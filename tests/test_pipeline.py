"""Tests for the TGSW-cluster / EP-core pipeline model (Figure 6)."""

import pytest

from repro.core.pipeline import (
    PipelineStageTimes,
    batching_speedup,
    circuit_level_cycles,
    circuit_levelized_speedup,
    schedule_bootstrapping,
    steady_state_throughput,
)


class TestStageTimes:
    def test_bottleneck_and_imbalance(self):
        times = PipelineStageTimes(tgsw_cluster_cycles=100, ep_core_cycles=50)
        assert times.bottleneck_cycles == 100
        assert times.imbalance == 2.0

    def test_balanced_stages(self):
        times = PipelineStageTimes(tgsw_cluster_cycles=80, ep_core_cycles=80)
        assert times.imbalance == 1.0


class TestSchedule:
    def test_pipelined_latency_is_fill_plus_bottleneck(self):
        times = PipelineStageTimes(100, 60)
        schedule = schedule_bootstrapping(10, times, pipelined=True)
        assert schedule.total_cycles == 100 + 10 * 100

    def test_sequential_latency_adds_stages(self):
        times = PipelineStageTimes(100, 60)
        schedule = schedule_bootstrapping(10, times, pipelined=False)
        assert schedule.total_cycles == 10 * 160

    def test_pipelining_always_helps_or_ties(self):
        for tgsw, ep in ((10, 200), (200, 10), (100, 100)):
            times = PipelineStageTimes(tgsw, ep)
            pipelined = schedule_bootstrapping(50, times, pipelined=True).total_cycles
            sequential = schedule_bootstrapping(50, times, pipelined=False).total_cycles
            assert pipelined <= sequential

    def test_speedup_approaches_two_when_balanced(self):
        times = PipelineStageTimes(100, 100)
        schedule = schedule_bootstrapping(1000, times, pipelined=True)
        assert schedule.speedup_over_sequential == pytest.approx(2.0, rel=0.01)

    def test_zero_iterations(self):
        schedule = schedule_bootstrapping(0, PipelineStageTimes(10, 10))
        assert schedule.total_cycles == 0.0

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            schedule_bootstrapping(-1, PipelineStageTimes(10, 10))

    def test_utilisation_of_bottleneck_is_one(self):
        schedule = schedule_bootstrapping(10, PipelineStageTimes(100, 60))
        util = schedule.stage_utilisation
        assert util["tgsw_cluster"] == 1.0
        assert util["ep_core"] == pytest.approx(0.6)


class TestThroughput:
    def test_scales_with_pipeline_count(self):
        times = PipelineStageTimes(100, 80)
        one = steady_state_throughput(times, 100, 1, 2.0e9)
        eight = steady_state_throughput(times, 100, 8, 2.0e9)
        assert eight == pytest.approx(8 * one)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 0, 2.0e9)
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 1, 0.0)
        with pytest.raises(ValueError):
            steady_state_throughput(PipelineStageTimes(1, 1), 10, 1, 2.0e9, batch_width=0)


class TestBatchedThroughput:
    TIMES = PipelineStageTimes(tgsw_cluster_cycles=100, ep_core_cycles=80)

    def test_batch_width_one_matches_unbatched_model(self):
        single = steady_state_throughput(self.TIMES, 100, 4, 2.0e9)
        explicit = steady_state_throughput(self.TIMES, 100, 4, 2.0e9, batch_width=1)
        assert explicit == pytest.approx(single)

    def test_throughput_grows_monotonically_with_batch_width(self):
        rates = [
            steady_state_throughput(self.TIMES, 100, 1, 2.0e9, batch_width=w)
            for w in (1, 8, 64, 256)
        ]
        assert all(lo < hi for lo, hi in zip(rates, rates[1:]))

    def test_batched_throughput_approaches_bottleneck_bound(self):
        """As the batch grows the fill cost vanishes and only the bottleneck paces."""
        clock = 2.0e9
        iterations = 100
        bound = clock / (iterations * self.TIMES.bottleneck_cycles)
        big = steady_state_throughput(self.TIMES, iterations, 1, clock, batch_width=4096)
        assert big < bound
        assert big == pytest.approx(bound, rel=0.01)

    def test_batching_speedup_is_fill_amortisation(self):
        # fill = 100 cycles, steady = 100 * 100 cycles: speedup is tiny when
        # the fill is already negligible per gate.
        assert batching_speedup(self.TIMES, 100, 64) == pytest.approx(
            (100 + 100 * 100) / (100 / 64 + 100 * 100), rel=1e-9
        )
        # With a single iteration the fill dominates and batching nearly
        # doubles the rate (fill ≈ bottleneck here).
        assert batching_speedup(self.TIMES, 1, 4096) > 1.9


class TestCircuitLevelModel:
    """Analytic model of the level-parallel circuit executor."""

    TIMES = PipelineStageTimes(tgsw_cluster_cycles=100, ep_core_cycles=100)

    def test_one_level_one_gate_is_single_bootstrap(self):
        single = schedule_bootstrapping(10, self.TIMES).total_cycles
        assert circuit_level_cycles([1], self.TIMES, 10) == pytest.approx(single)

    def test_levels_pay_one_fill_each(self):
        fill = self.TIMES.tgsw_cluster_cycles
        steady = 10 * self.TIMES.bottleneck_cycles
        # Two levels of widths 3 and 1: 4 gates pace at the steady rate but
        # only 2 pipeline fills are paid (one per level).
        assert circuit_level_cycles([3, 1], self.TIMES, 10) == pytest.approx(
            2 * fill + 4 * steady
        )

    def test_empty_levels_cost_nothing(self):
        assert circuit_level_cycles([0, 0], self.TIMES, 10) == 0.0
        assert circuit_level_cycles([], self.TIMES, 10) == 0.0

    def test_batch_width_multiplies_rows_not_fills(self):
        one = circuit_level_cycles([2], self.TIMES, 10, batch_width=1)
        four = circuit_level_cycles([2], self.TIMES, 10, batch_width=4)
        steady = 10 * self.TIMES.bottleneck_cycles
        assert four - one == pytest.approx((8 - 2) * steady)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            circuit_level_cycles([1], self.TIMES, 10, batch_width=0)
        with pytest.raises(ValueError):
            circuit_level_cycles([-1], self.TIMES, 10)

    def test_speedup_grows_with_level_width(self):
        narrow = circuit_levelized_speedup([1] * 8, self.TIMES, 4)
        wide = circuit_levelized_speedup([8], self.TIMES, 4)
        assert wide > narrow >= 1.0

    def test_speedup_compounds_with_batch_width(self):
        widths = [16, 2, 1] * 10
        lo = circuit_levelized_speedup(widths, self.TIMES, 4, batch_width=1)
        hi = circuit_levelized_speedup(widths, self.TIMES, 4, batch_width=16)
        assert hi > lo

    def test_empty_circuit_has_unit_speedup(self):
        assert circuit_levelized_speedup([], self.TIMES, 10) == 1.0

    def test_speedup_bounded_by_fill_over_steady_recovery(self):
        # Speedup can never exceed the all-in-one-level bound.
        widths = [4, 4, 4]
        best = circuit_levelized_speedup([12], self.TIMES, 3)
        actual = circuit_levelized_speedup(widths, self.TIMES, 3)
        assert 1.0 <= actual <= best

    def test_pipeline_count_spreads_levels(self):
        # A width-8 level on 8 slices paces like a width-1 level on one.
        spread = circuit_level_cycles([8], self.TIMES, 10, pipeline_count=8)
        single = circuit_level_cycles([1], self.TIMES, 10, pipeline_count=1)
        assert spread == pytest.approx(single)

    def test_pipeline_count_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            circuit_level_cycles([1], self.TIMES, 10, pipeline_count=0)

    def test_wide_levels_approach_slice_count_speedup(self):
        # Very wide levels + negligible fill: speedup tends to pipeline_count.
        speedup = circuit_levelized_speedup(
            [512] * 4, self.TIMES, 100, pipeline_count=8
        )
        assert speedup == pytest.approx(8.0, rel=0.05)

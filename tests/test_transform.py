"""Tests for the reference polynomial-multiplication engines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tfhe.polynomial import negacyclic_convolution
from repro.tfhe.transform import (
    DoubleFFTNegacyclicTransform,
    NaiveNegacyclicTransform,
    make_transform,
)

DEGREE = 64


def random_polys(seed=0, degree=DEGREE):
    rng = np.random.default_rng(seed)
    int_poly = rng.integers(-512, 512, degree)
    torus_poly = rng.integers(-(2**31), 2**31, degree).astype(np.int32)
    return int_poly, torus_poly


class TestNaiveTransform:
    def test_multiply_matches_ground_truth(self):
        a, b = random_polys()
        transform = NaiveNegacyclicTransform(DEGREE)
        assert np.array_equal(transform.multiply(a, b), negacyclic_convolution(a, b))

    def test_stats_count_calls(self):
        a, b = random_polys()
        transform = NaiveNegacyclicTransform(DEGREE)
        transform.multiply(a, b)
        assert transform.stats.forward_calls == 2
        assert transform.stats.backward_calls == 1
        transform.reset_stats()
        assert transform.stats.forward_calls == 0

    def test_degree_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            NaiveNegacyclicTransform(100)

    def test_wrong_length_input_rejected(self):
        transform = NaiveNegacyclicTransform(DEGREE)
        with pytest.raises(ValueError):
            transform.forward(np.zeros(DEGREE * 2, dtype=np.int64))


class TestDoubleTransform:
    def test_multiply_matches_ground_truth_exactly(self):
        a, b = random_polys()
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        assert np.array_equal(transform.multiply(a, b), negacyclic_convolution(a, b))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20)
    def test_forward_backward_roundtrip(self, fill):
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        poly = np.full(DEGREE, np.int32(fill - 2**30), dtype=np.int32)
        recovered = transform.backward(transform.forward(poly))
        assert np.array_equal(recovered, poly.astype(np.int64))

    def test_spectrum_length_is_half_degree(self):
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        spectrum = transform.forward(np.zeros(DEGREE, dtype=np.int32))
        assert spectrum.shape == (DEGREE // 2,)

    def test_spectrum_add_is_pointwise(self):
        a, b = random_polys()
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        sa, sb = transform.forward(a), transform.forward(b)
        merged = transform.backward(transform.spectrum_add(sa, sb))
        assert np.array_equal(merged, a.astype(np.int64) + b.astype(np.int64))

    def test_multiply_accumulate_matches_sum_of_products(self):
        rng = np.random.default_rng(3)
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        ints = [rng.integers(-512, 512, DEGREE) for _ in range(3)]
        toruses = [rng.integers(-(2**31), 2**31, DEGREE).astype(np.int32) for _ in range(3)]
        spectra = [transform.forward(t) for t in toruses]
        got = transform.multiply_accumulate(ints, spectra)
        expected = np.zeros(DEGREE, dtype=np.int64)
        for i, t in zip(ints, toruses):
            expected += negacyclic_convolution(i, t).astype(np.int64)
        expected = (expected & 0xFFFFFFFF).astype(np.uint32).astype(np.int32)
        assert np.array_equal(got, expected)

    def test_mismatched_accumulate_lengths_raise(self):
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        with pytest.raises(ValueError):
            transform.multiply_accumulate([np.zeros(DEGREE)], [])


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_transform("naive", DEGREE), NaiveNegacyclicTransform)
        assert isinstance(make_transform("double", DEGREE), DoubleFFTNegacyclicTransform)

    def test_approx_kind_builds_integer_transform(self):
        from repro.core.integer_fft import ApproximateNegacyclicTransform

        transform = make_transform("approx", DEGREE, twiddle_bits=32)
        assert isinstance(transform, ApproximateNegacyclicTransform)
        assert transform.twiddle_bits == 32

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_transform("ntt", DEGREE)

"""Tests for the reference polynomial-multiplication engines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tfhe.polynomial import negacyclic_convolution
from repro.tfhe.transform import (
    DoubleFFTNegacyclicTransform,
    NaiveNegacyclicTransform,
    TransformSpec,
    available_engines,
    engine_entry,
    make_transform,
    register_engine,
)

DEGREE = 64


def random_polys(seed=0, degree=DEGREE):
    rng = np.random.default_rng(seed)
    int_poly = rng.integers(-512, 512, degree)
    torus_poly = rng.integers(-(2**31), 2**31, degree).astype(np.int32)
    return int_poly, torus_poly


class TestNaiveTransform:
    def test_multiply_matches_ground_truth(self):
        a, b = random_polys()
        transform = NaiveNegacyclicTransform(DEGREE)
        assert np.array_equal(transform.multiply(a, b), negacyclic_convolution(a, b))

    def test_stats_count_calls(self):
        a, b = random_polys()
        transform = NaiveNegacyclicTransform(DEGREE)
        transform.multiply(a, b)
        assert transform.stats.forward_calls == 2
        assert transform.stats.backward_calls == 1
        transform.reset_stats()
        assert transform.stats.forward_calls == 0

    def test_degree_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            NaiveNegacyclicTransform(100)

    def test_wrong_length_input_rejected(self):
        transform = NaiveNegacyclicTransform(DEGREE)
        with pytest.raises(ValueError):
            transform.forward(np.zeros(DEGREE * 2, dtype=np.int64))


class TestDoubleTransform:
    def test_multiply_matches_ground_truth_exactly(self):
        a, b = random_polys()
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        assert np.array_equal(transform.multiply(a, b), negacyclic_convolution(a, b))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20)
    def test_forward_backward_roundtrip(self, fill):
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        poly = np.full(DEGREE, np.int32(fill - 2**30), dtype=np.int32)
        recovered = transform.backward(transform.forward(poly))
        assert np.array_equal(recovered, poly.astype(np.int64))

    def test_spectrum_length_is_half_degree(self):
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        spectrum = transform.forward(np.zeros(DEGREE, dtype=np.int32))
        assert spectrum.shape == (DEGREE // 2,)

    def test_spectrum_add_is_pointwise(self):
        a, b = random_polys()
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        sa, sb = transform.forward(a), transform.forward(b)
        merged = transform.backward(transform.spectrum_add(sa, sb))
        assert np.array_equal(merged, a.astype(np.int64) + b.astype(np.int64))

    def test_multiply_accumulate_matches_sum_of_products(self):
        rng = np.random.default_rng(3)
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        ints = [rng.integers(-512, 512, DEGREE) for _ in range(3)]
        toruses = [rng.integers(-(2**31), 2**31, DEGREE).astype(np.int32) for _ in range(3)]
        spectra = [transform.forward(t) for t in toruses]
        got = transform.multiply_accumulate(ints, spectra)
        expected = np.zeros(DEGREE, dtype=np.int64)
        for i, t in zip(ints, toruses):
            expected += negacyclic_convolution(i, t).astype(np.int64)
        expected = (expected & 0xFFFFFFFF).astype(np.uint32).astype(np.int32)
        assert np.array_equal(got, expected)

    def test_mismatched_accumulate_lengths_raise(self):
        transform = DoubleFFTNegacyclicTransform(DEGREE)
        with pytest.raises(ValueError):
            transform.multiply_accumulate([np.zeros(DEGREE)], [])


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_transform("naive", DEGREE), NaiveNegacyclicTransform)
        assert isinstance(make_transform("double", DEGREE), DoubleFFTNegacyclicTransform)

    def test_approx_kind_builds_integer_transform(self):
        from repro.core.integer_fft import ApproximateNegacyclicTransform

        transform = make_transform("approx", DEGREE, twiddle_bits=32)
        assert isinstance(transform, ApproximateNegacyclicTransform)
        assert transform.twiddle_bits == 32

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_transform("ntt", DEGREE)


class TestEngineRegistry:
    def test_builtin_kinds_registered(self):
        assert {"naive", "double", "approx"} <= set(available_engines())

    def test_unknown_kind_error_lists_valid_kinds(self):
        with pytest.raises(ValueError, match="valid kinds:.*approx.*double.*naive"):
            make_transform("ntt", DEGREE)

    def test_bogus_kwarg_rejected_with_valid_options(self):
        # The error names the offending engine and lists its accepted kwargs.
        with pytest.raises(
            ValueError,
            match=r"twiddel_bits.*engine 'approx' accepts:.*twiddle_bits",
        ):
            make_transform("approx", DEGREE, twiddel_bits=32)

    def test_bogus_kwarg_hints_at_owning_engine(self):
        # A kwarg that belongs to a *different* engine gets a redirect hint.
        with pytest.raises(
            ValueError,
            match=r"'twiddle_bits' is accepted by approx",
        ):
            make_transform("double", DEGREE, twiddle_bits=24)

    def test_engine_without_options_rejects_any_kwarg(self):
        # Historically silently-crashing deep in the constructor; now a
        # registry-level error naming the engine.
        with pytest.raises(ValueError, match="'double'"):
            make_transform("double", DEGREE, twiddle_bits=32)

    def test_register_custom_engine(self):
        register_engine(
            "naive-alias", NaiveNegacyclicTransform, description="test alias"
        )
        try:
            assert isinstance(
                make_transform("naive-alias", DEGREE), NaiveNegacyclicTransform
            )
            assert engine_entry("naive-alias").description == "test alias"
        finally:
            from repro.tfhe import transform as transform_module

            del transform_module._ENGINE_REGISTRY["naive-alias"]

    def test_spec_round_trip(self):
        engine = make_transform("approx", DEGREE, twiddle_bits=24)
        spec = engine.spec()
        assert spec == TransformSpec.from_options(
            "approx", twiddle_bits=24, target_msb=36
        )
        rebuilt = spec.create(DEGREE)
        assert type(rebuilt) is type(engine)
        assert rebuilt.twiddle_bits == 24
        assert TransformSpec.from_json(spec.to_json()) == spec

    def test_builtin_specs(self):
        assert NaiveNegacyclicTransform(DEGREE).spec() == TransformSpec("naive")
        assert DoubleFFTNegacyclicTransform(DEGREE).spec() == TransformSpec("double")


class TestVectorisedMultiplyAccumulate:
    @pytest.mark.parametrize("kind", ["naive", "double", "approx"])
    def test_one_forward_call_per_accumulate(self, kind):
        rng = np.random.default_rng(5)
        transform = make_transform(kind, DEGREE)
        ints = [rng.integers(-64, 64, DEGREE) for _ in range(4)]
        toruses = [
            rng.integers(-(2**31), 2**31, DEGREE).astype(np.int32) for _ in range(4)
        ]
        spectra = [transform.forward(t) for t in toruses]
        transform.reset_stats()
        got = transform.multiply_accumulate(ints, spectra)
        # The decomposed rows are stacked into one forward and one stacked
        # pointwise product + reduction, not one spectrum per term.
        assert transform.stats.forward_calls == 1
        assert transform.stats.backward_calls == 1
        assert transform.stats.pointwise_ops == 2  # one mul + one reduction
        # The result still matches the per-term reference.
        reference = make_transform(kind, DEGREE)
        acc = reference.spectrum_zero()
        for poly, torus in zip(ints, toruses):
            acc = reference.spectrum_add(
                acc,
                reference.spectrum_mul(
                    reference.forward(poly), reference.forward(torus)
                ),
            )
        from repro.tfhe.torus import torus32_from_int64

        expected = torus32_from_int64(reference.backward(acc))
        assert np.array_equal(got, expected)

    def test_empty_accumulate_returns_zero(self):
        transform = make_transform("naive", DEGREE)
        assert np.array_equal(
            transform.multiply_accumulate([], []), np.zeros(DEGREE, dtype=np.int32)
        )

    @pytest.mark.parametrize("kind", ["naive", "double", "approx"])
    def test_batched_polys_broadcast_against_scalar_spectra(self, kind):
        # Mixed batchiness (stacked polynomials, single-polynomial spectra)
        # must keep broadcasting per term like the historical loop did.
        rng = np.random.default_rng(6)
        transform = make_transform(kind, DEGREE)
        polys = [rng.integers(-64, 64, (4, DEGREE)) for _ in range(3)]
        toruses = [
            rng.integers(-(2**31), 2**31, DEGREE).astype(np.int32) for _ in range(3)
        ]
        spectra = [transform.forward(t) for t in toruses]
        got = transform.multiply_accumulate(polys, spectra)
        assert got.shape == (4, DEGREE)
        reference = make_transform(kind, DEGREE)
        for row in range(4):
            row_spectra = [reference.forward(t) for t in toruses]
            expected = reference.multiply_accumulate(
                [p[row] for p in polys], row_spectra
            )
            assert np.array_equal(got[row], expected)

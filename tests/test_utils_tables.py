"""Tests for the text-table renderer."""

import pytest

from repro.utils.tables import format_table


def test_simple_table_alignment():
    text = format_table(["a", "bb"], [[1, 2], [33, 4]])
    lines = text.splitlines()
    assert lines[0].startswith("a ")
    assert "-+-" in lines[1]
    assert len(lines) == 4


def test_title_is_first_line():
    text = format_table(["x"], [[1]], title="My title")
    assert text.splitlines()[0] == "My title"


def test_floats_are_compacted():
    text = format_table(["v"], [[1.23456789]])
    assert "1.235" in text


def test_row_width_mismatch_raises():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_column_width_follows_longest_cell():
    text = format_table(["h"], [["short"], ["a-much-longer-cell"]])
    header_line = text.splitlines()[0]
    assert len(header_line) >= len("a-much-longer-cell")

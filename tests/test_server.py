"""The asyncio serving front: round trips, isolation, errors, backpressure.

The server runs in-process on a background event loop (``server_factory``
fixture) and real TCP clients talk to it, so these tests cover the whole
wire: framing, per-connection key namespaces, error mapping, and — the
regression this PR hardens — that no client behaviour can grow the
front-end queue unboundedly:

* **reject semantics** — a bounded scheduler queue turns overflow into
  ``busy`` error frames while everything already accepted completes;
* **await semantics** — past ``max_inflight`` requests per connection the
  server stops *reading* that socket, so a flooding client stalls on TCP
  while the queue's high-water mark stays at
  ``connections × max_inflight`` — demonstrated at 110 concurrent
  sessions.
"""

from __future__ import annotations

import io
import json
import socket
import struct

import numpy as np
import pytest

from repro.runtime.protocol import (
    ServerBusy,
    ServerError,
    ServingClient,
    encode_frame,
    pack_parts,
    read_frame,
)
from repro.tfhe.gates import decrypt_bit, encrypt_bit
from repro.tfhe.integers import decrypt_radix, encrypt_radix
from repro.tfhe.keys import generate_keys
from repro.tfhe.lwe import LweBatch
from repro.tfhe.netlist import adder_netlist
from repro.tfhe.params import TEST_PBS, TEST_TINY, DigitEncoding
from repro.tfhe.serialize import to_bytes
from repro.tfhe.transform import DoubleFFTNegacyclicTransform

pytestmark = pytest.mark.filterwarnings("error::UserWarning")


@pytest.fixture(scope="module")
def wire_keys():
    """One TEST_TINY double-engine keypair shared by the server tests."""
    secret, cloud = generate_keys(
        TEST_TINY,
        DoubleFFTNegacyclicTransform(TEST_TINY.N),
        unroll_factor=1,
        rng=61,
        eager=False,
    )
    return secret, cloud


# --------------------------------------------------------------------------- #
# round trips                                                                 #
# --------------------------------------------------------------------------- #


def test_hello_register_gate_lut_circuit(server_factory, wire_keys):
    secret, cloud = wire_keys
    server = server_factory()
    with ServingClient(port=server.port) as client:
        hello = client.hello()
        assert hello["server"] == "repro-serve"
        info = client.register_key(cloud)
        assert info["params"] == TEST_TINY.name

        out = client.gate(
            "nand", encrypt_bit(secret, 1, rng=1), encrypt_bit(secret, 1, rng=2)
        )
        assert decrypt_bit(secret, out) == 0

        out = client.lut(
            0b0110, [encrypt_bit(secret, 1, rng=3), encrypt_bit(secret, 0, rng=4)]
        )
        assert decrypt_bit(secret, out) == 1

        width = 4
        a_val, b_val = 11, 6
        bits = [encrypt_bit(secret, (a_val >> i) & 1, rng=10 + i) for i in range(width)]
        bits += [encrypt_bit(secret, (b_val >> i) & 1, rng=20 + i) for i in range(width)]
        out_batch = client.run_circuit(adder_netlist(width), LweBatch.from_samples(bits))
        total = sum(
            decrypt_bit(secret, s) << i
            for i, s in enumerate(out_batch.to_samples()[:width])
        )
        assert total == (a_val + b_val) % (1 << width)

        metrics = client.metrics()
        assert metrics["jobs_completed"] >= 3
        assert metrics["queue_depth"] == 0
        assert metrics["rows_bootstrapped"] > 0
        assert metrics["bootstraps_per_sec"] > 0
        assert metrics["connections"] == 1


def test_pipelined_requests_match_out_of_order(server_factory, wire_keys):
    """Many in-flight ids; replies land by id, not arrival order."""
    secret, cloud = wire_keys
    server = server_factory()
    with ServingClient(port=server.port) as client:
        client.register_key(cloud)
        cases = [(i & 1, (i >> 1) & 1) for i in range(12)]
        ids = [
            client.submit_gate(
                "xor",
                encrypt_bit(secret, a, rng=100 + 2 * i),
                encrypt_bit(secret, b, rng=101 + 2 * i),
            )
            for i, (a, b) in enumerate(cases)
        ]
        # Collect in reverse: exercises the reply-buffering path.
        for (a, b), request_id in reversed(list(zip(cases, ids))):
            assert decrypt_bit(secret, client.gate_result(request_id)) == a ^ b


def test_radix_add_over_the_wire(server_factory):
    encoding = DigitEncoding(message_bits=2, carry_bits=2)
    secret, cloud = generate_keys(TEST_PBS, unroll_factor=1, rng=71, eager=False)
    server = server_factory()
    with ServingClient(port=server.port) as client:
        client.register_key(cloud)
        x = encrypt_radix(secret.lwe_key, 57, 4, encoding, rng=1)
        y = encrypt_radix(secret.lwe_key, 123, 4, encoding, rng=2)
        total = client.radix_add(x, y)
        assert decrypt_radix(secret.lwe_key, total) == (57 + 123) % encoding.base**4


# --------------------------------------------------------------------------- #
# isolation                                                                   #
# --------------------------------------------------------------------------- #


def test_interleaved_clients_no_cross_client_leakage(server_factory, wire_keys):
    """Two tenants, interleaved submissions: replies stay per-connection."""
    secret_a, cloud_a = wire_keys
    secret_b, cloud_b = generate_keys(
        TEST_TINY,
        DoubleFFTNegacyclicTransform(TEST_TINY.N),
        unroll_factor=1,
        rng=62,
        eager=False,
    )
    server = server_factory()
    with ServingClient(port=server.port) as ca, ServingClient(port=server.port) as cb:
        ca.register_key(cloud_a)
        cb.register_key(cloud_b)
        # Interleave submissions, then collect cross-ordered.
        ids_a = [
            ca.submit_gate(
                "nand",
                encrypt_bit(secret_a, 1, rng=200 + i),
                encrypt_bit(secret_a, 1, rng=210 + i),
            )
            for i in range(4)
        ]
        ids_b = [
            cb.submit_gate(
                "or",
                encrypt_bit(secret_b, 0, rng=220 + i),
                encrypt_bit(secret_b, 1, rng=230 + i),
            )
            for i in range(4)
        ]
        results_b = [decrypt_bit(secret_b, cb.gate_result(i)) for i in ids_b]
        results_a = [decrypt_bit(secret_a, ca.gate_result(i)) for i in ids_a]
        assert results_a == [0] * 4  # NAND(1,1) under A's key
        assert results_b == [1] * 4  # OR(0,1) under B's key


def test_gate_before_register_key(server_factory, wire_keys):
    secret, _cloud = wire_keys
    server = server_factory()
    with ServingClient(port=server.port) as client:
        with pytest.raises(ServerError) as excinfo:
            client.gate(
                "and", encrypt_bit(secret, 1, rng=5), encrypt_bit(secret, 1, rng=6)
            )
        assert excinfo.value.kind == "no_key"


def test_double_register_rejected(server_factory, wire_keys):
    _secret, cloud = wire_keys
    server = server_factory()
    with ServingClient(port=server.port) as client:
        client.register_key(cloud)
        with pytest.raises(ServerError) as excinfo:
            client.register_key(cloud)
        assert excinfo.value.kind == "bad_request"


# --------------------------------------------------------------------------- #
# corruption over the wire                                                    #
# --------------------------------------------------------------------------- #


def _tamper_npz_version(data: bytes, version: int = 99) -> bytes:
    """Rewrite the npz __meta__ header to an unsupported format version."""
    archive = np.load(io.BytesIO(data))
    meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    meta["version"] = version
    arrays = {name: archive[name] for name in archive.files if name != "__meta__"}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    out = io.BytesIO()
    np.savez(out, **arrays)
    return out.getvalue()


def test_bad_npz_version_is_a_clean_error(server_factory, wire_keys):
    _secret, cloud = wire_keys
    server = server_factory()
    with ServingClient(port=server.port) as client:
        bad = _tamper_npz_version(to_bytes(cloud))
        request = client.submit("register_key", pack_parts([bad]))
        with pytest.raises(ServerError) as excinfo:
            client.result(request)
        assert excinfo.value.kind == "bad_request"
        assert "version" in str(excinfo.value)
        # The connection survived the bad artifact.
        assert client.hello()["server"] == "repro-serve"


def test_wrong_artifact_type_rejected(server_factory, wire_keys):
    secret, cloud = wire_keys
    server = server_factory()
    with ServingClient(port=server.port) as client:
        # A ciphertext is not a cloud key ...
        request = client.submit(
            "register_key", pack_parts([to_bytes(encrypt_bit(secret, 1, rng=7))])
        )
        with pytest.raises(ServerError) as excinfo:
            client.result(request)
        assert excinfo.value.kind == "bad_request"
        # ... and a cloud key is not a ciphertext.
        client.register_key(cloud)
        request = client.submit(
            "gate",
            pack_parts([to_bytes(cloud), to_bytes(encrypt_bit(secret, 1, rng=8))]),
            gate="and",
        )
        with pytest.raises(ServerError) as excinfo:
            client.result(request)
        assert excinfo.value.kind == "bad_request"


def test_unknown_op_and_missing_fields(server_factory, wire_keys):
    _secret, cloud = wire_keys
    server = server_factory()
    with ServingClient(port=server.port) as client:
        with pytest.raises(ServerError) as excinfo:
            client.call("frobnicate")
        assert excinfo.value.kind == "unsupported"
        client.register_key(cloud)
        with pytest.raises(ServerError) as excinfo:
            client.call("gate", pack_parts([b"", b""]))  # no 'gate' field
        assert excinfo.value.kind == "bad_request"


def _raw_exchange(port: int, payload: bytes) -> tuple:
    """Send raw bytes; return (error header or None, connection closed?)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        try:
            header, _ = read_frame(sock)
        except EOFError:
            return None, True
        trailing = sock.recv(1)
        return header, trailing == b""


@pytest.mark.parametrize(
    "payload",
    [
        b"GARBAGE-NOT-A-FRAME-AT-ALL",           # bad magic
        struct.pack("<4sIQ", b"rTFS", 10, 0),    # truncated header
        struct.pack("<4sIQ", b"rTFS", 4, 1 << 60) + b"null",  # oversized body
    ],
    ids=["bad-magic", "truncated", "oversized-prefix"],
)
def test_malformed_stream_gets_error_then_close(server_factory, payload):
    server = server_factory()
    header, closed = _raw_exchange(server.port, payload)
    assert closed  # a desynchronised stream is always dropped ...
    if header is not None:  # ... after a best-effort protocol error frame
        assert header["error"]["kind"] == "protocol"
    # The server is still healthy for the next connection.
    with ServingClient(port=server.port) as client:
        assert client.hello()["server"] == "repro-serve"


# --------------------------------------------------------------------------- #
# backpressure                                                                #
# --------------------------------------------------------------------------- #


def test_bounded_queue_rejects_with_busy(server_factory, wire_keys):
    """Overflowing the scheduler queue yields ServerBusy, not growth."""
    secret, cloud = wire_keys
    server = server_factory(
        max_pending_jobs=4,
        max_inflight=64,
        flush_interval=120.0,  # flusher effectively parked: queue can't drain
    )
    with ServingClient(port=server.port) as client:
        client.register_key(cloud)
        ids = [
            client.submit_gate(
                "and",
                encrypt_bit(secret, 1, rng=300 + i),
                encrypt_bit(secret, 0, rng=320 + i),
            )
            for i in range(10)
        ]
        busy = 0
        accepted = []
        # The over-bound submissions answer immediately with busy errors;
        # nothing blocks even though no flush ever runs.
        for request_id in ids[4:]:
            with pytest.raises(ServerBusy):
                client.result(request_id)
            busy += 1
        assert busy == 6
        assert server.scheduler.pending_jobs == 4  # bounded, not 10
        del accepted


def test_slow_client_cannot_grow_queue_110_sessions(server_factory, wire_keys):
    """110 concurrent sessions × pipelined gates: queue stays bounded.

    Every connection pipelines ``burst`` gates without reading a single
    reply (the 'slow client'), yet the scheduler queue's high-water mark
    never exceeds ``connections × max_inflight`` — the server simply stops
    reading flooded sockets.  Afterwards every reply decrypts correctly,
    so backpressure cost latency, not answers.
    """
    secret, cloud = wire_keys
    sessions = 110
    burst = 3
    max_inflight = 2
    server = server_factory(
        max_inflight=max_inflight,
        max_pending_jobs=None,  # the *inflight* bound must do the limiting
        flush_interval=0.001,
    )

    # Record the queue's high-water mark from inside the event loop.
    high_water = [0]
    original_enqueue = server.scheduler._enqueue

    def recording_enqueue(client_id, job, **kwargs):
        original_enqueue(client_id, job, **kwargs)
        high_water[0] = max(high_water[0], server.scheduler.pending_jobs)

    server.scheduler._enqueue = recording_enqueue

    clients = []
    try:
        for _ in range(sessions):
            client = ServingClient(port=server.port, timeout=120.0)
            client.register_key(cloud)
            clients.append(client)
        expected = {}
        for index, client in enumerate(clients):
            for g in range(burst):
                a, b = (index + g) & 1, (index >> 1) & 1
                request = client.submit_gate(
                    "nand",
                    encrypt_bit(secret, a, rng=1000 + 10 * index + g),
                    encrypt_bit(secret, b, rng=5000 + 10 * index + g),
                )
                expected[(index, request)] = 1 - (a & b)
        # Only now does anyone read: all 330 results must come back right.
        for (index, request), want in expected.items():
            got = decrypt_bit(secret, clients[index].gate_result(request))
            assert got == want
    finally:
        for client in clients:
            client.close()

    assert len(expected) == sessions * burst
    assert high_water[0] <= sessions * max_inflight
    assert server.scheduler.pending_jobs == 0


def test_disconnect_with_pending_jobs_keeps_server_clean(server_factory, wire_keys):
    """A client that vanishes mid-burst leaves no orphaned queue state."""
    secret, cloud = wire_keys
    server = server_factory(flush_interval=0.2)
    client = ServingClient(port=server.port)
    client.register_key(cloud)
    for i in range(4):
        client.submit_gate(
            "and", encrypt_bit(secret, 1, rng=600 + i), encrypt_bit(secret, 0, rng=610 + i)
        )
    client.close()  # gone before any reply
    # The server drains the orphans and deregisters the namespace.
    import time

    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if not server._connections and server.scheduler.pending_jobs == 0:
            break
        time.sleep(0.05)
    assert server.scheduler.pending_jobs == 0
    assert not server._connections
    # And keeps serving.
    with ServingClient(port=server.port) as fresh:
        fresh.register_key(cloud)
        out = fresh.gate(
            "or", encrypt_bit(secret, 1, rng=620), encrypt_bit(secret, 0, rng=621)
        )
        assert decrypt_bit(secret, out) == 1

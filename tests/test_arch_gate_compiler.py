"""Tests for the TFHE-gate-to-DFG compiler."""

import pytest

from repro.arch.gate_compiler import compile_gate_dfg, gate_workloads
from repro.arch.ops import OpType
from repro.tfhe.params import PAPER_110BIT, TEST_SMALL


class TestWorkloads:
    def test_iteration_count(self):
        assert gate_workloads(PAPER_110BIT, 1).iterations == 630
        assert gate_workloads(PAPER_110BIT, 2).iterations == 315
        assert gate_workloads(PAPER_110BIT, 3).iterations == 210

    def test_bundle_patterns(self):
        assert gate_workloads(PAPER_110BIT, 1).bundle_patterns == 1
        assert gate_workloads(PAPER_110BIT, 4).bundle_patterns == 15

    def test_transform_butterflies_match_formula(self):
        # N/2 = 512-point transform: 256 butterflies per stage, 9 stages.
        assert gate_workloads(PAPER_110BIT, 1).transform_butterflies == 256 * 9

    def test_bk_bytes_grow_with_m(self):
        w1 = gate_workloads(PAPER_110BIT, 1)
        w3 = gate_workloads(PAPER_110BIT, 3)
        assert w3.bk_bytes_per_iteration > w1.bk_bytes_per_iteration

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ValueError):
            gate_workloads(PAPER_110BIT, 0)


class TestCompiledGraph:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_graph_is_acyclic_and_consistent(self, m):
        dfg = compile_gate_dfg(TEST_SMALL, unroll_factor=m)
        dfg.validate()

    def test_transform_counts_per_iteration(self):
        params = TEST_SMALL
        dfg = compile_gate_dfg(params, unroll_factor=1)
        counts = dfg.count_by_op()
        iterations = params.n
        assert counts[OpType.IFFT] == iterations * (params.k + 1) * params.l
        assert counts[OpType.FFT] == iterations * (params.k + 1)

    def test_forward_to_backward_ratio_matches_paper(self):
        """The paper quotes an FFT:IFFT invocation ratio of roughly 1:3-4."""
        counts = compile_gate_dfg(PAPER_110BIT, unroll_factor=1).count_by_op()
        ratio = counts[OpType.IFFT] / counts[OpType.FFT]
        assert 2.5 <= ratio <= 4.5

    def test_bundle_nodes_scale_with_m(self):
        c2 = compile_gate_dfg(TEST_SMALL, unroll_factor=2).count_by_op()
        c3 = compile_gate_dfg(TEST_SMALL, unroll_factor=3).count_by_op()
        per_iter_2 = c2[OpType.TGSW_SCALE] / gate_workloads(TEST_SMALL, 2).iterations
        per_iter_3 = c3[OpType.TGSW_SCALE] / gate_workloads(TEST_SMALL, 3).iterations
        assert per_iter_2 == 3
        assert per_iter_3 == 7

    def test_keyswitch_optional(self):
        with_ks = compile_gate_dfg(TEST_SMALL, include_keyswitch=True).count_by_op()
        without_ks = compile_gate_dfg(TEST_SMALL, include_keyswitch=False).count_by_op()
        assert OpType.KEYSWITCH in with_ks
        assert OpType.KEYSWITCH not in without_ks

    def test_memory_traffic_optional(self):
        with_mem = compile_gate_dfg(TEST_SMALL, include_memory_traffic=True).count_by_op()
        without_mem = compile_gate_dfg(TEST_SMALL, include_memory_traffic=False).count_by_op()
        assert OpType.HBM_TRANSFER in with_mem
        assert OpType.HBM_TRANSFER not in without_mem

    def test_node_count_shrinks_with_m_initially(self):
        n1 = len(compile_gate_dfg(PAPER_110BIT, unroll_factor=1))
        n2 = len(compile_gate_dfg(PAPER_110BIT, unroll_factor=2))
        assert n2 < n1

"""Tests for architecture descriptions and the Figure 7 MATCHA instance."""

import pytest

from repro.arch.architecture import (
    ArchitectureDescription,
    FunctionalUnitSpec,
    matcha_architecture,
)
from repro.arch.ops import OpType


class TestFunctionalUnitSpec:
    def test_cycles_for_includes_startup(self):
        unit = FunctionalUnitSpec("fft", 1, frozenset({OpType.FFT}), 128.0, startup_cycles=16.0)
        assert unit.cycles_for(2304) == pytest.approx(16.0 + 18.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            FunctionalUnitSpec("x", 0, frozenset({OpType.FFT}), 1.0)
        with pytest.raises(ValueError):
            FunctionalUnitSpec("x", 1, frozenset({OpType.FFT}), 0.0)


class TestArchitectureDescription:
    def test_duplicate_unit_names_rejected(self):
        unit = FunctionalUnitSpec("a", 1, frozenset({OpType.FFT}), 1.0)
        with pytest.raises(ValueError):
            ArchitectureDescription(name="x", clock_hz=1e9, units=(unit, unit))

    def test_unit_lookup(self):
        arch = matcha_architecture()
        assert OpType.IFFT in arch.unit_for_op(OpType.IFFT).ops
        assert arch.supports(OpType.KEYSWITCH)

    def test_unknown_op_raises(self):
        unit = FunctionalUnitSpec("a", 1, frozenset({OpType.FFT}), 1.0)
        arch = ArchitectureDescription(name="x", clock_hz=1e9, units=(unit,))
        with pytest.raises(KeyError):
            arch.unit_for_op(OpType.KEYSWITCH)

    def test_seconds_conversion(self):
        arch = matcha_architecture(clock_hz=2.0e9)
        assert arch.seconds(2.0e9) == pytest.approx(1.0)


class TestMatchaInstance:
    def test_figure7_unit_counts_single_slice(self):
        arch = matcha_architecture(pipeline_slices=1)
        units = arch.unit_map()
        assert units["ifft_core"].count == 4
        assert units["fft_core"].count == 1
        assert units["tgsw_cluster"].count == 1
        assert units["ep_mac"].count == 1

    def test_slices_scale_per_pipeline_units_only(self):
        arch = matcha_architecture(pipeline_slices=8)
        units = arch.unit_map()
        assert units["ifft_core"].count == 32
        assert units["fft_core"].count == 8
        assert units["poly_unit"].count == 1
        assert units["hbm"].count == 1

    def test_hbm_throughput_matches_bandwidth(self):
        arch = matcha_architecture(clock_hz=2.0e9, hbm_bandwidth_bytes_per_s=640.0e9)
        hbm = arch.unit_map()["hbm"]
        assert hbm.throughput_per_cycle == pytest.approx(320.0)

    def test_every_gate_op_is_supported(self):
        arch = matcha_architecture()
        for op in OpType:
            assert arch.supports(op), op

    def test_invalid_slice_count_rejected(self):
        with pytest.raises(ValueError):
            matcha_architecture(pipeline_slices=0)

    def test_throughput_scale_scales_lanes(self):
        base = matcha_architecture(throughput_scale=1.0).unit_map()["ep_mac"]
        doubled = matcha_architecture(throughput_scale=2.0).unit_map()["ep_mac"]
        assert doubled.throughput_per_cycle == pytest.approx(2 * base.throughput_per_cycle)

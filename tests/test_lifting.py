"""Tests for dyadic quantisation and the multiplication-less lifting rotation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lifting import DyadicCoefficient, LiftingRotation, LiftingRotationArray


class TestDyadicCoefficient:
    def test_paper_example(self):
        """9/128 from Figure 3(b): two shift/add terms, 1/2^4 + 1/2^7."""
        coeff = DyadicCoefficient(numerator=9, beta=7)
        assert coeff.value == 9 / 128
        assert coeff.shift_add_terms() == [(1, 4), (1, 7)]
        assert coeff.adder_count() == 2

    @given(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False), st.integers(min_value=1, max_value=40))
    def test_quantisation_error_bound(self, value, beta):
        coeff = DyadicCoefficient.from_float(value, beta)
        assert coeff.quantisation_error(value) <= 2.0 ** (-beta - 1) + 1e-15

    def test_apply_rounds_product(self):
        coeff = DyadicCoefficient.from_float(0.25, 8)
        assert coeff.apply(np.array([100, 101, -7])).tolist() == [25.0, 25.0, -2.0]

    @given(st.integers(min_value=-(2**30), max_value=2**30))
    @settings(max_examples=50)
    def test_shift_add_matches_rounded_product(self, operand):
        coeff = DyadicCoefficient.from_float(math.sin(1.0), 16)
        exact = float(coeff.apply(operand))
        shift_add = coeff.apply_shift_add(operand)
        # Floor-per-term vs round-at-the-end: bounded by the term count.
        assert abs(shift_add - exact) <= coeff.adder_count() + 1

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            DyadicCoefficient.from_float(0.5, -1)


class TestLiftingRotationScalar:
    @pytest.mark.parametrize("angle", [0.1, 0.7, 1.3, 2.0, 3.0, -0.4, -2.5, 5.9])
    def test_forward_approximates_rotation(self, angle):
        rotation = LiftingRotation(angle=angle, beta=24)
        re, im = 1_000_000, -250_000
        got_re, got_im = rotation.forward(re, im)
        expect_re = re * math.cos(angle) - im * math.sin(angle)
        expect_im = re * math.sin(angle) + im * math.cos(angle)
        assert abs(got_re - expect_re) <= 64
        assert abs(got_im - expect_im) <= 64

    @pytest.mark.parametrize("angle", [0.0, 0.3, 1.1, 2.2, -1.8, 3.14159, 4.7])
    @pytest.mark.parametrize("beta", [4, 8, 16])
    def test_perfect_reconstruction(self, angle, beta):
        """Lifting with rounding is exactly invertible whatever the quantisation."""
        rotation = LiftingRotation(angle=angle, beta=beta)
        for re, im in [(0, 0), (12345, -999), (-2**20, 2**19), (7, 3)]:
            fw = rotation.forward(re, im)
            assert rotation.inverse(*fw) == (re, im)

    def test_quarter_turn_reduction_keeps_coefficients_small(self):
        rotation = LiftingRotation(angle=3.0, beta=32)
        assert abs(rotation.tan_half.value) <= math.tan(math.pi / 8) + 1e-6
        assert abs(rotation.sin.value) <= math.sin(math.pi / 4) + 1e-6

    def test_adder_count_positive_for_nontrivial_angle(self):
        assert LiftingRotation(angle=0.9, beta=16).adder_count() > 0


class TestLiftingRotationArray:
    def test_matches_scalar_implementation(self):
        angles = np.linspace(-3.0, 3.0, 17)
        array_rotation = LiftingRotationArray(angles, beta=20)
        re = np.full(angles.shape, 54321.0)
        im = np.full(angles.shape, -11111.0)
        got_re, got_im = array_rotation.forward(re, im)
        for idx, angle in enumerate(angles):
            scalar = LiftingRotation(angle=float(angle), beta=20)
            s_re, s_im = scalar.forward(54321, -11111)
            assert abs(got_re[idx] - s_re) <= 1
            assert abs(got_im[idx] - s_im) <= 1

    def test_vectorised_perfect_reconstruction(self):
        rng = np.random.default_rng(5)
        angles = rng.uniform(-6.0, 6.0, 64)
        rotation = LiftingRotationArray(angles, beta=12)
        re = np.round(rng.uniform(-1e6, 1e6, 64))
        im = np.round(rng.uniform(-1e6, 1e6, 64))
        fw_re, fw_im = rotation.forward(re, im)
        back_re, back_im = rotation.inverse(fw_re, fw_im)
        assert np.array_equal(back_re, re)
        assert np.array_equal(back_im, im)

    def test_rotation_accuracy_improves_with_beta(self):
        angles = np.linspace(0.05, 2.9, 33)
        re = np.full(angles.shape, 1.0e6)
        im = np.zeros(angles.shape)
        errors = []
        for beta in (4, 10, 20):
            rotation = LiftingRotationArray(angles, beta=beta)
            got_re, got_im = rotation.forward(re, im)
            expect_re = 1.0e6 * np.cos(angles)
            expect_im = 1.0e6 * np.sin(angles)
            errors.append(float(np.max(np.abs(got_re - expect_re) + np.abs(got_im - expect_im))))
        assert errors[0] > errors[1] > errors[2]

    def test_zero_angle_is_identity(self):
        rotation = LiftingRotationArray(np.zeros(4), beta=16)
        re, im = rotation.forward(np.array([1.0, 2, 3, 4]), np.array([5.0, 6, 7, 8]))
        assert np.array_equal(re, [1, 2, 3, 4])
        assert np.array_equal(im, [5, 6, 7, 8])

    def test_length(self):
        assert len(LiftingRotationArray(np.zeros(7), beta=8)) == 7

"""Cross-engine property suite: every registered backend honours its contract.

The engine registry now carries capabilities (error model, priority,
availability, device), and the compiled/CuPy fast paths promise specific
numerical contracts relative to the ``"double"`` reference:

* ``"exact"`` engines agree with the naive ground truth bit for bit;
* ``"fft64"`` engines (double, compiled) are **bit-identical to each
  other** — the compiled fast path may be faster, never different;
* ``"fft64-device"`` engines (cupy) match after decryption (device FFT
  kernels may round the last bit differently);
* ``"approx"`` engines only owe functional correctness within the
  Figure-8 error budget.

Every test here parameterizes over **all registered engines** — including
optional-dependency backends — and skips unavailable ones with the
registry's own reason string, so the same suite exercises the CuPy engine
on a GPU machine and documents its absence elsewhere.  Coverage spans the
full stack: raw external products, gate bootstrap + keyswitch on both
rotators (classical CMux and BKU m=2), programmable-bootstrap LUTs,
worker-pool sharding under a non-default engine, the auto-selection layer,
and the serving front's ``unsupported_engine`` error path.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.runtime import FheContext, WorkerPool
from repro.runtime.context import resolve_engine
from repro.runtime.protocol import ServerError, ServingClient
from repro.runtime.scheduler import SchedulerStats, execute_rows
from repro.tfhe.bootstrap import context_programmable_bootstrap
from repro.tfhe.gates import PLAINTEXT_GATES, decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.lwe import decrypt_digit, encrypt_digit
from repro.tfhe.params import TEST_PBS, TEST_TINY, DigitEncoding
from repro.tfhe.tgsw import tgsw_encrypt, tgsw_external_product, tgsw_transform
from repro.tfhe.tlwe import tlwe_encrypt, tlwe_key_generate, tlwe_phase
from repro.tfhe.torus import double_to_torus32, torus_distance
from repro.tfhe.transform import (
    DoubleFFTNegacyclicTransform,
    NaiveNegacyclicTransform,
    TransformSpec,
    available_engines,
    engine_entry,
    make_transform,
    select_best_engine,
    usable_engines,
)

pytestmark = pytest.mark.filterwarnings("error::UserWarning")

#: Frozen at collection time: the suite runs over whatever is registered.
ALL_ENGINES = tuple(sorted(available_engines()))

#: Non-default constructor options needed to make an engine exact enough
#: for the functional assertions (the approx engine's default twiddle
#: quantization is part of what bench_fig8 studies, not what we test here).
ENGINE_KWARGS = {"approx": {"twiddle_bits": 64}}


def _engine_or_skip(kind: str, degree: int):
    reason = available_engines()[kind]
    if reason is not None:
        pytest.skip(f"engine {kind!r} unavailable: {reason}")
    return make_transform(kind, degree, **ENGINE_KWARGS.get(kind, {}))


def _error_model(kind: str) -> str:
    return engine_entry(kind).error_model


def _bit_identical(xs, ys) -> bool:
    return all(
        np.array_equal(x.a, y.a) and int(x.b) == int(y.b) for x, y in zip(xs, ys)
    )


# --------------------------------------------------------------------------- #
# registry capability layer                                                   #
# --------------------------------------------------------------------------- #


class TestCapabilityReporting:
    def test_optional_backends_register_with_reasons(self):
        engines = available_engines()
        # The compiled fast path always registers AND is always usable (its
        # NumPy fallback needs nothing optional); cupy registers even when
        # it cannot run, with a human-readable reason.
        assert engines["compiled"] is None
        assert "cupy" in engines
        if engines["cupy"] is not None:
            assert engines["cupy"].startswith("cupy:")

    def test_usable_engines_is_the_available_subset(self):
        engines = available_engines()
        assert usable_engines() == [k for k, r in engines.items() if r is None]

    def test_selection_prefers_priority_within_family(self):
        # cupy (prio 20) > compiled (10) > double (0) among fft64-compatible.
        expected = "cupy" if "cupy" in usable_engines() else "compiled"
        assert select_best_engine() == expected
        assert select_best_engine(error_model="fft64") == expected
        assert select_best_engine(error_model="fft64", allow_device=False) == "compiled"
        assert select_best_engine(for_spec=TransformSpec.from_options("double")) == (
            expected
        )

    def test_exact_and_approx_select_within_themselves(self):
        assert select_best_engine(error_model="exact") == "naive"
        assert select_best_engine(error_model="approx") == "approx"

    def test_no_engine_for_unknown_error_model(self):
        with pytest.raises(ValueError, match="no available engine"):
            select_best_engine(error_model="fft128")

    def test_unavailable_engine_fails_with_reason(self):
        unavailable = {k: r for k, r in available_engines().items() if r is not None}
        if not unavailable:
            pytest.skip("every registered engine is usable on this machine")
        kind, reason = next(iter(unavailable.items()))
        with pytest.raises(ValueError, match="registered but unavailable"):
            make_transform(kind, TEST_TINY.N)

    def test_cross_engine_kwarg_hint(self):
        # A kwarg that belongs to a *different* engine names its owner.
        with pytest.raises(ValueError, match=r"'block_rows' is accepted by cupy"):
            make_transform("compiled", TEST_TINY.N, block_rows=4)

    def test_compiled_spec_round_trips_options(self):
        engine = make_transform("compiled", TEST_TINY.N, block_size=1024)
        spec = engine.spec()
        assert spec.kind == "compiled"
        assert spec.options()["block_size"] == 1024
        rebuilt = TransformSpec.from_json(spec.to_json()).create(TEST_TINY.N)
        assert rebuilt.engine_kind == "compiled"
        assert rebuilt.spec() == spec


# --------------------------------------------------------------------------- #
# external product conformance                                                #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def ep_setup():
    """TGSW/TLWE material built once under the naive engine, shared by all."""
    naive = NaiveNegacyclicTransform(TEST_TINY.N)
    key = tlwe_key_generate(TEST_TINY.tlwe, rng=81)
    message = np.full(TEST_TINY.N, double_to_torus32(0.125), dtype=np.int32)
    tgsw = tgsw_encrypt(key, 1, TEST_TINY.tgsw, naive, rng=82)
    tlwe = tlwe_encrypt(key, message, naive, rng=83)
    double = DoubleFFTNegacyclicTransform(TEST_TINY.N)
    reference = {
        "exact": tgsw_external_product(tgsw_transform(tgsw, naive), tlwe, naive),
        "fft64": tgsw_external_product(tgsw_transform(tgsw, double), tlwe, double),
    }
    return naive, key, message, tgsw, tlwe, reference


class TestExternalProductConformance:
    @pytest.mark.parametrize("kind", ALL_ENGINES)
    def test_external_product_honours_error_model(self, ep_setup, kind):
        naive, key, message, tgsw, tlwe, reference = ep_setup
        engine = _engine_or_skip(kind, TEST_TINY.N)
        product = tgsw_external_product(tgsw_transform(tgsw, engine), tlwe, engine)

        model = _error_model(kind)
        if model == "exact":
            assert np.array_equal(product.data, reference["exact"].data)
        elif model == "fft64":
            assert np.array_equal(product.data, reference["fft64"].data)
        elif model == "fft64-device":
            drift = torus_distance(
                tlwe_phase(key, product, naive),
                tlwe_phase(key, reference["fft64"], naive),
            )
            assert drift.max() < 1e-6  # same arithmetic, last-bit FFT rounding
        # Every model, including approx, still owes functional correctness.
        phase = tlwe_phase(key, product, naive)
        assert torus_distance(phase, message).max() < 2e-2


# --------------------------------------------------------------------------- #
# gate bootstrap + keyswitch on both rotators                                 #
# --------------------------------------------------------------------------- #


@functools.lru_cache(maxsize=None)
def _gate_keys(unroll_factor: int):
    """TEST_TINY key material per rotator (engine-independent, fixed seed)."""
    return generate_keys(
        TEST_TINY,
        DoubleFFTNegacyclicTransform(TEST_TINY.N),
        unroll_factor=unroll_factor,
        rng=90 + unroll_factor,
        eager=False,
    )


def _gate_sweep(secret, context, name: str):
    out = []
    for bit_a in (0, 1):
        for bit_b in (0, 1):
            ca = encrypt_bit(secret, bit_a, rng=300 + bit_a)
            cb = encrypt_bit(secret, bit_b, rng=310 + bit_b)
            out.append((bit_a, bit_b, context.evaluator().gate(name, ca, cb)))
    return out


class TestGateBootstrapConformance:
    @pytest.mark.parametrize("unroll", (1, 2), ids=("cmux", "bku-m2"))
    @pytest.mark.parametrize("kind", ALL_ENGINES)
    def test_gate_and_keyswitch_per_rotator(self, kind, unroll):
        secret, cloud = _gate_keys(unroll)
        engine = _engine_or_skip(kind, cloud.params.N)
        context = FheContext(cloud, engine=engine)
        results = _gate_sweep(secret, context, "nand")

        # Functional correctness for every engine and rotator (the gate
        # bootstrap path runs blind rotation AND the keyswitch).
        for bit_a, bit_b, sample in results:
            assert decrypt_bit(secret, sample) == PLAINTEXT_GATES["nand"](bit_a, bit_b)

        model = _error_model(kind)
        if model in ("fft64", "fft64-device"):
            ref_context = FheContext(
                cloud, engine=DoubleFFTNegacyclicTransform(cloud.params.N)
            )
            reference = _gate_sweep(secret, ref_context, "nand")
            samples = [s for _, _, s in results]
            ref_samples = [s for _, _, s in reference]
            if model == "fft64":
                assert _bit_identical(samples, ref_samples)
            else:
                assert all(
                    decrypt_bit(secret, x) == decrypt_bit(secret, y)
                    for x, y in zip(samples, ref_samples)
                )


# --------------------------------------------------------------------------- #
# programmable-bootstrap LUTs                                                 #
# --------------------------------------------------------------------------- #


@functools.lru_cache(maxsize=None)
def _pbs_keys(unroll_factor: int):
    return generate_keys(
        TEST_PBS,
        DoubleFFTNegacyclicTransform(TEST_PBS.N),
        unroll_factor=unroll_factor,
        rng=95 + unroll_factor,
        eager=False,
    )


class TestProgrammableBootstrapConformance:
    @pytest.mark.parametrize("unroll", (1, 2), ids=("cmux", "bku-m2"))
    @pytest.mark.parametrize("kind", ALL_ENGINES)
    def test_lut_per_engine_and_rotator(self, kind, unroll):
        secret, cloud = _pbs_keys(unroll)
        engine = _engine_or_skip(kind, cloud.params.N)
        context = FheContext(cloud, engine=engine)
        encoding = DigitEncoding(message_bits=2)
        table = [(v * v) % encoding.space for v in range(encoding.space)]

        outputs = []
        for value in range(encoding.space):
            sample = encrypt_digit(secret.lwe_key, value, encoding, rng=400 + value)
            out = context_programmable_bootstrap(context, sample, table, encoding)
            assert decrypt_digit(secret.lwe_key, out, encoding) == table[value]
            outputs.append(out)

        if _error_model(kind) == "fft64":
            ref_context = FheContext(
                cloud, engine=DoubleFFTNegacyclicTransform(cloud.params.N)
            )
            for value, out in zip(range(encoding.space), outputs):
                sample = encrypt_digit(
                    secret.lwe_key, value, encoding, rng=400 + value
                )
                ref = context_programmable_bootstrap(
                    ref_context, sample, table, encoding
                )
                assert np.array_equal(out.a, ref.a) and int(out.b) == int(ref.b)


# --------------------------------------------------------------------------- #
# worker-pool sharding under a non-default engine                             #
# --------------------------------------------------------------------------- #


class TestWorkerPoolEngines:
    @pytest.mark.parametrize("kind", ALL_ENGINES)
    def test_sharded_flush_matches_inline_per_engine(self, kind):
        secret, cloud = _gate_keys(1)
        engine = _engine_or_skip(kind, cloud.params.N)
        context = FheContext(cloud, engine=engine)
        rows = []
        for i in range(6):
            ca = encrypt_bit(secret, i & 1, rng=500 + 2 * i)
            cb = encrypt_bit(secret, (i >> 1) & 1, rng=501 + 2 * i)
            rows.append(("gate", "nand", ca, cb))
        inline = execute_rows(context, rows, stats=SchedulerStats())
        with WorkerPool(2, task_timeout=120.0) as pool:
            sharded = pool.run_rows("client", context, rows, SchedulerStats())
        # Workers rebuild the engine from the spec recorded in the shared
        # segment, so sharding is bit-identical to the inline flush even for
        # non-default (and device) engines.
        assert _bit_identical(sharded, inline)

    def test_auto_engine_resolves_through_selection(self):
        _, cloud = _gate_keys(1)
        engine = resolve_engine(cloud, engine="auto")
        assert engine.engine_kind == select_best_engine(for_spec=cloud.transform_spec)


# --------------------------------------------------------------------------- #
# serving front: engine requests over the wire                                #
# --------------------------------------------------------------------------- #


class TestServerEngineRequests:
    def test_unknown_engine_rejected_with_catalog(self, server_factory):
        secret, cloud = _gate_keys(1)
        server = server_factory()
        with ServingClient(port=server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.register_key(cloud, engine="fictional")
            assert excinfo.value.kind == "unsupported_engine"
            assert "registered engines" in str(excinfo.value)
            assert "compiled" in str(excinfo.value)

    def test_unavailable_engine_rejected_with_reason(self, server_factory):
        unavailable = {k: r for k, r in available_engines().items() if r is not None}
        if not unavailable:
            pytest.skip("every registered engine is usable on this machine")
        kind, reason = next(iter(unavailable.items()))
        secret, cloud = _gate_keys(1)
        server = server_factory()
        with ServingClient(port=server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.register_key(cloud, engine=kind)
            assert excinfo.value.kind == "unsupported_engine"
            assert reason in str(excinfo.value)

    def test_requested_engine_used_and_reported(self, server_factory):
        secret, cloud = _gate_keys(1)
        server = server_factory()
        with ServingClient(port=server.port) as client:
            info = client.register_key(cloud, engine="compiled")
            assert info["engine_kind"] == "compiled"
            out = client.gate(
                "nand", encrypt_bit(secret, 1, rng=1), encrypt_bit(secret, 1, rng=2)
            )
            assert decrypt_bit(secret, out) == 0

    def test_auto_engine_reports_selection(self, server_factory):
        secret, cloud = _gate_keys(1)
        server = server_factory()
        with ServingClient(port=server.port) as client:
            info = client.register_key(cloud, engine="auto")
            assert info["engine_kind"] == select_best_engine(
                for_spec=cloud.transform_spec
            )

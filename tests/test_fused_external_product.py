"""Bit-identity of the fused external-product kernel vs the pre-fusion path.

The PR-4 fusion (packed ``(rows, k+1, N/2)`` key tensors, one stacked
forward / ``spectrum_contract`` / stacked backward per external product, the
``(X^p − 1)·ACC`` rotate-and-subtract folded into the decomposition, shared
:class:`~repro.tfhe.tgsw.BootstrapWorkspace` scratch) must be **bit-identical**
to the historical loop for every engine and both rotators.  These tests pin
that down against the reference implementations kept in-tree
(``tgsw_*_reference`` / ``rotate_reference`` / ``keyswitch_apply_reference``),
including rotation edge powers and workspace aliasing across calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bku import UnrolledBlindRotator, generate_unrolled_bootstrapping_key
from repro.tfhe.bootstrap import CmuxBlindRotator
from repro.tfhe.keys import generate_keys, generate_secret_key
from repro.tfhe.keyswitch import (
    keyswitch_apply,
    keyswitch_apply_batch,
    keyswitch_apply_reference,
)
from repro.tfhe.lwe import LweBatch, gate_message, lwe_encrypt
from repro.tfhe.params import TEST_TINY
from repro.tfhe.polynomial import (
    poly_mul_by_xk,
    poly_mul_by_xk_minus_one,
    poly_mul_by_xk_minus_one_powers,
    poly_mul_by_xk_powers,
    poly_sub,
)
from repro.tfhe.tgsw import (
    BootstrapWorkspace,
    gadget_decompose_rows,
    tgsw_batch_cmux,
    tgsw_batch_cmux_reference,
    tgsw_batch_cmux_rotate,
    tgsw_batch_external_product,
    tgsw_batch_external_product_reference,
    tgsw_cmux,
    tgsw_cmux_reference,
    tgsw_cmux_rotate,
    tgsw_encrypt,
    tgsw_external_product,
    tgsw_external_product_reference,
    tgsw_transform,
)
from repro.tfhe.tlwe import (
    TlweBatch,
    TlweSample,
    tlwe_batch_mul_by_xk_minus_one,
    tlwe_batch_rotate,
    tlwe_batch_sample_extract,
    tlwe_batch_sub,
    tlwe_encrypt,
    tlwe_key_generate,
    tlwe_mul_by_xk_minus_one,
    tlwe_rotate,
    tlwe_sample_extract,
    tlwe_sub,
)
from repro.tfhe.transform import make_transform

PARAMS = TEST_TINY
ENGINES = ("naive", "double", "approx")
#: Rotation edge powers: identity, boundary, negacyclic wrap, full cycle.
EDGE_POWERS = (0, 1, PARAMS.N - 1, PARAMS.N, PARAMS.N + 3, 2 * PARAMS.N - 1, 2 * PARAMS.N)


def _sample_equal(a, b) -> bool:
    return bool(np.array_equal(np.asarray(a.data), np.asarray(b.data)))


@pytest.fixture(scope="module", params=ENGINES)
def setup(request):
    transform = make_transform(request.param, PARAMS.N)
    key = tlwe_key_generate(PARAMS.tlwe, rng=51)
    selector = tgsw_transform(
        tgsw_encrypt(key, 1, PARAMS.tgsw, transform, rng=52), transform
    )
    rng = np.random.default_rng(53)
    message = rng.integers(-(2**31), 2**31, PARAMS.N).astype(np.int32)
    tlwe = tlwe_encrypt(key, message, transform, rng=54)
    return transform, key, selector, tlwe


class TestExternalProductBitIdentity:
    def test_scalar_matches_reference(self, setup):
        transform, _, selector, tlwe = setup
        fused = tgsw_external_product(selector, tlwe, transform)
        reference = tgsw_external_product_reference(selector, tlwe, transform)
        assert _sample_equal(fused, reference)

    def test_batch_matches_reference_and_scalar(self, setup):
        transform, key, selector, _ = setup
        batch = TlweBatch.from_samples(
            [
                tlwe_encrypt(
                    key,
                    np.full(PARAMS.N, np.int32(1000 * (i + 1)), dtype=np.int32),
                    transform,
                    rng=60 + i,
                )
                for i in range(3)
            ]
        )
        fused = tgsw_batch_external_product(selector, batch, transform)
        reference = tgsw_batch_external_product_reference(selector, batch, transform)
        assert np.array_equal(fused.data, reference.data)
        for i in range(batch.batch_size):
            scalar = tgsw_external_product(selector, batch[i], transform)
            assert np.array_equal(fused.data[i], scalar.data)

    def test_cmux_matches_reference(self, setup):
        transform, _, selector, tlwe = setup
        other = TlweSample(np.roll(tlwe.data, 7, axis=-1).astype(np.int32))
        fused = tgsw_cmux(selector, tlwe, other, transform)
        reference = tgsw_cmux_reference(selector, tlwe, other, transform)
        assert _sample_equal(fused, reference)


class TestCmuxRotateEdgePowers:
    @pytest.mark.parametrize("power", EDGE_POWERS)
    def test_fused_rotate_step_matches_rotate_plus_cmux(self, setup, power):
        transform, _, selector, tlwe = setup
        fused = tgsw_cmux_rotate(selector, tlwe, power, transform)
        rotated = tlwe_rotate(tlwe, power)
        reference = tgsw_cmux_reference(selector, rotated, tlwe, transform)
        assert _sample_equal(fused, reference)

    def test_batch_rotate_step_matches_reference(self, setup):
        transform, key, selector, _ = setup
        batch = TlweBatch.from_samples(
            [
                tlwe_encrypt(
                    key,
                    np.full(PARAMS.N, np.int32(7000 + i), dtype=np.int32),
                    transform,
                    rng=70 + i,
                )
                for i in range(len(EDGE_POWERS))
            ]
        )
        powers = np.array(EDGE_POWERS, dtype=np.int64)
        fused = tgsw_batch_cmux_rotate(selector, batch, powers, transform)
        rotated = tlwe_batch_rotate(batch, powers)
        reference = tgsw_batch_cmux_reference(selector, rotated, batch, transform)
        assert np.array_equal(fused.data, reference.data)


class TestBlindRotationBitIdentity:
    def test_cmux_rotator_fused_vs_reference(self, setup):
        transform, _, _, _ = setup
        secret, cloud = generate_keys(
            PARAMS, make_transform(transform.engine_kind, PARAMS.N), rng=81
        )
        rotator = cloud.blind_rotator
        assert isinstance(rotator, CmuxBlindRotator)
        rng = np.random.default_rng(82)
        bara = rng.integers(0, 2 * PARAMS.N, PARAMS.n, dtype=np.int64)
        acc = TlweSample(
            rng.integers(-(2**31), 2**31, (PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        )
        fused = rotator.rotate(acc.copy(), bara)
        reference = rotator.rotate_reference(acc.copy(), bara)
        assert _sample_equal(fused, reference)

        batch_bara = rng.integers(0, 2 * PARAMS.N, (3, PARAMS.n), dtype=np.int64)
        batch = TlweBatch(
            rng.integers(-(2**31), 2**31, (3, PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        )
        fused_batch = rotator.rotate_batch(batch.copy(), batch_bara)
        reference_batch = rotator.rotate_batch_reference(batch.copy(), batch_bara)
        assert np.array_equal(fused_batch.data, reference_batch.data)

    def test_unrolled_rotator_fused_vs_reference(self, setup):
        transform, _, _, _ = setup
        engine = make_transform(transform.engine_kind, PARAMS.N)
        secret = generate_secret_key(PARAMS, rng=91)
        key = generate_unrolled_bootstrapping_key(secret, engine, 2, rng=92)
        rotator = UnrolledBlindRotator(key, engine)
        rng = np.random.default_rng(93)
        bara = rng.integers(0, 2 * PARAMS.N, PARAMS.n, dtype=np.int64)
        acc = TlweSample(
            rng.integers(-(2**31), 2**31, (PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        )
        fused = rotator.rotate(acc.copy(), bara)
        reference = rotator.rotate_reference(acc.copy(), bara)
        assert _sample_equal(fused, reference)

        batch_bara = rng.integers(0, 2 * PARAMS.N, (2, PARAMS.n), dtype=np.int64)
        batch = TlweBatch(
            rng.integers(-(2**31), 2**31, (2, PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        )
        fused_batch = rotator.rotate_batch(batch.copy(), batch_bara)
        reference_batch = rotator.rotate_batch_reference(batch.copy(), batch_bara)
        assert np.array_equal(fused_batch.data, reference_batch.data)


class TestWorkspace:
    def test_results_independent_of_workspace_reuse(self, setup):
        transform, key, selector, tlwe = setup
        workspace = BootstrapWorkspace()
        first_fresh = tgsw_external_product(selector, tlwe, transform)
        first_shared = tgsw_external_product(selector, tlwe, transform, workspace)
        assert _sample_equal(first_fresh, first_shared)
        other = tlwe_encrypt(
            key, np.full(PARAMS.N, np.int32(-12345), dtype=np.int32), transform, rng=95
        )
        second_shared = tgsw_external_product(selector, other, transform, workspace)
        second_fresh = tgsw_external_product(selector, other, transform)
        assert _sample_equal(second_fresh, second_shared)

    def test_outputs_do_not_alias_workspace_buffers(self, setup):
        transform, key, selector, tlwe = setup
        workspace = BootstrapWorkspace()
        first = tgsw_external_product(selector, tlwe, transform, workspace)
        snapshot = first.data.copy()
        other = tlwe_encrypt(
            key, np.full(PARAMS.N, np.int32(31337), dtype=np.int32), transform, rng=96
        )
        # A second call of the same shape reuses every workspace buffer; the
        # first result must remain untouched.
        tgsw_external_product(selector, other, transform, workspace)
        tgsw_cmux_rotate(selector, other, 5, transform, workspace)
        assert np.array_equal(first.data, snapshot)

    def test_buffer_count_stabilises_across_same_shape_calls(self, setup):
        transform, _, selector, tlwe = setup
        workspace = BootstrapWorkspace()
        tgsw_cmux_rotate(selector, tlwe, 3, transform, workspace)
        count = workspace.buffer_count
        assert count > 0
        assert workspace.nbytes > 0
        for power in (1, PARAMS.N - 1, PARAMS.N):
            tgsw_cmux_rotate(selector, tlwe, power, transform, workspace)
        assert workspace.buffer_count == count  # no growth, buffers reused

    def test_scratch_memory_is_bounded_across_many_shapes(self, setup):
        transform, _, selector, _ = setup
        workspace = BootstrapWorkspace()
        rng = np.random.default_rng(113)
        # Many distinct batch widths (a long-lived server under varying
        # load): the workspace must evict old shapes, not grow forever.
        for width in range(1, 3 * BootstrapWorkspace.MAX_SHAPES):
            batch = TlweBatch(
                rng.integers(
                    -(2**31), 2**31, (width, PARAMS.k + 1, PARAMS.N)
                ).astype(np.int32)
            )
            tgsw_batch_external_product(selector, batch, transform, workspace)
        assert len(workspace._decompose) <= BootstrapWorkspace.MAX_SHAPES


class TestLogicalCounters:
    @pytest.mark.parametrize("kind", ENGINES)
    def test_external_product_reports_per_polynomial_transforms(self, kind):
        transform = make_transform(kind, PARAMS.N)
        key = tlwe_key_generate(PARAMS.tlwe, rng=97)
        selector = tgsw_transform(
            tgsw_encrypt(key, 1, PARAMS.tgsw, transform, rng=98), transform
        )
        tlwe = tlwe_encrypt(
            key, np.full(PARAMS.N, np.int32(77), dtype=np.int32), transform, rng=99
        )
        rows = (PARAMS.k + 1) * PARAMS.l
        cols = PARAMS.k + 1
        transform.reset_stats()
        tgsw_external_product(selector, tlwe, transform)
        # The fused kernel runs one stacked forward/backward but must keep
        # reporting the logical per-digit-plane / per-column counts of the
        # historical loop (the Figure-1 breakdown contract).
        assert transform.stats.forward_calls == rows
        assert transform.stats.backward_calls == cols
        assert transform.stats.pointwise_ops == 2 * rows * cols

    def test_fused_rotate_step_counts_match_reference_counts(self):
        transform = make_transform("double", PARAMS.N)
        reference_engine = make_transform("double", PARAMS.N)
        key = tlwe_key_generate(PARAMS.tlwe, rng=101)
        selector = tgsw_transform(
            tgsw_encrypt(key, 1, PARAMS.tgsw, transform, rng=102), transform
        )
        selector_ref = tgsw_transform(
            tgsw_encrypt(key, 1, PARAMS.tgsw, reference_engine, rng=102),
            reference_engine,
        )
        tlwe = tlwe_encrypt(
            key, np.full(PARAMS.N, np.int32(5), dtype=np.int32), transform, rng=103
        )
        transform.reset_stats()
        reference_engine.reset_stats()
        tgsw_cmux_rotate(selector, tlwe, 9, transform)
        rotated = tlwe_rotate(tlwe, 9)
        tgsw_cmux_reference(selector_ref, rotated, tlwe, reference_engine)
        assert transform.stats.forward_calls == reference_engine.stats.forward_calls
        assert transform.stats.backward_calls == reference_engine.stats.backward_calls
        assert transform.stats.pointwise_ops == reference_engine.stats.pointwise_ops


class TestDigitStack:
    def test_gadget_decompose_rows_matches_per_block_reference(self):
        from repro.tfhe.tgsw import gadget_decompose

        rng = np.random.default_rng(104)
        for batch_shape in ((), (3,)):
            data = rng.integers(
                -(2**31), 2**31, batch_shape + (PARAMS.k + 1, PARAMS.N)
            ).astype(np.int32)
            stack = gadget_decompose_rows(data, PARAMS.tgsw)
            for block in range(PARAMS.k + 1):
                digits = gadget_decompose(data[..., block, :], PARAMS.tgsw)
                for j in range(PARAMS.l):
                    row = block * PARAMS.l + j
                    assert np.array_equal(stack[row], digits[j])

    def test_fused_rotated_difference_matches_decompose_of_difference(self):
        from repro.tfhe.tgsw import _decompose_rotated_difference

        rng = np.random.default_rng(105)
        data = rng.integers(-(2**31), 2**31, (PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        for power in EDGE_POWERS:
            fused = _decompose_rotated_difference(data, power, PARAMS.tgsw, None)
            difference = poly_mul_by_xk_minus_one(data, power)
            reference = gadget_decompose_rows(difference, PARAMS.tgsw)
            assert np.array_equal(fused, reference), f"power {power}"


class TestVectorisedTlwe:
    @pytest.mark.parametrize("power", EDGE_POWERS)
    def test_tlwe_rotate_matches_per_row_loop(self, power):
        rng = np.random.default_rng(106)
        sample = TlweSample(
            rng.integers(-(2**31), 2**31, (PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        )
        vectorised = tlwe_rotate(sample, power)
        per_row = np.stack(
            [poly_mul_by_xk(sample.data[row], power) for row in range(PARAMS.k + 1)]
        ).astype(np.int32)
        assert np.array_equal(vectorised.data, per_row)

    @pytest.mark.parametrize("power", EDGE_POWERS)
    def test_mul_by_xk_minus_one_matches_rotate_then_subtract(self, power):
        rng = np.random.default_rng(107)
        sample = TlweSample(
            rng.integers(-(2**31), 2**31, (PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        )
        fused = tlwe_mul_by_xk_minus_one(sample, power)
        reference = tlwe_sub(tlwe_rotate(sample, power), sample)
        assert np.array_equal(fused.data, reference.data)

    def test_poly_minus_one_matches_poly_sub_for_int64(self):
        rng = np.random.default_rng(108)
        poly = rng.integers(-(2**40), 2**40, PARAMS.N)
        for power in EDGE_POWERS:
            fused = poly_mul_by_xk_minus_one(poly, power)
            reference = poly_sub(poly_mul_by_xk(poly, power), poly)
            assert np.array_equal(fused, reference)

    def test_batch_minus_one_matches_batch_rotate_then_subtract(self):
        rng = np.random.default_rng(109)
        batch = TlweBatch(
            rng.integers(
                -(2**31), 2**31, (len(EDGE_POWERS), PARAMS.k + 1, PARAMS.N)
            ).astype(np.int32)
        )
        powers = np.array(EDGE_POWERS, dtype=np.int64)
        fused = tlwe_batch_mul_by_xk_minus_one(batch, powers)
        reference = tlwe_batch_sub(tlwe_batch_rotate(batch, powers), batch)
        assert np.array_equal(fused.data, reference.data)

    def test_poly_minus_one_powers_matches_poly_mul_by_xk_powers(self):
        rng = np.random.default_rng(110)
        polys = rng.integers(-(2**31), 2**31, (4, PARAMS.N)).astype(np.int32)
        powers = np.array([0, 1, PARAMS.N, 2 * PARAMS.N - 1], dtype=np.int64)
        fused = poly_mul_by_xk_minus_one_powers(polys, powers[:, None])
        rotated = poly_mul_by_xk_powers(polys, powers[:, None])
        reference = poly_sub(rotated, polys)
        assert np.array_equal(fused, reference)

    @pytest.mark.parametrize("index", [0, 1, PARAMS.N - 1])
    def test_batch_sample_extract_matches_scalar(self, index):
        rng = np.random.default_rng(111)
        batch = TlweBatch(
            rng.integers(-(2**31), 2**31, (3, PARAMS.k + 1, PARAMS.N)).astype(np.int32)
        )
        extracted = tlwe_batch_sample_extract(batch, index=index)
        for i in range(batch.batch_size):
            scalar = tlwe_sample_extract(batch[i], index=index)
            assert np.array_equal(extracted.a[i], scalar.a)
            assert np.int32(extracted.b[i]) == np.int32(scalar.b)


class TestKeyswitchGather:
    @pytest.fixture(scope="class")
    def cloud(self):
        return generate_keys(PARAMS, make_transform("naive", PARAMS.N), rng=112)

    def test_one_shot_gather_matches_per_level_reference(self, cloud):
        secret, cloud_key = cloud
        for i in range(4):
            sample = lwe_encrypt(
                secret.extracted_key, gate_message(i % 2), rng=120 + i
            )
            fused = keyswitch_apply(cloud_key.keyswitch_key, sample)
            reference = keyswitch_apply_reference(cloud_key.keyswitch_key, sample)
            assert np.array_equal(fused.a, reference.a)
            assert np.int32(fused.b) == np.int32(reference.b)

    def test_chunked_batch_matches_scalar_and_reference(self, cloud):
        from repro.tfhe.keyswitch import keyswitch_apply_batch_reference

        secret, cloud_key = cloud
        samples = [
            lwe_encrypt(secret.extracted_key, gate_message(i % 2), rng=200 + i)
            for i in range(70)  # > the 64-row chunk, exercises the chunked path
        ]
        batch = LweBatch.from_samples(samples)
        switched = keyswitch_apply_batch(cloud_key.keyswitch_key, batch)
        reference = keyswitch_apply_batch_reference(cloud_key.keyswitch_key, batch)
        assert np.array_equal(switched.a, reference.a)
        assert np.array_equal(switched.b, reference.b)
        for i, sample in enumerate(samples):
            scalar = keyswitch_apply(cloud_key.keyswitch_key, sample)
            assert np.array_equal(switched.a[i], scalar.a)
            assert np.int32(switched.b[i]) == np.int32(scalar.b)

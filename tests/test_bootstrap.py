"""Tests for gate bootstrapping (Algorithm 1): blind rotation, extract, key switch."""

import numpy as np
import pytest

from repro.tfhe.bootstrap import (
    blind_rotate_and_extract,
    bootstrap_without_keyswitch,
    gate_bootstrap,
    make_test_vector,
    modswitch_sample,
)
from repro.tfhe.gates import MU
from repro.tfhe.lwe import (
    gate_message,
    lwe_decrypt_bit,
    lwe_encrypt,
    lwe_encrypt_trivial,
    lwe_phase,
    lwe_noise,
)
from repro.tfhe.params import TEST_TINY
from repro.tfhe.tlwe import tlwe_extract_lwe_key
from repro.tfhe.torus import torus_distance


class TestTestVector:
    def test_all_coefficients_equal_mu(self):
        testv = make_test_vector(TEST_TINY, 77)
        assert (testv == 77).all()
        assert testv.shape == (TEST_TINY.N,)


class TestModSwitch:
    def test_rescales_to_2n(self, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        sample = lwe_encrypt(secret.lwe_key, gate_message(1), rng=70)
        barb, bara = modswitch_sample(sample, TEST_TINY.N)
        assert 0 <= barb < 2 * TEST_TINY.N
        assert bara.shape == (TEST_TINY.n,)
        assert bara.min() >= 0 and bara.max() < 2 * TEST_TINY.N

    def test_trivial_sample_maps_message(self):
        sample = lwe_encrypt_trivial(TEST_TINY.n, gate_message(1))
        barb, bara = modswitch_sample(sample, TEST_TINY.N)
        # +1/8 of the torus is N/4 in Z_{2N}.
        assert barb == TEST_TINY.N // 4
        assert not bara.any()


class TestBlindRotateAndExtract:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_extracted_phase_has_correct_sign(self, tiny_keys_naive, bit):
        secret, cloud = tiny_keys_naive
        sample = lwe_encrypt(secret.lwe_key, gate_message(bit), rng=71 + bit)
        extracted = bootstrap_without_keyswitch(
            sample, int(MU), cloud.blind_rotator, TEST_TINY
        )
        phase = lwe_phase(secret.extracted_key, extracted)
        assert (int(phase) > 0) == bool(bit)

    def test_output_noise_is_fresh(self, tiny_keys_naive):
        """Bootstrapping must produce a sample whose noise is input-independent."""
        secret, cloud = tiny_keys_naive
        sample = lwe_encrypt(secret.lwe_key, gate_message(1), rng=73)
        extracted = bootstrap_without_keyswitch(
            sample, int(MU), cloud.blind_rotator, TEST_TINY
        )
        noise = lwe_noise(secret.extracted_key, extracted, MU)
        assert abs(noise) < 1.0 / 16.0

    def test_trivial_input_rotates_to_plus_mu(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        sample = lwe_encrypt_trivial(TEST_TINY.n, gate_message(1))
        extracted = bootstrap_without_keyswitch(
            sample, int(MU), cloud.blind_rotator, TEST_TINY
        )
        phase = lwe_phase(secret.extracted_key, extracted)
        assert float(torus_distance(phase, MU)) < 1.0 / 16.0


class TestGateBootstrap:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_full_bootstrap_returns_to_original_key(self, tiny_keys_naive, bit):
        secret, cloud = tiny_keys_naive
        sample = lwe_encrypt(secret.lwe_key, gate_message(bit), rng=75 + bit)
        refreshed = gate_bootstrap(
            sample, int(MU), cloud.blind_rotator, cloud.keyswitch_key, TEST_TINY
        )
        assert refreshed.dimension == TEST_TINY.n
        assert lwe_decrypt_bit(secret.lwe_key, refreshed) == bit

    def test_bootstrap_is_idempotent_on_messages(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        sample = lwe_encrypt(secret.lwe_key, gate_message(1), rng=77)
        once = gate_bootstrap(
            sample, int(MU), cloud.blind_rotator, cloud.keyswitch_key, TEST_TINY
        )
        twice = gate_bootstrap(
            once, int(MU), cloud.blind_rotator, cloud.keyswitch_key, TEST_TINY
        )
        assert lwe_decrypt_bit(secret.lwe_key, twice) == 1

    def test_rotator_counts_external_products(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        assert cloud.blind_rotator.external_products_per_bootstrap == TEST_TINY.n

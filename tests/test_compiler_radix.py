"""The radix tracing frontend: op recording, simulation, co-simulation oracle."""

from __future__ import annotations

import functools

import pytest

from repro.compiler.frontend import FheUint8, trace
from repro.compiler.radix import (
    RadixBool,
    RadixProgram,
    RadixTraceError,
    RadixUint,
    RadixUint8,
    RadixUint16,
    trace_radix,
    verify_against_boolean,
)
from repro.runtime.context import FheContext
from repro.tfhe.integers import RadixEvaluator, decrypt_radix, encrypt_radix
from repro.tfhe.lwe import decrypt_digit
from repro.tfhe.params import DigitEncoding, TEST_PBS
from repro.tfhe.transform import DoubleFFTNegacyclicTransform

ENCODING = DigitEncoding(message_bits=2, carry_bits=2)


@functools.lru_cache(maxsize=1)
def _backend():
    transform = DoubleFFTNegacyclicTransform(TEST_PBS.N)
    return FheContext.generate(TEST_PBS, transform, unroll_factor=1, rng=88)


# --------------------------------------------------------------------------- #
# tracing mechanics                                                           #
# --------------------------------------------------------------------------- #


def test_trace_records_ops_and_outputs():
    program = trace_radix(lambda a, b: a * b + 7, RadixUint8("a"), RadixUint8("b"))
    assert isinstance(program, RadixProgram)
    assert program.width_bits == 8
    assert sorted(program.inputs) == ["a", "b"]
    assert [op.kind for op in program.ops] == ["mul", "add_scalar"]
    assert list(program.outputs) == ["out"]
    assert not program.bool_values


def test_trace_tuple_and_dict_outputs():
    tupled = trace_radix(lambda a, b: (a + b, a * b), RadixUint8("a"), RadixUint8("b"))
    assert sorted(tupled.outputs) == ["out0", "out1"]

    named = trace_radix(
        lambda a, b: {"sum": a + b, "big": a > b},
        RadixUint16("a"),
        RadixUint16("b"),
    )
    assert sorted(named.outputs) == ["big", "sum"]
    assert named.outputs["big"] in named.bool_values
    assert named.outputs["sum"] not in named.bool_values


def test_trace_scalar_forms():
    program = trace_radix(lambda a: 3 * a + 5, RadixUint8("a"))
    assert [op.kind for op in program.ops] == ["scale", "add_scalar"]
    assert program.simulate({"a": 40}) == {"out": (3 * 40 + 5) % 256}


def test_comparisons_yield_bools():
    program = trace_radix(
        lambda a, b: {"gt": a > b, "lt": a < b, "eq": a == b},
        RadixUint8("a"),
        RadixUint8("b"),
    )
    assert program.simulate({"a": 9, "b": 5}) == {"gt": 1, "lt": 0, "eq": 0}
    assert program.simulate({"a": 5, "b": 9}) == {"gt": 0, "lt": 1, "eq": 0}
    assert program.simulate({"a": 7, "b": 7}) == {"gt": 0, "lt": 0, "eq": 1}


def test_simulate_wraps_at_the_modulus():
    program = trace_radix(lambda a, b: a * b, RadixUint8("a"), RadixUint8("b"))
    assert program.simulate({"a": 200, "b": 200}) == {"out": (200 * 200) % 256}
    # Inputs are reduced mod 2^width before evaluation.
    assert program.simulate({"a": 456, "b": 1}) == {"out": 200}


# --------------------------------------------------------------------------- #
# error paths                                                                 #
# --------------------------------------------------------------------------- #


def test_mixed_widths_are_rejected():
    with pytest.raises(RadixTraceError, match="share one width"):
        trace_radix(lambda a, b: a + b, RadixUint8("a"), RadixUint16("b"))


def test_duplicate_input_names_are_rejected():
    with pytest.raises(RadixTraceError, match="duplicate input name"):
        trace_radix(lambda a, b: a + b, RadixUint8("a"), RadixUint8("a"))


def test_comparison_against_plain_int_is_rejected():
    with pytest.raises(RadixTraceError, match="encrypt the constant"):
        trace_radix(lambda a: a > 5, RadixUint8("a"))


def test_branching_on_traced_value_is_rejected():
    def branchy(a, b):
        if a > b:  # ciphertext truthiness must not drive control flow
            return a
        return b

    with pytest.raises(RadixTraceError):
        trace_radix(branchy, RadixUint8("a"), RadixUint8("b"))


def test_untraced_return_is_rejected():
    with pytest.raises(RadixTraceError, match="must return traced values"):
        trace_radix(lambda a: 42, RadixUint8("a"))


def test_bound_spec_reuse_is_rejected():
    spec = RadixUint8("a")
    trace_radix(lambda a: a + 1, spec)
    # A fresh spec is required per trace; `spec` itself is still unbound
    # (binding copies), so tracing again works — but passing a *bound* value
    # must fail.
    program = trace_radix(lambda a: a + 1, spec)
    assert program.simulate({"a": 1}) == {"out": 2}
    with pytest.raises(RadixTraceError, match="unbound RadixUint"):
        trace_radix(lambda a: a, RadixUint(8, "a"), object())  # type: ignore[arg-type]


def test_missing_simulation_input_is_rejected():
    program = trace_radix(lambda a, b: a + b, RadixUint8("a"), RadixUint8("b"))
    with pytest.raises(RadixTraceError, match="missing program input 'b'"):
        program.simulate({"a": 1})


# --------------------------------------------------------------------------- #
# cross-lowering co-simulation                                                #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "fn",
    [
        lambda a, b: a + b,
        lambda a, b: a * b,
        lambda a, b: a * b + 17,
        lambda a, b: {"gt": a > b, "eq": a == b},
        lambda a, b: 3 * a + b,
    ],
    ids=["add", "mul", "mul_affine", "compare", "axpy"],
)
def test_radix_agrees_with_boolean_lowering(fn):
    program = trace_radix(fn, RadixUint8("a"), RadixUint8("b"))
    circuit = trace(fn, FheUint8("a"), FheUint8("b"))
    verify_against_boolean(program, circuit, trials=16, rng=5)


def test_cosimulation_catches_divergence():
    program = trace_radix(lambda a, b: a + b, RadixUint8("a"), RadixUint8("b"))
    circuit = trace(lambda a, b: a * b, FheUint8("a"), FheUint8("b"))
    with pytest.raises(RadixTraceError, match="disagree"):
        verify_against_boolean(program, circuit, trials=16, rng=5)


# --------------------------------------------------------------------------- #
# encrypted execution                                                         #
# --------------------------------------------------------------------------- #


def test_encrypted_run_matches_simulation(rng):
    secret, context = _backend()
    evaluator = RadixEvaluator(context, ENCODING)
    program = trace_radix(
        lambda a, b: {"val": a * b + 7, "big": a > b, "same": a == b},
        RadixUint8("a"),
        RadixUint8("b"),
    )
    inputs = {"a": 173, "b": 58}
    expected = program.simulate(inputs)
    encrypted = {
        name: encrypt_radix(
            secret.lwe_key, value, program.digit_width(evaluator), ENCODING, rng=rng
        )
        for name, value in inputs.items()
    }
    out = program.run(evaluator, encrypted)
    assert decrypt_radix(secret.lwe_key, out["val"]) == expected["val"]
    assert decrypt_digit(secret.lwe_key, out["big"], ENCODING) == expected["big"]
    assert decrypt_digit(secret.lwe_key, out["same"], ENCODING) == expected["same"]


def test_run_validates_digit_widths(rng):
    secret, context = _backend()
    evaluator = RadixEvaluator(context, ENCODING)
    program = trace_radix(lambda a: a + 1, RadixUint8("a"))
    wrong = encrypt_radix(secret.lwe_key, 5, 2, ENCODING, rng=rng)
    with pytest.raises(RadixTraceError, match="needs 4"):
        program.run(evaluator, {"a": wrong})
    with pytest.raises(RadixTraceError, match="missing encrypted input"):
        program.run(evaluator, {})


def test_digit_width_requires_divisible_encoding():
    _, context = _backend()
    evaluator = RadixEvaluator(context, DigitEncoding(message_bits=3, carry_bits=0))
    program = trace_radix(lambda a: a + 1, RadixUint8("a"))
    with pytest.raises(RadixTraceError, match="whole number of"):
        program.digit_width(evaluator)


def test_bool_output_is_a_radix_bool():
    program = trace_radix(lambda a, b: a == b, RadixUint8("a"), RadixUint8("b"))
    assert program.outputs["out"] in program.bool_values
    spec = RadixUint8("x")
    assert isinstance(spec, RadixUint)
    assert not isinstance(spec, RadixBool)

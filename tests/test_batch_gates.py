"""Batch-equivalence tests for the full gate-bootstrapping stack.

Row ``i`` of every batched operation must be bit-identical to running the
scalar path on row ``i`` — across both blind-rotation strategies (classical
CMux and BKU) and all three polynomial-multiplication engines.
"""

import numpy as np
import pytest

from repro.tfhe.bootstrap import gate_bootstrap, gate_bootstrap_batch
from repro.tfhe.circuits import add, decrypt_integers, encrypt_integers, select
from repro.tfhe.gates import (
    MU,
    BatchGateEvaluator,
    PLAINTEXT_GATES,
    TFHEGateEvaluator,
    decrypt_bit_batch,
    encrypt_bit,
    encrypt_bit_batch,
)
from repro.tfhe.keyswitch import keyswitch_apply, keyswitch_apply_batch
from repro.tfhe.lwe import LweBatch, lwe_batch_encrypt, lwe_encrypt, gate_message
from repro.tfhe.params import TEST_SMALL


def _assert_batch_equals_samples(batch, samples):
    assert batch.batch_size == len(samples)
    for i, sample in enumerate(samples):
        assert np.array_equal(batch.a[i], sample.a), f"row {i} mask differs"
        assert int(batch.b[i]) == int(sample.b), f"row {i} body differs"


@pytest.fixture(
    params=["tiny_keys_naive", "tiny_keys_naive_m2", "small_keys_double", "small_keys_approx_m2"]
)
def backend(request):
    """Every (engine, rotator) backend combination the conftest provides."""
    return request.getfixturevalue(request.param)


class TestBatchedBootstrap:
    BATCH = 4

    def test_gate_bootstrap_batch_is_bit_identical(self, backend):
        secret, cloud = backend
        rng = np.random.default_rng(1000)
        bits = rng.integers(0, 2, self.BATCH)
        samples = [encrypt_bit(secret, int(b), rng) for b in bits]
        batch = LweBatch.from_samples(samples)

        out = gate_bootstrap_batch(
            batch, int(MU), cloud.blind_rotator, cloud.keyswitch_key, cloud.params
        )
        refs = [
            gate_bootstrap(s, int(MU), cloud.blind_rotator, cloud.keyswitch_key, cloud.params)
            for s in samples
        ]
        _assert_batch_equals_samples(out, refs)

    def test_batch_roundtrip_containers(self, backend):
        secret, _ = backend
        batch = encrypt_bit_batch(secret, [1, 0, 1], rng=7)
        rebuilt = LweBatch.from_samples(batch.to_samples())
        assert np.array_equal(batch.a, rebuilt.a)
        assert np.array_equal(batch.b, rebuilt.b)
        assert decrypt_bit_batch(secret, batch) == [1, 0, 1]


class TestBatchedKeySwitch:
    def test_keyswitch_apply_batch_matches_loop(self, small_keys_double):
        secret, cloud = small_keys_double
        rng = np.random.default_rng(2000)
        messages = np.array(
            [gate_message(int(b)) for b in rng.integers(0, 2, 6)], dtype=np.int32
        )
        batch = lwe_batch_encrypt(secret.extracted_key, messages, rng=rng)
        switched = keyswitch_apply_batch(cloud.keyswitch_key, batch)
        refs = [keyswitch_apply(cloud.keyswitch_key, batch[i]) for i in range(len(batch))]
        _assert_batch_equals_samples(switched, refs)

    def test_keyswitch_apply_batch_wraparound_rows(self, small_keys_double):
        """Rows whose mask sits at the torus wrap-around switch identically."""
        secret, cloud = small_keys_double
        n_in = secret.extracted_key.dimension
        a = np.zeros((3, n_in), dtype=np.int32)
        a[0] = np.int32(-1)  # unsigned 0xFFFFFFFF everywhere
        a[1] = np.int32(2**31 - 1)
        a[2, ::2] = np.int32(-(2**31))
        batch = LweBatch(a=a, b=np.array([1, -1, 2**30], dtype=np.int32))
        switched = keyswitch_apply_batch(cloud.keyswitch_key, batch)
        refs = [keyswitch_apply(cloud.keyswitch_key, batch[i]) for i in range(3)]
        _assert_batch_equals_samples(switched, refs)

    def test_dimension_mismatch_rejected(self, small_keys_double):
        secret, cloud = small_keys_double
        bad = LweBatch(a=np.zeros((2, 3), dtype=np.int32), b=np.zeros(2, dtype=np.int32))
        with pytest.raises(ValueError):
            keyswitch_apply_batch(cloud.keyswitch_key, bad)


class TestBatchGateEvaluator:
    @pytest.mark.parametrize("name", sorted(PLAINTEXT_GATES))
    def test_all_gates_match_scalar_evaluator(self, tiny_keys_naive, name):
        secret, cloud = tiny_keys_naive
        scalar = TFHEGateEvaluator(cloud)
        batched = BatchGateEvaluator(cloud, batch_size=4)
        truth = PLAINTEXT_GATES[name]

        abits, bbits = [0, 0, 1, 1], [0, 1, 0, 1]
        ca = encrypt_bit_batch(secret, abits, rng=300)
        cb = encrypt_bit_batch(secret, bbits, rng=301)
        out = batched.gate(name, ca, cb)
        refs = [scalar.gate(name, ca[i], cb[i]) for i in range(4)]
        _assert_batch_equals_samples(out, refs)
        assert decrypt_bit_batch(secret, out) == [truth(a, b) for a, b in zip(abits, bbits)]

    def test_double_fft_backend_gate_matches(self, small_keys_double):
        secret, cloud = small_keys_double
        scalar = TFHEGateEvaluator(cloud)
        batched = BatchGateEvaluator(cloud, batch_size=4)
        ca = encrypt_bit_batch(secret, [0, 0, 1, 1], rng=310)
        cb = encrypt_bit_batch(secret, [0, 1, 0, 1], rng=311)
        out = batched.nand(ca, cb)
        refs = [scalar.nand(ca[i], cb[i]) for i in range(4)]
        _assert_batch_equals_samples(out, refs)
        assert decrypt_bit_batch(secret, out) == [1, 1, 1, 0]

    def test_mux_matches_scalar_composition(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        scalar = TFHEGateEvaluator(cloud)
        batched = BatchGateEvaluator(cloud, batch_size=4)
        sel = encrypt_bit_batch(secret, [0, 1, 0, 1], rng=320)
        t = encrypt_bit_batch(secret, [1, 1, 0, 0], rng=321)
        f = encrypt_bit_batch(secret, [0, 0, 1, 1], rng=322)
        out = batched.mux(sel, t, f)
        refs = [scalar.mux(sel[i], t[i], f[i]) for i in range(4)]
        _assert_batch_equals_samples(out, refs)

    def test_linear_gates_and_constants(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        batched = BatchGateEvaluator(cloud, batch_size=3)
        ca = encrypt_bit_batch(secret, [1, 0, 1], rng=330)
        assert decrypt_bit_batch(secret, batched.not_(ca)) == [0, 1, 0]
        assert decrypt_bit_batch(secret, batched.copy(ca)) == [1, 0, 1]
        assert decrypt_bit_batch(secret, batched.constant(1)) == [1, 1, 1]
        assert decrypt_bit_batch(secret, batched.constants([1, 0, 1])) == [1, 0, 1]

    def test_batch_width_mismatch_rejected(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        batched = BatchGateEvaluator(cloud, batch_size=3)
        ca = encrypt_bit_batch(secret, [1, 0], rng=340)
        with pytest.raises(ValueError):
            batched.not_(ca)
        with pytest.raises(ValueError):
            BatchGateEvaluator(cloud, batch_size=0)

    def test_counters_count_batch_elements(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        batched = BatchGateEvaluator(cloud, batch_size=3)
        ca = encrypt_bit_batch(secret, [1, 0, 1], rng=350)
        cb = encrypt_bit_batch(secret, [1, 1, 0], rng=351)
        batched.nand(ca, cb)
        assert batched.counters.gates == 3
        assert batched.counters.bootstraps == 3


class TestBatchedCircuits:
    """The circuit blocks are evaluator-polymorphic: bit planes + batches."""

    def test_batched_ripple_carry_adder(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        width = 3
        lhs, rhs = [1, 3, 5, 7], [2, 4, 1, 0]
        evaluator = BatchGateEvaluator(cloud, batch_size=len(lhs))
        a = encrypt_integers(secret, lhs, width, rng=400)
        b = encrypt_integers(secret, rhs, width, rng=401)
        total = add(evaluator, a, b)
        assert len(total) == width + 1
        assert decrypt_integers(secret, total) == [x + y for x, y in zip(lhs, rhs)]

    def test_batched_adder_matches_scalar_adder(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        width = 2
        lhs, rhs = [1, 2, 3], [3, 2, 1]
        batched = BatchGateEvaluator(cloud, batch_size=3)
        a_planes = encrypt_integers(secret, lhs, width, rng=410)
        b_planes = encrypt_integers(secret, rhs, width, rng=411)
        batched_sum = add(batched, a_planes, b_planes)

        scalar = TFHEGateEvaluator(cloud)
        for row in range(3):
            a_bits = [plane[row] for plane in a_planes]
            b_bits = [plane[row] for plane in b_planes]
            scalar_sum = add(scalar, a_bits, b_bits)
            for plane, ref in zip(batched_sum, scalar_sum):
                assert np.array_equal(plane.a[row], ref.a)
                assert int(plane.b[row]) == int(ref.b)

    def test_batched_select(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        evaluator = BatchGateEvaluator(cloud, batch_size=2)
        cond = encrypt_bit_batch(secret, [1, 0], rng=420)
        t = encrypt_integers(secret, [2, 2], 2, rng=421)
        f = encrypt_integers(secret, [1, 1], 2, rng=422)
        picked = select(evaluator, cond, t, f)
        assert decrypt_integers(secret, picked) == [2, 1]

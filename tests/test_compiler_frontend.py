"""Tests for the tracing frontend: FheUint/FheBool operators vs plain ints."""

import itertools

import pytest

from repro.compiler import (
    FheBool,
    FheUint,
    FheUint4,
    FheUint8,
    FheUint16,
    FheUint32,
    TraceError,
    fhe_abs,
    fhe_max,
    fhe_min,
    fhe_select,
    simulate,
    trace,
)
from repro.compiler.sim import random_inputs
from repro.tfhe.netlist import adder_netlist, maximum_netlist, multiplier_netlist


def _signed(value: int, width: int) -> int:
    """Interpret an unsigned word as two's complement."""
    return value - 2**width if value >= 2 ** (width - 1) else value


#: (trace function, plain-int reference) — both over (a, b) mod 2**width.
BINARY_CASES = [
    ("add", lambda a, b: a + b, lambda a, b, m: (a + b) % m),
    ("radd", lambda a, b: 5 + a, lambda a, b, m: (5 + a) % m),
    ("sub", lambda a, b: a - b, lambda a, b, m: (a - b) % m),
    ("rsub", lambda a, b: 7 - a, lambda a, b, m: (7 - a) % m),
    ("mul", lambda a, b: a * b, lambda a, b, m: (a * b) % m),
    ("mul_const", lambda a, b: a * 3, lambda a, b, m: (a * 3) % m),
    ("neg", lambda a, b: -a, lambda a, b, m: (-a) % m),
    ("bitand", lambda a, b: a & b, lambda a, b, m: a & b),
    ("bitor", lambda a, b: a | b, lambda a, b, m: a | b),
    ("bitor_const", lambda a, b: a | 5, lambda a, b, m: a | 5),
    ("bitxor", lambda a, b: a ^ b, lambda a, b, m: a ^ b),
    ("invert", lambda a, b: ~a, lambda a, b, m: a ^ (m - 1)),
    ("shl", lambda a, b: a << 2, lambda a, b, m: (a << 2) % m),
    ("shr", lambda a, b: a >> 1, lambda a, b, m: a >> 1),
    ("min", lambda a, b: fhe_min(a, b), lambda a, b, m: min(a, b)),
    ("max", lambda a, b: fhe_max(a, b), lambda a, b, m: max(a, b)),
    ("max_const", lambda a, b: fhe_max(a, 6), lambda a, b, m: max(a, 6)),
    (
        "abs",
        lambda a, b: fhe_abs(a),
        lambda a, b, m: abs(_signed(a, m.bit_length() - 1)) % m,
    ),
    (
        "select",
        lambda a, b: fhe_select(a > b, a - b, b - a),
        lambda a, b, m: (a - b) % m if a > b else (b - a) % m,
    ),
    ("eq", lambda a, b: fhe_select(a == b, 1, 0), lambda a, b, m: int(a == b)),
    ("ne", lambda a, b: fhe_select(a != b, 1, 0), lambda a, b, m: int(a != b)),
    ("lt", lambda a, b: fhe_select(a < b, 1, 0), lambda a, b, m: int(a < b)),
    ("gt", lambda a, b: fhe_select(a > b, 1, 0), lambda a, b, m: int(a > b)),
    ("le", lambda a, b: fhe_select(a <= b, 1, 0), lambda a, b, m: int(a <= b)),
    ("ge", lambda a, b: fhe_select(a >= b, 1, 0), lambda a, b, m: int(a >= b)),
]


class TestOperators:
    @pytest.mark.parametrize(
        "name,fn,reference", BINARY_CASES, ids=[c[0] for c in BINARY_CASES]
    )
    def test_operator_matches_plain_ints_exhaustively(self, name, fn, reference):
        width = 4
        modulus = 2**width
        circuit = trace(fn, FheUint(width, "a"), FheUint(width, "b"))
        for a, b in itertools.product(range(modulus), repeat=2):
            got = simulate(circuit, {"a": a, "b": b})["out"]
            assert got == reference(a, b, modulus), (name, a, b)

    @pytest.mark.parametrize("width", [8, 16])
    def test_wider_words_randomized(self, width, rng):
        modulus = 2**width
        circuit = trace(
            lambda a, b: fhe_max(a * 3 + b, b - a),
            FheUint(width, "a"),
            FheUint(width, "b"),
        )
        for _ in range(25):
            a = int(rng.integers(0, modulus))
            b = int(rng.integers(0, modulus))
            want = max((a * 3 + b) % modulus, (b - a) % modulus)
            assert simulate(circuit, {"a": a, "b": b})["out"] == want

    def test_traced_adder_is_gate_for_gate_the_netlist_adder(self):
        # The frontend lowers through the same *_into builders as the
        # word-level constructors, so the gate sequences are identical.
        traced = trace(lambda a, b: a + b, FheUint4("a"), FheUint4("b"))
        reference = adder_netlist(4)
        traced_gates = [n.op for n in traced.nodes if n.is_bootstrapped]
        reference_gates = [n.op for n in reference.nodes if n.is_bootstrapped]
        assert traced_gates == reference_gates

    def test_traced_max_matches_maximum_netlist_gates(self):
        traced = trace(lambda a, b: fhe_max(a, b), FheUint4("a"), FheUint4("b"))
        reference = maximum_netlist(4)
        assert [n.op for n in traced.nodes if n.is_bootstrapped] == [
            n.op for n in reference.nodes if n.is_bootstrapped
        ]

    def test_traced_mul_matches_multiplier_netlist_gates(self):
        traced = trace(lambda a, b: a * b, FheUint4("a"), FheUint4("b"))
        reference = multiplier_netlist(4)
        assert [n.op for n in traced.nodes if n.is_bootstrapped] == [
            n.op for n in reference.nodes if n.is_bootstrapped
        ]


class TestBooleans:
    def test_bool_gates_exhaustively(self):
        circuit = trace(
            lambda f, g: (f & g) | (f ^ g) | ~f,
            FheBool("f"),
            FheBool("g"),
        )
        for f, g in itertools.product((0, 1), repeat=2):
            want = (f & g) | (f ^ g) | (1 - f)
            assert simulate(circuit, {"f": f, "g": g})["out"] == want

    def test_bool_eq_ne(self):
        circuit = trace(
            lambda f, g: fhe_select(f == g, 2, 1), FheBool("f"), FheBool("g")
        )
        for f, g in itertools.product((0, 1), repeat=2):
            assert simulate(circuit, {"f": f, "g": g})["out"] == (2 if f == g else 1)

    def test_bool_select_over_words(self):
        circuit = trace(
            lambda f, x, y: fhe_select(f, x, y),
            FheBool("f"),
            FheUint4("x"),
            FheUint4("y"),
        )
        assert simulate(circuit, {"f": 1, "x": 9, "y": 4})["out"] == 9
        assert simulate(circuit, {"f": 0, "x": 9, "y": 4})["out"] == 4

    def test_bool_has_no_plaintext_truth_value(self):
        with pytest.raises(TraceError):
            trace(
                lambda a, b: a + b if a > b else a - b,
                FheUint4("a"),
                FheUint4("b"),
            )


class TestOutputs:
    def test_single_value_is_named_out(self):
        circuit = trace(lambda a: a + 1, FheUint4("a"))
        assert list(circuit.output_wires) == ["out"]
        assert len(circuit.output_wires["out"]) == 4

    def test_tuple_outputs_are_numbered(self):
        circuit = trace(lambda a, b: (a + b, a - b, a > b), FheUint4("a"), FheUint4("b"))
        assert list(circuit.output_wires) == ["out0", "out1", "out2"]
        assert len(circuit.output_wires["out2"]) == 1

    def test_dict_outputs_keep_names(self):
        circuit = trace(
            lambda a, b: {"hi": fhe_max(a, b), "lo": fhe_min(a, b)},
            FheUint4("a"),
            FheUint4("b"),
        )
        result = simulate(circuit, {"a": 11, "b": 5})
        assert result == {"hi": 11, "lo": 5}

    def test_width_aliases(self):
        for factory, width in [
            (FheUint4, 4),
            (FheUint8, 8),
            (FheUint16, 16),
            (FheUint32, 32),
        ]:
            circuit = trace(lambda a: a + 1, factory("a"))
            assert circuit.input_width("a") == width


class TestErrors:
    def test_mixed_traces_rejected(self):
        saved = {}

        def leak(a):
            saved["a"] = a
            return a + 1

        trace(leak, FheUint4("a"))
        with pytest.raises(TraceError):
            trace(lambda b: saved["a"] + b, FheUint4("b"))

    def test_width_mismatch_rejected(self):
        with pytest.raises(TraceError):
            trace(lambda a, b: a + b, FheUint4("a"), FheUint8("b"))

    def test_bound_value_is_not_a_spec(self):
        circuit_inputs = []

        def capture(a):
            circuit_inputs.append(a)
            return a + 1

        trace(capture, FheUint4("a"))
        with pytest.raises(TraceError):
            trace(lambda: circuit_inputs[0] + 1)

    def test_non_traced_return_rejected(self):
        with pytest.raises(TraceError):
            trace(lambda a: 42, FheUint4("a"))

    def test_symbolic_shift_amount_rejected(self):
        with pytest.raises(TraceError):
            trace(lambda a, b: a << b, FheUint4("a"), FheUint4("b"))

    def test_unnamed_spec_rejected(self):
        with pytest.raises(TraceError):
            FheUint(4, "")
        with pytest.raises(TraceError):
            FheUint(0, "a")
        with pytest.raises(TraceError):
            FheBool("")

    def test_float_operand_rejected(self):
        with pytest.raises(TraceError):
            trace(lambda a: a + 1.5, FheUint4("a"))

    def test_empty_return_rejected(self):
        with pytest.raises(TraceError):
            trace(lambda a: {}, FheUint4("a"))

    def test_select_needs_traced_condition(self):
        with pytest.raises(TraceError):
            trace(lambda a: fhe_select(True, a, a), FheUint4("a"))


class TestTraceShape:
    def test_constants_are_deduplicated_per_trace(self):
        circuit = trace(lambda a: (a + 3) * 5 + 3, FheUint8("a"))
        consts = [n for n in circuit.nodes if n.op == "const"]
        assert len(consts) <= 2  # at most one 0 and one 1 wire

    def test_trace_is_validated_and_named(self):
        def my_program(a):
            return a + 1

        circuit = trace(my_program, FheUint4("a"))
        assert circuit.name == "my_program"
        circuit.validate()

    def test_random_inputs_cover_all_words(self, rng):
        circuit = trace(lambda a, b: (a + 1, b + 1), FheUint4("a"), FheUint8("b"))
        values = random_inputs(circuit, rng)
        assert set(values) == {"a", "b"}
        assert 0 <= values["a"] < 16 and 0 <= values["b"] < 256

"""Tests for the resource-constrained list scheduler."""

import pytest

from repro.arch.architecture import ArchitectureDescription, FunctionalUnitSpec
from repro.arch.dfg import DataFlowGraph
from repro.arch.gate_compiler import compile_gate_dfg
from repro.arch.ops import OpType
from repro.arch.scheduler import ListScheduler
from repro.tfhe.params import TEST_SMALL


def simple_architecture(fft_cores=2, throughput=10.0):
    units = (
        FunctionalUnitSpec("fft", fft_cores, frozenset({OpType.FFT, OpType.IFFT}), throughput),
        FunctionalUnitSpec(
            "alu",
            1,
            frozenset(
                {
                    OpType.POLY_LINEAR,
                    OpType.POINTWISE_MAC,
                    OpType.DECOMPOSE,
                    OpType.TGSW_SCALE,
                    OpType.TGSW_ADD,
                    OpType.ROTATE,
                    OpType.SAMPLE_EXTRACT,
                    OpType.KEYSWITCH,
                    OpType.HBM_TRANSFER,
                    OpType.SPM_TRANSFER,
                }
            ),
            throughput,
        ),
    )
    return ArchitectureDescription(name="simple", clock_hz=1.0e9, units=units, static_power_w=1.0)


class TestBasicScheduling:
    def test_independent_nodes_run_in_parallel(self):
        dfg = DataFlowGraph()
        dfg.add_node(OpType.FFT, 100.0)
        dfg.add_node(OpType.FFT, 100.0)
        result = ListScheduler(simple_architecture(fft_cores=2)).schedule(dfg)
        assert result.makespan_cycles == pytest.approx(10.0)

    def test_resource_contention_serialises(self):
        dfg = DataFlowGraph()
        dfg.add_node(OpType.FFT, 100.0)
        dfg.add_node(OpType.FFT, 100.0)
        result = ListScheduler(simple_architecture(fft_cores=1)).schedule(dfg)
        assert result.makespan_cycles == pytest.approx(20.0)

    def test_dependencies_are_respected(self):
        dfg = DataFlowGraph()
        a = dfg.add_node(OpType.FFT, 100.0)
        b = dfg.add_node(OpType.POLY_LINEAR, 100.0, predecessors=[a])
        result = ListScheduler(simple_architecture()).schedule(dfg)
        placed = {p.node_id: p for p in result.placements}
        assert placed[b].start_cycle >= placed[a].end_cycle

    def test_makespan_bounded_by_critical_path_and_work(self):
        dfg = DataFlowGraph()
        prev = None
        for _ in range(5):
            prev = dfg.add_node(OpType.FFT, 50.0, predecessors=[prev] if prev is not None else [])
        result = ListScheduler(simple_architecture(fft_cores=4)).schedule(dfg)
        assert result.makespan_cycles == pytest.approx(25.0)  # fully serial chain

    def test_unsupported_op_raises(self):
        units = (FunctionalUnitSpec("fft", 1, frozenset({OpType.FFT}), 1.0),)
        arch = ArchitectureDescription(name="x", clock_hz=1e9, units=units)
        dfg = DataFlowGraph()
        dfg.add_node(OpType.KEYSWITCH, 1.0)
        with pytest.raises(KeyError):
            ListScheduler(arch).schedule(dfg)

    def test_every_node_is_placed(self):
        dfg = compile_gate_dfg(TEST_SMALL, unroll_factor=2)
        result = ListScheduler(simple_architecture(fft_cores=4, throughput=100.0)).schedule(dfg)
        assert len(result.placements) == len(dfg)


class TestScheduleMetrics:
    def test_utilisation_between_zero_and_one(self):
        dfg = compile_gate_dfg(TEST_SMALL, unroll_factor=1)
        result = ListScheduler(simple_architecture(fft_cores=2, throughput=100.0)).schedule(dfg)
        for value in result.utilisation_by_unit.values():
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_energy_accumulates_dynamic_and_static(self):
        dfg = DataFlowGraph()
        dfg.add_node(OpType.FFT, 1000.0)
        result = ListScheduler(simple_architecture()).schedule(dfg)
        assert result.dynamic_energy_j > 0
        assert result.static_energy_j > 0
        assert result.total_energy_j == pytest.approx(
            result.dynamic_energy_j + result.static_energy_j
        )

    def test_breakdown_fractions_sum_to_one(self):
        dfg = compile_gate_dfg(TEST_SMALL, unroll_factor=1)
        result = ListScheduler(simple_architecture(fft_cores=2, throughput=100.0)).schedule(dfg)
        from repro.arch.ops import BOOTSTRAP_OTHER_OPS, GATE_OPS, TRANSFORM_OPS

        total = (
            result.breakdown_fraction(TRANSFORM_OPS)
            + result.breakdown_fraction(BOOTSTRAP_OTHER_OPS)
            + result.breakdown_fraction(GATE_OPS)
            + result.breakdown_fraction((OpType.HBM_TRANSFER, OpType.SPM_TRANSFER))
        )
        assert total == pytest.approx(1.0)

    def test_no_unit_instance_overlaps(self):
        dfg = compile_gate_dfg(TEST_SMALL, unroll_factor=2)
        result = ListScheduler(simple_architecture(fft_cores=2, throughput=100.0)).schedule(dfg)
        by_instance = {}
        for placement in result.placements:
            by_instance.setdefault((placement.unit_name, placement.instance), []).append(
                (placement.start_cycle, placement.end_cycle)
            )
        for intervals in by_instance.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

"""Deterministic chaos suite: the serving stack under scripted faults.

Every test drives real clients through a :class:`ChaosProxy` (or injects a
:class:`FlakyEngine` / :class:`SlowDispatcher`) against a live
:class:`FheServer`, and asserts the resilience contract from the runtime
docs: **every job completes bit-identically or fails with a typed
retryable error — never silently wrong, never hung.**  All faults are
scripted by connection/frame index, so failures replay exactly.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.runtime.chaos import ChaosProxy, FlakyEngine, SlowDispatcher
from repro.runtime.protocol import (
    ServerError,
    ServingClient,
    pack_parts,
    unpack_parts,
)
from repro.runtime.resilient import ResilientClient
from repro.runtime.scheduler import BatchScheduler
from repro.tfhe.gates import decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_TINY
from repro.tfhe.serialize import from_bytes, to_bytes
from repro.tfhe.transform import (
    DoubleFFTNegacyclicTransform,
    clear_engine_quarantine,
    quarantined_engines,
)

BITS = [(True, True), (True, False), (False, True), (False, False)]


@pytest.fixture(scope="module")
def wire_keys():
    transform = DoubleFFTNegacyclicTransform(TEST_TINY.N)
    return generate_keys(TEST_TINY, transform, unroll_factor=1, rng=61, eager=False)


def _encrypt_pairs(secret, seed=100):
    pairs = []
    for index, (a, b) in enumerate(BITS):
        ca = encrypt_bit(secret, a, rng=seed + 2 * index)
        cb = encrypt_bit(secret, b, rng=seed + 2 * index + 1)
        pairs.append((ca, cb))
    return pairs


def _run_gates(client, secret, pairs, gate="nand"):
    """Submit all, then await all (exercises pipelining across faults)."""
    ids = [
        client.submit(
            "gate", pack_parts([to_bytes(ca), to_bytes(cb)]), gate=gate
        )
        for ca, cb in pairs
    ]
    outs = []
    for request_id in ids:
        _, body = client.result(request_id)
        outs.append(from_bytes(unpack_parts(body, expected=1)[0]))
    return [bool(decrypt_bit(secret, out)) for out in outs]


def _expected(gate):
    table = {
        "nand": lambda a, b: not (a and b),
        "and": lambda a, b: a and b,
        "xor": lambda a, b: a != b,
    }[gate]
    return [table(a, b) for a, b in BITS]


# --------------------------------------------------------------------------- #
# transport chaos through the proxy                                           #
# --------------------------------------------------------------------------- #


def test_proxy_passthrough_is_transparent(server_factory, wire_keys):
    server = server_factory()
    secret, cloud = wire_keys
    with ChaosProxy("127.0.0.1", server.port) as proxy:
        with ResilientClient(port=proxy.port, base_delay=0.001) as client:
            client.register_key(cloud)
            assert _run_gates(client, secret, _encrypt_pairs(secret)) == _expected(
                "nand"
            )
            assert client.stats.reconnects == 0
    assert proxy.connections == 1


def test_corrupt_and_dropped_frames_recovered(server_factory, wire_keys):
    """A bit-flipped reply (the v2 CRC catches it) then a dropped request
    frame on the retry connection: the client reconnects twice; every gate
    still lands bit-identically and no job runs twice."""
    server = server_factory()
    secret, cloud = wire_keys
    plans = {
        # conn 0: corrupt the server's reply to the 3rd frame (a gate result)
        0: {"s2c": {3: {"action": "corrupt", "offset": -1}}},
        # conn 1 (first reconnect): drop the connection on the 3rd request
        1: {"c2s": {2: {"action": "drop"}}},
    }
    with ChaosProxy("127.0.0.1", server.port, plans) as proxy:
        with ResilientClient(port=proxy.port, base_delay=0.001) as client:
            client.register_key(cloud)
            got = _run_gates(client, secret, _encrypt_pairs(secret))
            assert got == _expected("nand")
            assert client.stats.reconnects == 2
            assert client.stats.resubmitted >= 1
            metrics = client.metrics()
        assert proxy.connections == 3
    # Exactly-once: 4 gates were executed as 4 jobs despite the resends.
    assert metrics["jobs_completed"] == 4
    assert metrics["jobs_deduped"] >= 1


def test_truncated_frame_recovered(server_factory, wire_keys):
    server = server_factory()
    secret, cloud = wire_keys
    plans = {0: {"s2c": {2: {"action": "truncate", "bytes": 25}}}}
    with ChaosProxy("127.0.0.1", server.port, plans) as proxy:
        with ResilientClient(port=proxy.port, base_delay=0.001) as client:
            client.register_key(cloud)
            got = _run_gates(client, secret, _encrypt_pairs(secret), gate="xor")
            assert got == _expected("xor")
            assert client.stats.reconnects >= 1


def test_delayed_frames_are_just_slow(server_factory, wire_keys):
    server = server_factory()
    secret, cloud = wire_keys
    plans = {0: {"s2c": {1: {"action": "delay", "seconds": 0.05}}}}
    with ChaosProxy("127.0.0.1", server.port, plans) as proxy:
        with ResilientClient(port=proxy.port, base_delay=0.001) as client:
            client.register_key(cloud)
            got = _run_gates(client, secret, _encrypt_pairs(secret), gate="and")
            assert got == _expected("and")
            assert client.stats.reconnects == 0
            assert client.stats.retries == 0


def test_multi_client_disconnects_zero_loss(server_factory, wire_keys):
    """Two sessions, one injected disconnect each (in opposite directions):
    zero lost jobs, zero duplicated jobs, every result bit-correct — the
    acceptance workload, shrunk to the tiny parameter set."""
    server = server_factory()
    secret, cloud = wire_keys
    plans = {
        0: {"c2s": {3: {"action": "drop"}}},
        1: {"s2c": {2: {"action": "drop"}}},
        # conns 2+3 are the reconnects — clean.
    }
    with ChaosProxy("127.0.0.1", server.port, plans) as proxy:
        results = {}
        errors = []

        def work(name, gate, seed):
            try:
                with ResilientClient(
                    port=proxy.port, base_delay=0.001, session=f"sess-{name}"
                ) as client:
                    client.register_key(cloud)
                    results[name] = _run_gates(
                        client, secret, _encrypt_pairs(secret, seed=seed), gate=gate
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((name, exc))

        threads = [
            threading.Thread(target=work, args=("alpha", "nand", 300)),
            threading.Thread(target=work, args=("beta", "xor", 400)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
            assert not thread.is_alive(), "chaos workload hung"

    assert errors == []
    assert results["alpha"] == _expected("nand")
    assert results["beta"] == _expected("xor")
    metrics = server.metrics()
    assert metrics["jobs_completed"] == 8  # 4 per client, each exactly once
    assert metrics["sessions"] == 2


# --------------------------------------------------------------------------- #
# engine chaos                                                                #
# --------------------------------------------------------------------------- #


def test_flaky_engine_failover_bitidentical(wire_keys):
    """An engine that faults mid-batch is quarantined; the scheduler fails
    the context over within the fft64 family and replays the round — the
    results match a clean run exactly."""
    secret, cloud = wire_keys
    pairs = _encrypt_pairs(secret, seed=500)
    try:
        # Clean reference on an untouched scheduler/engine.
        reference = BatchScheduler()
        reference.register_client("ref", cloud)
        session = reference.session("ref")
        handles = [session.submit_gate("nand", ca, cb) for ca, cb in pairs]
        reference.flush()
        want = [decrypt_bit(secret, handle.result()) for handle in handles]

        chaotic = BatchScheduler()
        chaotic.register_client("chaos", cloud)
        session = chaotic.session("chaos")
        context = chaotic._contexts["chaos"]
        context.engine = FlakyEngine(
            context.engine, fail_on_call=3, masquerade_kind="compiled"
        )
        handles = [session.submit_gate("nand", ca, cb) for ca, cb in pairs]
        chaotic.flush()
        got = [decrypt_bit(secret, handle.result()) for handle in handles]

        assert got == want
        assert chaotic.stats.engine_failovers == 1
        assert "compiled" in quarantined_engines()
        assert context.engine.engine_kind != "compiled"
    finally:
        clear_engine_quarantine()


# --------------------------------------------------------------------------- #
# drain + shedding                                                            #
# --------------------------------------------------------------------------- #


def test_drain_resolves_accepted_then_refuses(server_factory, wire_keys):
    """SIGTERM-style drain: jobs accepted before the drain all resolve
    (through a deliberately slow dispatcher), clients are notified, and new
    work is refused with the typed retryable ``draining`` error."""
    server = server_factory(dispatcher=SlowDispatcher(0.05), flush_interval=0.2)
    secret, cloud = wire_keys
    client = ServingClient(port=server.port, session="drain-test")
    try:
        client.register_key(cloud)
        pairs = _encrypt_pairs(secret, seed=600)
        ids = [client.submit_gate("nand", ca, cb) for ca, cb in pairs]

        # Admission closes the moment the drain starts, so wait until every
        # submitted frame has actually been accepted into the scheduler —
        # otherwise the drain correctly rejects the still-in-flight ones.
        import time as _time

        deadline = _time.monotonic() + 10.0
        while _time.monotonic() < deadline:
            accepted = len(server._waiters) + server.scheduler.stats.jobs_completed
            if accepted >= len(ids):
                break
            _time.sleep(0.005)

        loop = server._flusher.get_loop()
        drain = asyncio.run_coroutine_threadsafe(server.drain(timeout=30.0), loop)

        # Every accepted job resolves during the drain, bit-correctly.
        got = []
        for request_id in ids:
            _, body = client.result(request_id)
            got.append(bool(decrypt_bit(secret, from_bytes(unpack_parts(body)[0]))))
        assert got == _expected("nand")

        drain_seconds = drain.result(30.0)
        assert drain_seconds >= 0.0

        # The client was told, and new work is refused with a typed error.
        assert any(e.get("event") == "draining" for e in client.events)
        ca, cb = pairs[0]
        with pytest.raises(ServerError) as excinfo:
            client.gate("nand", ca, cb)
        assert excinfo.value.kind == "draining"
        assert excinfo.value.retryable

        metrics = server.metrics()
        assert metrics["draining"] is True
        assert metrics["drain_seconds"] == pytest.approx(drain_seconds)
        assert metrics["jobs_completed"] == len(pairs)

        # The listener is closed: fresh connections are refused.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", server.port), timeout=1.0)
    finally:
        client.close()


def test_deadline_shedding_under_slow_flush(server_factory, wire_keys):
    server = server_factory(flush_interval=0.4)
    secret, cloud = wire_keys
    with ServingClient(port=server.port) as client:
        client.register_key(cloud)
        ca = encrypt_bit(secret, True, rng=700)
        cb = encrypt_bit(secret, False, rng=701)
        with pytest.raises(ServerError) as excinfo:
            client.call(
                "gate",
                pack_parts([to_bytes(ca), to_bytes(cb)]),
                gate="nand",
                deadline_ms=1,
            )
        assert excinfo.value.kind == "shed"
        assert not excinfo.value.retryable
        assert server.metrics()["jobs_shed"] == 1
        # Introspection is never shed.
        header = client.hello()
        assert header["server"] == "repro-serve"

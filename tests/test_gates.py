"""Truth-table tests for every homomorphic gate, across evaluation backends."""

import pytest

from repro.tfhe.gates import (
    PLAINTEXT_GATES,
    TFHEGateEvaluator,
    decrypt_bit,
    decrypt_bits,
    encrypt_bit,
    encrypt_bits,
)

ALL_INPUT_PAIRS = [(a, b) for a in (0, 1) for b in (0, 1)]


class TestGateTruthTablesExact:
    """Every two-input gate against its truth table (exact transform, tiny ring)."""

    @pytest.mark.parametrize("gate", sorted(PLAINTEXT_GATES))
    def test_gate_truth_table(self, tiny_keys_naive, tiny_evaluator, gate):
        secret, _ = tiny_keys_naive
        for a, b in ALL_INPUT_PAIRS:
            ca = encrypt_bit(secret, a, rng=100 + a)
            cb = encrypt_bit(secret, b, rng=200 + b)
            result = tiny_evaluator.gate(gate, ca, cb)
            assert decrypt_bit(secret, result) == PLAINTEXT_GATES[gate](a, b), (gate, a, b)


class TestGateTruthTablesDoubleFFT:
    """NAND/XOR/AND on the double-precision FFT backend (the TFHE-library path)."""

    @pytest.mark.parametrize("gate", ["nand", "xor", "and"])
    @pytest.mark.parametrize("inputs", ALL_INPUT_PAIRS)
    def test_gate(self, small_keys_double, small_evaluator_double, gate, inputs):
        secret, _ = small_keys_double
        a, b = inputs
        ca = encrypt_bit(secret, a, rng=300 + a)
        cb = encrypt_bit(secret, b, rng=400 + b)
        result = small_evaluator_double.gate(gate, ca, cb)
        assert decrypt_bit(secret, result) == PLAINTEXT_GATES[gate](a, b)


class TestGateTruthTablesMatchaBackend:
    """NAND/XNOR on MATCHA's approximate integer FFT with BKU m=2.

    This is the paper's core correctness claim: approximate multiplication-less
    FFT/IFFT kernels do not cause decryption errors.
    """

    @pytest.mark.parametrize("gate", ["nand", "xnor"])
    @pytest.mark.parametrize("inputs", ALL_INPUT_PAIRS)
    def test_gate(self, small_keys_approx_m2, small_evaluator_approx, gate, inputs):
        secret, _ = small_keys_approx_m2
        a, b = inputs
        ca = encrypt_bit(secret, a, rng=500 + a)
        cb = encrypt_bit(secret, b, rng=600 + b)
        result = small_evaluator_approx.gate(gate, ca, cb)
        assert decrypt_bit(secret, result) == PLAINTEXT_GATES[gate](a, b)


class TestLinearGates:
    def test_not_gate(self, tiny_keys_naive, tiny_evaluator):
        secret, _ = tiny_keys_naive
        for bit in (0, 1):
            ca = encrypt_bit(secret, bit, rng=700 + bit)
            assert decrypt_bit(secret, tiny_evaluator.not_(ca)) == 1 - bit

    def test_constant_gate(self, tiny_keys_naive, tiny_evaluator):
        secret, _ = tiny_keys_naive
        for bit in (0, 1):
            assert decrypt_bit(secret, tiny_evaluator.constant(bit)) == bit

    def test_copy_gate(self, tiny_keys_naive, tiny_evaluator):
        secret, _ = tiny_keys_naive
        ca = encrypt_bit(secret, 1, rng=702)
        assert decrypt_bit(secret, tiny_evaluator.copy(ca)) == 1

    def test_double_not_is_identity(self, tiny_keys_naive, tiny_evaluator):
        secret, _ = tiny_keys_naive
        ca = encrypt_bit(secret, 1, rng=703)
        assert decrypt_bit(secret, tiny_evaluator.not_(tiny_evaluator.not_(ca))) == 1


class TestMux:
    @pytest.mark.parametrize("sel", [0, 1])
    def test_mux_selects(self, tiny_keys_naive, tiny_evaluator, sel):
        secret, _ = tiny_keys_naive
        csel = encrypt_bit(secret, sel, rng=800 + sel)
        ct = encrypt_bit(secret, 1, rng=810)
        cf = encrypt_bit(secret, 0, rng=811)
        result = tiny_evaluator.mux(csel, ct, cf)
        assert decrypt_bit(secret, result) == (1 if sel else 0)


class TestEvaluatorBookkeeping:
    def test_unknown_gate_name_rejected(self, tiny_evaluator, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        ca = encrypt_bit(secret, 0, rng=900)
        with pytest.raises(ValueError):
            tiny_evaluator.gate("nandy", ca, ca)

    def test_counters_track_gates_and_bootstraps(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        evaluator = TFHEGateEvaluator(cloud)
        ca = encrypt_bit(secret, 1, rng=901)
        cb = encrypt_bit(secret, 0, rng=902)
        evaluator.nand(ca, cb)
        evaluator.not_(ca)
        assert evaluator.counters.gates == 2
        assert evaluator.counters.bootstraps == 1
        evaluator.counters.reset()
        assert evaluator.counters.gates == 0

    def test_encrypt_decrypt_bits_helpers(self, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        bits = [1, 0, 1, 1]
        samples = encrypt_bits(secret, bits, rng=903)
        assert decrypt_bits(secret, samples) == bits

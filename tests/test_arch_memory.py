"""Tests for the memory-system models."""

import pytest

from repro.arch.memory import (
    BankConflictModel,
    CrossbarModel,
    bootstrapping_key_bytes,
    fits_in_spm,
    hbm_stream_seconds,
    keyswitch_key_bytes,
    matcha_crossbars,
    tgsw_ciphertext_bytes,
)
from repro.tfhe.params import PAPER_110BIT, TEST_TINY


class TestFootprints:
    def test_coefficient_domain_tgsw_size(self):
        # (k+1) l (k+1) N 32-bit words = 12 * 1024 * 4 bytes.
        assert tgsw_ciphertext_bytes(PAPER_110BIT, transformed=False) == 12 * 1024 * 4

    def test_transformed_tgsw_is_twice_as_large(self):
        plain = tgsw_ciphertext_bytes(PAPER_110BIT, transformed=False)
        transformed = tgsw_ciphertext_bytes(PAPER_110BIT, transformed=True)
        assert transformed == 2 * plain

    def test_bootstrapping_key_exceeds_spm(self):
        """The BK never fits in the 4 MB scratchpad -> it must stream from HBM."""
        for m in (1, 2, 3, 4):
            assert not fits_in_spm(bootstrapping_key_bytes(PAPER_110BIT, m))

    def test_bootstrapping_key_growth(self):
        sizes = [bootstrapping_key_bytes(PAPER_110BIT, m) for m in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        assert sizes[3] > 3 * sizes[0]

    def test_remainder_group_counted(self):
        # 630 % 4 = 2 -> one extra group with 2^2 - 1 keys.
        m = 4
        full_groups = PAPER_110BIT.n // m
        expected_keys = full_groups * 15 + 3
        expected = expected_keys * tgsw_ciphertext_bytes(PAPER_110BIT)
        assert bootstrapping_key_bytes(PAPER_110BIT, m) == expected

    def test_keyswitch_key_size_positive(self):
        assert keyswitch_key_bytes(PAPER_110BIT) > 0

    def test_invalid_unroll_rejected(self):
        with pytest.raises(ValueError):
            bootstrapping_key_bytes(TEST_TINY, 0)


class TestHbmStream:
    def test_stream_time_is_linear(self):
        assert hbm_stream_seconds(640e9, 640e9) == pytest.approx(1.0)
        assert hbm_stream_seconds(64e9, 640e9) == pytest.approx(0.1)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            hbm_stream_seconds(1.0, 0.0)


class TestBankConflicts:
    def test_sequential_access_has_no_conflicts(self):
        model = BankConflictModel(banks=2, accesses_per_cycle=16, sequential=True)
        assert model.expected_conflict_factor() == 1.0

    def test_random_access_conflicts_grow_with_pressure(self):
        light = BankConflictModel(banks=8, accesses_per_cycle=4)
        heavy = BankConflictModel(banks=8, accesses_per_cycle=64)
        assert heavy.expected_conflict_factor() >= 1.0
        assert light.expected_conflict_factor() >= 1.0
        assert heavy.expected_conflict_factor() <= light.expected_conflict_factor() * 10

    def test_more_banks_reduce_service_time(self):
        few = BankConflictModel(banks=2, accesses_per_cycle=16)
        many = BankConflictModel(banks=8, accesses_per_cycle=16)
        assert many.service_cycles() < few.service_cycles()

    def test_sequential_service_time_is_ideal(self):
        model = BankConflictModel(banks=2, accesses_per_cycle=16, sequential=True)
        assert model.service_cycles() == 8.0

    def test_invalid_banks(self):
        with pytest.raises(ValueError):
            BankConflictModel(banks=0, accesses_per_cycle=4).expected_conflict_factor()


class TestCrossbar:
    def test_bandwidth_formula(self):
        xbar = CrossbarModel(ports_in=8, ports_out=32, width_bits=256, clock_hz=2.0e9)
        assert xbar.bandwidth_bytes_per_s == pytest.approx(32 * 32 * 2.0e9)

    def test_transfer_time(self):
        xbar = CrossbarModel(ports_in=8, ports_out=8, width_bits=256, clock_hz=2.0e9)
        assert xbar.transfer_seconds(xbar.bandwidth_bytes_per_s) == pytest.approx(1.0)

    def test_matcha_has_three_crossbars(self):
        xbars = matcha_crossbars()
        assert set(xbars) == {"spm_to_cores", "cores_to_spm", "core_to_core"}

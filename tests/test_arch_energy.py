"""Tests for the power/area models (Table 2)."""

import pytest

from repro.arch.energy import (
    EP_CORE,
    SPM,
    TGSW_CLUSTER,
    gate_energy_joules,
    logic_power_area,
    matcha_area_power_table,
    sram_power_area,
)


class TestTable2:
    def test_total_power_matches_paper(self):
        envelope = matcha_area_power_table()
        assert envelope.total_power_w == pytest.approx(39.98, abs=0.02)

    def test_total_area_matches_paper(self):
        envelope = matcha_area_power_table()
        assert envelope.total_area_mm2 == pytest.approx(36.96, abs=0.05)

    def test_subtotal_of_pipelines_matches_paper(self):
        per_pipeline = TGSW_CLUSTER.power_w + EP_CORE.power_w
        assert 8 * per_pipeline == pytest.approx(30.8, abs=0.01)
        per_pipeline_area = TGSW_CLUSTER.area_mm2 + EP_CORE.area_mm2
        assert 8 * per_pipeline_area == pytest.approx(18.06, abs=0.01)

    def test_component_rows_include_total(self):
        rows = matcha_area_power_table().as_rows()
        assert rows[-1][0] == "Total"
        assert len(rows) == 7

    def test_scaling_ep_cores_scales_power(self):
        full = matcha_area_power_table(ep_cores=8, tgsw_clusters=8)
        half = matcha_area_power_table(ep_cores=4, tgsw_clusters=4)
        assert half.total_power_w < full.total_power_w
        # Shared components do not scale away entirely.
        assert half.total_power_w > 0.4 * full.total_power_w


class TestEstimators:
    def test_sram_estimator_anchored_to_spm(self):
        estimate = sram_power_area(4096, 32)
        assert estimate["power_w"] == pytest.approx(SPM.power_w)
        assert estimate["area_mm2"] == pytest.approx(SPM.area_mm2)

    def test_sram_scales_with_capacity(self):
        small = sram_power_area(1024, 32)
        large = sram_power_area(8192, 32)
        assert large["power_w"] > small["power_w"]
        assert large["area_mm2"] > small["area_mm2"]

    def test_sram_invalid_arguments(self):
        with pytest.raises(ValueError):
            sram_power_area(0, 32)

    def test_logic_estimator_scales_linearly(self):
        base = logic_power_area(16, 16, TGSW_CLUSTER)
        double = logic_power_area(32, 16, TGSW_CLUSTER)
        assert double["power_w"] == pytest.approx(2 * base["power_w"])

    def test_logic_invalid_arguments(self):
        with pytest.raises(ValueError):
            logic_power_area(0, 16, TGSW_CLUSTER)

    def test_gate_energy(self):
        assert gate_energy_joules(40.0, 0.2e-3) == pytest.approx(8.0e-3)
        with pytest.raises(ValueError):
            gate_energy_joules(-1.0, 0.1)

"""Property tests for the optimization pass pipeline.

The acceptance bar: every pass is semantics-preserving under plaintext
co-simulation over randomized inputs, for all widths in {4, 8, 16}, on both
traced programs and adversarial hand-built netlists.
"""

import pytest

from repro.compiler import (
    FheBool,
    FheUint,
    OptimizationError,
    PassManager,
    fhe_abs,
    fhe_max,
    fhe_min,
    fhe_select,
    optimize,
    simulate,
    trace,
    verify_equivalent,
)
from repro.compiler.passes import (
    BALANCEABLE_OPS,
    COMMUTATIVE_OPS,
    COMPLEMENT_FIRST,
    COMPLEMENT_SECOND,
    DEFAULT_PIPELINE,
    MIRROR,
    PASSES,
    absorb_linear,
    circuit_depth,
    eliminate_common_subexpressions,
    eliminate_dead_nodes,
    fold_constants,
    live_gate_count,
    rebalance_depth,
)
from repro.tfhe.gates import PLAINTEXT_GATES
from repro.tfhe.netlist import (
    BOOTSTRAPPED_OPS,
    Circuit,
    equal_netlist,
    maximum_netlist,
    multiplier_netlist,
    subtractor_netlist,
)

WIDTHS = (4, 8, 16)


def _traced_program(width: int) -> Circuit:
    """A representative traced program mixing every lowering path."""
    return trace(
        lambda a, b, c: {
            "score": fhe_max(a * 3 + b, b - c),
            "lo": fhe_min(a & c, b ^ 5),
            "mag": fhe_abs(a - b),
            "pick": fhe_select(a > c, b, c) >> 1,
        },
        FheUint(width, "a"),
        FheUint(width, "b"),
        FheUint(width, "c"),
    )


def _random_netlist(width: int, rng, n_ops: int = 60) -> Circuit:
    """An adversarial random netlist: gates, NOT/COPY chains, consts, muxes."""
    c = Circuit(f"random{width}")
    wires = list(c.inputs("a", width)) + list(c.inputs("b", width))
    wires.append(c.constant(0))
    wires.append(c.constant(1))
    ops = list(BOOTSTRAPPED_OPS)
    for _ in range(n_ops):
        kind = rng.integers(0, 10)
        if kind == 0:
            wires.append(c.not_(wires[int(rng.integers(0, len(wires)))]))
        elif kind == 1:
            wires.append(c.copy(wires[int(rng.integers(0, len(wires)))]))
        elif kind == 2:
            sel, t, f = (wires[int(rng.integers(0, len(wires)))] for _ in range(3))
            wires.append(c.mux(sel, t, f))
        else:
            op = ops[int(rng.integers(0, len(ops)))]
            x, y = (wires[int(rng.integers(0, len(wires)))] for _ in range(2))
            wires.append(c.gate(op, x, y))
    out = [wires[int(rng.integers(0, len(wires)))] for _ in range(width)]
    c.output("out", out)
    return c


class TestGateAlgebra:
    def test_complement_tables_cover_all_gates(self):
        assert set(COMPLEMENT_FIRST) == set(PLAINTEXT_GATES)
        assert set(COMPLEMENT_SECOND) == set(PLAINTEXT_GATES)

    @pytest.mark.parametrize("op", sorted(PLAINTEXT_GATES))
    def test_complement_tables_are_correct(self, op):
        f = PLAINTEXT_GATES[op]
        first = PLAINTEXT_GATES[COMPLEMENT_FIRST[op]]
        second = PLAINTEXT_GATES[COMPLEMENT_SECOND[op]]
        for a in (0, 1):
            for b in (0, 1):
                assert first(a, b) == f(1 - a, b)
                assert second(a, b) == f(a, 1 - b)

    @pytest.mark.parametrize("op", sorted(MIRROR))
    def test_mirror_pairs_swap_arguments(self, op):
        f, g = PLAINTEXT_GATES[op], PLAINTEXT_GATES[MIRROR[op]]
        for a in (0, 1):
            for b in (0, 1):
                assert f(a, b) == g(b, a)

    def test_commutative_set_is_exactly_the_symmetric_gates(self):
        for op, f in PLAINTEXT_GATES.items():
            assert (op in COMMUTATIVE_OPS) == (f(0, 1) == f(1, 0))


class TestPassesPreserveSemantics:
    """The acceptance-criteria property: co-simulation pre vs post, all widths."""

    @pytest.mark.parametrize("pass_name", sorted(PASSES))
    @pytest.mark.parametrize("width", WIDTHS)
    def test_pass_on_traced_program(self, pass_name, width):
        circuit = _traced_program(width)
        rewritten = PASSES[pass_name](circuit)
        verify_equivalent(circuit, rewritten, trials=24, rng=width)

    @pytest.mark.parametrize("pass_name", sorted(PASSES))
    @pytest.mark.parametrize("width", WIDTHS)
    def test_pass_on_random_netlists(self, pass_name, width, rng):
        for _ in range(4):
            circuit = _random_netlist(width, rng)
            rewritten = PASSES[pass_name](circuit)
            verify_equivalent(circuit, rewritten, trials=16, rng=rng)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_full_pipeline_on_traced_program(self, width):
        circuit = _traced_program(width)
        manager = PassManager(verify=True, trials=24, rng=7)
        optimized = manager.run(circuit)
        verify_equivalent(circuit, optimized, trials=24, rng=width + 1)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_full_pipeline_on_random_netlists(self, width, rng):
        for _ in range(3):
            circuit = _random_netlist(width, rng)
            optimized = PassManager(verify=True, trials=16, rng=rng).run(circuit)
            verify_equivalent(circuit, optimized, trials=16, rng=rng)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_pipeline_on_word_constructors(self, width):
        for factory in (multiplier_netlist, maximum_netlist, equal_netlist, subtractor_netlist):
            circuit = factory(width)
            optimized = optimize(circuit, verify=True, rng=3)
            verify_equivalent(circuit, optimized, trials=20, rng=5)


class TestInterfacePreservation:
    def test_all_input_words_survive_even_when_dead(self):
        circuit = trace(lambda a, b: a + 1, FheUint(4, "a"), FheUint(4, "b"))
        optimized = optimize(circuit)
        assert {n: len(w) for n, w in optimized.input_wires.items()} == {
            "a": 4,
            "b": 4,
        }

    def test_output_names_and_widths_survive(self):
        circuit = _traced_program(4)
        optimized = optimize(circuit)
        assert {n: len(w) for n, w in optimized.output_wires.items()} == {
            n: len(w) for n, w in circuit.output_wires.items()
        }

    def test_optimized_circuits_validate(self):
        optimized = optimize(_traced_program(8))
        optimized.validate()  # SSA order, arities, known ops

    def test_input_circuit_is_not_mutated(self):
        circuit = _traced_program(4)
        nodes_before = len(circuit.nodes)
        optimize(circuit)
        assert len(circuit.nodes) == nodes_before


class TestConstantFolding:
    def test_constant_multiplier_collapses(self):
        circuit = trace(lambda a: a * 3, FheUint(8, "a"))
        folded = fold_constants(circuit)
        # The naive shift-and-add trace ANDs against all eight constant
        # multiplier bits; folding must collapse the six zero rows.
        assert live_gate_count(folded) < live_gate_count(circuit) / 2

    def test_fully_constant_cone_becomes_gate_free(self):
        c = Circuit()
        c.inputs("a", 1)
        one = c.constant(1)
        zero = c.constant(0)
        val = c.gate("and", c.gate("or", one, zero), c.gate("xnor", one, one))
        c.output("out", [val])
        folded = fold_constants(c)
        assert live_gate_count(folded) == 0
        assert simulate(folded, {"a": 0})["out"] == 1

    def test_mux_with_constant_select_picks_branch(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        sel = c.constant(1)
        c.output("out", [c.mux(sel, a, b)])
        folded = fold_constants(c)
        assert live_gate_count(folded) == 0
        assert simulate(folded, {"a": 1, "b": 0})["out"] == 1
        assert simulate(folded, {"a": 0, "b": 1})["out"] == 0

    def test_same_wire_diagonal_rules(self):
        expect = {"and": 0, "or": 0, "xor": 1, "xnor": 0, "nand": 1, "nor": 1}
        for op, extra_gates in expect.items():
            c = Circuit()
            a = c.inputs("a", 1)[0]
            c.output("out", [c.gate(op, a, a)])
            folded = fold_constants(c)
            assert live_gate_count(folded) == 0, op
            want = PLAINTEXT_GATES[op](0, 0), PLAINTEXT_GATES[op](1, 1)
            for bit in (0, 1):
                assert simulate(folded, {"a": bit})["out"] == want[bit], op


class TestAbsorbLinear:
    def test_not_chains_fold_into_gates(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        c.output("out", [c.gate("and", c.not_(a), c.not_(c.not_(b)))])
        absorbed = absorb_linear(c)
        ops = [n.op for n in absorbed.nodes if n.is_bootstrapped]
        assert ops == ["andny"]  # and(not a, b) == andny(a, b)
        assert absorbed.linear_count == 0

    def test_negated_output_keeps_one_trailing_not(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        g = c.gate("and", a, b)
        c.output("out", [c.not_(c.copy(c.not_(c.not_(g))))])
        absorbed = absorb_linear(c)
        assert absorbed.linear_count == 1
        verify_equivalent(c, absorbed)

    def test_subtractor_nots_are_absorbed(self):
        circuit = subtractor_netlist(8)
        absorbed = absorb_linear(fold_constants(circuit))
        assert absorbed.linear_count <= 1
        verify_equivalent(circuit, absorbed, trials=20, rng=2)


class TestCSE:
    def test_structural_duplicates_collapse(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        x = c.gate("and", a, b)
        y = c.gate("and", a, b)
        c.output("out", [c.gate("or", x, y)])
        deduped = eliminate_common_subexpressions(c)
        # or(x, x) remains, but the two ANDs share one node.
        assert live_gate_count(deduped) == 2

    def test_commutative_arguments_are_sorted(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        c.output("out", [c.gate("or", c.gate("and", a, b), c.gate("and", b, a))])
        assert live_gate_count(eliminate_common_subexpressions(c)) == 2

    def test_mirror_pair_spellings_are_unified(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        c.output("out", [c.gate("or", c.gate("andny", a, b), c.gate("andyn", b, a))])
        deduped = eliminate_common_subexpressions(c)
        assert live_gate_count(deduped) == 2
        verify_equivalent(c, deduped)


class TestRebalance:
    def test_equality_chain_depth_becomes_logarithmic(self):
        circuit = fold_constants(equal_netlist(16))
        balanced = rebalance_depth(circuit)
        assert circuit_depth(circuit) == 16  # xnor level + 15-deep and chain
        assert circuit_depth(balanced) == 5  # xnor level + ceil(log2 16)
        verify_equivalent(circuit, balanced, trials=20, rng=4)

    def test_multi_use_chain_nodes_stay_leaves(self):
        c = Circuit()
        bits = c.inputs("a", 4)
        x = c.gate("and", bits[0], bits[1])
        y = c.gate("and", x, bits[2])
        z = c.gate("and", y, bits[3])
        c.output("out", [z])
        c.output("also_y", [y])  # y has fanout 2: must not be collapsed
        balanced = rebalance_depth(c)
        verify_equivalent(c, balanced)
        assert len(balanced.output_wires["also_y"]) == 1

    @pytest.mark.parametrize("op", sorted(BALANCEABLE_OPS))
    def test_each_balanceable_op(self, op):
        c = Circuit()
        bits = c.inputs("a", 8)
        acc = bits[0]
        for bit in bits[1:]:
            acc = c.gate(op, acc, bit)
        c.output("out", [acc])
        balanced = rebalance_depth(c)
        assert circuit_depth(balanced) == 3
        verify_equivalent(c, balanced)


class TestDeadNodeElimination:
    def test_dead_gates_are_dropped_and_renumbered(self):
        circuit = subtractor_netlist(8)  # truncated: dead carry cone
        swept = eliminate_dead_nodes(circuit)
        assert len(swept.nodes) < len(circuit.nodes)
        assert live_gate_count(swept) == live_gate_count(circuit)
        assert all(
            nid in swept.live_nodes() or swept.node(nid).op == "input"
            for nid in range(len(swept.nodes))
        )
        verify_equivalent(circuit, swept, trials=20, rng=6)


class TestPassManager:
    def test_stats_recorded_per_application(self):
        manager = PassManager(max_iterations=1)
        manager.run(_traced_program(4))
        assert [s.name for s in manager.stats] == list(DEFAULT_PIPELINE)
        assert all(s.gates_after <= s.gates_before for s in manager.stats)

    def test_fixpoint_stops_early(self):
        manager = PassManager(max_iterations=4)
        optimized = manager.run(_traced_program(4))
        # Second sweep over an already-optimized circuit changes nothing, so
        # at most two sweeps run.
        assert len(manager.stats) <= 2 * len(DEFAULT_PIPELINE)
        again = PassManager().run(optimized)
        assert live_gate_count(again) == live_gate_count(optimized)

    def test_summary_mentions_every_pass(self):
        manager = PassManager(max_iterations=1)
        manager.run(_traced_program(4))
        summary = manager.summary()
        for name in DEFAULT_PIPELINE:
            assert name in summary

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError):
            PassManager(passes=["fold", "mystery"])
        with pytest.raises(ValueError):
            PassManager(max_iterations=0)

    def test_verify_catches_a_broken_pass(self, monkeypatch):
        def broken(circuit):
            rewritten = fold_constants(circuit)
            # Sabotage: flip the final output wire to a NOT of itself.
            name, wires = next(iter(rewritten.output_wires.items()))
            flipped = rewritten.not_(wires[-1])
            rewritten.output_wires[name] = tuple(wires[:-1]) + (flipped,)
            return rewritten

        monkeypatch.setitem(PASSES, "broken", broken)
        manager = PassManager(passes=["broken"], verify=True, max_iterations=1)
        with pytest.raises(OptimizationError, match="broken"):
            manager.run(_traced_program(4))

    def test_verify_off_by_default_still_correct(self):
        circuit = _traced_program(8)
        optimized = PassManager().run(circuit)
        verify_equivalent(circuit, optimized, trials=24, rng=9)

    def test_benchmark_expression_hits_reduction_target(self):
        # The acceptance-criteria expression: >= 20% gate reduction at 16 bit.
        circuit = trace(
            lambda a, b, c: fhe_max(a * 3 + b, b - c),
            FheUint(16, "a"),
            FheUint(16, "b"),
            FheUint(16, "c"),
        )
        optimized = optimize(circuit)
        before, after = live_gate_count(circuit), live_gate_count(optimized)
        assert 1 - after / before >= 0.20
        assert circuit_depth(optimized) <= circuit_depth(circuit)

"""Wire-format unit and fuzz tests: framing must fail clean, never hang.

Every malformed input — truncated streams, oversized length prefixes, bad
magic, garbage headers, corrupted multi-part bodies, random byte blobs —
must raise a typed :class:`repro.runtime.protocol.ProtocolError` (or
:class:`EOFError` for a clean close between frames).  Nothing here may
allocate based on an unvalidated length prefix, and nothing may block
waiting for bytes a hostile peer will never send (the async reader is
driven from fully-fed in-memory streams, so a hang would deadlock the
test, not time out silently).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.runtime.protocol import (
    DEFAULT_MAX_FRAME,
    LEGACY_MAGIC,
    MAGIC,
    MAX_HEADER_LEN,
    BadHeader,
    BadMagic,
    ChecksumMismatch,
    FrameTooLarge,
    ProtocolError,
    TruncatedFrame,
    UnsupportedVersion,
    encode_frame,
    pack_parts,
    read_frame,
    read_frame_async,
    unpack_parts,
)

_PREFIX = struct.Struct("<4sIQI")


def _raw_frame(header_bytes: bytes, body: bytes = b"", crc: int = None) -> bytes:
    """Hand-build a v2 frame (valid CRC unless one is forced)."""
    import zlib

    if crc is None:
        crc = zlib.crc32(body, zlib.crc32(header_bytes)) & 0xFFFFFFFF
    return _PREFIX.pack(MAGIC, len(header_bytes), len(body), crc) + header_bytes + body


def _read_from_bytes(data: bytes, max_frame: int = DEFAULT_MAX_FRAME):
    """Drive the async reader from a fully-fed, EOF-terminated stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame_async(reader, max_frame)

    return asyncio.run(go())


# --------------------------------------------------------------------------- #
# well-formed round trips                                                     #
# --------------------------------------------------------------------------- #


def test_round_trip_async():
    header = {"op": "gate", "id": 7, "gate": "nand"}
    body = b"\x01\x02\x03" * 100
    got_header, got_body = _read_from_bytes(encode_frame(header, body))
    assert got_header == header
    assert got_body == body


def test_round_trip_empty_body():
    got_header, got_body = _read_from_bytes(encode_frame({"op": "hello", "id": 0}))
    assert got_header["op"] == "hello"
    assert got_body == b""


def test_round_trip_sync_socketpair():
    left, right = socket.socketpair()
    try:
        frame = encode_frame({"op": "metrics", "id": 3}, b"xyz")
        # Write from a thread so a (buggy) blocking read cannot deadlock.
        writer = threading.Thread(target=left.sendall, args=(frame,))
        writer.start()
        header, body = read_frame(right)
        writer.join()
        assert header == {"op": "metrics", "id": 3}
        assert body == b"xyz"
        left.close()
        with pytest.raises(EOFError):
            read_frame(right)
    finally:
        left.close()
        right.close()


def test_back_to_back_frames():
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(encode_frame({"op": "a", "id": 1}))
        reader.feed_data(encode_frame({"op": "b", "id": 2}, b"zz"))
        reader.feed_eof()
        first = await read_frame_async(reader)
        second = await read_frame_async(reader)
        with pytest.raises(EOFError):
            await read_frame_async(reader)
        return first, second

    (h1, _), (h2, b2) = asyncio.run(go())
    assert (h1["op"], h2["op"], b2) == ("a", "b", b"zz")


# --------------------------------------------------------------------------- #
# corruption taxonomy                                                         #
# --------------------------------------------------------------------------- #


def test_truncated_prefix():
    with pytest.raises(TruncatedFrame):
        _read_from_bytes(MAGIC + b"\x01")


def test_truncated_header():
    frame = encode_frame({"op": "x", "id": 1})
    with pytest.raises(TruncatedFrame):
        _read_from_bytes(frame[:-2])


def test_truncated_body():
    frame = encode_frame({"op": "x", "id": 1}, b"0123456789")
    with pytest.raises(TruncatedFrame):
        _read_from_bytes(frame[:-5])


def test_bad_magic():
    frame = bytearray(encode_frame({"op": "x", "id": 1}))
    frame[0:4] = b"EVIL"
    with pytest.raises(BadMagic):
        _read_from_bytes(bytes(frame))


def test_oversized_body_prefix_refused_before_allocation():
    # Claims an 8 EiB body with no bytes behind it: must be rejected from
    # the 20-byte prefix alone, not by trying to read (or allocate) it.
    prefix = _PREFIX.pack(MAGIC, 2, 1 << 62, 0)
    with pytest.raises(FrameTooLarge):
        _read_from_bytes(prefix + b"{}")


def test_oversized_header_prefix_refused():
    prefix = _PREFIX.pack(MAGIC, MAX_HEADER_LEN + 1, 0, 0)
    with pytest.raises(FrameTooLarge):
        _read_from_bytes(prefix)


def test_legacy_magic_rejected_typed():
    # A v1 (pre-CRC) peer is told apart from random garbage: its magic is
    # recognised and refused with the version error, not BadMagic.
    # Pad past the (larger) v2 prefix size: a real v1 peer keeps streaming,
    # so the reader always gets its 20 prefix bytes before judging them.
    prefix = struct.pack("<4sIQ", LEGACY_MAGIC, 2, 0) + b"{}" + b"\x00" * 8
    with pytest.raises(UnsupportedVersion):
        _read_from_bytes(prefix)


def test_corrupted_body_fails_checksum():
    frame = bytearray(encode_frame({"op": "gate", "id": 9}, b"payload-bytes"))
    frame[-3] ^= 0x10  # flip one bit inside the body
    with pytest.raises(ChecksumMismatch):
        _read_from_bytes(bytes(frame))


def test_corrupted_header_fails_checksum():
    frame = bytearray(encode_frame({"op": "gate", "id": 9}, b"payload"))
    frame[_PREFIX.size + 2] ^= 0x01  # flip one bit inside the JSON header
    with pytest.raises(ChecksumMismatch):
        _read_from_bytes(bytes(frame))


def test_checksum_mismatch_is_retryable():
    assert ChecksumMismatch.retryable is True
    assert TruncatedFrame.retryable is True
    assert BadMagic.retryable is False


def test_frame_over_reader_budget_refused():
    frame = encode_frame({"op": "x", "id": 1}, b"A" * 1024)
    with pytest.raises(FrameTooLarge):
        _read_from_bytes(frame, max_frame=256)


def test_encode_rejects_oversized_header():
    with pytest.raises(FrameTooLarge):
        encode_frame({"op": "x", "id": 1, "pad": "y" * (MAX_HEADER_LEN + 1)})


def test_header_not_json():
    # CRC-valid frame whose header bytes are not JSON: the checksum passes,
    # the parse fails typed.
    with pytest.raises(BadHeader):
        _read_from_bytes(_raw_frame(b"this is not json"))


def test_header_not_utf8():
    with pytest.raises(BadHeader):
        _read_from_bytes(_raw_frame(b"\xff\xfe\xfd\xfc"))


def test_header_not_an_object():
    with pytest.raises(BadHeader):
        _read_from_bytes(_raw_frame(json.dumps([1, 2, 3]).encode()))


# --------------------------------------------------------------------------- #
# multi-part bodies                                                           #
# --------------------------------------------------------------------------- #


def test_parts_round_trip():
    parts = [b"", b"a", b"b" * 1000]
    assert unpack_parts(pack_parts(parts)) == parts
    assert unpack_parts(pack_parts([]), expected=0) == []


def test_parts_count_mismatch():
    with pytest.raises(ProtocolError, match="expected 2"):
        unpack_parts(pack_parts([b"only"]), expected=2)


def test_parts_truncated_length_prefix():
    body = pack_parts([b"abc", b"def"])
    with pytest.raises(ProtocolError):
        unpack_parts(body[:6])


def test_parts_overrunning_length():
    body = bytearray(pack_parts([b"abc"]))
    body[4:12] = struct.pack("<Q", 1 << 40)  # part 0 claims a terabyte
    with pytest.raises(ProtocolError, match="claims"):
        unpack_parts(bytes(body))


def test_parts_trailing_garbage():
    with pytest.raises(ProtocolError, match="trailing"):
        unpack_parts(pack_parts([b"abc"]) + b"!!")


def test_parts_empty_body():
    with pytest.raises(ProtocolError):
        unpack_parts(b"")


# --------------------------------------------------------------------------- #
# fuzz                                                                        #
# --------------------------------------------------------------------------- #


def test_fuzz_random_blobs_never_hang():
    """Random bytes either parse or raise cleanly — bounded, typed, fast."""
    rng = np.random.default_rng(20260808)
    for _ in range(300):
        blob = rng.integers(0, 256, size=int(rng.integers(0, 200)), dtype=np.uint8).tobytes()
        try:
            _read_from_bytes(blob)
        except (ProtocolError, EOFError):
            pass  # the only acceptable failures


def test_fuzz_mutated_valid_frames():
    """Single-byte mutations of a valid frame ALWAYS fail typed.

    With the CRC-protected v2 frame this is a hard guarantee, not
    best-effort: CRC32 detects every single-byte error in the covered
    region, and mutations of the prefix itself hit the magic/length/CRC
    validation.  No mutation may parse as a (silently different) frame.
    """
    rng = np.random.default_rng(42)
    frame = encode_frame({"op": "gate", "id": 5, "gate": "xor"}, b"payload-bytes")
    for _ in range(300):
        mutated = bytearray(frame)
        position = int(rng.integers(0, len(mutated)))
        mutated[position] ^= int(rng.integers(1, 256))
        with pytest.raises((ProtocolError, EOFError)):
            _read_from_bytes(bytes(mutated))


def test_fuzz_truncations_of_valid_frame():
    """Every strict prefix of a valid frame raises, never returns garbage."""
    frame = encode_frame({"op": "gate", "id": 5}, b"xx")
    for cut in range(len(frame)):
        with pytest.raises((ProtocolError, EOFError)):
            _read_from_bytes(frame[:cut])


def test_fuzz_parts_mutations():
    rng = np.random.default_rng(7)
    body = pack_parts([b"alpha", b"beta", b"gamma" * 20])
    for _ in range(300):
        mutated = bytearray(body)
        position = int(rng.integers(0, len(mutated)))
        mutated[position] ^= int(rng.integers(1, 256))
        try:
            parts = unpack_parts(bytes(mutated))
            assert isinstance(parts, list)
        except ProtocolError:
            pass

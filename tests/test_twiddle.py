"""Tests for twiddle-factor schedules, DVQTF quantisation and read accounting."""

import numpy as np
import pytest

from repro.core.twiddle import (
    TwiddleFactorBuffer,
    breadth_first_twiddle_reads,
    conjugate_pair_twiddle_reads,
    dvqtf_table,
    stage_angles,
    twiddle_read_counts,
)


class TestTwiddleBuffer:
    def test_entries_are_unit_roots(self):
        buffer = TwiddleFactorBuffer(16, twiddle_bits=40)
        values = np.array([buffer.peek(k).value for k in range(16)])
        assert np.allclose(np.abs(values), 1.0, atol=1e-6)

    def test_quantisation_error_decreases_with_bits(self):
        coarse = TwiddleFactorBuffer(64, twiddle_bits=6).max_quantisation_error()
        fine = TwiddleFactorBuffer(64, twiddle_bits=20).max_quantisation_error()
        assert fine < coarse

    def test_reads_are_counted_and_resettable(self):
        buffer = TwiddleFactorBuffer(8, twiddle_bits=16)
        buffer.read(1)
        buffer.read(3)
        assert buffer.reads == 2
        buffer.reset_reads()
        assert buffer.reads == 0

    def test_peek_does_not_count(self):
        buffer = TwiddleFactorBuffer(8, twiddle_bits=16)
        buffer.peek(2)
        assert buffer.reads == 0

    def test_index_wraps(self):
        buffer = TwiddleFactorBuffer(8, twiddle_bits=16)
        assert buffer.read(9).angle == buffer.peek(1).angle

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            TwiddleFactorBuffer(12, twiddle_bits=16)

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            TwiddleFactorBuffer(8, twiddle_bits=16, sign=2)


class TestStageAngles:
    def test_count_is_half_stage_length(self):
        assert stage_angles(64, 16).shape == (8,)

    def test_sign_flips_angles(self):
        plus = stage_angles(64, 16, sign=1)
        minus = stage_angles(64, 16, sign=-1)
        assert np.allclose(plus, -minus)

    def test_out_of_range_stage_rejected(self):
        with pytest.raises(ValueError):
            stage_angles(64, 128)


class TestReadAccounting:
    def test_breadth_first_formula(self):
        # N/2 butterflies per stage, log2 N stages.
        assert breadth_first_twiddle_reads(512) == 256 * 9

    def test_conjugate_pair_reads_fewer(self):
        for size in (64, 256, 512, 1024):
            assert conjugate_pair_twiddle_reads(size) < breadth_first_twiddle_reads(size)

    def test_reduction_factor_at_least_two(self):
        counts = twiddle_read_counts(512)
        assert counts["reduction_factor"] >= 2.0

    def test_dvqtf_table_matches_buffer(self):
        table = dvqtf_table(16, twiddle_bits=12)
        buffer = TwiddleFactorBuffer(16, twiddle_bits=12)
        assert np.allclose(table, [buffer.peek(k).value for k in range(16)])

"""Tests for the level scheduler, the mixed-gate batch call and the executor.

The load-bearing properties: (1) a :class:`LevelSchedule` is a valid
dependency levelling of the netlist, (2) ``gate_rows`` — the mixed-gate
batched bootstrapping the executor feeds — is bit-identical to the scalar
evaluator per row, and (3) the levelized executor's output ciphertexts are
bit-identical to the eager gate-by-gate path for every circuit helper,
property-tested over random integers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tfhe.circuits import decrypt_integers, encrypt_integers
from repro.tfhe.executor import CircuitExecutor, execute, schedule_circuit
from repro.tfhe.gates import (
    MIXED_GATE_SPECS,
    BatchGateEvaluator,
    TFHEGateEvaluator,
    encrypt_bit,
    encrypt_bit_batch,
)
from repro.tfhe.lwe import LweBatch, lwe_batch_concat
from repro.tfhe.netlist import (
    Circuit,
    adder_netlist,
    greater_than_netlist,
    maximum_netlist,
    subtractor_netlist,
)


def assert_batches_identical(x: LweBatch, y: LweBatch) -> None:
    assert np.array_equal(x.a, y.a)
    assert np.array_equal(x.b, y.b)


class TestSchedule:
    def test_levels_respect_dependencies(self):
        c = adder_netlist(4)
        schedule = schedule_circuit(c)
        level_of = {}
        for level, wave in enumerate(schedule.waves, start=1):
            for nid in wave:
                level_of[nid] = level
        for level, wave in enumerate(schedule.waves, start=1):
            for nid in wave:
                for arg in c.node(nid).args:
                    if c.node(arg).is_bootstrapped:
                        assert level_of[arg] < level

    def test_schedule_covers_exactly_the_live_gates(self):
        c = subtractor_netlist(3)
        schedule = schedule_circuit(c)
        live_gates = {n for n in c.live_nodes() if c.node(n).is_bootstrapped}
        scheduled = {n for wave in schedule.waves for n in wave}
        assert scheduled == live_gates
        assert schedule.gate_count == len(live_gates)

    def test_adder_first_level_is_widest(self):
        # All xor(a,b)/and(a,b) pairs are input-independent: width 2W.
        schedule = schedule_circuit(adder_netlist(8))
        assert schedule.level_widths[0] == 16
        assert schedule.max_width == 16
        assert schedule.mean_width > 1.0

    def test_depth_is_much_smaller_than_gate_count(self):
        schedule = schedule_circuit(adder_netlist(16))
        assert schedule.depth < schedule.gate_count / 2

    def test_width_histogram_sums_to_depth(self):
        schedule = schedule_circuit(maximum_netlist(4))
        assert sum(schedule.width_histogram().values()) == schedule.depth
        assert sum(w * n for w, n in schedule.width_histogram().items()) == (
            schedule.gate_count
        )

    def test_linear_only_circuit_has_no_waves(self):
        c = Circuit()
        a = c.inputs("a", 2)
        c.output("out", [c.not_(a[0]), c.not_(a[1])])
        schedule = schedule_circuit(c)
        assert schedule.depth == 0
        assert schedule.gate_count == 0


class TestGateRows:
    def test_mixed_rows_match_scalar_gates(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        scalar = TFHEGateEvaluator(cloud)
        batch_eval = BatchGateEvaluator(cloud, batch_size=1)
        names = sorted(MIXED_GATE_SPECS)
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(len(names), 2))
        ca = [encrypt_bit(secret, int(bits[i, 0]), rng) for i in range(len(names))]
        cb = [encrypt_bit(secret, int(bits[i, 1]), rng) for i in range(len(names))]
        out = batch_eval.gate_rows(
            names, LweBatch.from_samples(ca), LweBatch.from_samples(cb)
        )
        for i, name in enumerate(names):
            ref = scalar.gate(name, ca[i], cb[i])
            assert np.array_equal(out.a[i], ref.a), name
            assert int(out.b[i]) == int(ref.b), name

    def test_row_count_is_free(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        batch_eval = BatchGateEvaluator(cloud, batch_size=4)
        ca = encrypt_bit_batch(secret, [1, 0, 1], rng=1)
        cb = encrypt_bit_batch(secret, [0, 0, 1], rng=2)
        out = batch_eval.gate_rows(["and", "or", "xor"], ca, cb)
        assert out.batch_size == 3

    def test_name_count_mismatch_rejected(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        batch_eval = BatchGateEvaluator(cloud, batch_size=2)
        ca = cb = batch_eval.constant(0)
        with pytest.raises(ValueError):
            batch_eval.gate_rows(["and"], ca, cb)

    def test_unknown_name_rejected(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        batch_eval = BatchGateEvaluator(cloud, batch_size=1)
        ca = cb = batch_eval.constant(0)
        with pytest.raises(ValueError):
            batch_eval.gate_rows(["mystery"], ca, cb)


class TestBatchConcat:
    def test_concat_then_rows_roundtrips(self, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        x = encrypt_bit_batch(secret, [0, 1], rng=3)
        y = encrypt_bit_batch(secret, [1, 1], rng=4)
        z = lwe_batch_concat([x, y])
        assert z.batch_size == 4
        assert_batches_identical(z.rows(0, 2), x)
        assert_batches_identical(z.rows(2, 4), y)

    def test_empty_concat_rejected(self):
        with pytest.raises(ValueError):
            lwe_batch_concat([])

    def test_rows_bounds_checked(self, tiny_keys_naive):
        secret, _ = tiny_keys_naive
        x = encrypt_bit_batch(secret, [0, 1], rng=5)
        with pytest.raises(ValueError):
            x.rows(1, 3)


class TestLevelizedEquivalence:
    """Levelized executor output must be bit-identical to the eager path."""

    WIDTH = 3
    WORDS = 4

    def _planes(self, secret, values, rng):
        return encrypt_integers(secret, values, self.WIDTH, rng=rng)

    @pytest.mark.parametrize(
        "factory,output",
        [
            (adder_netlist, "sum"),
            (subtractor_netlist, "diff"),
            (greater_than_netlist, "gt"),
            (maximum_netlist, "max"),
        ],
    )
    def test_circuits_bit_identical(self, tiny_keys_naive, factory, output):
        secret, cloud = tiny_keys_naive
        circuit = factory(self.WIDTH)
        rng = np.random.default_rng(100)
        a_vals = [int(v) for v in rng.integers(0, 2**self.WIDTH, self.WORDS)]
        b_vals = [int(v) for v in rng.integers(0, 2**self.WIDTH, self.WORDS)]
        inputs = {
            "a": self._planes(secret, a_vals, rng),
            "b": self._planes(secret, b_vals, rng),
        }
        eager = execute(circuit, BatchGateEvaluator(cloud, self.WORDS), inputs)
        executor = CircuitExecutor(BatchGateEvaluator(cloud, self.WORDS))
        levelized = executor.run(circuit, inputs)
        for plane_eager, plane_level in zip(eager[output], levelized[output]):
            assert_batches_identical(plane_eager, plane_level)

    def test_level_calls_equal_schedule_depth(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        circuit = adder_netlist(2)
        schedule = schedule_circuit(circuit)
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=2))
        inputs = {
            "a": encrypt_integers(secret, [1, 2], 2, rng=8),
            "b": encrypt_integers(secret, [3, 0], 2, rng=9),
        }
        executor.run(circuit, inputs, schedule=schedule)
        assert executor.level_calls == schedule.depth
        assert executor.evaluator.counters.bootstraps == schedule.gate_count * 2

    @settings(max_examples=6, deadline=None)
    @given(data=st.data())
    def test_random_adds_decrypt_correctly_levelized(self, tiny_keys_naive, data):
        secret, cloud = tiny_keys_naive
        width, words = 3, 2
        a_vals = data.draw(
            st.lists(st.integers(0, 2**width - 1), min_size=words, max_size=words)
        )
        b_vals = data.draw(
            st.lists(st.integers(0, 2**width - 1), min_size=words, max_size=words)
        )
        seed = data.draw(st.integers(0, 2**16))
        rng = np.random.default_rng(seed)
        inputs = {
            "a": encrypt_integers(secret, a_vals, width, rng=rng),
            "b": encrypt_integers(secret, b_vals, width, rng=rng),
        }
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=words))
        sums = executor.run(adder_netlist(width), inputs)["sum"]
        assert decrypt_integers(secret, sums) == [
            x + y for x, y in zip(a_vals, b_vals)
        ]

    def test_run_samples_single_word(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        from repro.tfhe.circuits import decrypt_integer, encrypt_integer

        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=1))
        a = encrypt_integer(secret, 5, 3, rng=20)
        b = encrypt_integer(secret, 6, 3, rng=21)
        out = executor.run_samples(adder_netlist(3), {"a": a, "b": b})["sum"]
        assert decrypt_integer(secret, out) == 11

    def test_run_samples_requires_batch_one(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=2))
        with pytest.raises(ValueError):
            executor.run_samples(adder_netlist(1), {"a": [], "b": []})


class TestExecutorErrors:
    def test_missing_input_rejected(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=1))
        planes = encrypt_integers(secret, [1], 2, rng=30)
        with pytest.raises(ValueError):
            executor.run(adder_netlist(2), {"a": planes})

    def test_wrong_input_width_rejected(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=1))
        with pytest.raises(ValueError):
            executor.run(
                adder_netlist(2),
                {
                    "a": encrypt_integers(secret, [1], 3, rng=31),
                    "b": encrypt_integers(secret, [1], 2, rng=32),
                },
            )

    def test_wrong_batch_width_rejected(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=2))
        with pytest.raises(ValueError):
            executor.run(
                adder_netlist(2),
                {
                    "a": encrypt_integers(secret, [1], 2, rng=33),
                    "b": encrypt_integers(secret, [1], 2, rng=34),
                },
            )

    def test_schedule_with_conflicting_outputs_rejected(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=1))
        circuit = adder_netlist(2)
        schedule = schedule_circuit(circuit)
        with pytest.raises(ValueError):
            executor.run(
                circuit,
                {
                    "a": encrypt_integers(secret, [1], 2, rng=37),
                    "b": encrypt_integers(secret, [1], 2, rng=38),
                },
                outputs=["nope"],
                schedule=schedule,
            )

    def test_foreign_schedule_rejected(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=1))
        schedule = schedule_circuit(adder_netlist(3))
        with pytest.raises(ValueError):
            executor.run(
                adder_netlist(2),
                {
                    "a": encrypt_integers(secret, [1], 2, rng=35),
                    "b": encrypt_integers(secret, [1], 2, rng=36),
                },
                schedule=schedule,
            )

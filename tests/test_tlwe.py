"""Tests for ring TLWE encryption, rotation and sample extraction."""

import numpy as np
import pytest

from repro.tfhe.lwe import lwe_phase
from repro.tfhe.params import TEST_SMALL, TEST_TINY
from repro.tfhe.polynomial import poly_mul_by_xk
from repro.tfhe.tlwe import (
    TlweSample,
    tlwe_add,
    tlwe_encrypt,
    tlwe_extract_lwe_key,
    tlwe_key_generate,
    tlwe_phase,
    tlwe_rotate,
    tlwe_sample_extract,
    tlwe_sub,
    tlwe_trivial,
    tlwe_zero,
)
from repro.tfhe.torus import double_to_torus32, torus_distance
from repro.tfhe.transform import NaiveNegacyclicTransform


@pytest.fixture(scope="module")
def setup():
    params = TEST_TINY.tlwe
    transform = NaiveNegacyclicTransform(params.degree)
    key = tlwe_key_generate(params, rng=21)
    return params, transform, key


def message_poly(degree, value=0.125):
    return np.full(degree, double_to_torus32(value), dtype=np.int32)


class TestKeyAndStructure:
    def test_key_shape_and_binarity(self, setup):
        params, _, key = setup
        assert key.key.shape == (params.mask_count, params.degree)
        assert set(np.unique(key.key)).issubset({0, 1})

    def test_zero_sample_shape(self, setup):
        params, _, _ = setup
        sample = tlwe_zero(params)
        assert sample.data.shape == (params.mask_count + 1, params.degree)
        assert not sample.data.any()

    def test_trivial_sample_stores_message_in_body(self, setup):
        params, _, _ = setup
        msg = message_poly(params.degree)
        sample = tlwe_trivial(msg, params.mask_count)
        assert np.array_equal(sample.b, msg)
        assert not sample.a.any()

    def test_accessors(self, setup):
        params, _, _ = setup
        sample = tlwe_zero(params)
        assert sample.mask_count == params.mask_count
        assert sample.degree == params.degree


class TestEncryption:
    def test_phase_recovers_message(self, setup):
        params, transform, key = setup
        msg = message_poly(params.degree)
        ct = tlwe_encrypt(key, msg, transform, rng=22)
        phase = tlwe_phase(key, ct, transform)
        assert torus_distance(phase, msg).max() < 1e-3

    def test_homomorphic_add(self, setup):
        params, transform, key = setup
        msg = message_poly(params.degree)
        c1 = tlwe_encrypt(key, msg, transform, rng=23)
        c2 = tlwe_encrypt(key, msg, transform, rng=24)
        total_phase = tlwe_phase(key, tlwe_add(c1, c2), transform)
        expected = np.full(params.degree, 2 * int(double_to_torus32(0.125)), dtype=np.int64)
        assert torus_distance(total_phase, expected.astype(np.int32)).max() < 1e-3

    def test_homomorphic_sub_cancels(self, setup):
        params, transform, key = setup
        msg = message_poly(params.degree)
        c1 = tlwe_encrypt(key, msg, transform, rng=25)
        diff_phase = tlwe_phase(key, tlwe_sub(c1, c1), transform)
        assert torus_distance(diff_phase, np.zeros(params.degree, dtype=np.int32)).max() == 0

    def test_trivial_phase_is_message(self, setup):
        params, transform, key = setup
        msg = message_poly(params.degree)
        sample = tlwe_trivial(msg, params.mask_count)
        assert np.array_equal(tlwe_phase(key, sample, transform), msg)


class TestRotation:
    def test_rotation_rotates_message(self, setup):
        params, transform, key = setup
        msg = np.zeros(params.degree, dtype=np.int32)
        msg[0] = double_to_torus32(0.125)
        ct = tlwe_encrypt(key, msg, transform, rng=26)
        rotated_phase = tlwe_phase(key, tlwe_rotate(ct, 3), transform)
        assert torus_distance(rotated_phase, poly_mul_by_xk(msg, 3)).max() < 1e-3

    def test_rotation_by_zero_is_identity(self, setup):
        params, _, _ = setup
        sample = tlwe_trivial(message_poly(params.degree), params.mask_count)
        assert np.array_equal(tlwe_rotate(sample, 0).data, sample.data)

    def test_rotation_by_2n_is_identity(self, setup):
        params, _, _ = setup
        sample = tlwe_trivial(message_poly(params.degree), params.mask_count)
        assert np.array_equal(tlwe_rotate(sample, 2 * params.degree).data, sample.data)


class TestSampleExtract:
    def test_extract_matches_polynomial_phase(self, setup):
        params, transform, key = setup
        rng = np.random.default_rng(27)
        msg = rng.integers(-(2**28), 2**28, params.degree).astype(np.int32)
        ct = tlwe_encrypt(key, msg, transform, rng=28)
        poly_phase = tlwe_phase(key, ct, transform)
        extracted_key = tlwe_extract_lwe_key(key)
        for index in (0, 1, params.degree // 2, params.degree - 1):
            extracted = tlwe_sample_extract(ct, index)
            scalar_phase = lwe_phase(extracted_key, extracted)
            assert float(torus_distance(scalar_phase, poly_phase[index])) == 0.0

    def test_extracted_key_dimension(self, setup):
        params, _, key = setup
        assert tlwe_extract_lwe_key(key).dimension == params.extracted_lwe_dimension

    def test_extract_index_out_of_range(self, setup):
        params, _, _ = setup
        sample = tlwe_zero(params)
        with pytest.raises(ValueError):
            tlwe_sample_extract(sample, params.degree)

    def test_copy_is_independent(self, setup):
        params, _, _ = setup
        sample = tlwe_zero(params)
        clone = sample.copy()
        clone.data[0, 0] = 5
        assert sample.data[0, 0] == 0

"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_length,
    evaluate_signed_digits,
    is_power_of_two,
    shift_add_apply,
    signed_digit_expansion,
    to_signed_32,
    to_signed_64,
    wrap_int32,
    wrap_int64,
)


class TestPowerOfTwo:
    def test_powers_are_recognised(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)


class TestBitLength:
    def test_zero(self):
        assert bit_length(0) == 0

    def test_positive(self):
        assert bit_length(1) == 1
        assert bit_length(255) == 8
        assert bit_length(256) == 9

    def test_negative_uses_magnitude(self):
        assert bit_length(-255) == 8


class TestSignedWrap:
    def test_to_signed_32_wraps(self):
        assert to_signed_32(2**31) == -(2**31)
        assert to_signed_32(2**32 + 5) == 5
        assert to_signed_32(-1) == -1

    def test_to_signed_64_wraps(self):
        assert to_signed_64(2**63) == -(2**63)
        assert to_signed_64(2**64 + 7) == 7

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_to_signed_32_is_mod_2_32(self, value):
        assert (to_signed_32(value) - value) % (2**32) == 0

    def test_wrap_int32_matches_scalar(self):
        values = np.array([2**31, -(2**31) - 1, 0, 12345], dtype=np.int64)
        wrapped = wrap_int32(values)
        assert list(wrapped) == [to_signed_32(int(v)) for v in values]

    def test_wrap_int64_identity_in_range(self):
        values = np.array([-5, 0, 7], dtype=np.int64)
        assert np.array_equal(wrap_int64(values), values)


class TestSignedDigitExpansion:
    def test_paper_example_9_over_128(self):
        """The paper's Figure 3(b): 9/128 = 1/2^4 + 1/2^7."""
        terms = signed_digit_expansion(9, 7)
        assert terms == [(1, 4), (1, 7)]

    def test_zero_has_no_terms(self):
        assert signed_digit_expansion(0, 10) == []

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            signed_digit_expansion(3, -1)

    @given(st.integers(min_value=-(2**20), max_value=2**20), st.integers(min_value=0, max_value=24))
    def test_expansion_evaluates_back(self, numerator, beta):
        terms = signed_digit_expansion(numerator, beta)
        assert evaluate_signed_digits(terms) == pytest.approx(numerator / 2**beta, abs=1e-12)

    @given(st.integers(min_value=1, max_value=2**20))
    def test_non_adjacent_form_is_sparse(self, numerator):
        """NAF never uses two adjacent digit positions."""
        terms = signed_digit_expansion(numerator, 0)
        shifts = sorted(shift for _, shift in terms)
        for a, b in zip(shifts, shifts[1:]):
            assert b - a >= 2

    def test_shift_add_apply_matches_multiplication(self):
        terms = signed_digit_expansion(9, 7)  # 9/128
        operand = 128 * 1000
        assert shift_add_apply(operand, terms) == operand * 9 // 128

    @given(
        st.integers(min_value=-(2**30), max_value=2**30),
        st.integers(min_value=1, max_value=2**12),
        st.integers(min_value=4, max_value=16),
    )
    def test_shift_add_apply_close_to_product(self, operand, numerator, beta):
        terms = signed_digit_expansion(numerator, beta)
        exact = operand * numerator / 2**beta
        approx = shift_add_apply(operand, terms)
        # Each of the <= beta shifted terms floors once.
        assert abs(approx - exact) <= len(terms) + 1

"""Tests for scalar LWE encryption and its homomorphic linear operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tfhe.lwe import (
    gate_message,
    lwe_add,
    lwe_add_constant,
    lwe_decrypt_bit,
    lwe_encrypt,
    lwe_encrypt_trivial,
    lwe_key_generate,
    lwe_negate,
    lwe_noise,
    lwe_phase,
    lwe_scale,
    lwe_sub,
)
from repro.tfhe.params import TEST_SMALL, TEST_TINY
from repro.tfhe.torus import double_to_torus32, torus32_from_int64, torus_distance


@pytest.fixture(scope="module")
def key():
    return lwe_key_generate(TEST_SMALL.lwe, rng=11)


class TestKeyGeneration:
    def test_key_is_binary(self, key):
        assert set(np.unique(key.key)).issubset({0, 1})

    def test_key_dimension(self, key):
        assert key.dimension == TEST_SMALL.n

    def test_different_seeds_differ(self):
        k1 = lwe_key_generate(TEST_TINY.lwe, rng=1)
        k2 = lwe_key_generate(TEST_TINY.lwe, rng=2)
        assert not np.array_equal(k1.key, k2.key)


class TestEncryptDecrypt:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_bit_roundtrip(self, key, bit):
        sample = lwe_encrypt(key, gate_message(bit), rng=3)
        assert lwe_decrypt_bit(key, sample) == bit

    def test_noise_is_small(self, key):
        mu = gate_message(1)
        sample = lwe_encrypt(key, mu, rng=4)
        assert abs(lwe_noise(key, sample, mu)) < 1e-3

    def test_trivial_sample_has_no_mask(self):
        sample = lwe_encrypt_trivial(16, np.int32(123))
        assert not sample.a.any()
        assert sample.b == 123

    def test_trivial_sample_decrypts_without_key_interaction(self, key):
        mu = gate_message(1)
        sample = lwe_encrypt_trivial(key.dimension, mu)
        assert lwe_decrypt_bit(key, sample) == 1

    def test_phase_equals_message_plus_noise(self, key):
        mu = gate_message(0)
        sample = lwe_encrypt(key, mu, rng=5)
        phase = lwe_phase(key, sample)
        assert float(torus_distance(phase, mu)) < 1e-3

    def test_encryptions_are_randomised(self, key):
        mu = gate_message(1)
        s1 = lwe_encrypt(key, mu, rng=6)
        s2 = lwe_encrypt(key, mu, rng=7)
        assert not np.array_equal(s1.a, s2.a)


class TestHomomorphicLinearOps:
    def test_add_sums_messages(self, key):
        eighth = int(double_to_torus32(0.125))
        c1 = lwe_encrypt(key, np.int32(eighth), rng=8)
        c2 = lwe_encrypt(key, np.int32(eighth), rng=9)
        total = lwe_add(c1, c2)
        assert float(torus_distance(lwe_phase(key, total), np.int32(2 * eighth))) < 1e-3

    def test_sub_cancels(self, key):
        mu = gate_message(1)
        c1 = lwe_encrypt(key, mu, rng=10)
        diff = lwe_sub(c1, c1)
        assert float(torus_distance(lwe_phase(key, diff), 0)) < 1e-9

    def test_negate_flips_sign(self, key):
        mu = gate_message(1)
        sample = lwe_encrypt(key, mu, rng=12)
        assert lwe_decrypt_bit(key, lwe_negate(sample)) == 0

    @given(st.integers(min_value=-3, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_scale_scales_phase(self, scalar):
        key = lwe_key_generate(TEST_TINY.lwe, rng=13)
        eighth = int(double_to_torus32(0.125))
        sample = lwe_encrypt(key, np.int32(eighth), noise_stddev=2.0**-25, rng=14)
        scaled = lwe_scale(scalar, sample)
        expected = torus32_from_int64(scalar * eighth)
        assert float(torus_distance(lwe_phase(key, scaled), expected)) < 1e-3

    def test_add_constant_shifts_body_only(self, key):
        mu = gate_message(0)
        sample = lwe_encrypt(key, mu, rng=15)
        shifted = lwe_add_constant(sample, gate_message(1))
        assert np.array_equal(shifted.a, sample.a)
        assert shifted.b != sample.b

    def test_copy_is_independent(self, key):
        sample = lwe_encrypt(key, gate_message(1), rng=16)
        clone = sample.copy()
        clone.a[0] += 1
        assert clone.a[0] != sample.a[0]


class TestGateMessage:
    def test_messages_are_opposite(self):
        assert int(gate_message(1)) == -int(gate_message(0))

    def test_message_is_one_eighth(self):
        assert int(gate_message(1)) == int(double_to_torus32(0.125))

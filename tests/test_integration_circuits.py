"""Integration tests: multi-gate encrypted circuits built on the public API.

These tests chain many bootstrapped gates (the scenario the paper's
introduction motivates with the TFHE RISC-V processor): ripple-carry addition,
comparison and multiplexing.  Gate outputs feed further gates, so they also
exercise the freshness of the bootstrapped noise across deep circuits.
"""

import pytest

from repro.tfhe.gates import TFHEGateEvaluator, decrypt_bits, encrypt_bits, decrypt_bit, encrypt_bit


def ripple_carry_add(evaluator, a_bits, b_bits):
    """Encrypted ripple-carry adder; returns sum bits plus the carry-out."""
    carry = evaluator.constant(0)
    total = []
    for ca, cb in zip(a_bits, b_bits):
        axb = evaluator.xor(ca, cb)
        total.append(evaluator.xor(axb, carry))
        carry = evaluator.or_(evaluator.and_(ca, cb), evaluator.and_(axb, carry))
    total.append(carry)
    return total


def equality_check(evaluator, a_bits, b_bits):
    """Encrypted equality comparator (AND of XNORs)."""
    result = evaluator.constant(1)
    for ca, cb in zip(a_bits, b_bits):
        result = evaluator.and_(result, evaluator.xnor(ca, cb))
    return result


def to_bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits):
    return sum(bit << i for i, bit in enumerate(bits))


class TestEncryptedAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (2, 3)])
    def test_two_bit_addition(self, tiny_keys_naive, a, b):
        secret, cloud = tiny_keys_naive
        evaluator = TFHEGateEvaluator(cloud)
        ca = encrypt_bits(secret, to_bits(a, 2), rng=1000 + a)
        cb = encrypt_bits(secret, to_bits(b, 2), rng=2000 + b)
        result = decrypt_bits(secret, ripple_carry_add(evaluator, ca, cb))
        assert from_bits(result) == a + b

    def test_three_bit_addition_on_double_fft_backend(self, small_keys_double):
        secret, cloud = small_keys_double
        evaluator = TFHEGateEvaluator(cloud)
        a, b = 5, 6
        ca = encrypt_bits(secret, to_bits(a, 3), rng=1)
        cb = encrypt_bits(secret, to_bits(b, 3), rng=2)
        result = decrypt_bits(secret, ripple_carry_add(evaluator, ca, cb))
        assert from_bits(result) == a + b


class TestEncryptedComparator:
    @pytest.mark.parametrize("a,b", [(2, 2), (1, 3), (0, 0), (3, 1)])
    def test_equality(self, tiny_keys_naive, a, b):
        secret, cloud = tiny_keys_naive
        evaluator = TFHEGateEvaluator(cloud)
        ca = encrypt_bits(secret, to_bits(a, 2), rng=3000 + a)
        cb = encrypt_bits(secret, to_bits(b, 2), rng=4000 + b)
        result = decrypt_bit(secret, equality_check(evaluator, ca, cb))
        assert result == int(a == b)


class TestDeepChains:
    def test_long_xor_chain_stays_correct(self, tiny_keys_naive):
        """Twelve chained bootstrapped gates: noise must not accumulate."""
        secret, cloud = tiny_keys_naive
        evaluator = TFHEGateEvaluator(cloud)
        bits = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1]
        encrypted = encrypt_bits(secret, bits, rng=11)
        acc = encrypted[0]
        expected = bits[0]
        for bit, cipher in zip(bits[1:], encrypted[1:]):
            acc = evaluator.xor(acc, cipher)
            expected ^= bit
        assert decrypt_bit(secret, acc) == expected

    def test_mux_tree(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        evaluator = TFHEGateEvaluator(cloud)
        data = encrypt_bits(secret, [0, 1, 1, 0], rng=12)
        select = encrypt_bits(secret, [1, 0], rng=13)  # select index 1 -> data[1] = 1
        level0 = [
            evaluator.mux(select[0], data[1], data[0]),
            evaluator.mux(select[0], data[3], data[2]),
        ]
        top = evaluator.mux(select[1], level0[1], level0[0])
        assert decrypt_bit(secret, top) == 1

    def test_bku_backend_runs_the_same_circuit(self, tiny_keys_naive_m2):
        secret, cloud = tiny_keys_naive_m2
        evaluator = TFHEGateEvaluator(cloud)
        a, b = 3, 1
        ca = encrypt_bits(secret, to_bits(a, 2), rng=14)
        cb = encrypt_bits(secret, to_bits(b, 2), rng=15)
        result = decrypt_bits(secret, ripple_carry_add(evaluator, ca, cb))
        assert from_bits(result) == a + b

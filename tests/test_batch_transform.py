"""Batch-equivalence property tests for the transform and polynomial layers.

The contract of the batch axis is *bit-identity*: transforming a stack of
polynomials in one call must produce exactly the result of looping the
single-polynomial path over the stack, for every engine.  These tests compare
raw array bits (``np.array_equal``), not tolerances.
"""

import numpy as np
import pytest

from repro.core.integer_fft import ApproximateNegacyclicTransform, IntegerSpectrum
from repro.tfhe.polynomial import (
    negacyclic_convolution,
    negacyclic_convolution_int64,
    poly_mul_by_xk,
    poly_mul_by_xk_powers,
)
from repro.tfhe.transform import make_transform

ENGINES = ("naive", "double", "approx")
DEGREE = 64
BATCH = 7


def _random_int_polys(rng, shape, degree, magnitude=2**10):
    return rng.integers(-magnitude, magnitude, size=shape + (degree,)).astype(np.int64)


def _random_torus_polys(rng, shape, degree):
    return (
        rng.integers(-(2**31), 2**31, size=shape + (degree,))
        .astype(np.int64)
        .astype(np.int32)
    )


def _spectra_equal(engine_kind, batched, single, row):
    if engine_kind == "approx":
        scale = np.asarray(batched.scale_bits).reshape(-1)
        vals = batched.values.reshape(-1, batched.values.shape[-1])
        return np.array_equal(vals[row], single.values) and int(scale[row]) == int(
            single.scale_bits
        )
    return np.array_equal(
        np.asarray(batched).reshape(-1, np.asarray(batched).shape[-1])[row],
        np.asarray(single),
    )


@pytest.mark.parametrize("kind", ENGINES)
class TestBatchedTransformEquivalence:
    def test_forward_matches_loop(self, kind, rng):
        transform = make_transform(kind, DEGREE)
        polys = _random_int_polys(rng, (BATCH,), DEGREE)
        batched = transform.forward(polys)
        for i in range(BATCH):
            single = transform.forward(polys[i])
            assert _spectra_equal(kind, batched, single, i)

    def test_backward_matches_loop(self, kind, rng):
        transform = make_transform(kind, DEGREE)
        polys = _random_int_polys(rng, (BATCH,), DEGREE)
        batched = transform.backward(transform.forward(polys))
        assert batched.shape == (BATCH, DEGREE)
        for i in range(BATCH):
            single = transform.backward(transform.forward(polys[i]))
            assert np.array_equal(batched[i], single)

    def test_multiply_matches_loop(self, kind, rng):
        transform = make_transform(kind, DEGREE)
        ints = _random_int_polys(rng, (BATCH,), DEGREE, magnitude=128)
        torus = _random_torus_polys(rng, (BATCH,), DEGREE)
        batched = transform.multiply(ints, torus)
        for i in range(BATCH):
            single = transform.multiply(ints[i], torus[i])
            assert np.array_equal(batched[i], single)

    def test_multidimensional_stacks(self, kind, rng):
        """A (2, 3, N) stack behaves like the flattened (6, N) stack."""
        transform = make_transform(kind, DEGREE)
        polys = _random_int_polys(rng, (2, 3), DEGREE)
        nested = transform.backward(transform.forward(polys))
        flat = transform.backward(transform.forward(polys.reshape(6, DEGREE)))
        assert nested.shape == (2, 3, DEGREE)
        assert np.array_equal(nested.reshape(6, DEGREE), flat)

    def test_spectrum_mul_broadcasts_single_operand(self, kind, rng):
        """A batched operand multiplies with a single pre-transformed spectrum.

        This is the external-product access pattern: the decomposed
        accumulator rows are batched, the bootstrapping-key spectra are not.
        """
        transform = make_transform(kind, DEGREE)
        ints = _random_int_polys(rng, (BATCH,), DEGREE, magnitude=128)
        key_poly = _random_int_polys(rng, (), DEGREE, magnitude=128)
        key_spec = transform.forward(key_poly)
        batched = transform.backward(transform.spectrum_mul(transform.forward(ints), key_spec))
        for i in range(BATCH):
            single = transform.backward(
                transform.spectrum_mul(transform.forward(ints[i]), key_spec)
            )
            assert np.array_equal(batched[i], single)

    def test_spectrum_add_accumulate_matches_loop(self, kind, rng):
        transform = make_transform(kind, DEGREE)
        a = _random_int_polys(rng, (BATCH,), DEGREE, magnitude=128)
        b = _random_int_polys(rng, (BATCH,), DEGREE, magnitude=128)
        batched = transform.backward(
            transform.spectrum_add(transform.forward(a), transform.forward(b))
        )
        for i in range(BATCH):
            single = transform.backward(
                transform.spectrum_add(transform.forward(a[i]), transform.forward(b[i]))
            )
            assert np.array_equal(batched[i], single)


class TestApproxEngineBatchScales:
    """Per-polynomial fixed-point scales of the approximate integer engine."""

    def test_scales_are_chosen_per_row(self, rng):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        small = rng.integers(-4, 4, size=DEGREE).astype(np.int64)
        large = rng.integers(-(2**20), 2**20, size=DEGREE).astype(np.int64)
        batched = transform.forward(np.stack([small, large]))
        scales = np.asarray(batched.scale_bits)
        assert scales.shape == (2,)
        # A small-magnitude polynomial gets more fixed-point headroom.
        assert int(scales[0]) > int(scales[1])
        assert int(scales[0]) == transform.forward(small).scale_bits
        assert int(scales[1]) == transform.forward(large).scale_bits

    def test_zero_rows_do_not_degrade_the_sum(self, rng):
        """A zero spectrum row must leave the other operand's row untouched.

        In the scalar path an all-zero spectrum short-circuits
        ``spectrum_add``; the batched path must reproduce that per row, or a
        zero row's scale would drag down the precision of a live row.
        """
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        live = rng.integers(-(2**20), 2**20, size=(2, DEGREE)).astype(np.int64)
        mixed = live.copy()
        mixed[0] = 0
        spec_live = transform.forward(live[1])
        spec_mixed = transform.forward(mixed)
        spec_zero_row = IntegerSpectrum(
            np.zeros_like(spec_mixed.values), np.zeros(2, dtype=np.int64)
        )
        total = transform.spectrum_add(spec_mixed, spec_zero_row)
        # Row 1 (live) keeps its own scale and values bit-for-bit.
        assert int(np.asarray(total.scale_bits)[1]) == int(spec_live.scale_bits)
        assert np.array_equal(total.values[1], spec_live.values)
        # Row 0 (zero + zero) stays exactly zero.
        assert not np.any(total.values[0])

    def test_batched_mul_zero_row_is_exactly_zero(self, rng):
        transform = ApproximateNegacyclicTransform(DEGREE, twiddle_bits=64)
        polys = rng.integers(-128, 128, size=(3, DEGREE)).astype(np.int64)
        polys[1] = 0
        spec = transform.forward(polys)
        other = transform.forward(rng.integers(-128, 128, size=DEGREE).astype(np.int64))
        product = transform.spectrum_mul(spec, other)
        assert not np.any(product.values[1])


class TestBatchedPolynomialOps:
    def test_negacyclic_convolution_batched_matches_loop(self, rng):
        a = rng.integers(-128, 128, size=(BATCH, DEGREE)).astype(np.int64)
        b = _random_torus_polys(rng, (BATCH,), DEGREE)
        batched = negacyclic_convolution(a, b)
        for i in range(BATCH):
            assert np.array_equal(batched[i], negacyclic_convolution(a[i], b[i]))

    def test_negacyclic_convolution_broadcasts(self, rng):
        a = rng.integers(-128, 128, size=(BATCH, DEGREE)).astype(np.int64)
        b = rng.integers(-128, 128, size=DEGREE).astype(np.int64)
        batched = negacyclic_convolution_int64(a, b)
        for i in range(BATCH):
            assert np.array_equal(batched[i], negacyclic_convolution_int64(a[i], b))

    def test_poly_mul_by_xk_preserves_int64(self, rng):
        """Regression: int64 inputs used to be silently truncated to int32."""
        poly = rng.integers(-(2**40), 2**40, size=DEGREE).astype(np.int64)
        rotated = poly_mul_by_xk(poly, 5)
        assert rotated.dtype == np.int64
        # Rotating forward then back across the X^N = -1 boundary round-trips.
        assert np.array_equal(poly_mul_by_xk(rotated, 2 * DEGREE - 5), poly)
        # No truncation: magnitudes above 2^32 survive.
        assert np.array_equal(np.sort(np.abs(rotated)), np.sort(np.abs(poly)))

    def test_poly_mul_by_xk_rejects_unsupported_dtypes(self):
        with pytest.raises(TypeError):
            poly_mul_by_xk(np.zeros(DEGREE, dtype=np.float64), 1)

    def test_poly_mul_by_xk_batch_stack(self, rng):
        polys = _random_torus_polys(rng, (BATCH,), DEGREE)
        rotated = poly_mul_by_xk(polys, 9)
        assert rotated.dtype == np.int32
        for i in range(BATCH):
            assert np.array_equal(rotated[i], poly_mul_by_xk(polys[i], 9))

    @pytest.mark.parametrize("offset", [0, 1, DEGREE - 1, DEGREE, 2 * DEGREE - 1])
    def test_poly_mul_by_xk_powers_matches_loop(self, rng, offset):
        polys = _random_torus_polys(rng, (BATCH,), DEGREE)
        powers = (rng.integers(0, 2 * DEGREE, size=BATCH) + offset).astype(np.int64)
        batched = poly_mul_by_xk_powers(polys, powers)
        for i in range(BATCH):
            assert np.array_equal(batched[i], poly_mul_by_xk(polys[i], int(powers[i])))

    def test_poly_mul_by_xk_powers_preserves_int64(self, rng):
        """Regression: int64 stacks must not be truncated through int32."""
        polys = rng.integers(-(2**40), 2**40, size=(BATCH, DEGREE)).astype(np.int64)
        powers = rng.integers(0, 2 * DEGREE, size=BATCH).astype(np.int64)
        batched = poly_mul_by_xk_powers(polys, powers)
        assert batched.dtype == np.int64
        for i in range(BATCH):
            assert np.array_equal(batched[i], poly_mul_by_xk(polys[i], int(powers[i])))
        with pytest.raises(TypeError):
            poly_mul_by_xk_powers(polys.astype(np.float64), powers)

    def test_poly_mul_by_xk_powers_broadcasts_rows(self, rng):
        """(B, 1) powers rotate every row of a (B, R, N) stack identically."""
        polys = _random_torus_polys(rng, (BATCH, 3), DEGREE)
        powers = rng.integers(0, 2 * DEGREE, size=(BATCH, 1)).astype(np.int64)
        batched = poly_mul_by_xk_powers(polys, powers)
        for i in range(BATCH):
            for r in range(3):
                assert np.array_equal(
                    batched[i, r], poly_mul_by_xk(polys[i, r], int(powers[i, 0]))
                )

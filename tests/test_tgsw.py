"""Tests for TGSW: gadget decomposition, external product and CMux."""

import numpy as np
import pytest

from repro.tfhe.params import TEST_TINY
from repro.tfhe.polynomial import poly_mul_by_xk
from repro.tfhe.tgsw import (
    decomposition_offset,
    gadget_decompose,
    gadget_recompose,
    gadget_values,
    tgsw_cmux,
    tgsw_encrypt,
    tgsw_encrypt_zero,
    tgsw_external_product,
    tgsw_external_product_plain,
    tgsw_identity,
    tgsw_transform,
)
from repro.tfhe.tlwe import (
    tlwe_encrypt,
    tlwe_key_generate,
    tlwe_phase,
    tlwe_trivial,
)
from repro.tfhe.torus import double_to_torus32, torus_distance
from repro.tfhe.transform import NaiveNegacyclicTransform

PARAMS = TEST_TINY


@pytest.fixture(scope="module")
def setup():
    transform = NaiveNegacyclicTransform(PARAMS.N)
    key = tlwe_key_generate(PARAMS.tlwe, rng=31)
    return transform, key


def message_poly(value=0.125):
    return np.full(PARAMS.N, double_to_torus32(value), dtype=np.int32)


class TestGadgetDecomposition:
    def test_gadget_values_are_descending_powers(self):
        values = gadget_values(PARAMS.tgsw)
        assert len(values) == PARAMS.l
        for j in range(PARAMS.l):
            assert int(values[j]) == 2 ** (32 - PARAMS.tgsw.decomp_base_bits * (j + 1))

    def test_offset_is_half_base_in_every_level(self):
        offset = decomposition_offset(PARAMS.tgsw)
        assert offset > 0

    def test_digits_are_bounded(self):
        rng = np.random.default_rng(32)
        poly = rng.integers(-(2**31), 2**31, PARAMS.N).astype(np.int32)
        digits = gadget_decompose(poly, PARAMS.tgsw)
        half_base = PARAMS.Bg // 2
        assert digits.min() >= -half_base
        assert digits.max() < half_base

    def test_recomposition_error_is_bounded(self):
        rng = np.random.default_rng(33)
        poly = rng.integers(-(2**31), 2**31, PARAMS.N).astype(np.int32)
        digits = gadget_decompose(poly, PARAMS.tgsw)
        recomposed = gadget_recompose(digits, PARAMS.tgsw)
        max_error = torus_distance(recomposed, poly).max()
        # The decomposition drops the bits below the last digit (floor
        # semantics, like the reference library), so the error is below one
        # unit of the last digit.
        bound = float(PARAMS.Bg) ** (-PARAMS.l)
        assert max_error <= bound + 2.0**-31

    def test_decompose_shape(self):
        poly = np.zeros(PARAMS.N, dtype=np.int32)
        assert gadget_decompose(poly, PARAMS.tgsw).shape == (PARAMS.l, PARAMS.N)


class TestTgswStructure:
    def test_zero_encryption_shape(self, setup):
        transform, key = setup
        sample = tgsw_encrypt_zero(key, PARAMS.tgsw, transform, rng=34)
        assert sample.rows == (PARAMS.k + 1) * PARAMS.l
        assert sample.degree == PARAMS.N

    def test_identity_is_noiseless_gadget(self):
        identity = tgsw_identity(PARAMS.tlwe, PARAMS.tgsw)
        gadget = gadget_values(PARAMS.tgsw)
        for block in range(PARAMS.k + 1):
            for j in range(PARAMS.l):
                row = block * PARAMS.l + j
                assert identity.data[row, block, 0] == gadget[j]

    def test_transform_preserves_shape(self, setup):
        transform, key = setup
        sample = tgsw_encrypt(key, 1, PARAMS.tgsw, transform, rng=35)
        transformed = tgsw_transform(sample, transform)
        assert transformed.rows == sample.rows
        assert transformed.mask_count == sample.mask_count


class TestExternalProduct:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_external_product_multiplies_message(self, setup, bit):
        transform, key = setup
        tgsw = tgsw_encrypt(key, bit, PARAMS.tgsw, transform, rng=36 + bit)
        message = message_poly()
        tlwe = tlwe_encrypt(key, message, transform, rng=38)
        product = tgsw_external_product_plain(tgsw, tlwe, transform)
        phase = tlwe_phase(key, product, transform)
        expected = message if bit else np.zeros_like(message)
        assert torus_distance(phase, expected).max() < 2e-2

    def test_external_product_with_identity_keeps_message(self, setup):
        transform, key = setup
        identity = tgsw_transform(tgsw_identity(PARAMS.tlwe, PARAMS.tgsw), transform)
        message = message_poly()
        trivial = tlwe_trivial(message, PARAMS.k)
        product = tgsw_external_product(identity, trivial, transform)
        phase = tlwe_phase(key, product, transform)
        assert torus_distance(phase, message).max() < 1e-3

    def test_incompatible_operands_raise(self, setup):
        transform, key = setup
        tgsw = tgsw_transform(tgsw_identity(PARAMS.tlwe, PARAMS.tgsw), transform)
        bad = tlwe_trivial(np.zeros(PARAMS.N * 2, dtype=np.int32), PARAMS.k)
        with pytest.raises(ValueError):
            tgsw_external_product(tgsw, bad, transform)


class TestCMux:
    @pytest.mark.parametrize("selector_bit", [0, 1])
    def test_cmux_selects_branch(self, setup, selector_bit):
        transform, key = setup
        selector = tgsw_transform(
            tgsw_encrypt(key, selector_bit, PARAMS.tgsw, transform, rng=40 + selector_bit),
            transform,
        )
        if_true = tlwe_trivial(message_poly(0.25), PARAMS.k)
        if_false = tlwe_trivial(message_poly(-0.25), PARAMS.k)
        result = tgsw_cmux(selector, if_true, if_false, transform)
        phase = tlwe_phase(key, result, transform)
        expected = message_poly(0.25) if selector_bit else message_poly(-0.25)
        assert torus_distance(phase, expected).max() < 2e-2

    def test_cmux_on_rotated_accumulator(self, setup):
        """The exact CMux use of the blind rotation: select X^a * ACC or ACC."""
        transform, key = setup
        selector = tgsw_transform(
            tgsw_encrypt(key, 1, PARAMS.tgsw, transform, rng=42), transform
        )
        testv = message_poly(0.125)
        acc = tlwe_trivial(testv, PARAMS.k)
        from repro.tfhe.tlwe import tlwe_rotate

        result = tgsw_cmux(selector, tlwe_rotate(acc, 5), acc, transform)
        phase = tlwe_phase(key, result, transform)
        assert torus_distance(phase, poly_mul_by_xk(testv, 5)).max() < 2e-2

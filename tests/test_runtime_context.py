"""FheContext: spectrum-cached cloud keys and the context-backed evaluators.

The two load-bearing properties of the runtime refactor:

* gate outputs through a context (cached key spectra) are **bit-identical**
  to the uncached reference path that re-transforms the bootstrapping key
  from its coefficient-domain material for every gate — checked exhaustively
  over all ten gate kinds and all four input combinations;
* each cloud-key TGSW sample is ``forward()``-transformed **exactly once per
  context**, proven by the engine's invocation counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import FheContext
from repro.tfhe.bootstrap import CmuxBlindRotator, gate_bootstrap
from repro.tfhe.circuits import add, decrypt_integer, encrypt_integer
from repro.tfhe.executor import CircuitExecutor
from repro.tfhe.gates import (
    MU,
    PLAINTEXT_GATES,
    TFHEGateEvaluator,
    decrypt_bit,
    encrypt_bit,
)
from repro.tfhe.keys import generate_keys
from repro.tfhe.lwe import lwe_add, lwe_encrypt_trivial, lwe_scale, lwe_sub
from repro.tfhe.params import TEST_TINY
from repro.tfhe.tgsw import tgsw_transform
from repro.tfhe.transform import DoubleFFTNegacyclicTransform, NaiveNegacyclicTransform


def _uncached_gate(cloud, name, ca, cb):
    """Reference path: re-transform the key material and bootstrap directly."""
    engine = NaiveNegacyclicTransform(cloud.params.N)
    rotator = CmuxBlindRotator(
        [tgsw_transform(sample, engine) for sample in cloud.bootstrapping_key],
        engine,
    )
    from repro.tfhe.gates import MIXED_GATE_SPECS

    offset, coef_a, coef_b = MIXED_GATE_SPECS[name]
    combined = lwe_encrypt_trivial(ca.dimension, np.int32(offset * int(MU)))
    combined = lwe_add(combined, lwe_scale(coef_a, ca))
    combined = lwe_add(combined, lwe_scale(coef_b, cb))
    return gate_bootstrap(
        combined, int(MU), rotator, cloud.keyswitch_key, cloud.params
    )


class TestCachedSpectraBitIdentical:
    @pytest.mark.parametrize("name", sorted(PLAINTEXT_GATES))
    def test_all_gates_all_inputs_match_uncached_path(self, name, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        context = FheContext(cloud, engine=NaiveNegacyclicTransform(cloud.params.N))
        evaluator = context.evaluator()
        for bit_a in (0, 1):
            for bit_b in (0, 1):
                ca = encrypt_bit(secret, bit_a, rng=11 + bit_a)
                cb = encrypt_bit(secret, bit_b, rng=17 + bit_b)
                cached = evaluator.gate(name, ca, cb)
                uncached = _uncached_gate(cloud, name, ca, cb)
                assert np.array_equal(cached.a, uncached.a)
                assert np.int32(cached.b) == np.int32(uncached.b)
                assert decrypt_bit(secret, cached) == PLAINTEXT_GATES[name](
                    bit_a, bit_b
                )


class TestSpectrumCacheCounters:
    def test_classical_key_rows_transformed_exactly_once(self):
        params = TEST_TINY
        engine = DoubleFFTNegacyclicTransform(params.N)
        secret, cloud = generate_keys(params, engine, unroll_factor=1, rng=31)

        fresh = DoubleFFTNegacyclicTransform(params.N)
        context = FheContext(cloud, engine=fresh)
        assert fresh.stats.forward_calls == 0  # lazily built

        _ = context.rotator
        # One vectorised forward per TGSW sample: all n key rows cached now.
        assert fresh.stats.forward_calls == params.n
        assert context.cached_tgsw_samples == params.n

        evaluator = context.evaluator()
        per_gate = params.n * (params.k + 1) * params.l  # decomposition IFFTs
        ca, cb = encrypt_bit(secret, 1, rng=1), encrypt_bit(secret, 0, rng=2)
        evaluator.nand(ca, cb)
        assert fresh.stats.forward_calls == params.n + per_gate
        evaluator.xor(ca, cb)
        # The second gate adds only its own decomposition transforms — the
        # cloud-key rows were transformed exactly once for this context.
        assert fresh.stats.forward_calls == params.n + 2 * per_gate

    def test_unrolled_key_rows_transformed_exactly_once(self):
        params = TEST_TINY
        engine = NaiveNegacyclicTransform(params.N)
        secret, cloud = generate_keys(params, engine, unroll_factor=2, rng=32)

        fresh = NaiveNegacyclicTransform(params.N)
        context = FheContext(cloud, engine=fresh)
        _ = context.rotator
        key_samples = cloud.tgsw_sample_count
        assert key_samples == 3 * ((params.n + 1) // 2)  # (2^2-1) per group
        # One forward per key sample plus one for the identity gadget h.
        assert fresh.stats.forward_calls == key_samples + 1
        baseline = fresh.stats.forward_calls

        evaluator = context.evaluator()
        ca, cb = encrypt_bit(secret, 1, rng=3), encrypt_bit(secret, 1, rng=4)
        out = evaluator.and_(ca, cb)
        first_gate = fresh.stats.forward_calls - baseline
        out2 = evaluator.and_(ca, cb)
        second_gate = fresh.stats.forward_calls - baseline - first_gate
        assert first_gate == second_gate  # no hidden key re-transforms
        assert decrypt_bit(secret, out) == 1
        assert np.array_equal(out.a, out2.a)


class TestContextSurface:
    def test_default_context_is_memoised(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        assert cloud.default_context() is cloud.default_context()
        assert cloud.blind_rotator is cloud.blind_rotator
        assert cloud.transform is cloud.default_context().engine

    def test_evaluators_share_the_context(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        context = cloud.default_context()
        assert TFHEGateEvaluator(cloud).context is context
        assert context.evaluator() is context.evaluator()
        assert context.batch_evaluator(4) is context.batch_evaluator(4)
        assert context.batch_evaluator(4) is not context.batch_evaluator(8)

    def test_executor_for_context_uses_cached_evaluator(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        context = cloud.default_context()
        executor = CircuitExecutor.for_context(context, 4)
        assert executor.evaluator is context.batch_evaluator(4)

    def test_evaluator_dispatch_does_not_build_the_cache(self):
        # Building evaluators (and circuit coercion) must stay free of the
        # spectrum-cache side effect: a server doing only linear operations
        # never pays the key-transform cost.
        secret, context = FheContext.generate(
            TEST_TINY, NaiveNegacyclicTransform(TEST_TINY.N), rng=8
        )
        evaluator = context.evaluator()
        evaluator.not_(evaluator.constant(1))
        from repro.tfhe.circuits import _as_evaluator

        _as_evaluator(context)
        assert not context.spectra_cached

    def test_generate_classmethod(self):
        secret, context = FheContext.generate(
            TEST_TINY, NaiveNegacyclicTransform(TEST_TINY.N), rng=7
        )
        assert not context.spectra_cached  # lazy until first gate
        out = context.evaluator().or_(
            encrypt_bit(secret, 0, rng=1), encrypt_bit(secret, 1, rng=2)
        )
        assert context.spectra_cached
        assert decrypt_bit(secret, out) == 1

    def test_circuit_blocks_accept_a_context(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        context = cloud.default_context()
        a = encrypt_integer(secret, 5, 4, rng=41)
        b = encrypt_integer(secret, 6, 4, rng=42)
        total = add(context, a, b)
        assert decrypt_integer(secret, total) == 11

    def test_context_bootstrap_matches_evaluator(self, tiny_keys_naive):
        secret, cloud = tiny_keys_naive
        context = cloud.default_context()
        ca, cb = encrypt_bit(secret, 1, rng=5), encrypt_bit(secret, 1, rng=6)
        combined = lwe_encrypt_trivial(ca.dimension, np.int32(int(MU)))
        combined = lwe_sub(lwe_sub(combined, ca), cb)
        direct = context.bootstrap(combined)
        via_gate = context.evaluator().nand(ca, cb)
        assert np.array_equal(direct.a, via_gate.a)
        assert np.int32(direct.b) == np.int32(via_gate.b)

    def test_engine_degree_mismatch_rejected(self, tiny_keys_naive):
        _, cloud = tiny_keys_naive
        with pytest.raises(ValueError, match="ring degree"):
            FheContext(cloud, engine=NaiveNegacyclicTransform(2 * cloud.params.N))

    def test_key_without_spec_needs_explicit_engine(self):
        params = TEST_TINY
        engine = NaiveNegacyclicTransform(params.N)
        _, cloud = generate_keys(params, engine, rng=9)
        cloud.transform_spec = None
        cloud._engine = None
        cloud._context = None
        with pytest.raises(ValueError, match="transform spec"):
            FheContext(cloud)
        # but an explicit engine still works
        FheContext(cloud, engine=engine)

"""Tests for the circuit netlist IR and its word-level constructors."""

import pytest

from repro.arch.ops import OpType
from repro.tfhe.netlist import (
    BOOTSTRAPPED_OPS,
    Circuit,
    absolute_netlist,
    adder_netlist,
    equal_netlist,
    greater_than_netlist,
    maximum_netlist,
    minimum_netlist,
    multiplier_netlist,
    negate_netlist,
    select_netlist,
    shift_left_netlist,
    shift_right_netlist,
    subtractor_netlist,
)


class TestBuilder:
    def test_inputs_are_lsb_first_wires(self):
        c = Circuit()
        wires = c.inputs("a", 3)
        assert wires == [0, 1, 2]
        assert c.input_wires["a"] == (0, 1, 2)
        assert [c.node(w).bit for w in wires] == [0, 1, 2]

    def test_zero_width_input_rejected(self):
        with pytest.raises(ValueError):
            Circuit().inputs("a", 0)

    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.inputs("a", 1)
        with pytest.raises(ValueError):
            c.inputs("a", 2)

    def test_unknown_gate_rejected(self):
        c = Circuit()
        a = c.inputs("a", 2)
        with pytest.raises(ValueError):
            c.gate("mystery", a[0], a[1])

    def test_unknown_wire_rejected(self):
        c = Circuit()
        a = c.inputs("a", 1)
        with pytest.raises(ValueError):
            c.gate("and", a[0], 99)

    def test_duplicate_output_rejected(self):
        c = Circuit()
        a = c.inputs("a", 1)
        c.output("out", a)
        with pytest.raises(ValueError):
            c.output("out", a)

    def test_empty_output_rejected(self):
        c = Circuit()
        c.inputs("a", 1)
        with pytest.raises(ValueError):
            c.output("out", [])

    def test_mux_lowers_to_three_gates(self):
        c = Circuit()
        s = c.inputs("s", 1)[0]
        t = c.inputs("t", 1)[0]
        f = c.inputs("f", 1)[0]
        out = c.mux(s, t, f)
        ops = [c.node(n).op for n in range(3, len(c))]
        assert ops == ["and", "andny", "or"]
        assert c.node(out).op == "or"

    def test_gate_and_linear_counts(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        c.output("out", [c.gate("xor", c.not_(a), b)])
        assert c.gate_count == 1
        assert c.linear_count == 1

    def test_validate_accepts_builder_output(self):
        adder_netlist(3).validate()


class TestDfgExport:
    def test_ops_and_work_split_by_kind(self):
        c = Circuit()
        a = c.inputs("a", 1)[0]
        b = c.inputs("b", 1)[0]
        g = c.gate("and", a, c.not_(b))
        c.output("out", [g])
        dfg = c.to_dfg()
        assert len(dfg) == len(c)
        assert dfg.node(g).op is OpType.BOOTSTRAPPED_GATE
        assert dfg.node(g).work == 1.0
        linear = [n for n in dfg.nodes() if n.op is OpType.LINEAR_GATE]
        assert all(n.work == 0.0 for n in linear)

    def test_node_ids_are_preserved(self):
        c = adder_netlist(2)
        dfg = c.to_dfg()
        for node in c.nodes:
            assert dfg.node(node.node_id).tag == node.op


class TestLiveCone:
    def test_truncated_subtractor_drops_dead_carry_gates(self):
        width = 4
        sub = subtractor_netlist(width)
        live_gates = sum(
            1 for n in sub.live_nodes() if sub.node(n).is_bootstrapped
        )
        # Two ripple adders of `width` stages = 2 * 5 * width gates, but the
        # discarded final carries make the last OR (and its private ANDs)
        # dead in both chains.
        assert live_gates < sub.gate_count

    def test_unknown_output_rejected(self):
        with pytest.raises(KeyError):
            adder_netlist(2).live_nodes(["nope"])

    def test_full_cone_of_adder_is_everything_reachable(self):
        c = adder_netlist(3)
        live = c.live_nodes()
        assert all(n.node_id in live for n in c.nodes if n.is_bootstrapped)


class TestConstructors:
    @pytest.mark.parametrize("width", [1, 2, 5])
    def test_adder_shape(self, width):
        c = adder_netlist(width)
        assert c.input_width("a") == width
        assert c.input_width("b") == width
        assert len(c.output_wires["sum"]) == width + 1
        assert c.gate_count == 5 * width

    @pytest.mark.parametrize(
        "factory,output,bits",
        [
            (equal_netlist, "eq", 1),
            (greater_than_netlist, "gt", 1),
            (negate_netlist, "neg", 3),
            (subtractor_netlist, "diff", 3),
            (maximum_netlist, "max", 3),
            (minimum_netlist, "min", 3),
            (multiplier_netlist, "prod", 3),
            (absolute_netlist, "abs", 3),
        ],
    )
    def test_word_constructors_shapes(self, factory, output, bits):
        c = factory(3)
        assert list(c.output_wires) == [output]
        assert len(c.output_wires[output]) == bits

    def test_select_has_one_bit_condition(self):
        c = select_netlist(4)
        assert c.input_width("cond") == 1
        assert len(c.output_wires["out"]) == 4
        assert c.gate_count == 3 * 4  # one lowered mux per bit

    @pytest.mark.parametrize(
        "factory",
        [
            adder_netlist,
            negate_netlist,
            subtractor_netlist,
            equal_netlist,
            greater_than_netlist,
            select_netlist,
            maximum_netlist,
            minimum_netlist,
            multiplier_netlist,
            absolute_netlist,
        ],
    )
    def test_zero_width_rejected(self, factory):
        with pytest.raises(ValueError):
            factory(0)

    def test_constructors_are_memoised(self):
        assert adder_netlist(4) is adder_netlist(4)
        assert multiplier_netlist(4) is multiplier_netlist(4)
        assert minimum_netlist(4) is minimum_netlist(4)
        assert absolute_netlist(4) is absolute_netlist(4)
        assert shift_left_netlist(4, 2) is shift_left_netlist(4, 2)
        assert shift_left_netlist(4, 2) is not shift_left_netlist(4, 1)

    def test_only_known_bootstrapped_ops_are_emitted(self):
        for factory in (
            adder_netlist,
            greater_than_netlist,
            maximum_netlist,
            minimum_netlist,
            multiplier_netlist,
            absolute_netlist,
        ):
            c = factory(3)
            for node in c.nodes:
                if node.is_bootstrapped:
                    assert node.op in BOOTSTRAPPED_OPS


class TestWordLevelSemantics:
    """Plaintext truth of the new word-level constructors, exhaustively."""

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplier_wraps_like_ints(self, width):
        from repro.compiler.sim import simulate

        modulus = 2**width
        c = multiplier_netlist(width)
        for a in range(modulus):
            for b in range(modulus):
                assert simulate(c, {"a": a, "b": b})["prod"] == (a * b) % modulus

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_minimum_matches_ints(self, width):
        from repro.compiler.sim import simulate

        modulus = 2**width
        c = minimum_netlist(width)
        for a in range(modulus):
            for b in range(modulus):
                assert simulate(c, {"a": a, "b": b})["min"] == min(a, b)

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_absolute_is_twos_complement(self, width):
        from repro.compiler.sim import simulate

        modulus = 2**width
        c = absolute_netlist(width)
        for a in range(modulus):
            signed = a - modulus if a >= modulus // 2 else a
            assert simulate(c, {"a": a})["abs"] == abs(signed) % modulus

    @pytest.mark.parametrize("amount", [0, 1, 3, 4, 7])
    def test_constant_shifts(self, amount):
        from repro.compiler.sim import simulate

        width, modulus = 4, 16
        left, right = shift_left_netlist(width, amount), shift_right_netlist(width, amount)
        for a in range(modulus):
            assert simulate(left, {"a": a})["shifted"] == (a << amount) % modulus
            assert simulate(right, {"a": a})["shifted"] == a >> amount

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            shift_left_netlist(4, -1)
        with pytest.raises(ValueError):
            shift_right_netlist(4, -2)

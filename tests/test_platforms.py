"""Tests for the platform models and the paper's qualitative comparison claims."""

import math

import pytest

from repro.platforms import (
    AsicPlatform,
    CpuPlatform,
    FpgaPlatform,
    GpuPlatform,
    MatchaPlatform,
    all_platforms,
    get_platform,
)
from repro.platforms import calibration as cal
from repro.tfhe.params import PAPER_110BIT


@pytest.fixture(scope="module")
def matcha():
    return MatchaPlatform(PAPER_110BIT)


class TestCpuModel:
    def test_m1_latency_matches_anchor(self):
        cpu = CpuPlatform()
        assert cpu.gate_latency_s(1) == pytest.approx(cal.CPU_NAND_LATENCY_M1_S, rel=1e-6)

    def test_m2_roughly_halves_latency(self):
        """The paper reports a 49 % latency reduction at m = 2."""
        cpu = CpuPlatform()
        reduction = 1 - cpu.gate_latency_s(2) / cpu.gate_latency_s(1)
        assert 0.40 <= reduction <= 0.55

    def test_aggressive_bku_hurts_cpu(self):
        """Figure 9: m = 3, 4 do not improve the CPU latency further."""
        cpu = CpuPlatform()
        assert cpu.gate_latency_s(3) > cpu.gate_latency_s(2)
        assert cpu.gate_latency_s(4) > cpu.gate_latency_s(3)

    def test_unsupported_factor_raises(self):
        with pytest.raises(ValueError):
            CpuPlatform().gate_latency_s(5)


class TestGpuModel:
    def test_m1_latency_matches_anchor(self):
        gpu = GpuPlatform()
        assert gpu.gate_latency_s(1) == pytest.approx(cal.GPU_NAND_LATENCY_M1_S, rel=1e-6)

    def test_latency_improves_monotonically_with_m(self):
        gpu = GpuPlatform()
        latencies = [gpu.gate_latency_s(m) for m in (1, 2, 3, 4)]
        assert latencies == sorted(latencies, reverse=True)

    def test_m4_latency_near_paper_value(self):
        """The paper reports 0.18 ms at m = 4."""
        assert GpuPlatform().gate_latency_s(4) == pytest.approx(0.18e-3, rel=0.25)

    def test_power_exceeds_200w(self):
        assert GpuPlatform().power_w(1) > 200.0


class TestTveBaselines:
    def test_only_m1_supported(self):
        for platform in (FpgaPlatform(), AsicPlatform()):
            assert platform.supports(1)
            assert not platform.supports(2)
            report = platform.report(2)
            assert not report.supported

    def test_asic_is_faster_and_cooler_than_fpga(self):
        assert AsicPlatform().gate_latency_s(1) < FpgaPlatform().gate_latency_s(1)
        assert AsicPlatform().power_w(1) < FpgaPlatform().power_w(1)

    def test_gate_latency_exceeds_gpu(self):
        assert FpgaPlatform().gate_latency_s(1) > GpuPlatform().gate_latency_s(1)


class TestMatchaModel:
    def test_power_is_table2_envelope(self, matcha):
        assert matcha.power_w(3) == pytest.approx(39.98)

    def test_best_latency_at_m3(self, matcha):
        """Figure 9: MATCHA's latency bottoms out at m = 3."""
        latencies = {m: matcha.gate_latency_s(m) for m in (1, 2, 3, 4)}
        assert min(latencies, key=latencies.get) == 3
        assert latencies[4] > latencies[3]

    def test_latency_in_gpu_regime(self, matcha):
        """MATCHA's m = 3 latency is in the same regime as the GPU's (sub-ms)."""
        gpu = GpuPlatform()
        ratio = matcha.gate_latency_s(3) / gpu.gate_latency_s(3)
        assert 0.5 <= ratio <= 1.6

    def test_schedule_is_cached(self, matcha):
        first = matcha.schedule(2)
        second = matcha.schedule(2)
        assert first is second

    def test_energy_per_gate_positive(self, matcha):
        assert matcha.energy_per_gate_j(3) > 0

    def test_utilisation_reports_all_units(self, matcha):
        util = matcha.utilisation(3)
        assert {"ifft_core", "fft_core", "tgsw_cluster", "ep_mac"}.issubset(util)


class TestComparativeClaims:
    """The paper's headline cross-platform orderings (Section 6)."""

    def test_matcha_throughput_beats_gpu(self, matcha):
        gpu_best = GpuPlatform().best_report().throughput_gates_per_s
        matcha_best = matcha.best_report().throughput_gates_per_s
        assert matcha_best > 1.5 * gpu_best

    def test_matcha_efficiency_beats_asic(self, matcha):
        asic = AsicPlatform().best_report((1,)).throughput_per_watt
        assert matcha.best_report().throughput_per_watt > 3.0 * asic

    def test_cpu_with_bku_beats_tve_throughput(self):
        """Figure 10: CPU at m = 2 overtakes the FPGA/ASIC baselines."""
        cpu = CpuPlatform().report(2).throughput_gates_per_s
        fpga = FpgaPlatform().report(1).throughput_gates_per_s
        assert cpu > fpga

    def test_gpu_efficiency_below_asic(self):
        """Figure 11: the GPU's best throughput/W stays below the ASIC's."""
        gpu = GpuPlatform().best_report().throughput_per_watt
        asic = AsicPlatform().best_report((1,)).throughput_per_watt
        assert gpu < asic

    def test_registry_contains_all_five(self):
        names = {p.name for p in all_platforms()}
        assert names == {"CPU", "GPU", "MATCHA", "FPGA", "ASIC"}

    def test_registry_lookup(self):
        assert get_platform("matcha").name == "MATCHA"
        with pytest.raises(KeyError):
            get_platform("tpu")

    def test_reports_have_finite_values(self):
        for platform in all_platforms():
            report = platform.report(1)
            assert report.supported
            assert math.isfinite(report.gate_latency_ms)
            assert report.throughput_gates_per_s > 0

"""Unit and property tests for the torus arithmetic layer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.tfhe.torus import (
    TORUS_SCALE,
    approx_phase,
    double_to_torus32,
    gaussian_torus32,
    modswitch_from_torus32,
    modswitch_to_torus32,
    torus32_add,
    torus32_from_int64,
    torus32_scale,
    torus32_sub,
    torus32_to_double,
    torus_distance,
    uniform_torus32,
)

torus_ints = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestEncodingRoundtrip:
    @given(st.floats(min_value=-0.49, max_value=0.49, allow_nan=False))
    def test_double_roundtrip(self, value):
        encoded = double_to_torus32(value)
        decoded = float(torus32_to_double(encoded))
        assert abs(decoded - value) <= 1.0 / TORUS_SCALE

    @given(st.integers(min_value=0, max_value=7))
    def test_modswitch_roundtrip(self, message):
        encoded = modswitch_to_torus32(message, 8)
        assert int(modswitch_from_torus32(encoded, 8)) == message

    def test_eighth_encoding_sign(self):
        plus = double_to_torus32(0.125)
        minus = double_to_torus32(-0.125)
        assert int(plus) > 0
        assert int(minus) < 0
        assert int(plus) == -int(minus)


class TestArithmetic:
    @given(torus_ints, torus_ints)
    def test_add_sub_inverse(self, a, b):
        total = torus32_add(a, b)
        assert int(torus32_sub(total, b)) == np.int32(a)

    @given(torus_ints, torus_ints, torus_ints)
    def test_add_associative(self, a, b, c):
        left = torus32_add(torus32_add(a, b), c)
        right = torus32_add(a, torus32_add(b, c))
        assert int(left) == int(right)

    @given(torus_ints)
    def test_scale_by_one_is_identity(self, a):
        assert int(torus32_scale(1, a)) == np.int32(a)

    @given(torus_ints, st.integers(min_value=-8, max_value=8))
    def test_scale_matches_repeated_addition(self, a, k):
        expected = 0
        for _ in range(abs(k)):
            expected = torus32_add(expected, a)
        if k < 0:
            expected = torus32_sub(0, expected)
        assert int(torus32_scale(k, a)) == int(expected)

    def test_wraparound_is_mod_2_32(self):
        assert int(torus32_from_int64(2**32 + 17)) == 17
        assert int(torus32_from_int64(-(2**32) - 17)) == -17


class TestApproxPhase:
    def test_rounds_to_message_grid(self):
        mu = double_to_torus32(0.125)
        noisy = torus32_add(mu, 1000)
        assert int(approx_phase(noisy, 3)) == int(mu)

    def test_large_noise_moves_to_next_point(self):
        mu = double_to_torus32(0.125)
        noisy = torus32_add(mu, double_to_torus32(0.09))
        assert int(approx_phase(noisy, 3)) != int(mu)


class TestSampling:
    def test_gaussian_stddev_is_respected(self):
        rng = np.random.default_rng(0)
        samples = torus32_to_double(gaussian_torus32(2.0**-10, size=20000, rng=rng))
        assert np.std(samples) == pytest.approx(2.0**-10, rel=0.05)

    def test_uniform_covers_both_signs(self):
        rng = np.random.default_rng(0)
        samples = uniform_torus32(1000, rng)
        assert (samples > 0).any() and (samples < 0).any()

    def test_gaussian_deterministic_for_seed(self):
        a = gaussian_torus32(2.0**-10, size=16, rng=7)
        b = gaussian_torus32(2.0**-10, size=16, rng=7)
        assert np.array_equal(a, b)


class TestDistance:
    @given(torus_ints)
    def test_distance_to_self_is_zero(self, a):
        assert float(torus_distance(a, a)) == 0.0

    @given(torus_ints, torus_ints)
    def test_distance_symmetry(self, a, b):
        assert float(torus_distance(a, b)) == pytest.approx(float(torus_distance(b, a)))

    @given(torus_ints, torus_ints)
    def test_distance_bounded_by_half(self, a, b):
        assert float(torus_distance(a, b)) <= 0.5 + 1e-9

"""Unit and property tests for negacyclic polynomial arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tfhe.polynomial import (
    constant_torus_polynomial,
    negacyclic_convolution,
    negacyclic_convolution_int64,
    poly_add,
    poly_equal,
    poly_mul_by_xk,
    poly_mul_by_xk_minus_one,
    poly_neg,
    poly_scale,
    poly_sub,
    zero_torus_polynomial,
)

DEGREE = 16

coeff_arrays = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1), min_size=DEGREE, max_size=DEGREE
).map(lambda xs: np.array(xs, dtype=np.int32))

small_arrays = st.lists(
    st.integers(min_value=-512, max_value=512), min_size=DEGREE, max_size=DEGREE
).map(lambda xs: np.array(xs, dtype=np.int64))


class TestLinearOps:
    @given(coeff_arrays, coeff_arrays)
    def test_add_sub_roundtrip(self, a, b):
        assert poly_equal(poly_sub(poly_add(a, b), b), a)

    @given(coeff_arrays)
    def test_neg_is_sub_from_zero(self, a):
        zero = zero_torus_polynomial(DEGREE)
        assert poly_equal(poly_neg(a), poly_sub(zero, a))

    @given(coeff_arrays, st.integers(min_value=-4, max_value=4))
    def test_scale_matches_repeated_add(self, a, k):
        acc = zero_torus_polynomial(DEGREE)
        for _ in range(abs(k)):
            acc = poly_add(acc, a)
        if k < 0:
            acc = poly_neg(acc)
        assert poly_equal(poly_scale(k, a), acc)

    def test_constant_polynomial(self):
        poly = constant_torus_polynomial(8, 42)
        assert poly[0] == 42
        assert not poly[1:].any()


class TestRotation:
    @given(coeff_arrays, st.integers(min_value=0, max_value=4 * DEGREE))
    def test_rotation_by_2n_is_identity(self, a, k):
        rotated = poly_mul_by_xk(poly_mul_by_xk(a, k), 2 * DEGREE - (k % (2 * DEGREE)))
        assert poly_equal(rotated, a)

    @given(coeff_arrays)
    def test_rotation_by_n_negates(self, a):
        assert poly_equal(poly_mul_by_xk(a, DEGREE), poly_neg(a))

    @given(coeff_arrays, st.integers(min_value=0, max_value=2 * DEGREE), st.integers(min_value=0, max_value=2 * DEGREE))
    def test_rotation_composes_additively(self, a, j, k):
        both = poly_mul_by_xk(a, j + k)
        sequential = poly_mul_by_xk(poly_mul_by_xk(a, j), k)
        assert poly_equal(both, sequential)

    def test_rotation_moves_coefficients_negacyclically(self):
        poly = np.zeros(4, dtype=np.int32)
        poly[3] = 7
        rotated = poly_mul_by_xk(poly, 1)  # X * X^3 = X^4 = -1
        assert rotated[0] == -7
        assert not rotated[1:].any()

    @given(coeff_arrays, st.integers(min_value=0, max_value=2 * DEGREE))
    def test_xk_minus_one_matches_definition(self, a, k):
        expected = poly_sub(poly_mul_by_xk(a, k), a)
        assert poly_equal(poly_mul_by_xk_minus_one(a, k), expected)


class TestConvolution:
    def test_multiply_by_one(self):
        one = np.zeros(DEGREE, dtype=np.int64)
        one[0] = 1
        b = np.arange(DEGREE, dtype=np.int32)
        assert poly_equal(negacyclic_convolution(one, b), b)

    def test_multiply_by_x_equals_rotation(self):
        x = np.zeros(DEGREE, dtype=np.int64)
        x[1] = 1
        b = np.arange(1, DEGREE + 1, dtype=np.int32)
        assert poly_equal(negacyclic_convolution(x, b), poly_mul_by_xk(b, 1))

    @given(small_arrays, coeff_arrays, coeff_arrays)
    @settings(max_examples=25)
    def test_distributes_over_addition(self, a, b, c):
        left = negacyclic_convolution(a, poly_add(b, c))
        right = poly_add(negacyclic_convolution(a, b), negacyclic_convolution(a, c))
        assert poly_equal(left, right)

    @given(small_arrays, small_arrays)
    @settings(max_examples=25)
    def test_int64_variant_is_commutative(self, a, b):
        assert np.array_equal(
            negacyclic_convolution_int64(a, b), negacyclic_convolution_int64(b, a)
        )

    def test_degree_mismatch_raises(self):
        with pytest.raises(ValueError):
            negacyclic_convolution(np.zeros(8, dtype=np.int64), np.zeros(16, dtype=np.int32))

    def test_negacyclic_wraparound_sign(self):
        # (X^{N-1}) * (X) = X^N = -1
        a = np.zeros(DEGREE, dtype=np.int64)
        a[DEGREE - 1] = 1
        b = np.zeros(DEGREE, dtype=np.int32)
        b[1] = 1
        result = negacyclic_convolution(a, b)
        assert result[0] == -1
        assert not result[1:].any()

"""Tests for bootstrapping-key unrolling (Figures 4-5)."""

import numpy as np
import pytest

from repro.core.bku import (
    UnrolledBlindRotator,
    bootstrapping_key_size_bytes,
    generate_unrolled_bootstrapping_key,
    group_indices,
    indicator_message,
    pattern_exponent,
    x_power_minus_one_polynomial,
)
from repro.tfhe.gates import MU, PLAINTEXT_GATES, TFHEGateEvaluator, decrypt_bit, encrypt_bit
from repro.tfhe.keys import generate_cloud_key, generate_keys, generate_secret_key
from repro.tfhe.lwe import gate_message, lwe_encrypt, lwe_phase
from repro.tfhe.params import TEST_TINY
from repro.tfhe.bootstrap import bootstrap_without_keyswitch
from repro.tfhe.transform import NaiveNegacyclicTransform


class TestGrouping:
    def test_even_split(self):
        groups = group_indices(8, 2)
        assert groups == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_remainder_group_is_smaller(self):
        groups = group_indices(7, 3)
        assert groups[-1] == [6]
        assert sum(len(g) for g in groups) == 7

    def test_m1_is_one_index_per_group(self):
        assert group_indices(4, 1) == [[0], [1], [2], [3]]

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            group_indices(8, 0)


class TestIndicators:
    def test_truth_table_m2(self):
        """Figure 4: the indicator selected for each (s_{2i-1}, s_{2i}) pattern."""
        # pattern bit j selects s_j; indicator is the product of selected bits
        # and complements of unselected bits.
        assert indicator_message([1, 1], 0b11) == 1
        assert indicator_message([1, 0], 0b01) == 1
        assert indicator_message([0, 1], 0b10) == 1
        assert indicator_message([0, 0], 0b01) == 0
        assert indicator_message([1, 1], 0b01) == 0

    def test_indicators_partition_unity(self):
        """Exactly one indicator is 1 for any key-bit combination (Section 4.2)."""
        for bits in ([0, 0], [0, 1], [1, 0], [1, 1], [1, 0, 1], [0, 1, 1, 0]):
            total = sum(
                indicator_message(bits, pattern) for pattern in range(1, 1 << len(bits))
            )
            zero_pattern = int(all(b == 0 for b in bits))
            assert total + zero_pattern == 1

    def test_pattern_exponent_sums_selected_coefficients(self):
        bara = np.array([10, 20, 30, 40])
        assert pattern_exponent(bara, [2, 3], 0b01) == 30
        assert pattern_exponent(bara, [2, 3], 0b10) == 40
        assert pattern_exponent(bara, [2, 3], 0b11) == 70


class TestXPowerMinusOne:
    def test_zero_power_is_zero_polynomial(self):
        assert not x_power_minus_one_polynomial(8, 0).any()

    def test_small_power(self):
        poly = x_power_minus_one_polynomial(8, 3)
        assert poly[0] == -1 and poly[3] == 1

    def test_wrapped_power_is_negated(self):
        poly = x_power_minus_one_polynomial(8, 11)  # X^11 = -X^3
        assert poly[0] == -1 and poly[3] == -1

    def test_power_equal_to_degree(self):
        poly = x_power_minus_one_polynomial(8, 8)  # X^8 = -1 -> -2 at position 0
        assert poly[0] == -2


class TestUnrolledKeyMaterial:
    @pytest.mark.parametrize("m,expected_keys", [(1, 1), (2, 3), (3, 7), (4, 15)])
    def test_keys_per_group(self, m, expected_keys):
        transform = NaiveNegacyclicTransform(TEST_TINY.N)
        secret = generate_secret_key(TEST_TINY, rng=81)
        key = generate_unrolled_bootstrapping_key(secret, transform, m, rng=82)
        assert key.groups[0].pattern_count == expected_keys
        assert key.unroll_factor == m

    def test_group_count_is_ceil_n_over_m(self):
        transform = NaiveNegacyclicTransform(TEST_TINY.N)
        secret = generate_secret_key(TEST_TINY, rng=83)
        key = generate_unrolled_bootstrapping_key(secret, transform, 3, rng=84)
        assert key.external_products_per_bootstrap == -(-TEST_TINY.n // 3)

    def test_key_size_grows_exponentially_with_m(self):
        sizes = [bootstrapping_key_size_bytes(TEST_TINY, m) for m in (1, 2, 3, 4)]
        assert sizes[1] > sizes[0]
        assert sizes[2] >= 1.5 * sizes[1]
        assert sizes[3] >= 1.5 * sizes[2]
        # Per-group key count is 2^m - 1, so size per covered key bit grows
        # roughly as (2^m - 1) / m.
        assert sizes[3] / sizes[0] >= 3.0


class TestUnrolledBlindRotation:
    @pytest.mark.parametrize("m", [2, 3])
    def test_bootstrap_sign_correct(self, m):
        transform = NaiveNegacyclicTransform(TEST_TINY.N)
        secret = generate_secret_key(TEST_TINY, rng=85)
        key = generate_unrolled_bootstrapping_key(secret, transform, m, rng=86)
        rotator = UnrolledBlindRotator(key, transform)
        for bit in (0, 1):
            sample = lwe_encrypt(secret.lwe_key, gate_message(bit), rng=87 + bit)
            extracted = bootstrap_without_keyswitch(sample, int(MU), rotator, TEST_TINY)
            phase = lwe_phase(secret.extracted_key, extracted)
            assert (int(phase) > 0) == bool(bit)

    def test_rotator_counters_advance(self):
        transform = NaiveNegacyclicTransform(TEST_TINY.N)
        secret = generate_secret_key(TEST_TINY, rng=89)
        key = generate_unrolled_bootstrapping_key(secret, transform, 2, rng=90)
        rotator = UnrolledBlindRotator(key, transform)
        sample = lwe_encrypt(secret.lwe_key, gate_message(1), rng=91)
        bootstrap_without_keyswitch(sample, int(MU), rotator, TEST_TINY)
        assert rotator.external_products == key.external_products_per_bootstrap
        assert rotator.bundles_built == rotator.external_products


class TestUnrolledGates:
    def test_nand_truth_table_m2(self, tiny_keys_naive_m2):
        secret, cloud = tiny_keys_naive_m2
        assert cloud.unroll_factor == 2
        evaluator = TFHEGateEvaluator(cloud)
        for a in (0, 1):
            for b in (0, 1):
                ca = encrypt_bit(secret, a, rng=92 + a)
                cb = encrypt_bit(secret, b, rng=94 + b)
                got = decrypt_bit(secret, evaluator.nand(ca, cb))
                assert got == PLAINTEXT_GATES["nand"](a, b)

    def test_unrolled_and_classical_agree(self, tiny_keys_naive, tiny_keys_naive_m2):
        secret1, cloud1 = tiny_keys_naive
        secret2, cloud2 = tiny_keys_naive_m2
        ev1, ev2 = TFHEGateEvaluator(cloud1), TFHEGateEvaluator(cloud2)
        for a, b in ((0, 0), (1, 1)):
            r1 = decrypt_bit(secret1, ev1.xor(encrypt_bit(secret1, a, rng=96), encrypt_bit(secret1, b, rng=97)))
            r2 = decrypt_bit(secret2, ev2.xor(encrypt_bit(secret2, a, rng=96), encrypt_bit(secret2, b, rng=97)))
            assert r1 == r2 == PLAINTEXT_GATES["xor"](a, b)

    def test_generate_cloud_key_rejects_bad_factor(self):
        secret = generate_secret_key(TEST_TINY, rng=98)
        with pytest.raises(ValueError):
            generate_cloud_key(secret, NaiveNegacyclicTransform(TEST_TINY.N), unroll_factor=0)

"""Tests for the depth-first conjugate-pair FFT (structural model)."""

import numpy as np
import pytest

from repro.core.conjugate_pair import ConjugatePairFFT, reference_dft


@pytest.fixture
def random_signal():
    rng = np.random.default_rng(9)
    return rng.normal(size=64) + 1j * rng.normal(size=64)


class TestCorrectness:
    @pytest.mark.parametrize("size", [4, 8, 16, 32, 128])
    @pytest.mark.parametrize("sign", [1, -1])
    def test_matches_reference_dft(self, size, sign):
        rng = np.random.default_rng(size)
        signal = rng.normal(size=size) + 1j * rng.normal(size=size)
        fft = ConjugatePairFFT(size, twiddle_bits=None, sign=sign)
        got = fft.transform(signal)
        ref = reference_dft(signal, sign)
        assert np.allclose(got, ref, rtol=1e-9, atol=1e-6)

    def test_matches_numpy_inverse_convention(self, random_signal):
        fft = ConjugatePairFFT(64, twiddle_bits=None, sign=1)
        got = fft.transform(random_signal)
        ref = np.fft.ifft(random_signal) * 64
        assert np.allclose(got, ref, atol=1e-6)

    def test_quantised_twiddles_stay_close(self, random_signal):
        exact = ConjugatePairFFT(64, twiddle_bits=None).transform(random_signal)
        quantised = ConjugatePairFFT(64, twiddle_bits=20).transform(random_signal)
        scale = np.max(np.abs(exact))
        assert np.max(np.abs(exact - quantised)) / scale < 1e-3

    def test_wrong_length_rejected(self):
        fft = ConjugatePairFFT(16)
        with pytest.raises(ValueError):
            fft.transform(np.zeros(8, dtype=np.complex128))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ConjugatePairFFT(24)


class TestDepthFirstStructure:
    def test_completion_order_is_depth_first(self, random_signal):
        fft = ConjugatePairFFT(64, twiddle_bits=None)
        fft.transform(random_signal)
        order = fft.stats.completion_order
        # The first completed sub-transform is a leaf; the full transform is last.
        assert order[0] <= 2
        assert order[-1] == 64

    def test_recursion_depth_is_logarithmic(self, random_signal):
        fft = ConjugatePairFFT(64, twiddle_bits=None)
        fft.transform(random_signal)
        assert fft.stats.max_depth <= int(np.log2(64)) + 1

    def test_butterflies_counted(self, random_signal):
        fft = ConjugatePairFFT(64, twiddle_bits=None)
        fft.transform(random_signal)
        assert fft.stats.butterflies > 0

    def test_twiddle_reads_below_breadth_first(self, random_signal):
        from repro.core.twiddle import breadth_first_twiddle_reads

        fft = ConjugatePairFFT(64, twiddle_bits=24)
        fft.transform(random_signal)
        assert fft.stats.twiddle_reads < breadth_first_twiddle_reads(64)

    def test_stats_reset_between_transforms(self, random_signal):
        fft = ConjugatePairFFT(64, twiddle_bits=None)
        fft.transform(random_signal)
        first = fft.stats.butterflies
        fft.transform(random_signal)
        assert fft.stats.butterflies == first

"""Shared fixtures.

Key generation is the expensive part of the functional tests, so the fixtures
that build keys are session-scoped and deterministic (fixed seeds); individual
tests must not mutate them.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.gates import TFHEGateEvaluator
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import TEST_SMALL, TEST_TINY
from repro.tfhe.transform import DoubleFFTNegacyclicTransform, NaiveNegacyclicTransform


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_keys_naive():
    """TEST_TINY keys with the exact (naive) transform, classical rotation."""
    transform = NaiveNegacyclicTransform(TEST_TINY.N)
    secret, cloud = generate_keys(TEST_TINY, transform, unroll_factor=1, rng=1)
    return secret, cloud


@pytest.fixture(scope="session")
def tiny_keys_naive_m2():
    """TEST_TINY keys with the exact transform and BKU factor m = 2."""
    transform = NaiveNegacyclicTransform(TEST_TINY.N)
    secret, cloud = generate_keys(TEST_TINY, transform, unroll_factor=2, rng=2)
    return secret, cloud


@pytest.fixture(scope="session")
def small_keys_double():
    """TEST_SMALL keys with the double-precision FFT transform."""
    transform = DoubleFFTNegacyclicTransform(TEST_SMALL.N)
    secret, cloud = generate_keys(TEST_SMALL, transform, unroll_factor=1, rng=3)
    return secret, cloud


@pytest.fixture(scope="session")
def small_keys_approx_m2():
    """TEST_SMALL keys with MATCHA's approximate integer transform and m = 2."""
    transform = ApproximateNegacyclicTransform(TEST_SMALL.N, twiddle_bits=64)
    secret, cloud = generate_keys(TEST_SMALL, transform, unroll_factor=2, rng=4)
    return secret, cloud


@pytest.fixture(scope="session")
def small_evaluator_double(small_keys_double):
    _, cloud = small_keys_double
    return TFHEGateEvaluator(cloud)


@pytest.fixture(scope="session")
def small_evaluator_approx(small_keys_approx_m2):
    _, cloud = small_keys_approx_m2
    return TFHEGateEvaluator(cloud)


@pytest.fixture(scope="session")
def tiny_evaluator(tiny_keys_naive):
    _, cloud = tiny_keys_naive
    return TFHEGateEvaluator(cloud)


@pytest.fixture
def server_factory():
    """Start :class:`repro.runtime.FheServer` instances on background loops.

    Yields a ``start(**kwargs) -> FheServer`` callable; every server it
    created is stopped (and its loop torn down) at fixture teardown, so
    tests can't leak listeners or flusher tasks.
    """
    from repro.runtime.server import FheServer

    started = []

    def start(**kwargs):
        loop = asyncio.new_event_loop()
        server = FheServer(port=0, **kwargs)
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(server.start())
            ready.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(30.0), "server failed to start"
        started.append((server, loop, thread))
        return server

    yield start

    for server, loop, thread in started:
        try:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30.0)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10.0)
            loop.close()

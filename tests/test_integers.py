"""Radix-decomposed encrypted integers: arithmetic, bounds, bootstrap costs."""

from __future__ import annotations

import functools

import pytest

from repro.runtime.context import FheContext
from repro.tfhe.integers import (
    RadixEvaluator,
    RadixInt,
    decrypt_radix,
    encrypt_radix,
    radix_digits,
    radix_value,
    trivial_radix,
)
from repro.tfhe.lwe import decrypt_digit
from repro.tfhe.params import DigitEncoding, TEST_PBS
from repro.tfhe.transform import DoubleFFTNegacyclicTransform

#: The working encoding: base-4 digits with a full digit of carry head-room,
#: which is what mul/gt/eq's pair packing requires.
ENCODING = DigitEncoding(message_bits=2, carry_bits=2)


@functools.lru_cache(maxsize=1)
def _backend():
    transform = DoubleFFTNegacyclicTransform(TEST_PBS.N)
    return FheContext.generate(TEST_PBS, transform, unroll_factor=1, rng=77)


@pytest.fixture(scope="module")
def backend():
    return _backend()


@pytest.fixture
def evaluator(backend):
    _, context = backend
    return RadixEvaluator(context, ENCODING)


# --------------------------------------------------------------------------- #
# plaintext digit helpers                                                     #
# --------------------------------------------------------------------------- #


def test_radix_digits_roundtrip():
    for value in (0, 1, 37, 200, 255, 1000):
        digits = radix_digits(value, 4, ENCODING)
        assert all(0 <= d < ENCODING.base for d in digits)
        assert radix_value(digits, ENCODING) == value % 256


def test_radix_value_accepts_unnormalised_digits():
    # 5·1 + 7·4 = 33 ≡ 1 (mod 16): digits above the base still recompose.
    assert radix_value([5, 7], ENCODING) == 33 % 16


# --------------------------------------------------------------------------- #
# encryption round-trips and structural validation                            #
# --------------------------------------------------------------------------- #


def test_encrypt_decrypt_radix(backend, rng):
    secret, _ = backend
    for value in (0, 1, 200, 255):
        x = encrypt_radix(secret.lwe_key, value, 4, ENCODING, rng=rng)
        assert x.width == 4
        assert x.is_normalized
        assert decrypt_radix(secret.lwe_key, x) == value


def test_encrypt_radix_reduces_modulo_width(backend, rng):
    secret, _ = backend
    x = encrypt_radix(secret.lwe_key, 300, 4, ENCODING, rng=rng)
    assert decrypt_radix(secret.lwe_key, x) == 300 % 256


def test_trivial_radix_decrypts_without_key_material(backend):
    secret, _ = backend
    x = trivial_radix(123, 4, ENCODING, dimension=TEST_PBS.n)
    assert decrypt_radix(secret.lwe_key, x) == 123


def test_radix_int_validates_bounds(backend, rng):
    secret, _ = backend
    x = encrypt_radix(secret.lwe_key, 9, 2, ENCODING, rng=rng)
    with pytest.raises(ValueError, match="one bound per digit"):
        RadixInt(digits=x.digits, bounds=(3,), encoding=ENCODING)
    with pytest.raises(ValueError, match=r"bounds must lie in \[0, 15\]"):
        RadixInt(digits=x.digits, bounds=(3, 16), encoding=ENCODING)
    with pytest.raises(ValueError, match="at least one digit"):
        RadixInt(digits=[], bounds=(), encoding=ENCODING)


# --------------------------------------------------------------------------- #
# linear operations: correct and bootstrap-free                               #
# --------------------------------------------------------------------------- #


def test_add_is_linear_and_free(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 173, 4, ENCODING, rng=rng)
    b = encrypt_radix(secret.lwe_key, 41, 4, ENCODING, rng=rng)
    total = evaluator.add(a, b)
    assert evaluator.counters.bootstraps == 0
    assert not total.is_normalized  # bounds grew past B − 1
    assert decrypt_radix(secret.lwe_key, total) == (173 + 41) % 256


def test_add_scalar_is_free(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 99, 4, ENCODING, rng=rng)
    out = evaluator.add_scalar(a, 57)
    assert evaluator.counters.bootstraps == 0
    assert decrypt_radix(secret.lwe_key, out) == (99 + 57) % 256


def test_scale_by_small_scalar_is_free(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 61, 4, ENCODING, rng=rng)
    out = evaluator.scale(a, 3)
    assert evaluator.counters.bootstraps == 0
    assert decrypt_radix(secret.lwe_key, out) == (61 * 3) % 256


def test_scale_by_zero_gives_trivial_zero(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 61, 4, ENCODING, rng=rng)
    out = evaluator.scale(a, 0)
    assert decrypt_radix(secret.lwe_key, out) == 0


def test_scale_rejects_negative_and_oversized(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 61, 4, ENCODING, rng=rng)
    with pytest.raises(ValueError, match="non-negative"):
        evaluator.scale(a, -1)
    with pytest.raises(ValueError, match="overflows the carry budget"):
        evaluator.scale(a, 100)


def test_repeated_adds_propagate_within_budget(backend, evaluator, rng):
    """Chained additions stay correct as automatic propagation kicks in."""
    secret, _ = backend
    values = [201, 17, 88, 140, 255, 3]
    acc = encrypt_radix(secret.lwe_key, values[0], 4, ENCODING, rng=rng)
    for v in values[1:]:
        term = encrypt_radix(secret.lwe_key, v, 4, ENCODING, rng=rng)
        acc = evaluator.add(acc, term)
    assert decrypt_radix(secret.lwe_key, acc) == sum(values) % 256


# --------------------------------------------------------------------------- #
# carry propagation                                                           #
# --------------------------------------------------------------------------- #


def test_propagate_normalises_digits(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 173, 4, ENCODING, rng=rng)
    b = encrypt_radix(secret.lwe_key, 90, 4, ENCODING, rng=rng)
    total = evaluator.propagate(evaluator.add(a, b))
    assert total.is_normalized
    assert decrypt_radix(secret.lwe_key, total) == (173 + 90) % 256
    # Normalised means each digit individually decrypts below the base.
    for digit in total.digits:
        assert decrypt_digit(secret.lwe_key, digit, ENCODING) < ENCODING.base


def test_propagate_rejects_bounds_beyond_budget(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 9, 2, ENCODING, rng=rng)
    over = RadixInt(
        digits=a.digits, bounds=(15, 3), encoding=ENCODING
    )  # 15 + incoming carry 3 could overflow P − 1 = 15
    with pytest.raises(ValueError, match="propagation budget"):
        evaluator.propagate(over)


def test_propagate_skips_normalised_digits(backend, evaluator, rng):
    secret, _ = backend
    a = encrypt_radix(secret.lwe_key, 13, 4, ENCODING, rng=rng)
    before = evaluator.counters.bootstraps
    out = evaluator.propagate(a)
    assert evaluator.counters.bootstraps == before  # already normalised: free
    assert decrypt_radix(secret.lwe_key, out) == 13


# --------------------------------------------------------------------------- #
# multiplication                                                              #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("a,b", [(0, 0), (1, 255), (173, 201), (15, 17), (255, 255)])
def test_mul_8bit(backend, evaluator, rng, a, b):
    secret, _ = backend
    xa = encrypt_radix(secret.lwe_key, a, 4, ENCODING, rng=rng)
    xb = encrypt_radix(secret.lwe_key, b, 4, ENCODING, rng=rng)
    out = evaluator.mul(xa, xb)
    assert decrypt_radix(secret.lwe_key, out) == (a * b) % 256


def test_mul_bootstrap_count_beats_boolean_baseline(backend, evaluator, rng):
    """8-bit mul must stay far under the 113-bootstrap boolean-circuit cost."""
    secret, _ = backend
    xa = encrypt_radix(secret.lwe_key, 173, 4, ENCODING, rng=rng)
    xb = encrypt_radix(secret.lwe_key, 201, 4, ENCODING, rng=rng)
    before = evaluator.counters.bootstraps
    evaluator.mul(xa, xb)
    spent = evaluator.counters.bootstraps - before
    assert spent <= 30, spent


def test_mul_requires_packing_headroom(backend, rng):
    secret, context = backend
    narrow = DigitEncoding(message_bits=2, carry_bits=1)
    evaluator = RadixEvaluator(context, narrow)
    xa = encrypt_radix(secret.lwe_key, 9, 2, narrow, rng=rng)
    xb = encrypt_radix(secret.lwe_key, 5, 2, narrow, rng=rng)
    with pytest.raises(ValueError, match="carry_bits >= message_bits"):
        evaluator.mul(xa, xb)


def test_operand_mismatches_are_rejected(backend, evaluator, rng):
    secret, _ = backend
    xa = encrypt_radix(secret.lwe_key, 9, 2, ENCODING, rng=rng)
    xb = encrypt_radix(secret.lwe_key, 5, 4, ENCODING, rng=rng)
    with pytest.raises(ValueError, match="widths differ"):
        evaluator.add(xa, xb)
    other = DigitEncoding(message_bits=3, carry_bits=0)
    xc = encrypt_radix(secret.lwe_key, 5, 2, other, rng=rng)
    with pytest.raises(ValueError, match="encoding mismatch"):
        evaluator.add(xa, xc)


# --------------------------------------------------------------------------- #
# comparisons                                                                 #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "a,b,expected",
    [(201, 173, 1), (173, 201, 0), (144, 144, 0), (255, 0, 1), (0, 255, 0)],
)
def test_gt(backend, evaluator, rng, a, b, expected):
    secret, _ = backend
    xa = encrypt_radix(secret.lwe_key, a, 4, ENCODING, rng=rng)
    xb = encrypt_radix(secret.lwe_key, b, 4, ENCODING, rng=rng)
    bit = evaluator.gt(xa, xb)
    assert decrypt_digit(secret.lwe_key, bit, ENCODING) == expected


@pytest.mark.parametrize(
    "a,b,expected", [(144, 144, 1), (144, 145, 0), (0, 0, 1), (255, 254, 0)]
)
def test_eq(backend, evaluator, rng, a, b, expected):
    secret, _ = backend
    xa = encrypt_radix(secret.lwe_key, a, 4, ENCODING, rng=rng)
    xb = encrypt_radix(secret.lwe_key, b, 4, ENCODING, rng=rng)
    bit = evaluator.eq(xa, xb)
    assert decrypt_digit(secret.lwe_key, bit, ENCODING) == expected


def test_gt_single_digit(backend, evaluator, rng):
    secret, _ = backend
    xa = encrypt_radix(secret.lwe_key, 3, 1, ENCODING, rng=rng)
    xb = encrypt_radix(secret.lwe_key, 2, 1, ENCODING, rng=rng)
    assert decrypt_digit(secret.lwe_key, evaluator.gt(xa, xb), ENCODING) == 1
    assert decrypt_digit(secret.lwe_key, evaluator.gt(xb, xa), ENCODING) == 0


def test_evaluator_rejects_unratable_encoding(backend):
    _, context = backend
    with pytest.raises(ValueError, match="rated for message_space"):
        RadixEvaluator(context, DigitEncoding(message_bits=3, carry_bits=3))

"""Worker-pool sharding: bit-identity, shared-memory cache, accounting.

The load-bearing property: dispatching a flush's rows through a
multi-process :class:`WorkerPool` is **bit-identical** to the inline
single-process path — across all three transform engines, both rotators,
and mixed gate/LUT rows.  Sharding may only change *where* a row's
bootstrap runs, never its bits (rows are independent by the PR 1 batch
property, and workers rebuild — or map — exactly the parent's key state).

Also covered here: the shared-segment format (spectra are shared zero-copy
for the classical rotator under plain-ndarray engines, rebuilt from key
bytes for BKU and the approximate integer engine), registry lifecycle, and
the pool's stats/health accounting in the fault-free path.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.runtime import BatchScheduler, WorkerPool
from repro.runtime.context import FheContext
from repro.runtime.scheduler import SchedulerStats, execute_rows
from repro.runtime.workers import (
    _attach_segment,
    _context_from_segment,
    _pack_client_segment,
)
from repro.tfhe.gates import decrypt_bit, encrypt_bit

pytestmark = pytest.mark.filterwarnings("error::UserWarning")

KEY_FIXTURES = [
    "tiny_keys_naive",       # naive engine, classical rotator
    "tiny_keys_naive_m2",    # naive engine, BKU m=2
    "small_keys_double",     # double FFT engine, classical rotator
    "small_keys_approx_m2",  # approximate integer engine, BKU m=2
]


def _mixed_rows(secret, count: int = 10):
    """Gate rows with every third row a LUT row (XOR via table 0b0110)."""
    rows = []
    plain = []
    for i in range(count):
        a, b = i & 1, (i >> 1) & 1
        ca = encrypt_bit(secret, a, rng=800 + 2 * i)
        cb = encrypt_bit(secret, b, rng=801 + 2 * i)
        if i % 3 == 2:
            rows.append(("lut", 0b0110, (ca, cb)))
            plain.append(a ^ b)
        else:
            rows.append(("gate", "nand", ca, cb))
            plain.append(1 - (a & b))
    return rows, plain


def _segment_header(segment) -> dict:
    (header_len,) = struct.unpack("<Q", bytes(segment.buf[0:8]))
    return json.loads(bytes(segment.buf[8 : 8 + header_len]).decode("utf-8"))


@pytest.mark.parametrize("fixture", KEY_FIXTURES)
def test_sharded_flush_bit_identical(request, fixture):
    """Pool output == inline output, bit for bit, on mixed gate/LUT rows."""
    secret, cloud = request.getfixturevalue(fixture)
    context = cloud.default_context()
    rows, plain = _mixed_rows(secret)
    reference = execute_rows(context, rows, stats=SchedulerStats())
    with WorkerPool(3, task_timeout=60.0) as pool:
        sharded = pool.run_rows("tenant", context, rows, SchedulerStats())
    assert len(sharded) == len(reference)
    for got, want, bit in zip(sharded, reference, plain):
        assert np.array_equal(got.a, want.a)
        assert int(got.b) == int(want.b)
        assert decrypt_bit(secret, got) == bit


@pytest.mark.parametrize("fixture", KEY_FIXTURES)
def test_scheduler_flush_through_pool(request, fixture):
    """End-to-end scheduler path: coalesced jobs, pool dispatch, handles."""
    secret, cloud = request.getfixturevalue(fixture)
    context = FheContext(cloud)
    inline = BatchScheduler()
    inline.register_client("c", FheContext(cloud))
    with WorkerPool(2, task_timeout=60.0) as pool:
        pooled = BatchScheduler(dispatcher=pool)
        pooled.register_client("c", context)
        handles = {}
        for scheduler in (inline, pooled):
            session = scheduler.session("c")
            chained = session.submit_gate(
                "xor",
                encrypt_bit(secret, 1, rng=901),
                encrypt_bit(secret, 0, rng=902),
            )
            # A handle-chained gate exercises multi-round flushes.
            final = session.submit_gate(
                "and", chained, encrypt_bit(secret, 1, rng=903)
            )
            lut = session.submit_lut(
                0b0111, [encrypt_bit(secret, 0, rng=904), encrypt_bit(secret, 1, rng=905)]
            )
            scheduler.flush()
            handles[scheduler is pooled] = (final.result(), lut.result())
    for got, want in zip(handles[True], handles[False]):
        assert np.array_equal(got.a, want.a)
        assert int(got.b) == int(want.b)
    assert inline.stats.jobs_completed == pooled.stats.jobs_completed == 3


def test_spectrum_is_shared_for_plain_engines(tiny_keys_naive, small_keys_double):
    """Classical rotator + plain-ndarray engine → spectra ride the segment."""
    for _, cloud in (tiny_keys_naive, small_keys_double):
        context = cloud.default_context()
        segment = _pack_client_segment(context)
        try:
            header = _segment_header(segment)
            assert header["spectrum"] is not None
            assert header["spectrum"]["shape"][0] == context.cached_tgsw_samples
        finally:
            segment.close()
            segment.unlink()


def test_spectrum_falls_back_for_bku_and_approx(
    tiny_keys_naive_m2, small_keys_approx_m2
):
    """BKU keys and IntegerSpectrum tensors rebuild from key bytes instead."""
    for _, cloud in (tiny_keys_naive_m2, small_keys_approx_m2):
        context = cloud.default_context()
        segment = _pack_client_segment(context)
        try:
            assert _segment_header(segment)["spectrum"] is None
        finally:
            segment.close()
            segment.unlink()


def test_context_from_segment_matches_parent(tiny_keys_naive):
    """A worker-side rebuilt context bootstraps bit-identically in-parent."""
    secret, cloud = tiny_keys_naive
    parent = cloud.default_context()
    segment = _pack_client_segment(parent)
    try:
        attached = _attach_segment(segment.name)
        try:
            rebuilt = _context_from_segment(attached)
            # The shared-spectrum path installed the rotator without a
            # single forward transform of bootstrapping-key material.
            assert rebuilt.spectra_cached
            assert rebuilt.cached_tgsw_samples == parent.cached_tgsw_samples
            sample = encrypt_bit(secret, 1, rng=777)
            want = parent.bootstrap(sample)
            got = rebuilt.bootstrap(sample)
            assert np.array_equal(got.a, want.a) and int(got.b) == int(want.b)
            # The mapped spectra are read-only views into shared pages.
            tensor = rebuilt.rotator.bootstrapping_key[0].tensor
            assert not tensor.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                tensor[...] = 0
        finally:
            attached.close()
    finally:
        segment.close()
        segment.unlink()


def test_install_rotator_refuses_after_cache_build(tiny_keys_naive):
    _, cloud = tiny_keys_naive
    context = FheContext(cloud)
    rotator = context.rotator  # builds the cache
    with pytest.raises(RuntimeError, match="already built"):
        context.install_rotator(rotator, cached_tgsw_samples=1)


def test_pool_stats_and_chunking(tiny_keys_naive):
    """Fault-free accounting: chunk split, batched-call stats, health."""
    secret, cloud = tiny_keys_naive
    context = cloud.default_context()
    rows, _ = _mixed_rows(secret, count=9)
    stats = SchedulerStats()
    with WorkerPool(3, task_timeout=60.0) as pool:
        pool.run_rows("tenant", context, rows, stats, max_rows_per_call=2)
        assert pool.stats.tasks_dispatched == 3  # 9 rows → 3 chunks of 3
        assert pool.stats.tasks_completed == 3
        assert pool.stats.tasks_retried == 0
        assert pool.stats.workers_restarted == 0
        assert pool.stats.rows_executed == 9
        # Each 3-row chunk honours max_rows_per_call=2 → 2 calls per chunk.
        assert stats.batched_calls == 6
        assert stats.max_rows_per_call == 2
        health = pool.health
        assert len(health) == 3
        assert all(worker.alive for worker in health)
        assert sum(worker.tasks_completed for worker in health) == 3


def test_single_worker_single_row(tiny_keys_naive):
    """Degenerate sizes: 1 worker, 1 row."""
    secret, cloud = tiny_keys_naive
    context = cloud.default_context()
    ca, cb = encrypt_bit(secret, 1, rng=1), encrypt_bit(secret, 1, rng=2)
    reference = execute_rows(context, [("gate", "nand", ca, cb)], stats=SchedulerStats())
    with WorkerPool(1, task_timeout=60.0) as pool:
        out = pool.run_rows("t", context, [("gate", "nand", ca, cb)], SchedulerStats())
    assert np.array_equal(out[0].a, reference[0].a)
    assert int(out[0].b) == int(reference[0].b)
    with WorkerPool(1, task_timeout=60.0) as pool:
        assert pool.run_rows("t", context, [], SchedulerStats()) == []


def test_multi_client_isolation_through_one_pool(tiny_keys_naive):
    """Two tenants' keys share the pool but never a bootstrap."""
    secret_a, cloud_a = tiny_keys_naive
    from repro.tfhe.keys import generate_keys
    from repro.tfhe.params import TEST_TINY
    from repro.tfhe.transform import NaiveNegacyclicTransform

    secret_b, cloud_b = generate_keys(
        TEST_TINY, NaiveNegacyclicTransform(TEST_TINY.N), unroll_factor=1, rng=51
    )
    with WorkerPool(2, task_timeout=60.0) as pool:
        scheduler = BatchScheduler(dispatcher=pool)
        scheduler.register_client("a", FheContext(cloud_a))
        scheduler.register_client("b", FheContext(cloud_b))
        ha = scheduler.session("a").submit_gate(
            "nand", encrypt_bit(secret_a, 1, rng=3), encrypt_bit(secret_a, 1, rng=4)
        )
        hb = scheduler.session("b").submit_gate(
            "nand", encrypt_bit(secret_b, 1, rng=5), encrypt_bit(secret_b, 1, rng=6)
        )
        scheduler.flush()
        assert decrypt_bit(secret_a, ha.result()) == 0
        assert decrypt_bit(secret_b, hb.result()) == 0
        assert len(pool._segments) == 2


def test_register_deregister_lifecycle(tiny_keys_naive):
    secret, cloud = tiny_keys_naive
    context = cloud.default_context()
    pool = WorkerPool(1, task_timeout=60.0)
    try:
        pool.register_client("c", context)
        with pytest.raises(ValueError, match="already registered"):
            pool.register_client("c", context)
        name = pool._segments["c"].name
        pool.deregister_client("c")
        assert "c" not in pool._segments
        # The segment is gone from the system, not just the dict.
        with pytest.raises(FileNotFoundError):
            _attach_segment(name)
        pool.deregister_client("c")  # idempotent
        # run_rows on an unknown client auto-registers.
        rows = [("gate", "and", encrypt_bit(secret, 1, rng=7), encrypt_bit(secret, 1, rng=8))]
        out = pool.run_rows("fresh", context, rows, SchedulerStats())
        assert decrypt_bit(secret, out[0]) == 1
        assert "fresh" in pool._segments
    finally:
        pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.run_rows("c", context, [("gate", "and", None, None)], SchedulerStats())
    with pytest.raises(RuntimeError, match="closed"):
        pool.register_client("d", context)
    pool.close()  # idempotent


def test_scheduler_deregister_refuses_pending(tiny_keys_naive):
    secret, cloud = tiny_keys_naive
    scheduler = BatchScheduler()
    scheduler.register_client("c", FheContext(cloud))
    session = scheduler.session("c")
    session.submit_gate("nand", encrypt_bit(secret, 1, rng=9), encrypt_bit(secret, 0, rng=10))
    with pytest.raises(RuntimeError, match="pending jobs"):
        scheduler.deregister_client("c")
    scheduler.flush()
    scheduler.deregister_client("c")
    with pytest.raises(KeyError):
        scheduler.client_context("c")

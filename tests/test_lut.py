"""Boolean LUTs over the gate encoding: spec search, lutify, lut execution."""

from __future__ import annotations

import pytest

from repro.compiler.passes import LUT_PIPELINE, PassManager, lutify
from repro.compiler.sim import simulate, verify_equivalent
from repro.tfhe.executor import CircuitExecutor
from repro.tfhe.gates import (
    BatchGateEvaluator,
    encrypt_bit,
    decrypt_bit,
    encrypt_bit_batch,
    decrypt_bit_batch,
    require_lut_spec,
)
from repro.tfhe.lut import (
    MAX_LUT_ARITY,
    MAX_WEIGHT_COST,
    boolean_lut_spec,
    lut_table_bit,
)
from repro.tfhe.netlist import Circuit, adder_netlist

#: (table, arity) pairs with known single-bootstrap realisations.
FEASIBLE = [
    (0b0110, 2),  # XOR
    (0b1000, 2),  # AND
    (0b0111, 2),  # OR
    (0x96, 3),  # XOR3
    (0xE8, 3),  # MAJ3
    (0x6996, 4),  # 4-input parity
]

#: The canonical infeasible table: 0x1669 has no affine slicing at arity 4.
INFEASIBLE_TABLE = 0x1669


# --------------------------------------------------------------------------- #
# spec search                                                                 #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("table,arity", FEASIBLE)
def test_feasible_specs_match_their_tables(table, arity):
    spec = boolean_lut_spec(table, arity)
    assert spec is not None
    assert spec.weight_cost <= MAX_WEIGHT_COST
    # Negacyclic constraint: opposite slices carry complementary outputs.
    for t in range(4):
        assert spec.slices[t] == 1 - spec.slices[t + 4]
    for index in range(1 << arity):
        bits = tuple((index >> i) & 1 for i in range(arity))
        assert spec.evaluate(bits) == (table >> index) & 1
        assert lut_table_bit(table, bits) == (table >> index) & 1


def test_infeasible_table_reports_none():
    assert boolean_lut_spec(INFEASIBLE_TABLE, 4) is None
    with pytest.raises(ValueError, match="0x1669.*no.*single-bootstrap"):
        require_lut_spec(INFEASIBLE_TABLE, 4)


def test_spec_search_is_memoised():
    assert boolean_lut_spec(0x96, 3) is boolean_lut_spec(0x96, 3)


def test_spec_search_validates_inputs():
    with pytest.raises(ValueError, match="arity"):
        boolean_lut_spec(0, MAX_LUT_ARITY + 1)
    with pytest.raises(ValueError, match="fit"):
        boolean_lut_spec(1 << 16, 3)


def test_arity2_specs_cover_every_gate():
    """Every 2-input truth table has an affine realisation (stock gates do)."""
    for table in range(16):
        spec = boolean_lut_spec(table, 2)
        assert spec is not None, f"table {table:#06b}"
        for index in range(4):
            bits = (index & 1, (index >> 1) & 1)
            assert spec.evaluate(bits) == (table >> index) & 1


# --------------------------------------------------------------------------- #
# netlist lut nodes                                                           #
# --------------------------------------------------------------------------- #


def test_circuit_lut_node_validation():
    c = Circuit("luts")
    a, b, d, e = c.inputs("a", 4)
    with pytest.raises(ValueError, match="no.*single-bootstrap"):
        c.lut(INFEASIBLE_TABLE, [a, b, d, e])
    with pytest.raises(ValueError, match="does not fit"):
        c.lut(1 << 4, [a, b])
    with pytest.raises(ValueError, match="arity"):
        c.lut(0, [])
    wire = c.lut(0x96, [a, b, d])
    c.output("out", [wire])
    assert simulate(c, {"a": 0b0111})["out"] == 1  # parity of the low 3 bits


def test_lut_nodes_simulate_like_their_gate_cones():
    c = Circuit("maj")
    a, b, d = c.inputs("x", 3)
    c.output("out", [c.lut(0xE8, [a, b, d])])
    for x in range(8):
        bits = [(x >> i) & 1 for i in range(3)]
        assert simulate(c, {"x": x})["out"] == int(sum(bits) >= 2)


# --------------------------------------------------------------------------- #
# the lutify pass                                                             #
# --------------------------------------------------------------------------- #


def test_lutify_preserves_semantics_and_saves_bootstraps():
    circuit = adder_netlist(4)
    clustered = lutify(circuit)
    verify_equivalent(circuit, clustered, trials=32, rng=9)
    assert clustered.gate_count <= circuit.gate_count


def test_lut_pipeline_reduces_adder_bootstraps():
    circuit = adder_netlist(4)
    manager = PassManager(passes=LUT_PIPELINE, verify=True, trials=16, rng=3)
    optimized = manager.run(circuit)
    assert optimized.gate_count < circuit.gate_count
    assert any(
        optimized.node(n).op == "lut" for n in optimized.live_nodes()
    ), "pipeline produced no lut nodes on a ripple adder"
    verify_equivalent(circuit, optimized, trials=32, rng=4)


def test_lutify_leaves_infeasible_cones_as_gates():
    # A single gate has nothing to cluster with: lutify must not regress it.
    c = Circuit("lone")
    a, b = c.inputs("a", 2)
    c.output("out", [c.gate("nand", a, b)])
    out = lutify(c)
    verify_equivalent(c, out, trials=8, rng=1)
    assert out.gate_count <= c.gate_count


# --------------------------------------------------------------------------- #
# encrypted lut execution                                                     #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("table,arity", [(0x96, 3), (0xE8, 3), (0x6996, 4)])
def test_scalar_lut_evaluation(tiny_keys_naive, tiny_evaluator, rng, table, arity):
    secret, _ = tiny_keys_naive
    for index in range(1 << arity):
        bits = [(index >> i) & 1 for i in range(arity)]
        inputs = [encrypt_bit(secret, bit, rng) for bit in bits]
        out = tiny_evaluator.lut(table, inputs)
        assert decrypt_bit(secret, out) == (table >> index) & 1


def test_batched_lut_evaluation(tiny_keys_naive, rng):
    secret, cloud = tiny_keys_naive
    table, arity = 0xE8, 3
    size = 1 << arity
    evaluator = BatchGateEvaluator(cloud, batch_size=size)
    columns = [
        encrypt_bit_batch(secret, [(index >> i) & 1 for index in range(size)], rng)
        for i in range(arity)
    ]
    out = evaluator.lut(table, columns)
    assert decrypt_bit_batch(secret, out) == [
        (table >> index) & 1 for index in range(size)
    ]


def test_executor_runs_lut_pipelined_circuits(tiny_keys_naive, rng):
    """An optimized adder with lut nodes executes batched, end to end."""
    from repro.tfhe.circuits import decrypt_integers, encrypt_integers

    secret, cloud = tiny_keys_naive
    circuit = PassManager(passes=LUT_PIPELINE, verify=True, trials=8, rng=2).run(
        adder_netlist(4)
    )
    a_vals, b_vals = [11, 3], [7, 12]
    executor = CircuitExecutor(BatchGateEvaluator(cloud, batch_size=2))
    inputs = {
        "a": encrypt_integers(secret, a_vals, 4, rng=rng),
        "b": encrypt_integers(secret, b_vals, 4, rng=rng),
    }
    sums = executor.run(circuit, inputs)["sum"]
    assert decrypt_integers(secret, sums) == [
        x + y for x, y in zip(a_vals, b_vals)
    ]

"""The FHE evaluation context: resolved engine + spectrum-cached cloud key.

A :class:`repro.tfhe.keys.TFHECloudKey` is pure data — coefficient-domain
TGSW samples, the key-switching key and a
:class:`repro.tfhe.transform.TransformSpec`.  An :class:`FheContext` turns
that data into evaluation state, the way the paper's accelerator keeps the
bootstrapping key resident next to the datapath and streams ciphertexts past
it:

* the transform engine is resolved from the engine registry (or supplied
  explicitly, e.g. to evaluate a ``double``-generated key with the ``approx``
  engine for error studies);
* every bootstrapping-key row is ``forward()``-transformed into the Lagrange
  domain **exactly once per context** and cached inside the blind rotator —
  the *cloud-key spectrum cache*.  Gates only ever transform the small
  decomposed accumulator polynomials;
* evaluators, batch evaluators and circuit executors hang off the context and
  share the cache, so scalar gates, batched gates and level-parallel circuit
  runs all hit the same resident key spectra.

The historical free functions remain thin wrappers: ``cloud.blind_rotator``
lazily builds a *default* context (memoised on the key), so pre-runtime code
keeps working bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.tfhe.bootstrap import BlindRotator, CmuxBlindRotator
from repro.tfhe.gates import MU, BatchGateEvaluator, TFHEGateEvaluator
from repro.tfhe.keys import (
    TFHECloudKey,
    TFHEParameters,
    TFHESecretKey,
    generate_cloud_key,
    generate_secret_key,
)
from repro.tfhe.keyswitch import KeySwitchKey, keyswitch_apply, keyswitch_apply_batch
from repro.tfhe.lwe import LweBatch, LweSample
from repro.tfhe.tgsw import BootstrapWorkspace, tgsw_transform
from repro.tfhe.transform import (
    EngineFault,
    NegacyclicTransform,
    engine_entry,
    make_transform,
    quarantine_engine,
    select_best_engine,
)
from repro.utils.rng import SeedLike, make_rng


def resolve_engine(
    cloud_key: TFHECloudKey,
    engine: "Optional[NegacyclicTransform | str]" = None,
) -> NegacyclicTransform:
    """Resolve an engine argument against a cloud key.

    ``engine`` may be ``None`` (rebuild the engine recorded in the key's
    ``transform_spec``), a registry kind string (``"double"``,
    ``"compiled"``, ...), the string ``"auto"`` (pick the best available
    engine compatible with the key's error model via
    :func:`repro.tfhe.transform.select_best_engine`), or an already-built
    :class:`NegacyclicTransform` instance, which is returned as-is.
    """
    if isinstance(engine, NegacyclicTransform):
        return engine
    degree = cloud_key.params.N
    spec = cloud_key.transform_spec
    if engine is None:
        if spec is None:
            raise ValueError(
                "cloud key records no transform spec (ad-hoc engine); "
                "pass an engine instance explicitly"
            )
        return spec.create(degree)
    if engine == "auto":
        kind = select_best_engine(for_spec=spec) if spec is not None else select_best_engine()
        if spec is not None and kind == spec.kind:
            return spec.create(degree)
        return make_transform(kind, degree)
    return make_transform(engine, degree)


class FheContext:
    """Owns the evaluation state derived from one cloud key.

    ``engine`` defaults to the engine recorded in the key's
    ``transform_spec`` (rebuilt through the registry); pass an instance to
    override it, a registry kind string to build that engine, or ``"auto"``
    to let :func:`repro.tfhe.transform.select_best_engine` pick the fastest
    available backend compatible with the key's error model.
    """

    def __init__(
        self,
        cloud_key: TFHECloudKey,
        engine: "Optional[NegacyclicTransform | str]" = None,
    ) -> None:
        self.cloud_key = cloud_key
        self.params: TFHEParameters = cloud_key.params
        engine = resolve_engine(cloud_key, engine)
        if engine.degree != self.params.N:
            raise ValueError(
                f"engine degree {engine.degree} does not match the "
                f"parameter set's ring degree {self.params.N}"
            )
        self.engine = engine
        self._rotator: Optional[BlindRotator] = None
        self._scalar_evaluator: Optional[TFHEGateEvaluator] = None
        self._batch_evaluators: Dict[int, BatchGateEvaluator] = {}
        #: TGSW samples held in the spectrum cache (0 until first use).
        self.cached_tgsw_samples = 0
        #: Scratch buffers of the fused external-product kernel, shared by
        #: every bootstrapping this context runs (all rotator steps, all
        #: evaluators, every scheduler flush) — allocated once, reused for
        #: the lifetime of the context.
        self.workspace = BootstrapWorkspace()
        #: How many times :meth:`failover` swapped this context's engine.
        self.engine_failovers = 0
        #: Optional :class:`repro.telemetry.Telemetry` bundle; set by the
        #: scheduler on registration so the innermost evaluator layer can
        #: record per-stage spans without an argument threaded through
        #: every call.  ``None`` keeps the fast path untouched.
        self.telemetry = None

    # -- construction helpers ----------------------------------------------
    @classmethod
    def generate(
        cls,
        params: TFHEParameters,
        transform: Optional[NegacyclicTransform] = None,
        unroll_factor: int = 1,
        rng: SeedLike = None,
    ) -> Tuple[TFHESecretKey, "FheContext"]:
        """Generate a fresh keypair and return ``(secret key, context)``."""
        rng = make_rng(rng)
        secret = generate_secret_key(params, rng)
        cloud = generate_cloud_key(secret, transform, unroll_factor, rng, eager=False)
        return secret, cloud.default_context()

    # -- owned state ---------------------------------------------------------
    @property
    def keyswitch_key(self) -> KeySwitchKey:
        return self.cloud_key.keyswitch_key

    @property
    def unroll_factor(self) -> int:
        return self.cloud_key.unroll_factor

    @property
    def rotator(self) -> BlindRotator:
        """The blind rotator over the spectrum-cached bootstrapping key."""
        if self._rotator is None:
            self._rotator = self._build_rotator()
        return self._rotator

    @property
    def spectra_cached(self) -> bool:
        """Whether the cloud-key spectrum cache has been built yet."""
        return self._rotator is not None

    def install_rotator(self, rotator: BlindRotator, cached_tgsw_samples: int) -> None:
        """Adopt an externally built blind rotator for this context.

        Used by :mod:`repro.runtime.workers`: a pool worker reconstructs the
        rotator from spectral tensors that live in a read-only shared-memory
        segment, so every worker process maps the *same* physical cloud-key
        spectrum cache instead of forward-transforming its own copy.  The
        installed rotator must have been built for this context's cloud key
        and engine; installing over an already-built cache is refused (the
        two caches would silently diverge from the context's counters).
        """
        if self._rotator is not None:
            raise RuntimeError(
                "context already built its spectrum cache; install_rotator "
                "must run before the first bootstrap"
            )
        self._rotator = rotator
        self.cached_tgsw_samples = int(cached_tgsw_samples)

    def failover(self, reason: str = "engine fault") -> str:
        """Quarantine the current engine kind and rebuild on a fallback.

        Called when the engine raises :class:`repro.tfhe.transform.EngineFault`
        mid-evaluation (JIT self-check failure, device error).  The faulting
        kind is quarantined in the registry, the best remaining engine within
        the same error-model family is selected, and this context's derived
        state — spectrum cache, evaluators, workspace — is reset so it is
        rebuilt lazily on the new engine.  Within the ``fft64`` family the
        replay is bit-identical (the cross-engine suite's contract); from
        ``fft64-device`` the decrypted results still match.

        Returns the new engine kind.  Raises :class:`EngineFault` when the
        engine is ad-hoc (no registry kind to quarantine or match against)
        or no compatible fallback engine remains available.
        """
        old_kind = getattr(self.engine, "engine_kind", None)
        if old_kind is None:
            raise EngineFault(
                f"cannot fail over an ad-hoc (unregistered) engine: {reason}"
            )
        error_model = engine_entry(old_kind).error_model
        quarantine_engine(old_kind, reason)
        try:
            new_kind = select_best_engine(error_model=error_model)
        except ValueError as exc:
            raise EngineFault(
                f"engine {old_kind!r} quarantined ({reason}) and no "
                f"compatible fallback remains: {exc}"
            ) from None
        self.engine = make_transform(new_kind, self.params.N)
        self._rotator = None
        self._scalar_evaluator = None
        self._batch_evaluators = {}
        self.cached_tgsw_samples = 0
        self.workspace = BootstrapWorkspace()
        self.engine_failovers += 1
        return new_kind

    def _build_rotator(self) -> BlindRotator:
        cloud = self.cloud_key
        if cloud.unroll_factor == 1:
            if cloud.bootstrapping_key is None:
                raise ValueError("cloud key carries no bootstrapping key material")
            transformed = [
                tgsw_transform(sample, self.engine)
                for sample in cloud.bootstrapping_key
            ]
            self.cached_tgsw_samples = len(transformed)
            return CmuxBlindRotator(transformed, self.engine, workspace=self.workspace)
        if cloud.unrolled_groups is None:
            raise ValueError("cloud key carries no unrolled key material")
        # Imported lazily: repro.core builds on repro.tfhe, not the reverse.
        from repro.core.bku import UnrolledBlindRotator, transform_unrolled_key

        key = transform_unrolled_key(
            cloud.unrolled_groups, self.params, cloud.unroll_factor, self.engine
        )
        self.cached_tgsw_samples = key.tgsw_key_count
        return UnrolledBlindRotator(key, self.engine, workspace=self.workspace)

    # -- evaluation entry points ---------------------------------------------
    def evaluator(self) -> TFHEGateEvaluator:
        """The (memoised) scalar gate evaluator bound to this context."""
        if self._scalar_evaluator is None:
            self._scalar_evaluator = TFHEGateEvaluator(self)
        return self._scalar_evaluator

    def batch_evaluator(self, batch_size: int) -> BatchGateEvaluator:
        """The (memoised, per-width) batched gate evaluator of this context."""
        if batch_size not in self._batch_evaluators:
            self._batch_evaluators[batch_size] = BatchGateEvaluator(self, batch_size)
        return self._batch_evaluators[batch_size]

    def executor(self, batch_size: int):
        """A level-parallel circuit executor over ``batch_size`` words."""
        from repro.tfhe.executor import CircuitExecutor

        return CircuitExecutor(self.batch_evaluator(batch_size))

    def bootstrap(self, sample: LweSample, mu: Optional[int] = None) -> LweSample:
        """Gate-bootstrap one sample with this context's cached key state."""
        from repro.tfhe.bootstrap import bootstrap_without_keyswitch

        extracted = bootstrap_without_keyswitch(
            sample, int(MU) if mu is None else int(mu), self.rotator, self.params
        )
        return keyswitch_apply(self.keyswitch_key, extracted)

    def bootstrap_batch(self, batch: LweBatch, mu: Optional[int] = None) -> LweBatch:
        """Gate-bootstrap a whole batch with this context's cached key state."""
        from repro.tfhe.bootstrap import bootstrap_without_keyswitch_batch

        extracted = bootstrap_without_keyswitch_batch(
            batch, int(MU) if mu is None else int(mu), self.rotator, self.params
        )
        return keyswitch_apply_batch(self.keyswitch_key, extracted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FheContext(params={self.params.name!r}, "
            f"engine={type(self.engine).__name__}, "
            f"unroll_factor={self.unroll_factor}, "
            f"cached={self.spectra_cached})"
        )

"""Wire protocol of the serving front: CRC-protected frames over a socket.

One frame is::

    magic (4) | header_len u32 | body_len u64 | crc32 u32 | header JSON | body

with little-endian fixed-width prefixes (matching the shared-memory segment
layout in :mod:`repro.runtime.workers`).  The **header** is a UTF-8 JSON
object — ``{"op": ..., "id": ...}`` plus op-specific fields — and the
**body** carries binary payloads: the PR 3/6 npz artifacts (cloud keys,
ciphertexts, radix integers) and JSON circuit text travel verbatim, so the
wire format is exactly the on-disk format.  Multi-artifact bodies use
:func:`pack_parts` / :func:`unpack_parts` (``u32 count | (u64 len | bytes)*``)
because npz archives are not self-delimiting.  The ``crc32`` field covers
``header JSON + body``, so a bit-flipped frame is caught *before* any npz
deserialization — CRC32 detects every single-bit and burst-under-32-bit
corruption the checks inside the npz parser would otherwise see (or worse,
miss).

Robustness contract (exercised by the protocol fuzz suite):

* both length prefixes are bounded *before* any allocation —
  ``header_len`` by :data:`MAX_HEADER_LEN`, the whole frame by the
  reader's ``max_frame`` (default :data:`DEFAULT_MAX_FRAME`) — so an
  adversarial prefix cannot balloon server memory;
* a connection that ends mid-frame raises :class:`TruncatedFrame`, a bad
  magic :class:`BadMagic`, a payload that fails its checksum
  :class:`ChecksumMismatch`, an unparsable header :class:`BadHeader` — all
  subclasses of :class:`ProtocolError`, which the server maps to one clean
  error frame (or a connection close for desynchronised streams), never a
  hang;
* protocol-1 frames (magic ``rTFS``, no checksum) are recognised and
  rejected with the typed :class:`UnsupportedVersion` instead of being
  misparsed;
* responses echo the request ``id``, so a pipelined client can have many
  requests in flight and match replies out of order.

Retry semantics: exceptions carry a ``retryable`` class attribute.  A
retryable failure (:class:`ServerBusy`, :class:`ServerDraining`,
:class:`JobAbortedError`, a torn connection) means the request may be safely
resent — with a session token (``ServingClient(session=...)``) the server
deduplicates by request id, so a retry is **exactly-once**.  Non-retryable
failures (bad request, unsupported op, :class:`JobShed`) report a decision,
not an accident; resending the same request would fail the same way.

:class:`ServingClient` is the synchronous reference client used by the
examples, benchmarks and tests; :class:`repro.runtime.resilient.ResilientClient`
wraps it with reconnect/backoff/resubmission.  The server side reads frames
with the ``*_async`` helpers on :mod:`asyncio` streams.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.tfhe.lwe import LweBatch, LweSample
from repro.tfhe.netlist import Circuit
from repro.tfhe.serialize import (
    circuit_to_json,
    from_bytes,
    to_bytes,
)

__all__ = [
    "MAGIC",
    "LEGACY_MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "MAX_HEADER_LEN",
    "ProtocolError",
    "BadMagic",
    "BadHeader",
    "TruncatedFrame",
    "FrameTooLarge",
    "ChecksumMismatch",
    "UnsupportedVersion",
    "ServerError",
    "ServerBusy",
    "ServerDraining",
    "JobShed",
    "JobAbortedError",
    "error_class_for_kind",
    "raise_for_reply",
    "encode_frame",
    "pack_parts",
    "unpack_parts",
    "read_frame",
    "read_frame_async",
    "ServingClient",
]

#: Frame magic of protocol 2 (CRC-protected frames).
MAGIC = b"rTF2"
#: Frame magic of the retired protocol 1 (no frame checksum) — recognised
#: so old peers get a typed :class:`UnsupportedVersion`, not :class:`BadMagic`.
LEGACY_MAGIC = b"rTFS"
#: Bumped on incompatible wire changes; ``hello`` reports it.
PROTOCOL_VERSION = 2
#: Hard ceiling on ``header_len`` (headers are small JSON objects; circuit
#: JSON rides here too, hence megabyte-scale rather than kilobyte-scale).
MAX_HEADER_LEN = 8 * 1024 * 1024
#: Default ceiling on a whole frame (prefixes + header + body).
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

_PREFIX = struct.Struct("<4sIQI")


class ProtocolError(ValueError):
    """Base of every wire-format violation.

    ``retryable`` marks violations where the *request content* is fine and
    only its transport was damaged (checksum mismatch, torn stream): a
    client may reconnect and resend.  Structural violations (bad magic,
    unparsable header) are not retryable — resending the same bytes would
    fail identically.
    """

    retryable = False


class BadMagic(ProtocolError):
    """The stream does not start with :data:`MAGIC` — desynchronised peer."""


class BadHeader(ProtocolError):
    """The header bytes are not a JSON object with the required fields."""


class TruncatedFrame(ProtocolError):
    """The peer closed the connection in the middle of a frame."""

    retryable = True


class FrameTooLarge(ProtocolError):
    """A length prefix exceeds the configured bound (refused pre-allocation)."""


class ChecksumMismatch(ProtocolError):
    """The frame payload fails its CRC32 — corrupted in transit.

    Retryable: the sender's frame was well-formed, the transport damaged
    it; a resend of the same request is safe (and, with a session token,
    exactly-once).
    """

    retryable = True


class UnsupportedVersion(ProtocolError):
    """The peer speaks a retired protocol version (recognised old magic)."""


class ServerError(RuntimeError):
    """An error frame from the server, carrying its ``kind`` and message.

    ``retryable`` mirrors the server's judgement: ``True`` means the request
    itself was acceptable and may be resent once the transient condition
    (full queue, drain, aborted flush) clears.  The server also sends an
    explicit ``retryable`` flag in the error payload, which overrides the
    class default when present (so newer servers can introduce kinds older
    clients still handle correctly).
    """

    retryable = False

    def __init__(self, kind: str, message: str, retryable: Optional[bool] = None) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        if retryable is not None:
            self.retryable = bool(retryable)


class ServerBusy(ServerError):
    """The server rejected work because its queue is full (backpressure)."""

    retryable = True


class ServerDraining(ServerError):
    """The server is draining for shutdown and admits no new work.

    Retryable — against the restarted server (or another replica), after a
    backoff long enough for the drain to finish.
    """

    retryable = True


class JobShed(ServerError):
    """The server shed the job: its deadline budget cannot be met.

    **Not** retryable as-is — the server judged the remaining ``deadline_ms``
    smaller than its estimated time-to-result, and an immediate identical
    retry would be judged the same way.  Callers should retry with a larger
    budget or against a less loaded server.
    """


class JobAbortedError(ServerError):
    """The job was aborted before producing a result (e.g. its client was
    force-deregistered mid-flush).  The job did **not** execute to completion,
    so resubmission is safe."""

    retryable = True


#: Error-frame ``kind`` → the exception class :meth:`ServingClient.result`
#: raises for it.  Unknown kinds fall back to plain :class:`ServerError`
#: (with the frame's ``retryable`` flag, when present).
_ERROR_KINDS: Dict[str, type] = {
    "busy": ServerBusy,
    "draining": ServerDraining,
    "shed": JobShed,
    "aborted": JobAbortedError,
}


def error_class_for_kind(kind: str) -> type:
    """The :class:`ServerError` subclass raised for an error-frame kind."""
    return _ERROR_KINDS.get(kind, ServerError)


def raise_for_reply(header: Dict[str, Any]) -> None:
    """Raise the typed :class:`ServerError` for an error reply header (no-op
    for success replies)."""
    error = header.get("error")
    if error is None:
        return
    kind = str(error.get("kind", "internal"))
    message = str(error.get("message", "unknown server error"))
    retryable = error.get("retryable")
    raise error_class_for_kind(kind)(
        kind, message, retryable if isinstance(retryable, bool) else None
    )


# --------------------------------------------------------------------------- #
# framing                                                                     #
# --------------------------------------------------------------------------- #


def _frame_crc(header_bytes: bytes, body: bytes) -> int:
    """CRC32 over ``header JSON + body`` (chained, no concatenation copy)."""
    return zlib.crc32(body, zlib.crc32(header_bytes)) & 0xFFFFFFFF


def encode_frame(header: Dict[str, Any], body: bytes = b"") -> bytes:
    """Serialize one frame; validates sizes before building the bytes."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_HEADER_LEN:
        raise FrameTooLarge(
            f"header is {len(header_bytes)} bytes (max {MAX_HEADER_LEN})"
        )
    prefix = _PREFIX.pack(
        MAGIC, len(header_bytes), len(body), _frame_crc(header_bytes, body)
    )
    return b"".join((prefix, header_bytes, body))


def _parse_prefix(prefix: bytes, max_frame: int) -> Tuple[int, int, int]:
    magic, header_len, body_len, crc = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        if magic == LEGACY_MAGIC:
            raise UnsupportedVersion(
                f"peer speaks retired wire protocol 1 (magic {magic!r}, no "
                f"frame checksum); this build requires protocol "
                f"{PROTOCOL_VERSION} (magic {MAGIC!r})"
            )
        raise BadMagic(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if header_len > MAX_HEADER_LEN:
        raise FrameTooLarge(
            f"header length {header_len} exceeds {MAX_HEADER_LEN}"
        )
    total = _PREFIX.size + header_len + body_len
    if total > max_frame:
        raise FrameTooLarge(f"frame of {total} bytes exceeds {max_frame}")
    return header_len, body_len, crc


def _check_crc(header_bytes: bytes, body: bytes, expected: int) -> None:
    actual = _frame_crc(header_bytes, body)
    if actual != expected:
        raise ChecksumMismatch(
            f"frame payload fails its checksum (crc32 {actual:#010x}, frame "
            f"claims {expected:#010x}) — corrupted in transit; safe to resend"
        )


def _parse_header(header_bytes: bytes) -> Dict[str, Any]:
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadHeader(f"header is not valid JSON: {exc}") from None
    if not isinstance(header, dict):
        raise BadHeader("header must be a JSON object")
    return header


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TruncatedFrame(
                f"connection closed {remaining} bytes into a {count}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[Dict[str, Any], bytes]:
    """Blocking read of one frame from a socket → ``(header, body)``.

    Raises :class:`EOFError` on a clean close *between* frames and the
    :class:`ProtocolError` taxonomy on malformed ones.
    """
    first = sock.recv(1)
    if not first:
        raise EOFError("connection closed")
    prefix = first + _recv_exactly(sock, _PREFIX.size - 1)
    header_len, body_len, crc = _parse_prefix(prefix, max_frame)
    header_bytes = _recv_exactly(sock, header_len)
    body = _recv_exactly(sock, body_len) if body_len else b""
    _check_crc(header_bytes, body, crc)
    return _parse_header(header_bytes), body


async def read_frame_async(
    reader: asyncio.StreamReader, max_frame: int = DEFAULT_MAX_FRAME
) -> Tuple[Dict[str, Any], bytes]:
    """Async read of one frame from an asyncio stream → ``(header, body)``.

    Same contract as :func:`read_frame`: :class:`EOFError` on clean close
    between frames, :class:`ProtocolError` subclasses on malformed input.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from None
        raise TruncatedFrame(
            f"connection closed {len(exc.partial)} bytes into the frame prefix"
        ) from None
    header_len, body_len, crc = _parse_prefix(prefix, max_frame)
    try:
        header_bytes = await reader.readexactly(header_len)
        body = await reader.readexactly(body_len) if body_len else b""
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrame(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{exc.expected} bytes received)"
        ) from None
    _check_crc(header_bytes, body, crc)
    return _parse_header(header_bytes), body


# --------------------------------------------------------------------------- #
# multi-part bodies                                                           #
# --------------------------------------------------------------------------- #


def pack_parts(parts: Sequence[bytes]) -> bytes:
    """Concatenate binary artifacts into one delimited body."""
    pieces = [struct.pack("<I", len(parts))]
    for part in parts:
        pieces.append(struct.pack("<Q", len(part)))
        pieces.append(part)
    return b"".join(pieces)


def unpack_parts(body: bytes, expected: Optional[int] = None) -> List[bytes]:
    """Split a :func:`pack_parts` body; strict about counts and lengths."""
    if len(body) < 4:
        raise ProtocolError("multi-part body shorter than its count prefix")
    (count,) = struct.unpack_from("<I", body, 0)
    if expected is not None and count != expected:
        raise ProtocolError(f"expected {expected} body parts, frame has {count}")
    offset = 4
    parts: List[bytes] = []
    for index in range(count):
        if offset + 8 > len(body):
            raise ProtocolError(f"body part {index} is missing its length prefix")
        (length,) = struct.unpack_from("<Q", body, offset)
        offset += 8
        if offset + length > len(body):
            raise ProtocolError(
                f"body part {index} claims {length} bytes but only "
                f"{len(body) - offset} remain"
            )
        parts.append(body[offset : offset + length])
        offset += length
    if offset != len(body):
        raise ProtocolError(f"{len(body) - offset} trailing bytes after body parts")
    return parts


# --------------------------------------------------------------------------- #
# synchronous client                                                          #
# --------------------------------------------------------------------------- #


class ServingClient:
    """Synchronous, pipelining client of the serving front.

    Every request gets a fresh ``id``; :meth:`submit` sends without waiting
    and :meth:`result` reads frames (buffering out-of-order replies) until
    that id's response arrives — so a client can keep many gates in flight
    and let the server coalesce them into one flush.  The convenience
    methods (:meth:`gate`, :meth:`lut`, :meth:`run_circuit`, ...) are
    submit-then-result round trips.

    Error frames raise the typed :class:`ServerError` taxonomy
    (:class:`ServerBusy`, :class:`ServerDraining`, :class:`JobShed`,
    :class:`JobAbortedError`, ... — see :func:`error_class_for_kind`), so
    callers can branch on ``retryable``.

    ``session`` opts this client into the server's **session recovery**: the
    token is attached to every request, the server namespaces key state and
    keeps a bounded result cache under it, and a request id resent on a later
    connection with the same token returns the cached result instead of
    re-executing (exactly-once retries).  The
    :class:`repro.runtime.resilient.ResilientClient` drives this; plain
    clients may also pass their own token.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8470,
        timeout: Optional[float] = 60.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        session: Optional[str] = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.max_frame = max_frame
        self.session = session
        self._next_id = 0
        self._replies: Dict[int, Tuple[Dict[str, Any], bytes]] = {}
        #: Unsolicited server event headers (e.g. ``{"event": "draining"}``),
        #: collected by :meth:`result` as they arrive.
        self.events: List[Dict[str, Any]] = []

    # -- plumbing ----------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def submit(
        self,
        op: str,
        body: bytes = b"",
        request_id: Optional[int] = None,
        **fields: Any,
    ) -> int:
        """Send one request frame; returns its id (see :meth:`result`).

        ``request_id`` defaults to the next value of this client's monotonic
        counter; a resubmitting caller (the resilient client, after a
        reconnect) passes the *original* id explicitly so the server's
        session cache can deduplicate the retry.
        """
        if request_id is None:
            request_id = self._next_id
        self._next_id = max(self._next_id, request_id) + 1
        header = {"op": op, "id": request_id, **fields}
        if self.session is not None:
            header.setdefault("session", self.session)
        self._sock.sendall(encode_frame(header, body))
        return request_id

    def result(self, request_id: int) -> Tuple[Dict[str, Any], bytes]:
        """Wait for the response to ``request_id``; raises server errors."""
        while request_id not in self._replies:
            header, body = read_frame(self._sock, self.max_frame)
            reply_id = header.get("id")
            if not isinstance(reply_id, int):
                if "event" in header:
                    self.events.append(header)  # unsolicited notice, not a reply
                    continue
                raise BadHeader(f"response frame without an integer id: {header}")
            self._replies[reply_id] = (header, body)
        header, body = self._replies.pop(request_id)
        raise_for_reply(header)
        return header, body

    def call(
        self, op: str, body: bytes = b"", **fields: Any
    ) -> Tuple[Dict[str, Any], bytes]:
        """One submit + result round trip."""
        return self.result(self.submit(op, body, **fields))

    # -- protocol ops ------------------------------------------------------
    def hello(self) -> Dict[str, Any]:
        """Handshake: returns server identity and protocol version."""
        header, _ = self.call("hello")
        return header

    def register_key(self, cloud_key, engine: Optional[str] = None) -> Dict[str, Any]:
        """Upload this connection's cloud key (npz bytes over the wire).

        ``engine`` optionally requests the server-side evaluation backend: a
        registry kind (``"double"``, ``"compiled"``, ``"cupy"``, ...) or
        ``"auto"``.  If the server cannot honour it, the call raises a
        :class:`ServerError` of kind ``unsupported_engine`` whose message
        lists every backend's availability (e.g. ``cupy: not installed``).
        The reply header reports the engine actually used
        (``engine_kind``).
        """
        fields: Dict[str, Any] = {}
        if engine is not None:
            fields["engine"] = engine
        header, _ = self.call(
            "register_key", pack_parts([to_bytes(cloud_key)]), **fields
        )
        return header

    def submit_gate(self, name: str, ca: LweSample, cb: LweSample) -> int:
        return self.submit(
            "gate", pack_parts([to_bytes(ca), to_bytes(cb)]), gate=name
        )

    def gate_result(self, request_id: int) -> LweSample:
        _, body = self.result(request_id)
        return from_bytes(unpack_parts(body, expected=1)[0])

    def gate(self, name: str, ca: LweSample, cb: LweSample) -> LweSample:
        """One homomorphic gate round trip."""
        return self.gate_result(self.submit_gate(name, ca, cb))

    def submit_lut(self, table: int, operands: Sequence[LweSample]) -> int:
        return self.submit(
            "lut",
            pack_parts([to_bytes(op) for op in operands]),
            table=int(table),
        )

    def lut(self, table: int, operands: Sequence[LweSample]) -> LweSample:
        """One programmable-bootstrap LUT round trip."""
        _, body = self.result(self.submit_lut(table, operands))
        return from_bytes(unpack_parts(body, expected=1)[0])

    def submit_circuit(self, circuit: Circuit, inputs: LweBatch) -> int:
        """Run a compiled netlist over one batch of input bits.

        ``inputs`` carries the circuit's input bits in declaration order;
        the reply batch carries the output bits in declaration order.
        """
        return self.submit(
            "circuit",
            pack_parts([to_bytes(inputs)]),
            circuit=json.loads(circuit_to_json(circuit)),
        )

    def run_circuit(self, circuit: Circuit, inputs: LweBatch) -> LweBatch:
        _, body = self.result(self.submit_circuit(circuit, inputs))
        return from_bytes(unpack_parts(body, expected=1)[0])

    def radix_add(self, x, y):
        """Homomorphic addition of two wire-borne radix integers."""
        _, body = self.call("radix_add", pack_parts([to_bytes(x), to_bytes(y)]))
        return from_bytes(unpack_parts(body, expected=1)[0])

    def metrics(self) -> Dict[str, Any]:
        """The server's live metrics snapshot (see ``FheServer.metrics``)."""
        header, _ = self.call("metrics")
        return header["metrics"]

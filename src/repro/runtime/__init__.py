"""The serving runtime: evaluation contexts and cross-session batch scheduling.

This layer turns the TFHE substrate into something a server can run:

* :class:`repro.runtime.context.FheContext` — owns the parameter set, the
  transform engine (resolved from the engine registry), the key-switching key
  and the **cloud-key spectrum cache**: every bootstrapping-key row is
  forward-transformed into the Lagrange domain exactly once per context, then
  kept resident — the software analogue of the paper's accelerator keeping
  the bootstrapping key next to the datapath.
* :class:`repro.runtime.scheduler.BatchScheduler` /
  :class:`repro.runtime.scheduler.EvaluationSession` — aggregate gate and
  circuit jobs from many independent sessions and coalesce same-key work
  into single mixed-gate batched bootstrappings, turning the batch axis into
  a multi-tenant throughput mechanism.

* :class:`repro.runtime.workers.WorkerPool` — a fault-tolerant
  ``multiprocessing`` row dispatcher: flush rows shard across worker
  processes that map the cloud-key spectrum cache from shared memory;
  crashes, hangs and poisoned results requeue instead of corrupting.
* :class:`repro.runtime.server.FheServer` /
  :class:`repro.runtime.protocol.ServingClient` — the network front: an
  asyncio socket server speaking CRC-protected length-prefixed frames that
  carry the npz and JSON artifacts of :mod:`repro.tfhe.serialize`, with
  per-connection key namespaces, durable client sessions (idempotent
  retries answered from a bounded reply cache), bounded-queue backpressure,
  deadline-aware load shedding, graceful drain, and a live metrics
  endpoint.
* :class:`repro.runtime.resilient.ResilientClient` — the retrying client:
  reconnect with capped exponential backoff, key re-registration and
  resubmission of unacknowledged requests under the session token, typed
  retryable-error policy, per-request deadlines.
* :mod:`repro.runtime.chaos` — deterministic fault injection
  (:class:`ChaosProxy`, :class:`FlakyEngine`, :class:`SlowDispatcher`) for
  the resilience integration suite and operational drills (see
  ``docs/operations.md``).

Keys and ciphertexts move between clients and a scheduler-running server via
:mod:`repro.tfhe.serialize`.
"""

from repro.runtime.chaos import ChaosProxy, FlakyEngine, SlowDispatcher
from repro.runtime.context import FheContext
from repro.runtime.protocol import (
    ChecksumMismatch,
    JobAbortedError,
    JobShed,
    ProtocolError,
    ServerBusy,
    ServerDraining,
    ServerError,
    ServingClient,
    UnsupportedVersion,
    error_class_for_kind,
)
from repro.runtime.resilient import DeadlineExceeded, ResilientClient, RetryStats
from repro.runtime.scheduler import (
    BatchScheduler,
    EvaluationSession,
    InlineDispatcher,
    JobAborted,
    JobHandle,
    RowDispatcher,
    SchedulerBusy,
    SchedulerStats,
    execute_rows,
)
from repro.runtime.server import FheServer
from repro.runtime.workers import PoolStats, WorkerHealth, WorkerPool, WorkerPoolError

__all__ = [
    "BatchScheduler",
    "ChaosProxy",
    "ChecksumMismatch",
    "DeadlineExceeded",
    "EvaluationSession",
    "FheContext",
    "FheServer",
    "FlakyEngine",
    "InlineDispatcher",
    "JobAborted",
    "JobAbortedError",
    "JobHandle",
    "JobShed",
    "PoolStats",
    "ProtocolError",
    "ResilientClient",
    "RetryStats",
    "RowDispatcher",
    "SchedulerBusy",
    "SchedulerStats",
    "ServerBusy",
    "ServerDraining",
    "ServerError",
    "ServingClient",
    "SlowDispatcher",
    "UnsupportedVersion",
    "WorkerHealth",
    "WorkerPool",
    "WorkerPoolError",
    "error_class_for_kind",
    "execute_rows",
]

"""The serving runtime: evaluation contexts and cross-session batch scheduling.

This layer turns the TFHE substrate into something a server can run:

* :class:`repro.runtime.context.FheContext` — owns the parameter set, the
  transform engine (resolved from the engine registry), the key-switching key
  and the **cloud-key spectrum cache**: every bootstrapping-key row is
  forward-transformed into the Lagrange domain exactly once per context, then
  kept resident — the software analogue of the paper's accelerator keeping
  the bootstrapping key next to the datapath.
* :class:`repro.runtime.scheduler.BatchScheduler` /
  :class:`repro.runtime.scheduler.EvaluationSession` — aggregate gate and
  circuit jobs from many independent sessions and coalesce same-key work
  into single mixed-gate batched bootstrappings, turning the batch axis into
  a multi-tenant throughput mechanism.

Keys and ciphertexts move between clients and a scheduler-running server via
:mod:`repro.tfhe.serialize`.
"""

from repro.runtime.context import FheContext
from repro.runtime.scheduler import (
    BatchScheduler,
    EvaluationSession,
    JobHandle,
    SchedulerStats,
)

__all__ = [
    "BatchScheduler",
    "EvaluationSession",
    "FheContext",
    "JobHandle",
    "SchedulerStats",
]

"""A retrying serving client: at-least-once delivery, exactly-once results.

:class:`ResilientClient` wraps the synchronous
:class:`repro.runtime.protocol.ServingClient` with the failure handling a
real deployment needs and the chaos suite exercises:

* **Sessions.**  Every request carries a session token, so the server keeps
  the client's key registration and a bounded cache of success replies
  across reconnects (see ``FheServer`` session recovery).  Retries resend
  the *original* request id — a job that already ran is answered from the
  server's cache, never executed twice.
* **Reconnect + recovery.**  A dropped/broken/corrupted connection is torn
  down and re-dialled with capped exponential backoff and deterministic
  jitter; after the socket is back, the stored cloud key is re-registered
  (idempotent server-side) and every unacknowledged request is resubmitted
  in id order.
* **Typed retry policy.**  Errors with ``retryable = True``
  (:class:`ServerBusy`, :class:`ServerDraining`,
  :class:`ChecksumMismatch`, :class:`JobAbortedError`, transport faults)
  are retried up to ``max_attempts``; non-retryable errors
  (:class:`JobShed`, bad requests) raise immediately.
* **Deadlines.**  A per-request deadline budget bounds the total time spent
  retrying (:class:`DeadlineExceeded` once it runs out) and is forwarded to
  the server as ``deadline_ms`` so hopeless jobs are shed up front instead
  of computed into the void.

Determinism: backoff jitter comes from a seeded :class:`random.Random` and
the sleep function is injectable, so the retry schedule is reproducible in
tests (no wall-clock in the decision path).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple
import json
import uuid

from repro.runtime.protocol import (
    DEFAULT_MAX_FRAME,
    ProtocolError,
    ServerError,
    ServingClient,
    pack_parts,
    unpack_parts,
)
from repro.tfhe.lwe import LweBatch, LweSample
from repro.tfhe.serialize import Circuit, circuit_to_json, from_bytes, to_bytes

__all__ = ["DeadlineExceeded", "ResilientClient", "RetryStats"]

#: Ops whose frames carry a client-minted ``trace`` id.  The id lives in the
#: pending-request record, so a resubmit after a reconnect resends the *same*
#: id — server-side, the original attempt and the retry land in one trace.
_TRACED_OPS = frozenset({"gate", "lut", "circuit", "radix_add"})


class DeadlineExceeded(RuntimeError):
    """The per-request deadline budget ran out before a result arrived."""

    retryable = False


@dataclass
class RetryStats:
    """Counters of everything the resilient client did to stay correct."""

    connects: int = 0
    reconnects: int = 0
    resubmitted: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0


@dataclass
class _Pending:
    """One unacknowledged request: everything needed to resend it."""

    op: str
    body: bytes
    fields: Dict[str, Any] = field(default_factory=dict)
    deadline_at: Optional[float] = None


class ResilientClient:
    """Retrying, reconnecting front over :class:`ServingClient`.

    Parameters
    ----------
    host, port:
        The serving endpoint.
    session:
        Session token; defaults to a fresh random one.  Two clients sharing
        a token share server-side key state and reply cache — don't.
    max_attempts:
        Bound on retryable failures for one :meth:`result` wait before the
        last error is re-raised.
    base_delay, max_delay:
        Capped exponential backoff: attempt ``k`` sleeps
        ``min(max_delay, base_delay * 2**(k-1))`` scaled by jitter in
        ``[0.5, 1.5)`` from the seeded ``rng``.
    default_deadline:
        Per-request deadline budget in seconds (``None`` = unbounded);
        individual submits may override it.
    timeout:
        Socket timeout for each underlying connection.
    rng, sleep:
        Injectable jitter source and sleep function (determinism in tests).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8470,
        session: Optional[str] = None,
        max_attempts: int = 8,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        default_deadline: Optional[float] = None,
        timeout: Optional[float] = 60.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        telemetry: Optional[Any] = None,
    ) -> None:
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.host = host
        self.port = port
        self.session = session if session is not None else uuid.uuid4().hex
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.default_deadline = default_deadline
        self.timeout = timeout
        self.max_frame = max_frame
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._client: Optional[ServingClient] = None
        self._next_id = 0
        self._pending: Dict[int, _Pending] = {}
        #: Replies read off a connection before it died, keyed by request
        #: id — re-injected into the next connection's reply buffer.
        self._salvage: Dict[int, Tuple[Dict[str, Any], bytes]] = {}
        self._key: Optional[Tuple[Any, Optional[str]]] = None
        self._register_header: Optional[Dict[str, Any]] = None
        self.stats = RetryStats()
        #: Optional :class:`repro.telemetry.Telemetry` bundle; when set, the
        #: RetryStats counters are mirrored into its registry under
        #: ``fhe_client_*`` names (stats stay authoritative either way).
        self.telemetry = telemetry

    def _count(self, name: str, help_text: str, amount: float = 1, **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.count(name, help_text, amount=amount, **labels)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- connection management --------------------------------------------
    def _drop_connection(self) -> None:
        """Tear down the socket; salvage replies already buffered on it."""
        if self._client is not None:
            self._salvage.update(self._client._replies)
            self._client.close()
            self._client = None

    def _ensure_connected(self) -> ServingClient:
        """Dial (or re-dial) and replay session state onto the connection."""
        if self._client is not None:
            return self._client
        client = ServingClient(
            self.host,
            self.port,
            timeout=self.timeout,
            max_frame=self.max_frame,
            session=self.session,
        )
        if self.stats.connects:
            self.stats.reconnects += 1
            self._count(
                "fhe_client_reconnects_total", "Re-dials after a dropped connection."
            )
        self.stats.connects += 1
        self._count("fhe_client_connects_total", "Connections dialled (incl. first).")
        self._client = client
        try:
            self._recover(client)
        except BaseException:
            self._drop_connection()
            raise
        return client

    def _recover(self, client: ServingClient) -> None:
        """Re-register the key and resubmit every unacknowledged request."""
        client._next_id = self._next_id
        if self._key is not None and self._register_header is not None:
            cloud_key, engine = self._key
            fields: Dict[str, Any] = {}
            if engine is not None:
                fields["engine"] = engine
            # Idempotent on the server: same session + same key fingerprint
            # returns the cached registration reply.
            client.call("register_key", pack_parts([to_bytes(cloud_key)]), **fields)
            self._next_id = client._next_id
        # Replies salvaged off the dead connection answer their requests
        # without a round trip.
        client._replies.update(self._salvage)
        self._salvage = {}
        for request_id in sorted(self._pending):
            if request_id in client._replies:
                continue
            self._send(client, request_id)
            if self.stats.reconnects:
                self.stats.resubmitted += 1
                self._count(
                    "fhe_client_resubmits_total",
                    "Unacknowledged requests replayed after a reconnect.",
                )

    def _send(self, client: ServingClient, request_id: int) -> None:
        pending = self._pending[request_id]
        fields = dict(pending.fields)
        # Ack: every id below the oldest unacknowledged one is consumed, so
        # the server may prune those cache entries.
        fields["ack"] = min(self._pending)
        if pending.deadline_at is not None:
            remaining_ms = max(0.0, (pending.deadline_at - time.monotonic()) * 1000.0)
            fields["deadline_ms"] = remaining_ms
        client.submit(pending.op, pending.body, request_id=request_id, **fields)

    def _backoff(self, attempt: int) -> None:
        delay = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        delay *= 0.5 + self._rng.random()  # jitter in [0.5, 1.5)
        self.stats.backoff_seconds += delay
        self._count(
            "fhe_client_backoff_seconds_total",
            "Total seconds slept in retry backoff.",
            amount=delay,
        )
        self._sleep(delay)

    # -- core request machinery -------------------------------------------
    def submit(
        self,
        op: str,
        body: bytes = b"",
        deadline: Optional[float] = None,
        **fields: Any,
    ) -> int:
        """Record one request as pending and (best-effort) send it.

        A send failure here is absorbed: the request stays pending and
        :meth:`result` drives reconnection and resubmission.
        """
        request_id = self._next_id
        self._next_id += 1
        budget = self.default_deadline if deadline is None else deadline
        already_connected = self._client is not None
        fields = dict(fields)
        if op in _TRACED_OPS:
            # Minted once and stored with the pending record: every resend of
            # this request carries the same trace id, so the server stitches
            # all delivery attempts into a single trace.
            fields.setdefault("trace", uuid.uuid4().hex)
        self._pending[request_id] = _Pending(
            op=op,
            body=body,
            fields=fields,
            deadline_at=None if budget is None else time.monotonic() + budget,
        )
        try:
            client = self._ensure_connected()
            # A freshly-dialled connection already sent this request: it was
            # pending when _recover() replayed the backlog.
            if already_connected:
                self._send(client, request_id)
        except (ConnectionError, OSError, ProtocolError, EOFError):
            self._drop_connection()  # result() will retry it
        return request_id

    def result(self, request_id: int) -> Tuple[Dict[str, Any], bytes]:
        """Wait for ``request_id``; retries, reconnects, never duplicates."""
        pending = self._pending.get(request_id)
        if pending is None:
            raise KeyError(f"request {request_id} is not pending on this client")
        attempts = 0
        last_error: Optional[BaseException] = None
        while True:
            if (
                pending.deadline_at is not None
                and time.monotonic() > pending.deadline_at
            ):
                self._pending.pop(request_id, None)
                self._count(
                    "fhe_client_deadline_exceeded_total",
                    "Requests abandoned because their deadline budget ran out.",
                )
                raise DeadlineExceeded(
                    f"request {request_id} ({pending.op}) exceeded its deadline "
                    f"after {attempts} retryable failure(s)"
                ) from last_error
            if attempts >= self.max_attempts:
                self._pending.pop(request_id, None)
                assert last_error is not None
                raise last_error
            if attempts:
                self.stats.retries += 1
                kind = type(last_error).__name__ if last_error is not None else "unknown"
                self._count(
                    "fhe_client_retries_total",
                    "Retry attempts, labeled by the error that forced them.",
                    kind=kind,
                )
                self._backoff(attempts)
            try:
                client = self._ensure_connected()
                header, body = client.result(request_id)
            except ServerError as exc:
                if not getattr(exc, "retryable", False):
                    self._pending.pop(request_id, None)
                    raise
                # The server rejected this request (busy/draining/aborted):
                # it was NOT executed, so resend it after the backoff.  A
                # draining server is also about to close the listener —
                # drop the connection so the retry re-dials.
                attempts += 1
                last_error = exc
                self._drop_connection()
                self._salvage.pop(request_id, None)  # the error frame answered it
            except (ConnectionError, OSError, EOFError, ProtocolError) as exc:
                # Transport fault: reconnect and resubmit everything that
                # has no buffered reply yet.
                attempts += 1
                last_error = exc
                self._drop_connection()
            else:
                self._pending.pop(request_id, None)
                return header, body

    def call(
        self,
        op: str,
        body: bytes = b"",
        deadline: Optional[float] = None,
        **fields: Any,
    ) -> Tuple[Dict[str, Any], bytes]:
        """One resilient submit + result round trip."""
        return self.result(self.submit(op, body, deadline=deadline, **fields))

    # -- protocol ops (mirror ServingClient) -------------------------------
    def hello(self) -> Dict[str, Any]:
        header, _ = self.call("hello")
        return header

    def register_key(self, cloud_key, engine: Optional[str] = None) -> Dict[str, Any]:
        """Upload the cloud key; re-registered automatically after reconnects."""
        self._key = (cloud_key, engine)
        fields: Dict[str, Any] = {}
        if engine is not None:
            fields["engine"] = engine
        header, _ = self.call(
            "register_key", pack_parts([to_bytes(cloud_key)]), **fields
        )
        self._register_header = dict(header)
        return header

    def gate(
        self,
        name: str,
        ca: LweSample,
        cb: LweSample,
        deadline: Optional[float] = None,
    ) -> LweSample:
        _, body = self.call(
            "gate",
            pack_parts([to_bytes(ca), to_bytes(cb)]),
            deadline=deadline,
            gate=name,
        )
        return from_bytes(unpack_parts(body, expected=1)[0])

    def lut(
        self,
        table: int,
        operands: Sequence[LweSample],
        deadline: Optional[float] = None,
    ) -> LweSample:
        _, body = self.call(
            "lut",
            pack_parts([to_bytes(op) for op in operands]),
            deadline=deadline,
            table=int(table),
        )
        return from_bytes(unpack_parts(body, expected=1)[0])

    def run_circuit(
        self, circuit: Circuit, inputs: LweBatch, deadline: Optional[float] = None
    ) -> LweBatch:
        _, body = self.call(
            "circuit",
            pack_parts([to_bytes(inputs)]),
            deadline=deadline,
            circuit=json.loads(circuit_to_json(circuit)),
        )
        return from_bytes(unpack_parts(body, expected=1)[0])

    def radix_add(self, x, y, deadline: Optional[float] = None):
        _, body = self.call(
            "radix_add", pack_parts([to_bytes(x), to_bytes(y)]), deadline=deadline
        )
        return from_bytes(unpack_parts(body, expected=1)[0])

    def metrics(self) -> Dict[str, Any]:
        header, _ = self.call("metrics")
        return header["metrics"]

"""Cross-session batch scheduling of gate and circuit jobs.

PR 1 made one *caller's* batch cheap and PR 2 packed one *circuit's*
dependency levels; this module turns the batch axis into a **multi-tenant
throughput mechanism**, the way the paper's accelerator keeps the
bootstrapping key resident and streams independent ciphertexts past it.  A
:class:`BatchScheduler` accepts jobs from many independent
:class:`EvaluationSession` objects and coalesces every job that shares a
cloud key into single mixed-gate batched bootstrappings
(:meth:`repro.tfhe.gates.BatchGateEvaluator.gate_rows` — the PR 2 path), so
sixteen clients submitting one NAND each cost one blind rotation sweep
instead of sixteen.

Model
-----

* ``register_client(client_id, cloud_key)`` installs a client's key and
  builds (lazily, once) its :class:`repro.runtime.context.FheContext` —
  one resident spectrum cache per client key.
* ``session(client_id)`` opens an :class:`EvaluationSession`; any number of
  sessions may share a client id (e.g. concurrent connections of one
  tenant).  Only jobs under the **same** client key can share a bootstrap —
  ciphertexts of different keys are algebraically incompatible — so the
  scheduler groups work per client.
* ``submit_gate``/``submit_lut``/``submit_circuit`` enqueue work and return
  handles (futures); linear operations (NOT/constant) resolve immediately,
  they never cost a bootstrap.  Operands may be *handles* of earlier jobs of
  the same session, so chains of gates schedule like circuit levels.
* ``flush()`` drains the queue in rounds: each round gathers, per client,
  every row every ready job wants bootstrapped next — single gates are one
  row, a circuit job contributes its current dependency level — and issues
  them as one batched call (optionally chunked by ``max_rows_per_call``).
  Gate-only chunks take the exact ``gate_rows`` path; chunks containing lut
  rows fuse per-row test vectors through ``bootstrap_rows`` instead, so
  lookup jobs and boolean gates still share one blind rotation sweep.
  Jobs whose operands resolved in an earlier round
  become ready in the next, so chained work schedules level-by-level across
  all sessions in lockstep.

PR 7 split this module into a **front-end** and a pluggable execution
back-end.  The front-end owns the job graph (handles, readiness, rounds),
the per-client coalescing and the admission control; the rows each round
produces are handed to a :class:`RowDispatcher`:

* :class:`InlineDispatcher` (the default) executes rows in-process through
  :func:`execute_rows` — exactly the historical single-process path;
* :class:`repro.runtime.workers.WorkerPool` shards the rows of one round
  across a pool of worker processes (rows of one batched bootstrapping are
  embarrassingly parallel), requeueing rows lost to worker crashes.

Admission control: a scheduler built with ``max_pending_jobs`` bounds its
queue — submissions beyond the bound raise :class:`SchedulerBusy` instead of
growing the queue without limit.  The asyncio serving front
(:mod:`repro.runtime.server`) maps this onto await-or-reject semantics per
connection.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.runtime.context import FheContext
from repro.telemetry.metrics import ROWS_PER_CALL_BUCKETS
from repro.tfhe.transform import EngineFault
from repro.tfhe.executor import LevelSchedule, _gather_inputs, schedule_circuit
from repro.tfhe.gates import (
    MIXED_GATE_SPECS,
    gate_affine_batch,
    lut_affine_batch,
    require_lut_spec,
)
from repro.tfhe.keys import TFHECloudKey
from repro.tfhe.lut import lut_test_vector
from repro.tfhe.lwe import (
    LweBatch,
    LweSample,
    gate_message,
    lwe_batch_concat,
    lwe_encrypt_trivial,
    lwe_negate,
)
from repro.tfhe.netlist import Circuit


class JobAborted(RuntimeError):
    """A queued job was aborted before producing a result.

    Raised by :meth:`JobHandle.result` when the job's client was
    force-deregistered (connection torn down, drain timeout) while the job
    was still pending.  The job did **not** run to completion — no partial
    result exists — so resubmitting it is safe; ``retryable`` marks that.
    """

    retryable = True


class JobHandle:
    """Future for one scheduled job; resolved by :meth:`BatchScheduler.flush`.

    A handle remembers which client key its job runs under, so a handle of
    one client can never be fed as an operand to another client's job —
    ciphertexts of different keys are algebraically incompatible and would
    silently decrypt to garbage.

    A handle settles exactly once: either with a result (:meth:`_resolve`)
    or with a typed exception (:meth:`_fail`, e.g. :class:`JobAborted`);
    later settle attempts are ignored, so a flush delivering into a handle
    that a concurrent deregistration already failed cannot resurrect it.
    """

    __slots__ = ("_result", "_done", "_exception", "client_id", "trace_id")

    def __init__(self, client_id: Optional[str] = None) -> None:
        self._result = None
        self._done = False
        self._exception: Optional[BaseException] = None
        self.client_id = client_id
        #: Trace id of the job behind this handle (``None`` without tracing).
        self.trace_id: Optional[str] = None

    @property
    def done(self) -> bool:
        return self._done

    @property
    def failed(self) -> bool:
        """Whether the handle settled with an exception instead of a result."""
        return self._done and self._exception is not None

    def result(self):
        """The job's output; raises if the scheduler has not flushed it yet,
        or the typed failure if the job was aborted."""
        if not self._done:
            raise RuntimeError(
                "job has not been executed yet; call BatchScheduler.flush()"
            )
        if self._exception is not None:
            raise self._exception
        return self._result

    def _resolve(self, value) -> None:
        if self._done:
            return
        self._result = value
        self._done = True

    def _fail(self, exc: BaseException) -> None:
        if self._done:
            return
        self._exception = exc
        self._done = True


Operand = Union[LweSample, JobHandle]

#: One bootstrap row of a flush round: ``("gate", name, ca, cb)`` for a
#: two-input boolean gate, ``("lut", table, operands)`` for a k-input lookup.
Row = Union[
    Tuple[str, str, LweSample, LweSample],
    Tuple[str, int, Tuple[LweSample, ...]],
]


def _resolve_operand(operand: Operand) -> Optional[LweSample]:
    """The ciphertext behind an operand, or ``None`` if still pending."""
    if isinstance(operand, JobHandle):
        return operand.result() if operand.done else None
    return operand


class SchedulerBusy(RuntimeError):
    """Raised when a bounded scheduler queue rejects a new submission.

    The job was **not** enqueued; the caller may retry after a flush drains
    the queue (the serving front turns this into await-or-reject semantics).
    """


def _mixed_rows(evaluator, part: List[Row]) -> LweBatch:
    """One fused bootstrapping over gate rows *and* lut rows.

    Each row assembles its own affine combination and test vector; the
    whole chunk then shares a single
    :meth:`repro.tfhe.gates.BatchGateEvaluator.bootstrap_rows` sweep —
    the same mechanism the level-parallel executor uses for mixed waves,
    applied across sessions.
    """
    params = evaluator.context.params
    combined: List[LweBatch] = []
    vectors: List[np.ndarray] = []
    for row in part:
        if row[0] == "lut":
            _, table, operands = row
            spec = require_lut_spec(table, len(operands))
            combined.append(
                lut_affine_batch(
                    spec,
                    [LweBatch.from_samples([op]) for op in operands],
                )
            )
            vectors.append(lut_test_vector(params, spec))
        else:
            _, name, ca, cb = row
            combined.append(
                gate_affine_batch(
                    name,
                    LweBatch.from_samples([ca]),
                    LweBatch.from_samples([cb]),
                )
            )
            vectors.append(evaluator.gate_test_vector())
    evaluator.counters.gates += len(part)
    return evaluator.bootstrap_rows(lwe_batch_concat(combined), np.stack(vectors))


def execute_rows(
    context: FheContext,
    rows: Sequence[Row],
    stats: Optional["SchedulerStats"] = None,
    max_rows_per_call: Optional[int] = None,
) -> List[LweSample]:
    """Bootstrap one round's rows against ``context`` and return the outputs.

    This is the single-process execution kernel shared by the inline
    dispatcher and by every pool worker: gate-only chunks take the exact
    :meth:`repro.tfhe.gates.BatchGateEvaluator.gate_rows` path, chunks with
    lut rows fuse per-row test vectors through ``bootstrap_rows``.  Output
    row ``i`` corresponds to input row ``i`` regardless of chunking, and the
    results are bit-identical however the row list is split (the batch path
    is row-wise bit-identical to the sequential path — the PR 1 property).
    """
    evaluator = context.batch_evaluator(1)  # row entry points take any count
    outputs: List[LweSample] = []
    rows = list(rows)
    chunk = max_rows_per_call or len(rows)
    tel = getattr(context, "telemetry", None)
    metered = tel is not None and tel.metrics_enabled
    if metered:
        engine_before = context.engine.stats.snapshot()
    for start in range(0, len(rows), chunk):
        part = rows[start : start + chunk]
        if any(row[0] == "lut" for row in part):
            result = _mixed_rows(evaluator, part)
        else:
            names = [name for _, name, _, _ in part]
            ca = LweBatch.from_samples([a for _, _, a, _ in part])
            cb = LweBatch.from_samples([b for _, _, _, b in part])
            result = evaluator.gate_rows(names, ca, cb)
        if stats is not None:
            stats.batched_calls += 1
            stats.max_rows_per_call = max(stats.max_rows_per_call, len(part))
        if metered:
            tel.count(
                "fhe_batched_calls_total",
                "Mixed-gate batched bootstrapping calls issued.",
            )
            tel.observe(
                "fhe_rows_per_call",
                len(part),
                "Coalesced batch width per bootstrapping call.",
                buckets=ROWS_PER_CALL_BUCKETS,
            )
        outputs.extend(result.to_samples())
    if metered:
        record_engine_deltas(tel, context.engine, engine_before)
    return outputs


def record_engine_deltas(tel, engine, before) -> None:
    """Mirror an engine's transform-call deltas into the registry.

    ``before`` is an earlier :meth:`TransformStats.snapshot`; the counter
    carries the engine kind as a label so a failover's engine swap shows up
    as a second labeled series rather than a reset.
    """
    after = engine.stats.snapshot()
    kind = getattr(engine, "engine_kind", None) or "unknown"
    help_text = "Negacyclic transform invocations by direction."
    forward = after.forward_calls - before.forward_calls
    backward = after.backward_calls - before.backward_calls
    if forward > 0:
        tel.count(
            "fhe_engine_transform_calls_total",
            help_text,
            amount=forward,
            engine=kind,
            direction="forward",
        )
    if backward > 0:
        tel.count(
            "fhe_engine_transform_calls_total",
            help_text,
            amount=backward,
            engine=kind,
            direction="backward",
        )


class RowDispatcher:
    """Strategy interface executing one round's rows for one client.

    ``run_rows`` must return one output per input row, in input order, and
    must be bit-identical to :func:`execute_rows` — the dispatcher decides
    *where* rows run (inline, worker processes), never *what* they compute.
    Implementations update ``stats`` (``batched_calls`` /
    ``max_rows_per_call``) to reflect the batched bootstrapping calls they
    actually issued.

    ``round_ctx`` is the scheduler's tracing context for the round —
    ``(trace ids, flush span id)`` or ``None`` — so the execution side can
    attribute its ``engine_contract``/``keyswitch`` spans to the jobs the
    round serves (the worker pool ships it across the process boundary).
    """

    #: Optional :class:`repro.telemetry.Telemetry` sink; mirrored here by
    #: the owning scheduler so pool-side accounting lands in the same
    #: registry and trace ring.
    telemetry = None

    def run_rows(
        self,
        client_id: str,
        context: FheContext,
        rows: Sequence[Row],
        stats: "SchedulerStats",
        max_rows_per_call: Optional[int] = None,
        round_ctx: Optional[Tuple[Tuple[str, ...], Optional[str]]] = None,
    ) -> List[LweSample]:
        raise NotImplementedError

    def register_client(self, client_id: str, context: FheContext) -> None:
        """Hook invoked when the scheduler registers a client (optional)."""

    def deregister_client(self, client_id: str) -> None:
        """Hook invoked when the scheduler drops a client (optional)."""


def _round_scope(context: FheContext, round_ctx):
    """A ``stage_round`` scope for in-process execution (no-op untraced)."""
    tel = getattr(context, "telemetry", None)
    if tel is None or round_ctx is None:
        return nullcontext()
    trace_ids, parent_span_id = round_ctx
    return tel.stage_round(trace_ids, parent_span_id)


class InlineDispatcher(RowDispatcher):
    """The default dispatcher: execute every row in the calling process."""

    def run_rows(
        self,
        client_id: str,
        context: FheContext,
        rows: Sequence[Row],
        stats: "SchedulerStats",
        max_rows_per_call: Optional[int] = None,
        round_ctx: Optional[Tuple[Tuple[str, ...], Optional[str]]] = None,
    ) -> List[LweSample]:
        with _round_scope(context, round_ctx):
            return execute_rows(context, rows, stats, max_rows_per_call)


class _GateJob:
    """One two-input bootstrapped gate; contributes a single row when ready."""

    def __init__(self, name: str, ca: Operand, cb: Operand, handle: JobHandle) -> None:
        self.name = name
        self.ca = ca
        self.cb = cb
        self.handle = handle

    @property
    def done(self) -> bool:
        return self.handle.done

    def pending_rows(self) -> List[Row]:
        ca = _resolve_operand(self.ca)
        cb = _resolve_operand(self.cb)
        if ca is None or cb is None:
            return []  # blocked on an earlier job; retry next round
        return [("gate", self.name, ca, cb)]

    def deliver(self, outputs: Sequence[LweSample]) -> None:
        self.handle._resolve(outputs[0])


class _LutJob:
    """One k-input boolean lookup; contributes a single row when ready."""

    def __init__(
        self, table: int, operands: Sequence[Operand], handle: JobHandle
    ) -> None:
        self.table = table
        self.operands = list(operands)
        self.handle = handle

    @property
    def done(self) -> bool:
        return self.handle.done

    def pending_rows(self) -> List[Row]:
        resolved = [_resolve_operand(op) for op in self.operands]
        if any(value is None for value in resolved):
            return []  # blocked on an earlier job; retry next round
        return [("lut", self.table, tuple(resolved))]

    def deliver(self, outputs: Sequence[LweSample]) -> None:
        self.handle._resolve(outputs[0])


class _CircuitJob:
    """One netlist evaluated level-by-level; each round contributes one wave."""

    def __init__(
        self,
        circuit: Circuit,
        schedule: LevelSchedule,
        inputs: Mapping[str, Sequence[LweSample]],
        dimension: int,
        handle: JobHandle,
    ) -> None:
        self.circuit = circuit
        self.schedule = schedule
        self.handle = handle
        self.dimension = dimension
        self.level = 0
        live = circuit.live_nodes(schedule.output_names)
        self.values: Dict[int, LweSample] = {}
        for wire, value in _gather_inputs(circuit, inputs, live).items():
            resolved = _resolve_operand(value)
            if resolved is None:
                raise ValueError(
                    "circuit inputs must be resolved ciphertexts, not "
                    "pending job handles"
                )
            self.values[wire] = resolved
        self._resolve_linear(self.schedule.linear[0])
        if self.schedule.depth == 0:
            self._finish()

    @property
    def done(self) -> bool:
        return self.handle.done

    def _resolve_linear(self, node_ids: Sequence[int]) -> None:
        for nid in node_ids:
            node = self.circuit.node(nid)
            if node.op == "input":
                continue
            if node.op == "const":
                self.values[nid] = lwe_encrypt_trivial(
                    self.dimension, gate_message(node.value)
                )
            elif node.op == "not":
                self.values[nid] = lwe_negate(self.values[node.args[0]])
            elif node.op == "copy":
                self.values[nid] = self.values[node.args[0]].copy()

    def pending_rows(self) -> List[Row]:
        if self.done:
            return []
        rows: List[Row] = []
        for nid in self.schedule.waves[self.level]:
            node = self.circuit.node(nid)
            if node.op == "lut":
                rows.append(
                    (
                        "lut",
                        node.value,
                        tuple(self.values[arg] for arg in node.args),
                    )
                )
            else:
                rows.append(
                    (
                        "gate",
                        node.op,
                        self.values[node.args[0]],
                        self.values[node.args[1]],
                    )
                )
        return rows

    def deliver(self, outputs: Sequence[LweSample]) -> None:
        wave = self.schedule.waves[self.level]
        for nid, out in zip(wave, outputs):
            self.values[nid] = out
        self.level += 1
        self._resolve_linear(self.schedule.linear[self.level])
        if self.level == self.schedule.depth:
            self._finish()

    def _finish(self) -> None:
        self.handle._resolve(
            {
                name: [self.values[w] for w in self.circuit.output_wires[name]]
                for name in self.schedule.output_names
            }
        )


@dataclass
class SchedulerStats:
    """Aggregate throughput counters of one :class:`BatchScheduler`."""

    flushes: int = 0
    #: Mixed-gate batched bootstrapping calls issued (``gate_rows`` calls).
    batched_calls: int = 0
    #: Total ciphertext rows bootstrapped across all calls.
    rows_bootstrapped: int = 0
    #: Widest single batched call seen so far.
    max_rows_per_call: int = 0
    #: Jobs (single-gate or whole-circuit) fully completed.
    jobs_completed: int = 0
    #: Jobs failed with a typed error (force-deregistration aborts).
    jobs_aborted: int = 0
    #: Times a faulting engine was quarantined and its client's context
    #: rebuilt on a fallback engine mid-flush.
    engine_failovers: int = 0
    #: Rounds that fell back to in-process execution after the row
    #: dispatcher (worker pool) exhausted its retry budget.
    inline_fallbacks: int = 0

    @property
    def mean_rows_per_call(self) -> float:
        """Average coalesced batch width — the cross-session fill factor."""
        if not self.batched_calls:
            return 0.0
        return self.rows_bootstrapped / self.batched_calls

    def reset(self) -> None:
        self.flushes = 0
        self.batched_calls = 0
        self.rows_bootstrapped = 0
        self.max_rows_per_call = 0
        self.jobs_completed = 0
        self.jobs_aborted = 0
        self.engine_failovers = 0
        self.inline_fallbacks = 0


class EvaluationSession:
    """One client connection submitting work to a shared :class:`BatchScheduler`."""

    def __init__(self, scheduler: "BatchScheduler", client_id: str) -> None:
        self.scheduler = scheduler
        self.client_id = client_id

    @property
    def context(self) -> FheContext:
        return self.scheduler.client_context(self.client_id)

    # -- linear operations (resolved immediately, no bootstrap) -------------
    def constant(self, bit: int) -> LweSample:
        """A trivial encryption of a public bit (no bootstrap, no queue)."""
        return lwe_encrypt_trivial(self.context.params.n, gate_message(bit))

    def not_(self, ca: Operand) -> Operand:
        """Homomorphic NOT; immediate on a ciphertext, queued after a handle."""
        resolved = _resolve_operand(ca)
        if resolved is not None:
            return lwe_negate(resolved)
        # Pending operand: express NOT(x) as the bootstrapped NAND(x, x) so it
        # schedules with everything else.  (Costs a bootstrap — callers that
        # care chain the NOT after a flush instead.)
        return self.submit_gate("nand", ca, ca)

    def _check_operand(self, operand: Operand) -> Operand:
        if isinstance(operand, JobHandle) and operand.client_id != self.client_id:
            raise ValueError(
                f"operand handle belongs to client {operand.client_id!r}; "
                f"ciphertexts of different clients' keys cannot be mixed "
                f"(this session serves {self.client_id!r})"
            )
        return operand

    # -- queued bootstrapped work -------------------------------------------
    def submit_gate(
        self, name: str, ca: Operand, cb: Operand, trace_id: Optional[str] = None
    ) -> JobHandle:
        """Queue one two-input gate; operands may be earlier jobs' handles
        of the **same** client."""
        if name not in MIXED_GATE_SPECS:
            raise ValueError(f"unknown gate {name!r}")
        handle = JobHandle(self.client_id)
        self.scheduler._enqueue(
            self.client_id,
            _GateJob(name, self._check_operand(ca), self._check_operand(cb), handle),
            op="gate",
            trace_id=trace_id,
        )
        return handle

    def submit_lut(
        self,
        table: int,
        operands: Sequence[Operand],
        trace_id: Optional[str] = None,
    ) -> JobHandle:
        """Queue one k-input boolean lookup (truth table ``table``).

        The table must have a single-bootstrap realisation
        (:func:`repro.tfhe.lut.boolean_lut_spec`) — checked here, at submit
        time, so infeasible tables fail fast rather than at flush.  The row
        coalesces with gate and circuit rows of the same client into one
        fused mixed-test-vector bootstrapping.
        """
        operands = [self._check_operand(op) for op in operands]
        require_lut_spec(table, len(operands))  # fail fast on infeasible tables
        handle = JobHandle(self.client_id)
        self.scheduler._enqueue(
            self.client_id,
            _LutJob(table, operands, handle),
            op="lut",
            trace_id=trace_id,
        )
        return handle

    def submit_circuit(
        self,
        circuit: Circuit,
        inputs: Mapping[str, Sequence[Operand]],
        outputs: Optional[Sequence[str]] = None,
        schedule: Optional[LevelSchedule] = None,
        trace_id: Optional[str] = None,
    ) -> JobHandle:
        """Queue a whole netlist (single word, scalar bits per input).

        The job advances one dependency level per flush round, so its levels
        coalesce with every other same-key job in flight.  The handle
        resolves to ``{output name: list of bit ciphertexts}``.
        """
        if schedule is None:
            schedule = schedule_circuit(circuit, outputs)
        checked = {
            name: [self._check_operand(bit) for bit in bits]
            for name, bits in inputs.items()
        }
        handle = JobHandle(self.client_id)
        job = _CircuitJob(
            circuit, schedule, checked, self.context.params.n, handle
        )
        self.scheduler._enqueue(self.client_id, job, op="circuit", trace_id=trace_id)
        return handle


class BatchScheduler:
    """Coalesces same-key jobs from many sessions into batched bootstrappings."""

    def __init__(
        self,
        max_rows_per_call: Optional[int] = None,
        dispatcher: Optional[RowDispatcher] = None,
        max_pending_jobs: Optional[int] = None,
        engine: Optional[str] = None,
        telemetry=None,
    ) -> None:
        if max_rows_per_call is not None and max_rows_per_call <= 0:
            raise ValueError("max_rows_per_call must be positive")
        if max_pending_jobs is not None and max_pending_jobs <= 0:
            raise ValueError("max_pending_jobs must be positive")
        self.max_rows_per_call = max_rows_per_call
        self.max_pending_jobs = max_pending_jobs
        #: Default engine for contexts built from registered cloud keys: a
        #: registry kind, ``"auto"`` (select_best_engine), or ``None`` to
        #: honour each key's recorded transform spec.
        self.engine = engine
        self.dispatcher: RowDispatcher = dispatcher or InlineDispatcher()
        self._contexts: Dict[str, FheContext] = {}
        self._queues: Dict[str, List[object]] = {}
        self.stats = SchedulerStats()
        #: Optional :class:`repro.telemetry.Telemetry` bundle; ``None`` keeps
        #: every instrumentation site behind one ``is None`` check.
        self.telemetry = telemetry
        if telemetry is not None:
            self.dispatcher.telemetry = telemetry

    # -- telemetry helpers ---------------------------------------------------
    def _count(self, name: str, help_text: str, amount: float = 1, **labels) -> None:
        """Increment a registry counter iff metrics are enabled."""
        if self.telemetry is not None:
            self.telemetry.count(name, help_text, amount=amount, **labels)

    @property
    def _traced(self) -> bool:
        return self.telemetry is not None and self.telemetry.tracer.enabled

    # -- client management ---------------------------------------------------
    def register_client(
        self,
        client_id: str,
        key: Union[TFHECloudKey, FheContext],
        engine: Optional[str] = None,
    ) -> FheContext:
        """Install a client's cloud key (or prebuilt context) under an id.

        ``engine`` overrides the scheduler's default engine policy for this
        client (a registry kind or ``"auto"``); it is rejected for prebuilt
        contexts, which already carry their engine.
        """
        if client_id in self._contexts:
            raise ValueError(f"client {client_id!r} is already registered")
        if isinstance(key, FheContext):
            if engine is not None:
                raise ValueError(
                    "cannot override the engine of a prebuilt FheContext"
                )
            context = key
        else:
            context = FheContext(key, engine=engine or self.engine)
        if self.telemetry is not None:
            context.telemetry = self.telemetry
        self._contexts[client_id] = context
        self._queues[client_id] = []
        self.dispatcher.register_client(client_id, context)
        return context

    def deregister_client(self, client_id: str, force: bool = False) -> None:
        """Drop a client's context and queue (e.g. its connection closed).

        Refuses while the client still has unresolved jobs — silently
        discarding them would leak handles that can never resolve.  With
        ``force=True`` the pending handles are instead **failed** with the
        typed :class:`JobAborted`, so a deregistration racing an in-flight
        flush leaves no handle unresolved: waiters see a retryable error,
        never a hang, and a flush round delivering into an already-failed
        handle is a no-op (handles settle exactly once).
        """
        self.client_context(client_id)  # validate
        pending = [job for job in self._queues[client_id] if not job.done]
        if pending:
            if not force:
                raise RuntimeError(
                    f"client {client_id!r} still has pending jobs; "
                    f"flush before deregistering (or deregister with force=True "
                    f"to fail them with JobAborted)"
                )
            for job in pending:
                job.handle._fail(
                    JobAborted(
                        f"client {client_id!r} was deregistered with "
                        f"{len(pending)} unresolved jobs; resubmit after "
                        f"re-registering"
                    )
                )
            self.stats.jobs_aborted += len(pending)
        del self._contexts[client_id]
        del self._queues[client_id]
        self.dispatcher.deregister_client(client_id)

    def client_context(self, client_id: str) -> FheContext:
        try:
            return self._contexts[client_id]
        except KeyError:
            raise KeyError(f"unknown client {client_id!r}; register_client first") from None

    def session(self, client_id: str) -> EvaluationSession:
        """Open a new session for a registered client."""
        self.client_context(client_id)  # validate
        return EvaluationSession(self, client_id)

    # -- queue ----------------------------------------------------------------
    def _enqueue(
        self,
        client_id: str,
        job,
        op: str = "job",
        trace_id: Optional[str] = None,
    ) -> None:
        tel = self.telemetry
        traced = tel is not None and tel.tracer.enabled
        if traced:
            tid = trace_id or tel.tracer.new_trace_id()
            job.trace_id = tid
            job.handle.trace_id = tid
            job.submit_wall = time.time()
            job.submit_perf = time.perf_counter()
            # Start of the job's current coalescing window (reset per round).
            job.wait_from = job.submit_perf
        # A job can resolve at submit time without costing any bootstraps —
        # e.g. an optimized circuit whose live outputs are constant wires or
        # COPY/NOT chains only (zero bootstrapped levels).  Count it here,
        # since flush() will simply drop it from the queue.
        if job.done:
            self.stats.jobs_completed += 1
            self._count(
                "fhe_jobs_submitted_total", "Jobs accepted by the scheduler.", op=op
            )
            self._count("fhe_jobs_completed_total", "Jobs fully resolved.")
            if traced:
                tel.tracer.record(
                    "enqueue",
                    job.trace_id,
                    start=job.submit_wall,
                    duration=0.0,
                    attrs={"op": op, "client": client_id},
                )
                tel.tracer.record(
                    "job", job.trace_id, start=job.submit_wall, duration=0.0
                )
            return
        if (
            self.max_pending_jobs is not None
            and self.pending_jobs >= self.max_pending_jobs
        ):
            raise SchedulerBusy(
                f"scheduler queue is full ({self.max_pending_jobs} pending "
                f"jobs); flush before submitting more"
            )
        self._count(
            "fhe_jobs_submitted_total", "Jobs accepted by the scheduler.", op=op
        )
        if traced:
            tel.tracer.record(
                "enqueue",
                job.trace_id,
                start=job.submit_wall,
                duration=0.0,
                attrs={"op": op, "client": client_id},
            )
        self._queues[client_id].append(job)

    @property
    def pending_jobs(self) -> int:
        """Jobs enqueued and not yet fully resolved."""
        return sum(
            sum(1 for job in queue if not job.done) for queue in self._queues.values()
        )

    # -- execution -------------------------------------------------------------
    def _republish_client(self, client_id: str, context: FheContext) -> None:
        """Re-register a client with the dispatcher after its context's
        engine changed (a worker pool republishes the shared key segment so
        workers rebuild their contexts on the new engine spec)."""
        try:
            self.dispatcher.deregister_client(client_id)
        except Exception:  # noqa: BLE001 - the old registration may be gone
            pass
        self.dispatcher.register_client(client_id, context)

    def _run_rows_resilient(
        self, client_id: str, rows: List[Row], round_ctx=None
    ) -> List[LweSample]:
        """Dispatch one round's rows, surviving engine faults and pool failure.

        * :class:`repro.tfhe.transform.EngineFault` (from an inline engine,
          or re-raised by a worker pool whose task exhausted retries on one)
          quarantines the faulting engine kind, fails the client's context
          over to the best fallback within its error-model family
          (:meth:`FheContext.failover`), republishes the context to the
          dispatcher and replays the round there.  No partial results from
          the faulted attempt are used, so the replay is bit-identical
          within the ``fft64`` family.
        * ``WorkerPoolError`` (pool retry budget exhausted for a non-engine
          fault) degrades the round to in-process :func:`execute_rows` —
          the pool's health problem must not fail client jobs that a single
          process can still compute correctly.

        Both paths are counted in :class:`SchedulerStats`
        (``engine_failovers`` / ``inline_fallbacks``) and surfaced through
        the server's metrics endpoint.
        """
        # Imported here: workers.py imports this module at import time.
        from repro.runtime.workers import WorkerPoolError

        context = self._contexts[client_id]
        # Omit the kwarg entirely for untraced rounds so pre-telemetry
        # RowDispatcher implementations keep working unchanged.
        ctx_kwargs = {} if round_ctx is None else {"round_ctx": round_ctx}
        try:
            return self.dispatcher.run_rows(
                client_id,
                context,
                rows,
                self.stats,
                self.max_rows_per_call,
                **ctx_kwargs,
            )
        except EngineFault as exc:
            context.failover(str(exc))
            self.stats.engine_failovers += 1
            self._count("fhe_engine_failovers_total", "Engine quarantines mid-flush.")
            self._republish_client(client_id, context)
            try:
                return self.dispatcher.run_rows(
                    client_id,
                    context,
                    rows,
                    self.stats,
                    self.max_rows_per_call,
                    **ctx_kwargs,
                )
            except (EngineFault, WorkerPoolError):
                # The replay faulted too — the dispatcher itself is sick
                # (e.g. a pool whose workers keep dying).  The failed-over
                # context is healthy in this process, so finish the round
                # inline rather than fail jobs a single process can compute.
                self.stats.inline_fallbacks += 1
                self._count(
                    "fhe_inline_fallbacks_total", "Rounds degraded to in-process."
                )
                with _round_scope(context, round_ctx):
                    return execute_rows(
                        context, rows, self.stats, self.max_rows_per_call
                    )
        except WorkerPoolError:
            self.stats.inline_fallbacks += 1
            self._count(
                "fhe_inline_fallbacks_total", "Rounds degraded to in-process."
            )
            try:
                with _round_scope(context, round_ctx):
                    return execute_rows(
                        context, rows, self.stats, self.max_rows_per_call
                    )
            except EngineFault as exc:
                # The pool failed *because* the engine is sick everywhere.
                context.failover(str(exc))
                self.stats.engine_failovers += 1
                self._count(
                    "fhe_engine_failovers_total", "Engine quarantines mid-flush."
                )
                self._republish_client(client_id, context)
                with _round_scope(context, round_ctx):
                    return execute_rows(
                        context, rows, self.stats, self.max_rows_per_call
                    )

    def flush(self) -> int:
        """Run every pending job to completion; returns the rows bootstrapped.

        Each round issues, per client, **one** mixed-gate batched
        bootstrapping over every row every ready job wants next (chunked by
        ``max_rows_per_call`` when set).  Rounds repeat until no job makes
        progress, i.e. chained handles resolve level-by-level.

        Robust against concurrent deregistration: rounds iterate a snapshot
        of the queues and re-check each client still exists before
        dispatching, so ``deregister_client(force=True)`` racing a flush
        fails that client's handles with :class:`JobAborted` (handled by the
        exactly-once settle semantics) instead of corrupting the round.
        """
        self.stats.flushes += 1
        self._count("fhe_flushes_total", "Scheduler flush invocations.")
        tel = self.telemetry
        traced = self._traced
        total_rows = 0
        while True:
            progressed = False
            for client_id, queue in list(self._queues.items()):
                if client_id not in self._contexts:
                    continue  # deregistered since the snapshot
                jobs = [job for job in queue if not job.done]
                contributions: List[Tuple[object, int]] = []
                rows: List[Row] = []
                for job in jobs:
                    job_rows = job.pending_rows()
                    if job_rows:
                        contributions.append((job, len(job_rows)))
                        rows.extend(job_rows)
                if not rows:
                    continue
                round_ctx = None
                if traced:
                    round_ctx = self._record_coalesce(contributions)
                flush_wall = time.time()
                flush_perf = time.perf_counter()
                outputs = self._run_rows_resilient(client_id, rows, round_ctx)
                if round_ctx is not None:
                    trace_ids, flush_span_id = round_ctx
                    attrs = {"client": client_id, "rows": len(rows)}
                    if len(trace_ids) > 1:
                        attrs["traces"] = list(trace_ids)
                    tel.tracer.record(
                        "flush",
                        trace_ids[0],
                        start=flush_wall,
                        duration=time.perf_counter() - flush_perf,
                        span_id=flush_span_id,
                        attrs=attrs,
                    )
                cursor = 0
                for job, count in contributions:
                    was_done = job.done  # failed mid-dispatch by a forced deregister
                    job.deliver(outputs[cursor : cursor + count])
                    cursor += count
                    if traced:
                        # Next coalescing window (multi-level jobs) starts now.
                        job.wait_from = time.perf_counter()
                    if job.done and not was_done:
                        self.stats.jobs_completed += 1
                        self._count("fhe_jobs_completed_total", "Jobs fully resolved.")
                        if traced and getattr(job, "trace_id", None) is not None:
                            tel.tracer.record(
                                "job",
                                job.trace_id,
                                start=job.submit_wall,
                                duration=time.perf_counter() - job.submit_perf,
                            )
                total_rows += len(rows)
                progressed = True
            # Drop resolved jobs from the queues.
            for client_id in list(self._queues):
                self._queues[client_id] = [
                    job for job in self._queues[client_id] if not job.done
                ]
            if not progressed:
                break
        if self.pending_jobs:
            raise RuntimeError(
                "scheduler deadlock: pending jobs depend on handles that "
                "no queued job produces"
            )
        self.stats.rows_bootstrapped += total_rows
        if total_rows:
            self._count(
                "fhe_rows_bootstrapped_total",
                "Ciphertext rows bootstrapped.",
                amount=total_rows,
            )
        return total_rows

    def _record_coalesce(self, contributions: List[Tuple[object, int]]):
        """Record each job's ``coalesce_wait`` span and mint the round ctx.

        Returns ``(trace ids, flush span id)`` for the round, or ``None``
        when no contributing job carries a trace (tracing was enabled after
        they were submitted).
        """
        tel = self.telemetry
        now_wall = time.time()
        now_perf = time.perf_counter()
        trace_ids: List[str] = []
        for job, _count in contributions:
            tid = getattr(job, "trace_id", None)
            if tid is None:
                continue
            trace_ids.append(tid)
            waited = now_perf - getattr(job, "wait_from", now_perf)
            tel.tracer.record(
                "coalesce_wait",
                tid,
                start=now_wall - waited,
                duration=waited,
            )
        if not trace_ids:
            return None
        return tuple(trace_ids), tel.tracer.new_span_id()

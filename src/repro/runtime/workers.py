"""Multi-process execution back-end: a fault-tolerant bootstrap worker pool.

The :class:`repro.runtime.scheduler.BatchScheduler` front-end coalesces many
sessions' jobs into one row list per flush round; the rows of that list are
embarrassingly parallel (each is an independent bootstrapping — the batch
path is row-wise bit-identical to the sequential path, the PR 1 property).
:class:`WorkerPool` is the :class:`repro.runtime.scheduler.RowDispatcher`
that shards those rows across ``num_workers`` OS processes, so the runtime
stops being capped by one Python interpreter:

* **Shared read-only cloud-key state.**  Per registered client the parent
  writes one :class:`multiprocessing.shared_memory.SharedMemory` segment
  holding the serialized cloud key (the PR 3 npz wire format) and — for the
  classical rotator under a plain-ndarray engine — the *packed spectral
  tensors* of the parent's spectrum cache.  Workers map the segment and
  build their :class:`repro.runtime.context.FheContext` around zero-copy
  read-only views into those shared pages
  (:meth:`repro.runtime.context.FheContext.install_rotator`), so ``k``
  workers share one physical copy of the bootstrapping-key spectra instead
  of forward-transforming ``k`` private ones.  BKU-unrolled keys and the
  approximate integer engine (whose spectra carry per-row fixed-point
  scales) fall back to rebuilding the cache from the shared key bytes —
  correctness is engine/rotator independent, only the sharing depth varies.
* **Crash → requeue, not corruption.**  Each worker owns a duplex pipe and
  at most one outstanding task.  A worker that dies mid-task (EOF/broken
  pipe), exceeds the task timeout, or returns a result that fails
  validation (wrong task id, wrong row count, malformed ciphertexts) is
  killed and respawned, and its task is requeued to a healthy worker — up
  to ``max_retries`` times per task, after which :class:`WorkerPoolError`
  propagates rather than returning silently wrong results.  A lost worker
  therefore degrades throughput, never correctness.
* **Health tracking.**  :attr:`WorkerPool.health` exposes per-worker
  liveness/task/fault counters and :attr:`WorkerPool.stats` the pool-wide
  dispatch/retry/restart totals; the serving front surfaces both through
  its metrics endpoint.

Fault injection (tests only): ``fault_plans`` maps a worker's spawn index to
a plan dict (``crash_on_task``, ``hang_on_task``/``hang_seconds``,
``poison_on_task``/``poison_mode``, ``error_on_task``) interpreted against
the worker-local task counter, so the fault-injection suite can kill, stall
or poison a specific task deterministically.  Respawned workers get fresh
spawn indices and therefore no plan, which is exactly the recovery path the
suite asserts on.
"""

from __future__ import annotations

import json
import os
import struct
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing
import multiprocessing.connection
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.runtime.context import FheContext
from repro.runtime.scheduler import (
    RowDispatcher,
    Row,
    SchedulerStats,
    _round_scope,
    execute_rows,
)
from repro.telemetry import Telemetry
from repro.telemetry.metrics import ROWS_PER_CALL_BUCKETS
from repro.tfhe.bootstrap import CmuxBlindRotator
from repro.tfhe.lwe import LweSample
from repro.tfhe.serialize import from_bytes, to_bytes
from repro.tfhe.tgsw import TransformedTgswSample
from repro.tfhe.transform import EngineFault, TransformSpec

__all__ = [
    "WorkerHealth",
    "WorkerPool",
    "WorkerPoolError",
    "PoolStats",
]

#: Alignment of the spectral tensor inside a shared segment (numpy wants the
#: buffer offset aligned to the itemsize; 16 covers complex128).
_ALIGN = 16


class WorkerPoolError(RuntimeError):
    """A task could not be completed within the pool's retry budget."""


@dataclass
class PoolStats:
    """Pool-wide dispatch and fault counters."""

    tasks_dispatched: int = 0
    tasks_completed: int = 0
    tasks_retried: int = 0
    workers_restarted: int = 0
    results_rejected: int = 0
    rows_executed: int = 0
    #: Times the circuit breaker opened after a restart storm.
    breaker_trips: int = 0
    #: ``run_rows`` calls executed in-process because the breaker was open.
    inline_fallbacks: int = 0

    def reset(self) -> None:
        self.tasks_dispatched = 0
        self.tasks_completed = 0
        self.tasks_retried = 0
        self.workers_restarted = 0
        self.results_rejected = 0
        self.rows_executed = 0
        self.breaker_trips = 0
        self.inline_fallbacks = 0


@dataclass
class WorkerHealth:
    """Liveness and work counters of one pool slot (visible via metrics)."""

    spawn_index: int
    pid: Optional[int]
    alive: bool
    tasks_completed: int
    faults: int


# --------------------------------------------------------------------------- #
# shared cloud-key segments                                                   #
# --------------------------------------------------------------------------- #


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _pack_client_segment(context: FheContext) -> shared_memory.SharedMemory:
    """Write one client's shareable key state into a fresh shared segment.

    Layout: ``u64 header_len | header JSON | cloud-key npz bytes | (aligned)
    packed spectral tensor bytes``.  The spectrum section is present only
    when the parent's cache is a stack of plain ndarrays of one dtype/shape
    (classical rotator, naive/double engines); otherwise workers rebuild
    their cache from the key bytes.
    """
    key_bytes = to_bytes(context.cloud_key)
    spectrum_meta: Optional[Dict[str, Any]] = None
    spectrum_view: Optional[np.ndarray] = None
    if context.cloud_key.unroll_factor == 1:
        rotator = context.rotator  # builds the parent cache once
        if isinstance(rotator, CmuxBlindRotator):
            tensors = [sample.tensor for sample in rotator.bootstrapping_key]
            shapes = {
                (t.shape, t.dtype.str)
                for t in tensors
                if isinstance(t, np.ndarray)
            }
            if tensors and len(shapes) == 1 and all(
                isinstance(t, np.ndarray) for t in tensors
            ):
                spectrum_view = np.stack(tensors)
                first = rotator.bootstrapping_key[0]
                spectrum_meta = {
                    "dtype": spectrum_view.dtype.str,
                    "shape": list(spectrum_view.shape),
                    "rows": first.rows,
                    "mask_count": first.mask_count,
                    "degree": first.degree,
                }
    # Record the parent context's engine spec so workers rebuild the SAME
    # engine even when it overrides the key's recorded transform spec (e.g.
    # a server running `--engine compiled` over double-generated keys).
    # Ad-hoc engines have no spec; workers then fall back to the key's.
    engine_spec = context.engine.spec()
    header = json.dumps(
        {
            "key_len": len(key_bytes),
            "spectrum": spectrum_meta,
            "engine": engine_spec.to_json() if engine_spec is not None else None,
        }
    ).encode("utf-8")
    key_offset = 8 + len(header)
    spectrum_offset = _align(key_offset + len(key_bytes))
    total = spectrum_offset + (
        spectrum_view.nbytes if spectrum_view is not None else 0
    )
    segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    segment.buf[0:8] = struct.pack("<Q", len(header))
    segment.buf[8:key_offset] = header
    segment.buf[key_offset : key_offset + len(key_bytes)] = key_bytes
    if spectrum_view is not None:
        shared = np.ndarray(
            spectrum_view.shape,
            dtype=spectrum_view.dtype,
            buffer=segment.buf,
            offset=spectrum_offset,
        )
        shared[...] = spectrum_view
    return segment


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifetime.

    The parent's ``unlink()`` is the single authority over a segment's
    lifetime; workers only ever ``close()`` their mapping.  CPython < 3.13
    re-registers a segment with the resource tracker on *attach*, which
    would let a crashed worker's tracker reap a segment the parent still
    serves, so :func:`_worker_main` disables tracker registration before
    the first attach.
    """
    return shared_memory.SharedMemory(name=name)


def _context_from_segment(segment: shared_memory.SharedMemory) -> FheContext:
    """Rebuild a worker-side context around a shared segment.

    The cloud key is deserialized from the shared npz bytes; when the
    segment carries packed spectra, the blind rotator is assembled from
    **read-only views into the shared pages** — no per-worker copy of the
    spectrum cache exists.  The returned context keeps the segment's buffer
    alive through those views; the caller must keep ``segment`` open for the
    context's lifetime.
    """
    (header_len,) = struct.unpack("<Q", bytes(segment.buf[0:8]))
    header = json.loads(bytes(segment.buf[8 : 8 + header_len]).decode("utf-8"))
    key_offset = 8 + header_len
    key_len = int(header["key_len"])
    cloud = from_bytes(bytes(segment.buf[key_offset : key_offset + key_len]))
    engine_payload = header.get("engine")
    engine = (
        TransformSpec.from_json(engine_payload).create(cloud.params.N)
        if engine_payload is not None
        else None
    )
    context = FheContext(cloud, engine=engine)
    meta = header.get("spectrum")
    if meta is not None:
        shape = tuple(int(x) for x in meta["shape"])
        tensor = np.ndarray(
            shape,
            dtype=np.dtype(meta["dtype"]),
            buffer=segment.buf,
            offset=_align(key_offset + key_len),
        )
        tensor.setflags(write=False)
        samples = [
            TransformedTgswSample(
                tensor=tensor[i],
                params=cloud.params.tgsw,
                mask_count=int(meta["mask_count"]),
                degree=int(meta["degree"]),
                rows=int(meta["rows"]),
            )
            for i in range(shape[0])
        ]
        context.install_rotator(
            CmuxBlindRotator(
                samples, context.engine, workspace=context.workspace
            ),
            cached_tgsw_samples=len(samples),
        )
    return context


# --------------------------------------------------------------------------- #
# worker process                                                              #
# --------------------------------------------------------------------------- #


def _apply_fault(plan: Dict[str, Any], task_index: int, result_msg: Tuple):
    """Mutate/trigger the planned fault for this worker-local task index.

    Returns the (possibly poisoned) result message, or never returns for a
    crash.  Test-only: production pools pass no plans.
    """
    if plan.get("crash_on_task") == task_index:
        os._exit(17)  # simulate a hard worker crash mid-flush
    if plan.get("hang_on_task") == task_index:
        time.sleep(float(plan.get("hang_seconds", 3600.0)))
    if plan.get("error_on_task") == task_index:
        raise RuntimeError("injected worker fault")
    if plan.get("engine_fault_on_task") == task_index or plan.get("engine_fault_always"):
        raise EngineFault("injected engine fault")
    if plan.get("poison_on_task") == task_index:
        mode = plan.get("poison_mode", "short")
        kind, task_id, outputs, row_count, payload = result_msg
        if mode == "short":  # drop a row: row-count mismatch
            return (kind, task_id, outputs[:-1], row_count, payload)
        if mode == "wrong_task":  # answer a task that was never asked
            return (kind, task_id + 10_000, outputs, row_count, payload)
        if mode == "garbage":  # structurally broken ciphertexts
            return (kind, task_id, [object()] * len(outputs), row_count, payload)
        raise ValueError(f"unknown poison mode {mode!r}")
    return result_msg


def _worker_main(
    spawn_index: int,
    conn,
    registry: Dict[str, str],
    fault_plan: Optional[Dict[str, Any]],
) -> None:
    """Body of one pool worker: attach shared keys, loop over row tasks."""
    # Workers never own shared-memory lifetimes: neutralise attach-time
    # tracker registration (CPython < 3.13 has no SharedMemory(track=False))
    # so a worker forked before the parent's tracker existed cannot spawn a
    # private tracker that later "cleans up" segments the parent still owns.
    resource_tracker.register = lambda name, rtype: None  # this process only
    plan = fault_plan or {}
    segments: Dict[str, shared_memory.SharedMemory] = {}
    contexts: Dict[str, FheContext] = {}
    names: Dict[str, str] = dict(registry)
    task_index = 0
    parent_pid = os.getppid()
    try:
        while True:
            # Heartbeat instead of a bare blocking recv(): forked siblings
            # inherit this pipe's parent end, so if the parent dies without
            # running close() the fd stays open and recv() would never see
            # EOF — an orphaned worker must notice the reparenting and exit.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "register":
                _, client_id, segment_name = message
                names[client_id] = segment_name
                contexts.pop(client_id, None)
            elif kind == "deregister":
                _, client_id = message
                names.pop(client_id, None)
                contexts.pop(client_id, None)
                segment = segments.pop(client_id, None)
                if segment is not None:
                    segment.close()
            elif kind == "ping":
                conn.send(("pong", spawn_index))
            elif kind == "rows":
                _, task_id, client_id, rows, max_rows_per_call, trace_ctx = message
                try:
                    context = contexts.get(client_id)
                    if context is None:
                        segment = _attach_segment(names[client_id])
                        segments[client_id] = segment
                        context = _context_from_segment(segment)
                        contexts[client_id] = context
                    payload = None
                    if trace_ctx is None:
                        outputs = execute_rows(
                            context, rows, max_rows_per_call=max_rows_per_call
                        )
                    else:
                        # Traced task: record stage spans into a private,
                        # metrics-less ring and ship them back as tuples;
                        # engine-call deltas ride along so the parent's
                        # registry stays the single metrics sink.
                        worker_tel = Telemetry(
                            metrics=False, tracing=True, ring_size=256
                        )
                        engine_before = context.engine.stats.snapshot()
                        context.telemetry = worker_tel
                        try:
                            with _round_scope(context, trace_ctx):
                                outputs = execute_rows(
                                    context,
                                    rows,
                                    max_rows_per_call=max_rows_per_call,
                                )
                        finally:
                            context.telemetry = None
                        engine_after = context.engine.stats.snapshot()
                        payload = {
                            "spans": worker_tel.drain_span_tuples(),
                            "engine": {
                                "kind": getattr(context.engine, "engine_kind", None)
                                or "unknown",
                                "forward": engine_after.forward_calls
                                - engine_before.forward_calls,
                                "backward": engine_after.backward_calls
                                - engine_before.backward_calls,
                            },
                        }
                    result = ("ok", task_id, outputs, len(rows), payload)
                    result = _apply_fault(plan, task_index, result)
                except EngineFault:
                    # Tagged so the parent can distinguish "this worker's
                    # engine is sick" (quarantine + failover upstream) from
                    # a generic task fault (requeue to another worker).
                    result = ("err", task_id, traceback.format_exc(), "engine_fault")
                except Exception:  # noqa: BLE001 - report, let parent decide
                    result = ("err", task_id, traceback.format_exc())
                task_index += 1
                conn.send(result)
            else:  # unknown control message: report and keep serving
                conn.send(("err", -1, f"unknown message kind {kind!r}"))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        for segment in segments.values():
            segment.close()
        conn.close()


# --------------------------------------------------------------------------- #
# parent-side pool                                                            #
# --------------------------------------------------------------------------- #


@dataclass
class _Task:
    """One contiguous row slice of a run, retried as a unit."""

    task_id: int
    client_id: str
    start: int
    rows: List[Row]
    retries: int = 0
    #: ``max_rows_per_call`` in force when the task was dispatched (for the
    #: parent-side accounting of worker-issued batched calls).
    chunk_limit: Optional[int] = None
    #: Last worker-side traceback, surfaced by :class:`WorkerPoolError`.
    error: str = ""
    #: Classification of the last worker-side error (``"engine_fault"`` when
    #: the worker's engine raised :class:`EngineFault`; empty otherwise).
    error_kind: str = ""
    #: The round's tracing context ``(trace ids, flush span id)``, shipped
    #: to the worker inside the task tuple (``None`` untraced).
    trace_ctx: Optional[Tuple] = None
    #: Wall/perf clocks at the moment the task was last sent to a worker
    #: (parent-side ``worker_dispatch`` span bounds).
    sent_wall: float = 0.0
    sent_perf: float = 0.0


class _Worker:
    """Parent-side handle of one pool slot."""

    __slots__ = ("spawn_index", "process", "conn", "task", "deadline", "done", "faults")

    def __init__(self, spawn_index: int, process, conn) -> None:
        self.spawn_index = spawn_index
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None
        self.done = 0
        self.faults = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool(RowDispatcher):
    """Shards flush rows across worker processes; crash-safe by requeueing.

    Parameters
    ----------
    num_workers:
        Pool size.  Rows of one :meth:`run_rows` call are split into (at
        most) this many contiguous chunks, scattered, and gathered back in
        input order.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (workers inherit the imported stack instantly) and
        ``spawn`` elsewhere.  Pools embedded in threaded programs (e.g. the
        asyncio server) must be created *before* those threads start when
        using ``fork``.
    task_timeout:
        Seconds one task may stay outstanding on a worker before the worker
        is presumed hung, killed and replaced (``None`` disables).
    max_retries:
        How many times one task may be requeued after worker faults before
        :class:`WorkerPoolError` is raised.
    breaker_threshold, breaker_window, breaker_cooldown:
        The refork **circuit breaker**: when ``breaker_threshold`` worker
        restarts happen within ``breaker_window`` seconds, the breaker
        opens for ``breaker_cooldown`` seconds — while open, ``run_rows``
        executes in-process (the inline path) instead of touching the pool,
        bounding a refork storm instead of burning CPU respawning workers
        that keep dying.  After the cooldown the breaker closes with a
        cleared restart history (half-open: the next run probes the pool;
        a fresh storm re-trips).  ``breaker_threshold=None`` disables.
    clock:
        Monotonic time source for the breaker (injectable for deterministic
        tests); defaults to :func:`time.monotonic`.
    fault_plans:
        Test-only mapping of spawn index → fault plan (see module docs).
    """

    def __init__(
        self,
        num_workers: int,
        start_method: Optional[str] = None,
        task_timeout: Optional[float] = 60.0,
        max_retries: int = 3,
        breaker_threshold: Optional[int] = 8,
        breaker_window: float = 30.0,
        breaker_cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        fault_plans: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if breaker_threshold is not None and breaker_threshold <= 0:
            raise ValueError("breaker_threshold must be positive (or None)")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.num_workers = num_workers
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.breaker_threshold = breaker_threshold
        self.breaker_window = breaker_window
        self.breaker_cooldown = breaker_cooldown
        self._clock = clock
        self._restart_times: deque = deque()
        self._breaker_open_until: Optional[float] = None
        self._fault_plans = dict(fault_plans or {})
        self._mp = multiprocessing.get_context(start_method)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._workers: List[_Worker] = []
        self._spawned = 0
        self._next_task_id = 0
        self._closed = False
        self.stats = PoolStats()
        # Start the parent's resource tracker before forking so every worker
        # inherits it (a child forked without one would lazily spawn its own,
        # with its own idea of which segments need cleaning up).
        resource_tracker.ensure_running()
        for _ in range(num_workers):
            self._workers.append(self._spawn())

    # -- lifecycle -----------------------------------------------------------
    def _spawn(self) -> _Worker:
        spawn_index = self._spawned
        self._spawned += 1
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main,
            args=(
                spawn_index,
                child_conn,
                {cid: seg.name for cid, seg in self._segments.items()},
                self._fault_plans.get(spawn_index),
            ),
            daemon=True,
            name=f"repro-bootstrap-worker-{spawn_index}",
        )
        process.start()
        child_conn.close()  # the parent keeps only its end
        return _Worker(spawn_index, process, parent_conn)

    def _replace(self, worker: _Worker) -> _Worker:
        """Kill a faulted worker and mount a fresh one in its slot."""
        try:
            worker.process.kill()
        except Exception:
            pass
        worker.process.join(timeout=5.0)
        try:
            worker.conn.close()
        except Exception:
            pass
        self.stats.workers_restarted += 1
        self._count("fhe_pool_worker_restarts_total", "Pool workers killed and respawned.")
        self._record_restart()
        replacement = self._spawn()
        self._workers[self._workers.index(worker)] = replacement
        return replacement

    def _record_restart(self) -> None:
        if self.breaker_threshold is None:
            return
        now = self._clock()
        self._restart_times.append(now)
        while self._restart_times and self._restart_times[0] < now - self.breaker_window:
            self._restart_times.popleft()
        if (
            self._breaker_open_until is None
            and len(self._restart_times) >= self.breaker_threshold
        ):
            self._breaker_open_until = now + self.breaker_cooldown
            self.stats.breaker_trips += 1
            self._count(
                "fhe_pool_breaker_trips_total", "Refork circuit-breaker openings."
            )

    @property
    def breaker_open(self) -> bool:
        """Whether the refork circuit breaker is currently open.

        Reading the property past the cooldown closes the breaker
        (half-open) and clears the restart history, so only a *fresh*
        restart storm can re-trip it.
        """
        if self._breaker_open_until is None:
            return False
        if self._clock() < self._breaker_open_until:
            return True
        self._breaker_open_until = None
        self._restart_times.clear()
        return False

    def close(self) -> None:
        """Stop all workers and release every shared segment."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 5.0
        for worker in self._workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except Exception:
                pass
        self._workers = []
        for segment in self._segments.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = {}

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- client registry ------------------------------------------------------
    def register_client(self, client_id: str, context: FheContext) -> None:
        """Publish a client's key state to the pool via shared memory."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        if client_id in self._segments:
            raise ValueError(f"client {client_id!r} is already registered")
        segment = _pack_client_segment(context)
        self._segments[client_id] = segment
        self._broadcast(("register", client_id, segment.name))

    def deregister_client(self, client_id: str) -> None:
        """Drop a client's shared key state from the pool and all workers."""
        segment = self._segments.pop(client_id, None)
        if segment is None:
            return
        self._broadcast(("deregister", client_id))
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _broadcast(self, message: Tuple) -> None:
        for worker in self._workers:
            try:
                worker.conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                # The worker is dying; it will be replaced (with the full,
                # updated registry) the next time a task finds it dead.
                worker.faults += 1

    # -- health / introspection ----------------------------------------------
    @property
    def health(self) -> List[WorkerHealth]:
        """Per-slot liveness and work counters."""
        return [
            WorkerHealth(
                spawn_index=worker.spawn_index,
                pid=worker.process.pid,
                alive=worker.alive,
                tasks_completed=worker.done,
                faults=worker.faults,
            )
            for worker in self._workers
        ]

    # -- dispatch --------------------------------------------------------------
    def run_rows(
        self,
        client_id: str,
        context: FheContext,
        rows: Sequence[Row],
        stats: SchedulerStats,
        max_rows_per_call: Optional[int] = None,
        round_ctx: Optional[Tuple] = None,
    ) -> List[LweSample]:
        """Scatter one round's rows across the pool, gather in input order.

        Bit-identical to :func:`repro.runtime.scheduler.execute_rows` on the
        same row list: sharding only changes *where* each row's bootstrap
        runs.  Worker faults (crash, hang, poisoned result) requeue the
        affected chunk; ``WorkerPoolError`` is raised once a chunk exhausts
        ``max_retries``.
        """
        if self._closed:
            raise RuntimeError("worker pool is closed")
        rows = list(rows)
        if not rows:
            return []
        if self.breaker_open:
            # A refork storm tripped the breaker: don't feed work to a pool
            # whose workers keep dying — run the round in-process instead.
            self.stats.inline_fallbacks += 1
            self._count(
                "fhe_pool_inline_fallbacks_total",
                "Rounds run in-process while the breaker was open.",
            )
            with _round_scope(context, round_ctx):
                return execute_rows(context, rows, stats, max_rows_per_call)
        if client_id not in self._segments:
            # Standalone use (no scheduler register hook ran): publish now.
            self.register_client(client_id, context)
        tasks = self._make_tasks(client_id, rows, round_ctx)
        results: Dict[int, List[LweSample]] = {}
        pending: List[_Task] = list(tasks)
        outstanding = 0
        try:
            while pending or outstanding:
                outstanding += self._assign(pending, client_id, max_rows_per_call)
                if not outstanding:
                    if pending:  # no live worker accepted work: all just died
                        continue
                    break
                outstanding -= self._collect(results, pending, stats)
        except (WorkerPoolError, EngineFault):
            self._reset_busy_workers()
            raise
        ordered: List[LweSample] = []
        for task in tasks:
            ordered.extend(results[task.task_id])
        self.stats.rows_executed += len(rows)
        return ordered

    def _make_tasks(
        self, client_id: str, rows: List[Row], round_ctx: Optional[Tuple] = None
    ) -> List[_Task]:
        """Split rows into ≤ ``num_workers`` contiguous, near-even chunks."""
        count = min(self.num_workers, len(rows))
        base, extra = divmod(len(rows), count)
        tasks: List[_Task] = []
        start = 0
        for i in range(count):
            size = base + (1 if i < extra else 0)
            task = _Task(self._next_task_id, client_id, start, rows[start : start + size])
            task.trace_ctx = round_ctx
            self._next_task_id += 1
            tasks.append(task)
            start += size
        return tasks

    # -- telemetry -----------------------------------------------------------
    def _count(self, name: str, help_text: str, amount: float = 1, **labels) -> None:
        """Increment a registry counter iff a telemetry sink is attached."""
        if self.telemetry is not None:
            self.telemetry.count(name, help_text, amount=amount, **labels)

    def _ingest_payload(self, task: _Task, payload) -> None:
        """Adopt one traced task's shipped spans and engine-call deltas."""
        tel = self.telemetry
        if tel is None or not isinstance(payload, dict):
            return
        if tel.tracer.enabled:
            for span_tuple in payload.get("spans", ()):
                try:
                    tel.tracer.ingest(span_tuple)
                except (ValueError, TypeError):
                    continue  # malformed span from a sick worker: drop, keep rest
        engine = payload.get("engine")
        if tel.metrics_enabled and isinstance(engine, dict):
            for direction in ("forward", "backward"):
                delta = engine.get(direction, 0)
                if isinstance(delta, int) and delta > 0:
                    self._count(
                        "fhe_engine_transform_calls_total",
                        "Negacyclic transform invocations by direction.",
                        amount=delta,
                        engine=str(engine.get("kind", "unknown")),
                        direction=direction,
                    )

    def _assign(
        self, pending: List[_Task], client_id: str, max_rows_per_call: Optional[int]
    ) -> int:
        """Hand queued tasks to idle workers; returns how many were sent."""
        sent = 0
        for index, worker in enumerate(list(self._workers)):
            if not pending:
                break
            if worker.task is not None:
                continue
            if not worker.alive:
                worker = self._replace(worker)
            task = pending.pop(0)
            task.chunk_limit = max_rows_per_call
            task.sent_wall = time.time()
            task.sent_perf = time.perf_counter()
            try:
                worker.conn.send(
                    (
                        "rows",
                        task.task_id,
                        task.client_id,
                        task.rows,
                        max_rows_per_call,
                        task.trace_ctx,
                    )
                )
            except (OSError, ValueError, BrokenPipeError):
                worker.faults += 1
                self._requeue(task, pending, f"worker {worker.spawn_index} pipe broke")
                self._replace(worker)
                continue
            worker.task = task
            worker.deadline = (
                time.monotonic() + self.task_timeout
                if self.task_timeout is not None
                else None
            )
            self.stats.tasks_dispatched += 1
            sent += 1
        return sent

    def _collect(
        self,
        results: Dict[int, List[LweSample]],
        pending: List[_Task],
        stats: SchedulerStats,
    ) -> int:
        """Wait for one wave of results/faults; returns tasks taken off workers."""
        busy = [w for w in self._workers if w.task is not None]
        if not busy:
            return 0
        timeout = 0.25
        if self.task_timeout is not None:
            now = time.monotonic()
            timeout = max(0.0, min(w.deadline - now for w in busy))
            timeout = min(timeout + 0.01, 0.25)
        ready = multiprocessing.connection.wait(
            [w.conn for w in busy], timeout=timeout
        )
        settled = 0
        for conn in ready:
            worker = next(w for w in busy if w.conn is conn)
            task = worker.task
            try:
                message = conn.recv()
            except (EOFError, OSError):
                worker.faults += 1
                worker.task = None
                self._requeue(task, pending, f"worker {worker.spawn_index} died")
                self._replace(worker)
                settled += 1
                continue
            if self._accept(worker, task, message, results, stats):
                worker.task = None
                worker.deadline = None
                worker.done += 1
                self.stats.tasks_completed += 1
                settled += 1
            else:
                worker.task = None
                self._requeue(
                    task, pending, f"worker {worker.spawn_index} returned a bad result"
                )
                self._replace(worker)
                settled += 1
        # Deadline sweep: hung workers are indistinguishable from slow ones
        # except by the clock, so expiry is treated as a crash.
        if self.task_timeout is not None:
            now = time.monotonic()
            for worker in busy:
                if worker.task is not None and worker.deadline is not None and now > worker.deadline:
                    task = worker.task
                    worker.task = None
                    worker.faults += 1
                    self._requeue(
                        task, pending, f"worker {worker.spawn_index} timed out"
                    )
                    self._replace(worker)
                    settled += 1
        return settled

    def _accept(
        self,
        worker: _Worker,
        task: _Task,
        message,
        results: Dict[int, List[LweSample]],
        stats: SchedulerStats,
    ) -> bool:
        """Validate one worker reply; False means 'treat as a fault'."""
        if not isinstance(message, tuple) or len(message) < 2:
            self.stats.results_rejected += 1
            return False
        if message[0] == "err":
            # A worker-side exception is a task fault: requeue (a transient
            # fault clears on retry; a deterministic one exhausts retries and
            # surfaces the traceback through WorkerPoolError).
            worker.faults += 1
            self.stats.results_rejected += 1
            task.error = message[2] if len(message) > 2 else "unknown worker error"
            task.error_kind = message[3] if len(message) > 3 else ""
            return False
        if message[0] != "ok" or len(message) != 5:
            self.stats.results_rejected += 1
            return False
        _, task_id, outputs, row_count, payload = message
        if task_id != task.task_id or row_count != len(task.rows):
            self.stats.results_rejected += 1
            return False
        if not isinstance(outputs, list) or len(outputs) != len(task.rows):
            self.stats.results_rejected += 1
            return False
        dimension = None
        for output in outputs:
            if not isinstance(output, LweSample):
                self.stats.results_rejected += 1
                return False
            a = np.asarray(output.a)
            if a.ndim != 1 or a.dtype != np.int32:
                self.stats.results_rejected += 1
                return False
            if dimension is None:
                dimension = a.shape[0]
            elif a.shape[0] != dimension:
                self.stats.results_rejected += 1
                return False
        results[task.task_id] = outputs
        # Account the batched bootstrapping calls the worker actually issued.
        per_call = max_rows = len(task.rows)
        if task.chunk_limit:
            per_call = min(per_call, task.chunk_limit)
            max_rows = per_call
        calls = -(-len(task.rows) // per_call) if per_call else 0
        stats.batched_calls += calls
        stats.max_rows_per_call = max(stats.max_rows_per_call, max_rows)
        tel = self.telemetry
        if tel is not None:
            if tel.metrics_enabled and calls:
                tel.count(
                    "fhe_batched_calls_total",
                    "Mixed-gate batched bootstrapping calls issued.",
                    amount=calls,
                )
                remaining = len(task.rows)
                while remaining > 0:
                    tel.observe(
                        "fhe_rows_per_call",
                        min(per_call, remaining),
                        "Coalesced batch width per bootstrapping call.",
                        buckets=ROWS_PER_CALL_BUCKETS,
                    )
                    remaining -= per_call
            self._ingest_payload(task, payload)
            if tel.tracer.enabled and task.trace_ctx is not None:
                trace_ids, flush_span_id = task.trace_ctx
                attrs = {"worker": worker.spawn_index, "rows": len(task.rows)}
                if len(trace_ids) > 1:
                    attrs["traces"] = list(trace_ids)
                tel.tracer.record(
                    "worker_dispatch",
                    trace_ids[0],
                    start=task.sent_wall,
                    duration=time.perf_counter() - task.sent_perf,
                    parent_id=flush_span_id,
                    attrs=attrs,
                )
        return True

    def _requeue(self, task: _Task, pending: List[_Task], reason: str) -> None:
        task.retries += 1
        self.stats.tasks_retried += 1
        self._count("fhe_pool_tasks_retried_total", "Pool tasks requeued after faults.")
        if task.retries > self.max_retries:
            detail = getattr(task, "error", "")
            summary = (
                f"task {task.task_id} ({len(task.rows)} rows for client "
                f"{task.client_id!r}) failed {task.retries} times; last "
                f"fault: {reason}" + (f"\n{detail}" if detail else "")
            )
            if task.error_kind == "engine_fault":
                # The worker's *engine* faulted deterministically — surface
                # that as EngineFault so the scheduler fails the engine over
                # instead of falling back inline onto the same broken kind.
                raise EngineFault(summary)
            raise WorkerPoolError(summary)
        pending.append(task)

    def _reset_busy_workers(self) -> None:
        """After a fatal error, replace every busy worker so stale results
        from abandoned tasks can never be mistaken for a later task's."""
        for worker in list(self._workers):
            if worker.task is not None:
                worker.task = None
                self._replace(worker)

"""The asyncio serving front: sockets in, coalesced batched bootstraps out.

Topology (see ``docs/architecture.md``)::

    clients ──frames──▶ FheServer (asyncio) ──jobs──▶ BatchScheduler ──rows──▶ dispatcher
                                                                     (inline | WorkerPool)

The event loop owns all connection state and the scheduler's queues; the
**flusher task** is the only place bootstrapping happens.  It waits for
submitted work, lets a short coalescing window pass so concurrent clients'
jobs land in the same flush, then runs ``scheduler.flush()`` in the default
thread-pool executor while holding the submit lock — the event loop stays
responsive (handshakes, metrics, frame parsing) but no job can be enqueued
while the queues are being drained.  Completed :class:`JobHandle`\\ s resolve
``asyncio`` futures that per-request handler tasks are awaiting, so replies
go out as soon as their flush completes, in any order (the protocol's
request ids keep pipelined clients matched up).

Isolation and backpressure:

* **Per-connection key namespace.**  Each connection registers *its own*
  cloud key under a private client id; operands are validated against that
  key's dimension and job handles cannot cross client ids (enforced by the
  scheduler).  One connection can never read, or compute under, another's
  key material — the cross-client-leakage property the fuzz suite checks.
* **Bounded queue, reject semantics.**  The scheduler is built with
  ``max_pending_jobs``; a submission beyond it fails fast with a ``busy``
  error frame the client can retry after its in-flight work drains.
* **Bounded reads, await semantics.**  A connection may have at most
  ``max_inflight`` requests being processed; past that the server simply
  stops reading its socket (TCP backpressure), so a slow or flooding client
  stalls itself, never the server's memory.
* A malformed frame (bad magic, oversized prefix, truncated stream) gets
  one best-effort error frame and the connection is closed — after a
  framing error the byte stream is not trustworthy.  Application-level
  errors (unknown gate, wrong artifact, busy) are per-request error frames
  on a healthy connection.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
import zlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.context import FheContext
from repro.runtime.scheduler import (
    BatchScheduler,
    JobAborted,
    JobHandle,
    RowDispatcher,
    SchedulerBusy,
)
from repro.runtime.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    BadHeader,
    ProtocolError,
    encode_frame,
    pack_parts,
    read_frame_async,
    unpack_parts,
)
from repro.tfhe.integers import RadixEvaluator, RadixInt
from repro.tfhe.keys import TFHECloudKey
from repro.tfhe.lwe import LweBatch, LweSample
from repro.telemetry import DEFAULT_LATENCY_BUCKETS, Telemetry
from repro.tfhe.serialize import (
    SerializationError,
    circuit_from_json,
    from_bytes,
    to_bytes,
)

__all__ = ["FheServer", "serve"]

#: Ops that represent homomorphic work (traced, per-session accounted).
_JOB_OPS = frozenset({"gate", "lut", "circuit", "radix_add"})


class _RequestError(Exception):
    """Internal: maps an op failure to one ``{kind, message}`` error frame."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message


class _SessionState:
    """Server-side state for one client *session*, surviving reconnects.

    A client that sends a ``session`` token in its request headers gets a
    durable identity: its key registration, a bounded cache of success
    replies keyed by request id (so retried requests are answered from the
    cache — exactly-once results under at-least-once delivery), and an
    inflight map deduplicating *concurrent* duplicates of the same request.
    Token-less connections keep the historical ephemeral behaviour.
    """

    def __init__(self, token: str, cache_size: int) -> None:
        self.token = token
        #: Scheduler client id — session-scoped, so a reconnect reuses the
        #: same registered context instead of re-warming a new one.
        self.client_id = f"sess-{token}"
        self.cache_size = cache_size
        self.registered = False
        self.key_fingerprint: Optional[int] = None
        self.register_reply: Optional[Tuple[Dict[str, Any], bytes]] = None
        #: request id → (reply header, reply body); success replies only —
        #: errors are never cached, so a retry re-executes them.
        self.results: "OrderedDict[int, Tuple[Dict[str, Any], bytes]]" = OrderedDict()
        #: request id → future resolving to this request's outcome tuple;
        #: a concurrent duplicate awaits it instead of re-executing.
        self.inflight: Dict[int, asyncio.Future] = {}
        self.refs = 0
        self.last_seen = time.monotonic()

    def remember(self, request_id: int, header: Dict[str, Any], body: bytes) -> None:
        self.results[request_id] = (header, body)
        while len(self.results) > self.cache_size:
            self.results.popitem(last=False)

    def prune_acked(self, ack: Any) -> None:
        """Drop cached replies the client acknowledged (ids below ``ack``)."""
        if not isinstance(ack, int):
            return
        for request_id in [rid for rid in self.results if rid < ack]:
            del self.results[request_id]


class _Connection:
    """Per-connection state: its writer, key namespace and inflight bound."""

    def __init__(self, conn_id: str, writer: asyncio.StreamWriter, max_inflight: int) -> None:
        self.conn_id = conn_id
        #: Scheduler namespace — the connection id until a session token
        #: binds this connection to a durable session's client id.
        self.client_id = conn_id
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight = asyncio.Semaphore(max_inflight)
        self.registered = False
        self.session: Optional[_SessionState] = None
        self.tasks: set = set()


class FheServer:
    """Serves the batched-bootstrapping runtime over TCP.

    Parameters
    ----------
    dispatcher:
        Row dispatcher for the underlying :class:`BatchScheduler` — pass a
        :class:`repro.runtime.workers.WorkerPool` to shard flushes across
        processes, or ``None`` for single-process inline execution.
    host, port:
        Listen address; ``port=0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    max_pending_jobs:
        Bound on the scheduler queue; submissions past it are rejected
        with a ``busy`` error frame.
    max_inflight:
        Bound on concurrently-processed requests per connection; past it
        the server stops reading that socket until replies drain.
    flush_interval:
        Coalescing window in seconds between the first queued job and the
        flush that runs it (more concurrent clients per batched call).
    max_rows_per_call:
        Forwarded to the scheduler: chunk bound for one batched bootstrap.
    max_frame:
        Frame size ceiling for this server's connections.
    engine:
        Default engine policy for registered keys: a registry kind,
        ``"auto"`` (pick the best available backend per key via
        :func:`repro.tfhe.transform.select_best_engine`), or ``None`` to
        honour each key's recorded transform spec.  A client may override
        it per connection in its ``register_key`` request.
    session_cache_size:
        Per-session bound on cached success replies (the idempotent-retry
        window).  Clients advance it faster via the ``ack`` header field.
    session_ttl:
        Seconds a disconnected session's state (key registration, reply
        cache) is retained before it is reaped.
    """

    def __init__(
        self,
        dispatcher: Optional[RowDispatcher] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending_jobs: Optional[int] = 1024,
        max_inflight: int = 64,
        flush_interval: float = 0.002,
        max_rows_per_call: Optional[int] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        latency_window: int = 512,
        engine: Optional[str] = None,
        session_cache_size: int = 256,
        session_ttl: float = 300.0,
        telemetry: bool = True,
    ) -> None:
        #: Unified metrics + tracing sink (``telemetry=False`` keeps every
        #: instrumentation site behind a single ``is None`` check — the
        #: zero-overhead-when-disabled contract asserted by the bench).
        self.telemetry: Optional[Telemetry] = Telemetry() if telemetry else None
        self.scheduler = BatchScheduler(
            max_rows_per_call=max_rows_per_call,
            dispatcher=dispatcher,
            max_pending_jobs=max_pending_jobs,
            engine=engine,
            telemetry=self.telemetry,
        )
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.flush_interval = flush_interval
        self.max_frame = max_frame
        self.latency_window = latency_window
        self._server: Optional[asyncio.base_events.Server] = None
        self._flusher: Optional[asyncio.Task] = None
        self._lock = asyncio.Lock()
        self._work_ready = asyncio.Event()
        self._waiters: List[Tuple[JobHandle, asyncio.Future]] = []
        self._connections: Dict[str, _Connection] = {}
        self._conn_counter = 0
        self._flush_seconds: List[float] = []
        self._busy_seconds = 0.0
        self._started_at: Optional[float] = None
        self.session_cache_size = session_cache_size
        self.session_ttl = session_ttl
        self._sessions: Dict[str, _SessionState] = {}
        self._draining = False
        self._drain_seconds: Optional[float] = None
        self._jobs_deduped = 0
        self._jobs_shed = 0
        #: client id → job-op requests served (the ``top_sessions`` view).
        self._session_jobs: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # telemetry helpers                                                  #
    # ------------------------------------------------------------------ #

    def _tel_count(self, name: str, help_text: str, amount: float = 1, **labels) -> None:
        if self.telemetry is not None:
            self.telemetry.count(name, help_text, amount=amount, **labels)

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listener and start the flusher task."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._flusher = asyncio.create_task(self._flush_loop())

    async def stop(self) -> None:
        """Close the listener, all connections, and fail pending futures."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
            self._flusher = None
        for conn in list(self._connections.values()):
            conn.writer.close()
        self._fail_waiters(RuntimeError("server stopped"))

    async def drain(self, timeout: Optional[float] = 30.0) -> float:
        """Graceful drain: stop admitting work, finish everything accepted.

        Closes the listener, pushes a ``draining`` event frame to every
        connected client (so retrying clients fail over instead of queueing
        on a dying server), rejects new job submissions with a retryable
        ``draining`` error, and waits until the scheduler queue, the reply
        waiters and every in-flight request task have resolved — every job
        accepted before the drain started gets its reply.  Returns the
        drain duration in seconds (also surfaced in :meth:`metrics`).
        """
        begin = time.monotonic()
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections.values()):
            try:
                await self._send(conn, {"event": "draining"})
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        deadline = None if timeout is None else begin + timeout
        while True:
            async with self._lock:
                idle = not self.scheduler.pending_jobs and not self._waiters
            if idle and all(not c.tasks for c in self._connections.values()):
                break
            if deadline is not None and time.monotonic() > deadline:
                break
            self._work_ready.set()  # poke the flusher: no new work will arrive
            await asyncio.sleep(0.005)
        self._drain_seconds = time.monotonic() - begin
        return self._drain_seconds

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "FheServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # the flusher: the only place bootstrapping happens                  #
    # ------------------------------------------------------------------ #

    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._work_ready.wait()
            # Coalescing window: let concurrently-arriving jobs join this
            # flush instead of paying one flush each.
            if self.flush_interval:
                await asyncio.sleep(self.flush_interval)
            async with self._lock:
                self._work_ready.clear()
                if not self.scheduler.pending_jobs:
                    self._resolve_waiters()
                    continue
                begin = time.monotonic()
                try:
                    await loop.run_in_executor(None, self.scheduler.flush)
                except Exception as exc:  # noqa: BLE001 - surfaced per-request
                    self._fail_waiters(exc)
                    continue
                elapsed = time.monotonic() - begin
                self._busy_seconds += elapsed
                self._flush_seconds.append(elapsed)
                del self._flush_seconds[: -self.latency_window]
                tel = self.telemetry
                if tel is not None and tel.metrics_enabled:
                    tel.count(
                        "fhe_server_busy_seconds_total",
                        "Monotonic seconds the flusher spent bootstrapping.",
                        amount=elapsed,
                    )
                    tel.observe(
                        "fhe_flush_seconds",
                        elapsed,
                        "Wall time of one scheduler flush.",
                        buckets=DEFAULT_LATENCY_BUCKETS,
                    )
                self._resolve_waiters()

    def _resolve_waiters(self) -> None:
        unresolved = []
        for handle, future in self._waiters:
            if future.cancelled():
                continue
            if handle.done:
                try:
                    future.set_result(handle.result())
                except Exception as exc:  # aborted / failed handle
                    future.set_exception(exc)
            else:
                unresolved.append((handle, future))
        self._waiters = unresolved

    def _fail_waiters(self, exc: BaseException) -> None:
        for _, future in self._waiters:
            if not future.cancelled() and not future.done():
                future.set_exception(exc)
        self._waiters = []

    async def _submit(self, submit_fn) -> Any:
        """Enqueue one job under the lock and await its flushed result."""
        loop = asyncio.get_running_loop()
        async with self._lock:
            try:
                handle = submit_fn()
            except SchedulerBusy as exc:
                raise _RequestError("busy", str(exc)) from None
            future: asyncio.Future = loop.create_future()
            self._waiters.append((handle, future))
            self._work_ready.set()
        try:
            return await future
        except JobAborted as exc:
            raise _RequestError("aborted", str(exc)) from None

    # ------------------------------------------------------------------ #
    # metrics                                                            #
    # ------------------------------------------------------------------ #

    def metrics(self) -> Dict[str, Any]:
        """Live snapshot: throughput, queue depth, latency, worker health."""
        stats = self.scheduler.stats
        latencies = sorted(self._flush_seconds)

        def _pct(q: float) -> float:
            if not latencies:
                return 0.0
            index = min(len(latencies) - 1, int(q * (len(latencies) - 1) + 0.5))
            return latencies[index]

        uptime = time.monotonic() - self._started_at if self._started_at else 0.0
        # Busy time comes from the registry when telemetry is on — the
        # flusher feeds the counter from the same monotonic measurements, so
        # the legacy view and the Prometheus exposition can never disagree.
        busy = self._busy_seconds
        tel = self.telemetry
        if tel is not None and tel.metrics_enabled:
            family = tel.registry.get("fhe_server_busy_seconds_total")
            if family is not None:
                busy = family.value
        snapshot: Dict[str, Any] = {
            "uptime_seconds": uptime,
            "busy_fraction": busy / uptime if uptime else 0.0,
            "connections": len(self._connections),
            "clients": len(self.scheduler._contexts),
            "queue_depth": self.scheduler.pending_jobs,
            "awaiting_results": len(self._waiters),
            "flushes": stats.flushes,
            "rows_bootstrapped": stats.rows_bootstrapped,
            "jobs_completed": stats.jobs_completed,
            "mean_rows_per_call": stats.mean_rows_per_call,
            "bootstraps_per_sec": (
                stats.rows_bootstrapped / busy if busy else 0.0
            ),
            "flush_latency_p50": _pct(0.50),
            "flush_latency_p99": _pct(0.99),
            "sessions": len(self._sessions),
            "jobs_deduped": self._jobs_deduped,
            "jobs_shed": self._jobs_shed,
            "jobs_aborted": stats.jobs_aborted,
            "engine_failovers": stats.engine_failovers,
            "inline_fallbacks": stats.inline_fallbacks,
            "draining": self._draining,
            "drain_seconds": self._drain_seconds or 0.0,
            "top_sessions": sorted(
                (
                    {"client": client, "jobs": jobs}
                    for client, jobs in self._session_jobs.items()
                ),
                key=lambda entry: -entry["jobs"],
            )[:5],
        }
        from repro.tfhe.transform import quarantined_engines

        snapshot["engines_quarantined"] = quarantined_engines()
        dispatcher = self.scheduler.dispatcher
        pool_stats = getattr(dispatcher, "stats", None)
        health = getattr(dispatcher, "health", None)
        if health is not None and pool_stats is not None:
            snapshot["pool"] = {
                "num_workers": getattr(dispatcher, "num_workers", None),
                "tasks_dispatched": pool_stats.tasks_dispatched,
                "tasks_completed": pool_stats.tasks_completed,
                "tasks_retried": pool_stats.tasks_retried,
                "workers_restarted": pool_stats.workers_restarted,
                "results_rejected": pool_stats.results_rejected,
                "breaker_trips": pool_stats.breaker_trips,
                "inline_fallbacks": pool_stats.inline_fallbacks,
                "breaker_open": bool(getattr(dispatcher, "breaker_open", False)),
                "workers": [
                    {
                        "spawn_index": w.spawn_index,
                        "pid": w.pid,
                        "alive": w.alive,
                        "tasks_completed": w.tasks_completed,
                        "faults": w.faults,
                    }
                    for w in health
                ],
            }
        return snapshot

    def _refresh_gauges(self) -> None:
        """Point-in-time gauges, refreshed at exposition time (scrape pull)."""
        tel = self.telemetry
        assert tel is not None
        reg = tel.registry
        uptime = time.monotonic() - self._started_at if self._started_at else 0.0
        reg.gauge("fhe_server_uptime_seconds", "Seconds since start()").set(uptime)
        reg.gauge("fhe_server_draining", "1 while a graceful drain is running.").set(
            1.0 if self._draining else 0.0
        )
        reg.gauge("fhe_connections", "Live client connections.").set(
            len(self._connections)
        )
        reg.gauge("fhe_sessions_active", "Durable sessions held.").set(
            len(self._sessions)
        )
        reg.gauge("fhe_queue_depth", "Scheduler jobs pending flush.").set(
            self.scheduler.pending_jobs
        )
        reg.gauge("fhe_awaiting_results", "Requests awaiting a flushed reply.").set(
            len(self._waiters)
        )
        dispatcher = self.scheduler.dispatcher
        health = getattr(dispatcher, "health", None)
        if health is not None:
            reg.gauge("fhe_pool_workers_alive", "Pool workers currently alive.").set(
                sum(1 for w in health if w.alive)
            )
            reg.gauge(
                "fhe_pool_breaker_open", "1 while the refork breaker is open."
            ).set(1.0 if getattr(dispatcher, "breaker_open", False) else 0.0)

    def render_prometheus(self) -> str:
        """The ``metrics_prom`` payload: gauges refreshed, registry rendered."""
        if self.telemetry is None:
            raise _RequestError(
                "unsupported", "this server was started with telemetry disabled"
            )
        self._refresh_gauges()
        return self.telemetry.render_prometheus()

    # ------------------------------------------------------------------ #
    # connections                                                        #
    # ------------------------------------------------------------------ #

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_counter += 1
        conn = _Connection(
            f"conn{self._conn_counter}", writer, self.max_inflight
        )
        self._connections[conn.conn_id] = conn
        try:
            while True:
                # Await semantics: stop *reading* once max_inflight requests
                # are being processed — the kernel socket buffer, then the
                # client, absorb the backpressure.
                await conn.inflight.acquire()
                try:
                    header, body = await read_frame_async(reader, self.max_frame)
                except (EOFError, ConnectionError):
                    conn.inflight.release()
                    break
                except ProtocolError as exc:
                    conn.inflight.release()
                    await self._send_error(conn, -1, "protocol", str(exc))
                    break  # the stream is desynchronised: drop the peer
                task = asyncio.create_task(self._run_request(conn, header, body))
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        except asyncio.CancelledError:
            # Server stopping with this connection live: end the reader
            # quietly (asyncio's stream callback would log the cancellation
            # as an error otherwise) and let the finally clean up.
            pass
        finally:
            if conn.tasks:
                await asyncio.gather(*conn.tasks, return_exceptions=True)
            await self._cleanup_connection(conn)

    async def _cleanup_connection(self, conn: _Connection) -> None:
        self._connections.pop(conn.conn_id, None)
        if conn.session is not None:
            # Durable session: keep its registration and reply cache alive
            # for a reconnect; reap only after session_ttl of disuse.
            conn.session.refs -= 1
            conn.session.last_seen = time.monotonic()
            async with self._lock:
                self._reap_sessions()
        elif conn.registered:
            async with self._lock:
                loop = asyncio.get_running_loop()
                try:
                    if self.scheduler.pending_jobs:
                        # Orphaned jobs (client gone before its results):
                        # drain them so the queues stay clean, drop results.
                        await loop.run_in_executor(None, self.scheduler.flush)
                        self._resolve_waiters()
                    # force=True: a job enqueued after that flush (racing
                    # request task) gets failed with JobAborted instead of
                    # wedging the teardown — satellite of the abort path.
                    self.scheduler.deregister_client(conn.conn_id, force=True)
                except Exception:  # pragma: no cover - best-effort teardown
                    pass
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    def _reap_sessions(self) -> None:
        """Drop sessions with no live connection past their TTL (lock held)."""
        now = time.monotonic()
        for token in [
            t
            for t, sess in self._sessions.items()
            if sess.refs <= 0 and now - sess.last_seen > self.session_ttl
        ]:
            sess = self._sessions.pop(token)
            if sess.registered:
                try:
                    self.scheduler.deregister_client(sess.client_id, force=True)
                except Exception:  # pragma: no cover - best-effort teardown
                    pass

    async def _send(
        self, conn: _Connection, header: Dict[str, Any], body: bytes = b""
    ) -> None:
        frame = encode_frame(header, body)
        async with conn.write_lock:
            conn.writer.write(frame)
            try:
                await conn.writer.drain()
            except (ConnectionError, OSError):  # peer vanished mid-reply
                pass

    async def _send_error(
        self, conn: _Connection, request_id: int, kind: str, message: str
    ) -> None:
        try:
            await self._send(
                conn,
                {"id": request_id, "error": {"kind": kind, "message": message}},
            )
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    # ------------------------------------------------------------------ #
    # request dispatch                                                   #
    # ------------------------------------------------------------------ #

    def _bind_session(
        self, conn: _Connection, header: Dict[str, Any]
    ) -> Optional[_SessionState]:
        """Resolve the request's ``session`` token to durable session state."""
        token = header.get("session")
        if token is None:
            return conn.session
        if not isinstance(token, str) or not token:
            raise _RequestError("protocol", "'session' must be a non-empty string")
        if conn.session is not None:
            if conn.session.token != token:
                raise _RequestError(
                    "protocol", "connection is already bound to a different session"
                )
            return conn.session
        sess = self._sessions.get(token)
        if sess is None:
            sess = _SessionState(token, self.session_cache_size)
            self._sessions[token] = sess
        sess.refs += 1
        sess.last_seen = time.monotonic()
        conn.session = sess
        conn.client_id = sess.client_id
        return sess

    async def _execute(
        self, conn: _Connection, header: Dict[str, Any], body: bytes
    ) -> Tuple:
        """Run one dispatch, folding every failure into an outcome tuple.

        Outcomes are plain values — ``("ok", header, body)`` or
        ``("err", kind, message)`` — so duplicate-request futures never hold
        exceptions (which asyncio would warn about when unretrieved).
        """
        try:
            reply_header, reply_body = await self._dispatch(conn, header, body)
        except _RequestError as exc:
            return ("err", exc.kind, exc.message)
        except (ProtocolError, SerializationError) as exc:
            return ("err", "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - one request, one error frame
            return ("err", "internal", f"{type(exc).__name__}: {exc}")
        return ("ok", reply_header, reply_body)

    async def _send_outcome(
        self, conn: _Connection, request_id: int, outcome: Tuple
    ) -> None:
        if outcome[0] == "ok":
            reply_header = dict(outcome[1])
            reply_header["id"] = request_id
            await self._send(conn, reply_header, outcome[2])
        else:
            await self._send_error(conn, request_id, outcome[1], outcome[2])

    async def _reply(
        self, conn: _Connection, request_id: int, outcome: Tuple, header: Dict[str, Any]
    ) -> None:
        """Send one outcome frame, recording a ``reply`` span for job ops.

        A retried request answered from the dedup cache passes through here
        too, so one logical job that was delivered twice shows one trace
        with two ``reply`` spans — the signature the chaos suite asserts on.
        """
        tel = self.telemetry
        trace_id = header.get("trace")
        if (
            tel is None
            or not tel.tracer.enabled
            or header.get("op") not in _JOB_OPS
            or not isinstance(trace_id, str)
            or not trace_id
        ):
            await self._send_outcome(conn, request_id, outcome)
            return
        start_wall = time.time()
        start_perf = time.perf_counter()
        await self._send_outcome(conn, request_id, outcome)
        tel.tracer.record(
            "reply",
            trace_id,
            start=start_wall,
            duration=time.perf_counter() - start_perf,
            attrs={"op": header.get("op"), "status": outcome[0], "request": request_id},
        )

    async def _run_request(
        self, conn: _Connection, header: Dict[str, Any], body: bytes
    ) -> None:
        request_id = header.get("id")
        if not isinstance(request_id, int):
            request_id = -1
        tel = self.telemetry
        if (
            tel is not None
            and tel.tracer.enabled
            and header.get("op") in _JOB_OPS
            and not (isinstance(header.get("trace"), str) and header.get("trace"))
        ):
            # Job without a client-supplied trace id: mint one server-side so
            # the whole enqueue → flush → reply path still joins one trace.
            header["trace"] = tel.tracer.new_trace_id()
        try:
            if not isinstance(header.get("id"), int):
                raise _RequestError("protocol", "request header lacks an integer 'id'")
            sess = self._bind_session(conn, header)
            if sess is None:
                await self._reply(
                    conn, request_id, await self._execute(conn, header, body), header
                )
                return
            # Idempotent path: a retried request id is answered from the
            # session's reply cache (or by awaiting the in-flight original)
            # instead of executing twice.
            sess.prune_acked(header.get("ack"))
            cached = sess.results.get(request_id)
            if cached is not None:
                self._jobs_deduped += 1
                self._tel_count(
                    "fhe_jobs_deduped_total", "Requests answered without re-executing."
                )
                await self._reply(conn, request_id, ("ok",) + cached, header)
                return
            inflight = sess.inflight.get(request_id)
            if inflight is not None:
                self._jobs_deduped += 1
                self._tel_count(
                    "fhe_jobs_deduped_total", "Requests answered without re-executing."
                )
                await self._reply(
                    conn, request_id, await asyncio.shield(inflight), header
                )
                return
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            sess.inflight[request_id] = future
            outcome: Tuple = ("err", "aborted", "request cancelled before completion")
            try:
                outcome = await self._execute(conn, header, body)
            finally:
                sess.inflight.pop(request_id, None)
                if outcome[0] == "ok":
                    # Cache BEFORE sending: if the peer vanished mid-reply,
                    # the computed result still answers the retry.
                    sess.remember(request_id, outcome[1], outcome[2])
                if not future.done():
                    future.set_result(outcome)
            await self._reply(conn, request_id, outcome, header)
        except _RequestError as exc:
            await self._send_error(conn, request_id, exc.kind, exc.message)
        except (ProtocolError, SerializationError) as exc:
            await self._send_error(conn, request_id, "bad_request", str(exc))
        except Exception as exc:  # noqa: BLE001 - one request, one error frame
            await self._send_error(conn, request_id, "internal", f"{type(exc).__name__}: {exc}")
        finally:
            conn.inflight.release()

    async def _dispatch(
        self, conn: _Connection, header: Dict[str, Any], body: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        op = header.get("op")
        if not isinstance(op, str):
            raise _RequestError("protocol", "request header lacks a string 'op' field")
        self._tel_count("fhe_requests_total", "Requests dispatched by op.", op=op)
        if op == "hello":
            return {"server": "repro-serve", "protocol": PROTOCOL_VERSION}, b""
        if op == "metrics":
            return {"metrics": self.metrics()}, b""
        if op == "metrics_prom":
            # Prometheus text exposition; like "metrics", introspection stays
            # available during a drain.
            return (
                {"content_type": "text/plain; version=0.0.4"},
                self.render_prometheus().encode("utf-8"),
            )
        if op == "trace_export":
            return self._op_trace_export(header)
        if self._draining:
            # Introspection stays up during a drain; work admission stops.
            raise _RequestError(
                "draining", "server is draining and no longer accepts new work"
            )
        if op in _JOB_OPS:
            self._check_deadline(header)
            self._session_jobs[conn.client_id] = (
                self._session_jobs.get(conn.client_id, 0) + 1
            )
        if op == "register_key":
            return await self._op_register_key(conn, header, body)
        if op == "gate":
            return await self._op_gate(conn, header, body)
        if op == "lut":
            return await self._op_lut(conn, header, body)
        if op == "circuit":
            return await self._op_circuit(conn, header, body)
        if op == "radix_add":
            return await self._op_radix_add(conn, body)
        raise _RequestError("unsupported", f"unknown op {op!r}")

    def _op_trace_export(self, header: Dict[str, Any]) -> Tuple[Dict[str, Any], bytes]:
        """Export the trace ring: Chrome trace-event (default) or span JSON.

        ``trace`` narrows the export to one trace id; ``format`` selects
        ``"chrome"`` (trace-event JSON for chrome://tracing / Perfetto) or
        ``"json"`` (plain span dicts).
        """
        tel = self.telemetry
        if tel is None or not tel.tracer.enabled:
            raise _RequestError(
                "unsupported", "this server was started with telemetry disabled"
            )
        trace_id = header.get("trace")
        if trace_id is not None and not isinstance(trace_id, str):
            raise _RequestError("bad_request", "'trace' must be a string trace id")
        fmt = header.get("format", "chrome")
        if fmt == "chrome":
            payload = tel.tracer.export_chrome(trace_id)
        elif fmt == "json":
            payload = tel.tracer.export_json(trace_id)
        else:
            raise _RequestError(
                "bad_request", f"unknown trace format {fmt!r} (chrome|json)"
            )
        return (
            {"format": fmt, "spans": len(tel.tracer.spans(trace_id))},
            payload.encode("utf-8"),
        )

    def _check_deadline(self, header: Dict[str, Any]) -> None:
        """Deadline-aware load shedding: reject work that cannot make it.

        A client may send ``deadline_ms`` (its remaining per-request
        budget); when the estimated time-to-result — the coalescing window
        plus the median flush latency — already exceeds it, the job is shed
        up front with a typed non-retryable error instead of burning a
        bootstrap whose reply the client will have abandoned.
        """
        deadline_ms = header.get("deadline_ms")
        if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool):
            return
        latencies = sorted(self._flush_seconds)
        p50 = latencies[len(latencies) // 2] if latencies else 0.0
        eta = self.flush_interval + p50
        if deadline_ms / 1000.0 < eta:
            self._jobs_shed += 1
            self._tel_count(
                "fhe_jobs_shed_total", "Jobs rejected up front by deadline shedding."
            )
            raise _RequestError(
                "shed",
                f"deadline of {deadline_ms:.0f}ms cannot be met "
                f"(estimated time to result {eta * 1000.0:.1f}ms)",
            )

    def _context(self, conn: _Connection) -> FheContext:
        registered = conn.registered or (
            conn.session is not None and conn.session.registered
        )
        if not registered:
            raise _RequestError(
                "no_key", "register_key must precede homomorphic operations"
            )
        return self.scheduler.client_context(conn.client_id)

    def _artifact(self, data: bytes, expected_type, what: str):
        try:
            artifact = from_bytes(data)
        except SerializationError as exc:
            raise _RequestError("bad_request", f"{what}: {exc}") from None
        if not isinstance(artifact, expected_type):
            raise _RequestError(
                "bad_request",
                f"{what}: expected {expected_type.__name__}, "
                f"got {type(artifact).__name__}",
            )
        return artifact

    def _check_sample(self, conn: _Connection, sample: LweSample, what: str) -> LweSample:
        n = self._context(conn).params.n
        if np.asarray(sample.a).shape[-1] != n:
            raise _RequestError(
                "bad_request",
                f"{what}: ciphertext dimension {np.asarray(sample.a).shape[-1]} "
                f"does not match this connection's key (n={n})",
            )
        return sample

    # -- ops ------------------------------------------------------------

    @staticmethod
    def _check_requested_engine(requested: Any) -> Optional[str]:
        """Validate a client-requested engine kind against the registry.

        Unknown or registered-but-unavailable engines fail with an
        ``unsupported_engine`` error frame whose message carries every
        backend's availability status (the reason strings from
        :func:`repro.tfhe.transform.available_engines`), so the client sees
        *why* — e.g. ``cupy: not installed`` — not just that it failed.
        """
        if requested is None:
            return None
        if not isinstance(requested, str):
            raise _RequestError(
                "bad_request", "register_key 'engine' field must be a string"
            )
        if requested == "auto":
            return requested
        from repro.tfhe.transform import available_engines

        engines = available_engines()
        status = ", ".join(
            f"{kind}: {reason or 'available'}" for kind, reason in engines.items()
        )
        if requested not in engines:
            raise _RequestError(
                "unsupported_engine",
                f"unknown engine {requested!r}; registered engines: {status}",
            )
        reason = engines[requested]
        if reason is not None:
            raise _RequestError(
                "unsupported_engine",
                f"engine {requested!r} is unavailable on this server "
                f"({reason}); registered engines: {status}",
            )
        return requested

    async def _op_register_key(
        self, conn: _Connection, header: Dict[str, Any], body: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        sess = conn.session
        (key_bytes,) = unpack_parts(body, expected=1)
        if sess is not None and sess.registered:
            # Idempotent re-registration after a reconnect: the same key
            # gets the cached reply; a different key is a hard error (the
            # session's queued results were computed under the old key).
            if zlib.crc32(key_bytes) != sess.key_fingerprint:
                raise _RequestError(
                    "bad_request", "session already registered a different key"
                )
            conn.registered = True
            assert sess.register_reply is not None
            self._jobs_deduped += 1
            return dict(sess.register_reply[0]), sess.register_reply[1]
        if conn.registered:
            raise _RequestError("bad_request", "this connection already registered a key")
        engine = self._check_requested_engine(header.get("engine"))
        cloud = self._artifact(key_bytes, TFHECloudKey, "cloud key")
        loop = asyncio.get_running_loop()
        async with self._lock:
            # Building the context warms the spectrum cache (and, for a
            # worker pool, packs the shared segment) — do it off-loop.
            context = await loop.run_in_executor(
                None,
                lambda: self.scheduler.register_client(
                    conn.client_id, cloud, engine=engine
                ),
            )
            conn.registered = True
        reply = {
            "params": context.params.name,
            "unroll_factor": context.unroll_factor,
            "engine": type(context.engine).__name__,
            "engine_kind": context.engine.engine_kind,
        }
        if sess is not None:
            sess.registered = True
            sess.key_fingerprint = zlib.crc32(key_bytes)
            sess.register_reply = (dict(reply), b"")
        return reply, b""

    async def _op_gate(
        self, conn: _Connection, header: Dict[str, Any], body: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        name = header.get("gate")
        if not isinstance(name, str):
            raise _RequestError("bad_request", "gate op needs a string 'gate' field")
        part_a, part_b = unpack_parts(body, expected=2)
        ca = self._check_sample(conn, self._artifact(part_a, LweSample, "operand a"), "operand a")
        cb = self._check_sample(conn, self._artifact(part_b, LweSample, "operand b"), "operand b")
        session = self.scheduler.session(conn.client_id)
        trace_id = header.get("trace") if isinstance(header.get("trace"), str) else None
        try:
            result = await self._submit(
                lambda: session.submit_gate(name, ca, cb, trace_id=trace_id)
            )
        except ValueError as exc:  # unknown gate name
            raise _RequestError("bad_request", str(exc)) from None
        return {}, pack_parts([to_bytes(result)])

    async def _op_lut(
        self, conn: _Connection, header: Dict[str, Any], body: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        table = header.get("table")
        if not isinstance(table, int):
            raise _RequestError("bad_request", "lut op needs an integer 'table' field")
        parts = unpack_parts(body)
        if not parts:
            raise _RequestError("bad_request", "lut op needs at least one operand")
        operands = [
            self._check_sample(
                conn,
                self._artifact(part, LweSample, f"operand {i}"),
                f"operand {i}",
            )
            for i, part in enumerate(parts)
        ]
        session = self.scheduler.session(conn.client_id)
        trace_id = header.get("trace") if isinstance(header.get("trace"), str) else None
        try:
            result = await self._submit(
                lambda: session.submit_lut(table, operands, trace_id=trace_id)
            )
        except ValueError as exc:  # infeasible table / arity
            raise _RequestError("bad_request", str(exc)) from None
        return {}, pack_parts([to_bytes(result)])

    async def _op_circuit(
        self, conn: _Connection, header: Dict[str, Any], body: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        circuit_obj = header.get("circuit")
        if not isinstance(circuit_obj, dict):
            raise _RequestError("bad_request", "circuit op needs a JSON 'circuit' field")
        try:
            circuit = circuit_from_json(json.dumps(circuit_obj))
        except SerializationError as exc:
            raise _RequestError("bad_request", f"circuit: {exc}") from None
        (batch_bytes,) = unpack_parts(body, expected=1)
        batch = self._artifact(batch_bytes, LweBatch, "input batch")
        bits = [
            self._check_sample(conn, bit, f"input bit {i}")
            for i, bit in enumerate(batch.to_samples())
        ]
        widths = {name: len(w) for name, w in circuit.input_wires.items()}
        total = sum(widths.values())
        if len(bits) != total:
            raise _RequestError(
                "bad_request",
                f"circuit declares {total} input bits "
                f"({widths}), batch carries {len(bits)}",
            )
        inputs: Dict[str, List[LweSample]] = {}
        cursor = 0
        for name, wires in circuit.input_wires.items():
            inputs[name] = bits[cursor : cursor + len(wires)]
            cursor += len(wires)
        session = self.scheduler.session(conn.client_id)
        trace_id = header.get("trace") if isinstance(header.get("trace"), str) else None
        try:
            outputs = await self._submit(
                lambda: session.submit_circuit(circuit, inputs, trace_id=trace_id)
            )
        except ValueError as exc:
            raise _RequestError("bad_request", str(exc)) from None
        ordered: List[LweSample] = []
        for name in circuit.output_wires:
            ordered.extend(outputs[name])
        return {
            "outputs": {n: len(w) for n, w in circuit.output_wires.items()}
        }, pack_parts([to_bytes(LweBatch.from_samples(ordered))])

    async def _op_radix_add(
        self, conn: _Connection, body: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        part_x, part_y = unpack_parts(body, expected=2)
        x = self._artifact(part_x, RadixInt, "operand x")
        y = self._artifact(part_y, RadixInt, "operand y")
        if x.encoding != y.encoding:
            raise _RequestError("bad_request", "radix operands use different encodings")
        context = self._context(conn)
        loop = asyncio.get_running_loop()
        async with self._lock:
            # Runs on the connection's own context; carry propagation (if
            # the bounds demand it) bootstraps in-process, so serialize it
            # with flushes via the same lock.
            def _add() -> RadixInt:
                evaluator = RadixEvaluator(context, x.encoding)
                return evaluator.add(x, y)

            try:
                result = await loop.run_in_executor(None, _add)
            except ValueError as exc:
                raise _RequestError("bad_request", str(exc)) from None
        return {}, pack_parts([to_bytes(result)])


async def serve(
    dispatcher: Optional[RowDispatcher] = None,
    host: str = "127.0.0.1",
    port: int = 8470,
    drain_timeout: Optional[float] = 30.0,
    **kwargs: Any,
) -> None:
    """Run an :class:`FheServer` until signalled (used by ``tools/serve.py``).

    SIGINT/SIGTERM are handled *inside* the event loop (where supported) so
    shutdown is an orderly **graceful drain** — admission stops, connected
    clients are notified, every accepted job still gets its reply — before
    the server (and the caller's worker pool / shared memory, via its
    ``finally``) is torn down.  A second signal skips the rest of the drain
    and stops immediately.
    """
    server = FheServer(dispatcher=dispatcher, host=host, port=port, **kwargs)
    await server.start()
    print(f"repro-serve listening on {server.host}:{server.port}", flush=True)
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    force_stop = asyncio.Event()
    handled = []

    def _on_signal() -> None:
        if stopping.is_set():
            force_stop.set()
        else:
            stopping.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _on_signal)
            handled.append(signum)
        except (NotImplementedError, RuntimeError):  # non-Unix / nested loop
            pass
    try:
        if handled:
            await stopping.wait()
            print("repro-serve draining...", flush=True)
            drain_task = asyncio.create_task(server.drain(timeout=drain_timeout))
            force_task = asyncio.create_task(force_stop.wait())
            done, pending = await asyncio.wait(
                {drain_task, force_task}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            if drain_task in done:
                print(
                    f"repro-serve drained in {drain_task.result():.2f}s", flush=True
                )
            else:
                print("repro-serve drain interrupted, stopping now", flush=True)
        else:
            await server.serve_forever()
    finally:
        for signum in handled:
            loop.remove_signal_handler(signum)
        await server.stop()

"""Deterministic fault injection for the serving stack (tests and drills).

Three chaos tools, all seed-free and fully scripted — every fault fires at
an exact, declared point, so a failing chaos test replays identically:

* :class:`ChaosProxy` — a frame-aware TCP proxy between a client and the
  server.  Per accepted connection (by accept order) and per direction
  (``c2s`` / ``s2c``) a *plan* maps frame indices to actions: drop the
  connection, truncate a frame mid-body, flip one bit (which the v2 CRC
  must catch), or delay delivery.  The proxy parses only the length prefix
  — never the checksum — so corrupted frames are forwarded intact for the
  endpoint to reject.
* :class:`FlakyEngine` — a transform engine that delegates every operation
  to a real base engine bit-identically, but raises
  :class:`repro.tfhe.transform.EngineFault` on the Nth transform call.  It
  masquerades as a registered engine kind, so
  :meth:`repro.runtime.context.FheContext.failover` quarantines that kind
  and falls back within the error-model family.
* :class:`SlowDispatcher` — wraps a :class:`RowDispatcher`, sleeping before
  each round (slow flushes for deadline/drain tests).

The integration suite (``tests/test_chaos.py``) drives
:class:`repro.runtime.resilient.ResilientClient` through these faults and
asserts the resilience contract: every job completes bit-identically or
fails with a typed retryable error — never silently wrong, never hung.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.runtime.context import FheContext
from repro.runtime.protocol import _PREFIX
from repro.runtime.scheduler import (
    Row,
    RowDispatcher,
    SchedulerStats,
    _round_scope,
    execute_rows,
)
from repro.tfhe.lwe import LweSample
from repro.tfhe.transform import EngineFault, NegacyclicTransform

__all__ = ["ChaosProxy", "FlakyEngine", "SlowDispatcher"]


# --------------------------------------------------------------------------- #
# the proxy                                                                   #
# --------------------------------------------------------------------------- #


def _read_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class ChaosProxy:
    """Frame-aware TCP proxy injecting scripted transport faults.

    Parameters
    ----------
    upstream_host, upstream_port:
        The real server to forward to.
    plans:
        ``{connection_index: {direction: {frame_index: action}}}`` where
        ``connection_index`` counts accepted client connections from 0,
        ``direction`` is ``"c2s"`` or ``"s2c"``, ``frame_index`` counts
        frames pumped in that direction from 0, and ``action`` is one of::

            {"action": "drop"}                      # close both sockets
            {"action": "truncate", "bytes": 7}      # forward 7 bytes, close
            {"action": "corrupt", "offset": -3}     # XOR one bit, forward
            {"action": "corrupt", "offset": -3, "mask": 0x10}
            {"action": "delay", "seconds": 0.05}    # sleep, then forward

        Unlisted connections/frames are forwarded untouched.

    The proxy listens on ``127.0.0.1`` with an OS-assigned :attr:`port`.
    Point a client at it instead of the server.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plans: Optional[Dict[int, Dict[str, Dict[int, Dict[str, Any]]]]] = None,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plans = plans or {}
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()
        self._closed = False
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        #: Connections accepted so far (also the next connection's index).
        self.connections = 0
        accept = threading.Thread(target=self._accept_loop, daemon=True)
        accept.start()
        self._threads.append(accept)

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            index = self.connections
            self.connections += 1
            plan = self.plans.get(index, {})
            try:
                server = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=30.0
                )
            except OSError:
                client.close()
                continue
            for sock in (client, server):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                self._conns.extend([client, server])
            for direction, src, dst in (
                ("c2s", client, server),
                ("s2c", server, client),
            ):
                pump = threading.Thread(
                    target=self._pump,
                    args=(src, dst, plan.get(direction, {})),
                    daemon=True,
                )
                pump.start()
                self._threads.append(pump)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        actions: Dict[int, Dict[str, Any]],
    ) -> None:
        """Forward whole frames src → dst, applying scripted actions."""
        frame_index = 0
        try:
            while True:
                frame = self._read_raw_frame(src)
                if frame is None:
                    break
                action = actions.get(frame_index, None)
                frame_index += 1
                if action is None:
                    dst.sendall(frame)
                    continue
                kind = action["action"]
                if kind == "drop":
                    break
                if kind == "truncate":
                    dst.sendall(frame[: int(action.get("bytes", len(frame) // 2))])
                    break
                if kind == "corrupt":
                    mutated = bytearray(frame)
                    mutated[int(action.get("offset", -1))] ^= int(
                        action.get("mask", 0x01)
                    )
                    dst.sendall(bytes(mutated))
                    continue
                if kind == "delay":
                    time.sleep(float(action.get("seconds", 0.01)))
                    dst.sendall(frame)
                    continue
                raise ValueError(f"unknown chaos action {kind!r}")
        except OSError:
            pass
        finally:
            # A chaos pump never half-closes: both ends die together, the
            # way a real connection reset looks to both peers.  shutdown()
            # before close() — close() alone does not wake a peer blocked
            # in recv() on another thread, it just leaks the wait until the
            # socket timeout.
            for sock in (src, dst):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass

    @staticmethod
    def _read_raw_frame(sock: socket.socket) -> Optional[bytes]:
        """One raw v2 frame (prefix + header + body), unvalidated.

        Only the length fields are parsed — magic and CRC pass through
        untouched so corruption injected upstream reaches the endpoint.
        """
        prefix = _read_exact(sock, _PREFIX.size)
        if prefix is None:
            return None
        _magic, header_len, body_len, _crc = _PREFIX.unpack(prefix)
        rest = _read_exact(sock, header_len + body_len)
        if rest is None:
            return prefix  # truncated upstream: forward what exists
        return prefix + rest


# --------------------------------------------------------------------------- #
# the flaky engine                                                            #
# --------------------------------------------------------------------------- #


class FlakyEngine(NegacyclicTransform):
    """Delegates to a real engine; raises :class:`EngineFault` on cue.

    ``fail_on_call`` is the 1-based index of the *transform call* (a
    ``forward``, ``contract_accumulate`` or ``multiply``) that raises; with
    ``fail_forever=True`` every call from that point on raises, otherwise
    only that one call does.  All other behaviour — including the spectrum
    algebra and the fused external-product path — is the base engine's own
    implementation, so results computed around the fault stay bit-identical
    to the base engine.

    ``masquerade_kind`` sets the instance's ``engine_kind`` (default: the
    base engine's), which is what
    :meth:`repro.runtime.context.FheContext.failover` quarantines.
    """

    def __init__(
        self,
        base: NegacyclicTransform,
        fail_on_call: int = 1,
        fail_forever: bool = False,
        masquerade_kind: Optional[str] = None,
    ) -> None:
        super().__init__(base.degree)
        self.base = base
        self.fail_on_call = int(fail_on_call)
        self.fail_forever = fail_forever
        self.calls = 0
        self.faults_raised = 0
        self.stats = base.stats  # one shared op counter, as callers expect
        if masquerade_kind is not None or base.engine_kind is not None:
            # Instance attribute shadowing the ClassVar: failover reads it
            # via getattr and quarantines this kind in the registry.
            self.engine_kind = (
                masquerade_kind if masquerade_kind is not None else base.engine_kind
            )

    def _tick(self) -> None:
        self.calls += 1
        due = (
            self.calls >= self.fail_on_call
            if self.fail_forever
            else self.calls == self.fail_on_call
        )
        if due:
            self.faults_raised += 1
            raise EngineFault(
                f"injected engine fault on transform call {self.calls}"
            )

    def engine_options(self) -> Dict[str, Any]:
        return self.base.engine_options()

    # -- faulting call sites ----------------------------------------------
    def forward(self, coeffs):
        self._tick()
        return self.base.forward(coeffs)

    def contract_accumulate(self, int_stack, tensor, reduce: bool = True):
        self._tick()
        return self.base.contract_accumulate(int_stack, tensor, reduce)

    def multiply(self, int_poly, torus_poly):
        self._tick()
        return self.base.multiply(int_poly, torus_poly)

    # -- transparent delegation -------------------------------------------
    def backward(self, spectrum):
        return self.base.backward(spectrum)

    def spectrum_zero(self):
        return self.base.spectrum_zero()

    def spectrum_add(self, a, b):
        return self.base.spectrum_add(a, b)

    def spectrum_mul(self, a, b):
        return self.base.spectrum_mul(a, b)

    def spectrum_copy(self, a):
        return self.base.spectrum_copy(a)

    def spectrum_shape(self, spectrum):
        return self.base.spectrum_shape(spectrum)

    def spectrum_expand(self, spectrum, axis):
        return self.base.spectrum_expand(spectrum, axis)

    def spectrum_take_col(self, spectrum, col):
        return self.base.spectrum_take_col(spectrum, col)

    def spectrum_index(self, spectrum, index):
        return self.base.spectrum_index(spectrum, index)

    def spectrum_stack(self, spectra):
        return self.base.spectrum_stack(spectra)

    def spectrum_sum(self, spectrum):
        return self.base.spectrum_sum(spectrum)

    def spectrum_contract(self, stack, operand):
        return self.base.spectrum_contract(stack, operand)

    def multiply_accumulate(self, int_polys, spectra):
        return self.base.multiply_accumulate(int_polys, spectra)


# --------------------------------------------------------------------------- #
# the slow dispatcher                                                         #
# --------------------------------------------------------------------------- #


class SlowDispatcher(RowDispatcher):
    """Wraps a dispatcher, sleeping before each round (slow-flush chaos)."""

    def __init__(
        self, delay: float, inner: Optional[RowDispatcher] = None
    ) -> None:
        self.delay = float(delay)
        self.inner = inner
        self.rounds = 0

    def run_rows(
        self,
        client_id: str,
        context: FheContext,
        rows: Sequence[Row],
        stats: SchedulerStats,
        max_rows_per_call: Optional[int] = None,
        round_ctx=None,
    ) -> List[LweSample]:
        self.rounds += 1
        time.sleep(self.delay)
        if self.inner is not None:
            self.inner.telemetry = self.telemetry
            return self.inner.run_rows(
                client_id, context, rows, stats, max_rows_per_call, round_ctx=round_ctx
            )
        with _round_scope(context, round_ctx):
            return execute_rows(context, rows, stats, max_rows_per_call)

    def register_client(self, client_id: str, context: FheContext) -> None:
        if self.inner is not None:
            self.inner.register_client(client_id, context)

    def deregister_client(self, client_id: str) -> None:
        if self.inner is not None:
            self.inner.deregister_client(client_id)

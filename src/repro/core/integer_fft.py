"""The approximate multiplication-less integer negacyclic transform.

This is MATCHA's replacement for the double-precision FFT/IFFT kernels of the
TFHE library (Section 4.1).  Polynomials are moved between the coefficient
representation and the Lagrange half-complex representation with an integer
FFT whose butterflies are *lifting rotations*: every twiddle multiplication is
three shear steps with dyadic-value-quantised coefficients, realisable with
adders and binary shifters only (:mod:`repro.core.lifting`).

Differences from an exact transform, and why TFHE tolerates them:

* the twiddle factors are quantised to ``twiddle_bits`` fractional bits
  (the paper's DVQTFs) — quantisation error falls with the bit-width and is
  the knob swept in Figure 8;
* every lifting step rounds its scaled operand to an integer — this is the
  irreducible error floor that keeps the approximate transform above the
  double-precision baseline even with 64-bit DVQTFs;
* the transform is *integer to integer*, so the accelerator needs no floating
  point hardware at all.

The resulting polynomial-product error is absorbed by the noise term of the
ciphertext and rounded away at decryption, because every TFHE gate bootstraps
(Section 4.1 "Novelty").

Implementation notes
--------------------

* The forward direction uses a decimation-in-frequency flow (natural input,
  bit-reversed output) and the backward direction a decimation-in-time flow
  (bit-reversed input, natural output); spectra therefore live in bit-reversed
  order and no bit-reversal pass is ever executed, mirroring the paper's
  discussion of bit-reversal overhead.
* Small operands (the gadget-decomposed accumulator rows) are pre-scaled by a
  power of two so the per-step rounding error stays far below the ciphertext
  noise; the scale travels with the spectrum and is removed after the
  pointwise products.  This models the fixed-point headroom of MATCHA's 64-bit
  butterfly datapath.
* The vectorised rotation uses exactly quantised dyadic coefficients and
  round-to-nearest products.  The scalar shift/add datapath
  (:meth:`repro.core.lifting.DyadicCoefficient.apply_shift_add`) is validated
  against it in the unit tests; the two differ only in the final-bit rounding
  convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.lifting import LiftingRotationArray
from repro.tfhe.transform import NegacyclicTransform
from repro.utils.bits import is_power_of_two


@dataclass
class IntegerSpectrum:
    """A Lagrange-domain polynomial with an attached fixed-point scale.

    ``values`` hold integers (stored in a complex128 array); the represented
    spectrum is ``values / 2**scale_bits``.

    ``values`` may be a *stack* of spectra of shape ``(..., N/2)``; then
    ``scale_bits`` is an int64 array of the batch shape ``values.shape[:-1]``
    carrying one fixed-point scale per stacked spectrum, so batched transforms
    stay bit-identical to transforming each polynomial on its own.
    """

    values: np.ndarray
    scale_bits: "int | np.ndarray"

    def copy(self) -> "IntegerSpectrum":
        scale = self.scale_bits
        if isinstance(scale, np.ndarray):
            scale = scale.copy()
        return IntegerSpectrum(self.values.copy(), scale)


class ApproximateNegacyclicTransform(NegacyclicTransform):
    """Approximate multiplication-less integer FFT/IFFT engine.

    Parameters
    ----------
    degree:
        Ring degree ``N`` (a power of two).
    twiddle_bits:
        Bit-width ``beta`` of the dyadic-value-quantised twiddle factors
        (the paper's DVQTFs; Figure 8 sweeps this knob, MATCHA ships with 64).
    target_msb:
        Fixed-point headroom target: forward operands are scaled up so their
        magnitude approaches ``2**target_msb``, keeping rounding error far
        below the ciphertext noise.  The default (36) models the headroom of
        the 64-bit butterfly datapath and is calibrated so the 64-bit-DVQTF
        error floor of a polynomial product lands at about −147 dB, next to
        the paper's reported −141 dB (Figure 8).
    """

    engine_kind = "approx"

    def __init__(self, degree: int, twiddle_bits: int = 64, target_msb: int = 36) -> None:
        super().__init__(degree)
        if not is_power_of_two(degree):
            raise ValueError("ring degree must be a power of two")
        if twiddle_bits < 1:
            raise ValueError("twiddle_bits must be >= 1")
        self.twiddle_bits = int(twiddle_bits)
        self.target_msb = int(target_msb)
        self._half = degree // 2

        # Twist rotations: element s is rotated by +pi*s/N (forward) and the
        # inverse rotation on the way back.
        s = np.arange(self._half)
        self._twist = LiftingRotationArray(np.pi * s / degree, twiddle_bits)

        # Per-stage butterfly rotations for the DIF (forward) and DIT
        # (backward) flows.
        self._dif_stages: List[Tuple[int, LiftingRotationArray]] = []
        length = self._half
        while length >= 2:
            angles = 2.0 * np.pi * np.arange(length // 2) / length
            self._dif_stages.append((length, LiftingRotationArray(angles, twiddle_bits)))
            length //= 2

        self._dit_stages: List[Tuple[int, LiftingRotationArray]] = []
        length = 2
        while length <= self._half:
            angles = -2.0 * np.pi * np.arange(length // 2) / length
            self._dit_stages.append((length, LiftingRotationArray(angles, twiddle_bits)))
            length *= 2

    # ------------------------------------------------------------------ #
    # conversions                                                         #
    # ------------------------------------------------------------------ #
    def _choose_scale(self, coeffs: np.ndarray) -> "int | np.ndarray":
        """Per-polynomial fixed-point scale (an int64 array for stacked input)."""
        peak = np.maximum(np.max(np.abs(coeffs), axis=-1), 1.0)
        msb = np.ceil(np.log2(peak + 1.0)).astype(np.int64)
        scale = np.maximum(np.int64(0), np.int64(self.target_msb) - msb)
        return int(scale) if scale.ndim == 0 else scale

    def forward(self, coeffs: np.ndarray) -> IntegerSpectrum:
        """Coefficients → Lagrange domain (the paper's IFFT kernel)."""
        self.stats.forward_calls += 1
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError("polynomial degree mismatch")
        half = self._half
        batch = coeffs.shape[:-1]
        scale_bits = self._choose_scale(coeffs)
        # Multiplication by an exact power of two — exact in float64, so the
        # per-polynomial scales keep batched results bit-identical to looping.
        scaled = coeffs * np.exp2(np.asarray(scale_bits, dtype=np.float64))[..., None]

        re = scaled[..., :half].copy()
        im = scaled[..., half:].copy()
        re, im = self._twist.forward(re, im)

        for length, rotation in self._dif_stages:
            re = re.reshape(batch + (half // length, length))
            im = im.reshape(batch + (half // length, length))
            half_length = length // 2
            top_re, bot_re = re[..., :half_length], re[..., half_length:]
            top_im, bot_im = im[..., :half_length], im[..., half_length:]
            sum_re, sum_im = top_re + bot_re, top_im + bot_im
            diff_re, diff_im = top_re - bot_re, top_im - bot_im
            rot_re, rot_im = rotation.forward(diff_re, diff_im)
            re = np.concatenate([sum_re, rot_re], axis=-1).reshape(batch + (half,))
            im = np.concatenate([sum_im, rot_im], axis=-1).reshape(batch + (half,))

        return IntegerSpectrum(values=re + 1j * im, scale_bits=scale_bits)

    def backward(self, spectrum: IntegerSpectrum) -> np.ndarray:
        """Lagrange domain → int64 coefficients (the paper's FFT kernel)."""
        self.stats.backward_calls += 1
        half = self._half
        values = np.asarray(spectrum.values, dtype=np.complex128)
        if values.shape[-1] != half:
            raise ValueError("spectrum length mismatch")
        batch = values.shape[:-1]
        re = values.real.copy()
        im = values.imag.copy()

        for length, rotation in self._dit_stages:
            re = re.reshape(batch + (half // length, length))
            im = im.reshape(batch + (half // length, length))
            half_length = length // 2
            top_re, bot_re = re[..., :half_length], re[..., half_length:]
            top_im, bot_im = im[..., :half_length], im[..., half_length:]
            rot_re, rot_im = rotation.forward(bot_re, bot_im)
            # Halve each stage output: log2(half) halvings realise the 1/(N/2)
            # normalisation of the inverse transform.
            new_top_re = np.round((top_re + rot_re) * 0.5)
            new_top_im = np.round((top_im + rot_im) * 0.5)
            new_bot_re = np.round((top_re - rot_re) * 0.5)
            new_bot_im = np.round((top_im - rot_im) * 0.5)
            re = np.concatenate([new_top_re, new_bot_re], axis=-1).reshape(batch + (half,))
            im = np.concatenate([new_top_im, new_bot_im], axis=-1).reshape(batch + (half,))

        re, im = self._twist.inverse(re, im)

        descale = np.exp2(np.asarray(spectrum.scale_bits, dtype=np.float64))[..., None]
        coeffs = np.empty(batch + (self.degree,), dtype=np.float64)
        coeffs[..., :half] = re
        coeffs[..., half:] = im
        return np.round(coeffs / descale).astype(np.int64)

    # ------------------------------------------------------------------ #
    # spectrum algebra                                                    #
    # ------------------------------------------------------------------ #
    def spectrum_zero(self) -> IntegerSpectrum:
        return IntegerSpectrum(np.zeros(self._half, dtype=np.complex128), 0)

    def spectrum_add(self, a: IntegerSpectrum, b: IntegerSpectrum) -> IntegerSpectrum:
        self.stats.pointwise_ops += 1
        if a.values.ndim == 1 and b.values.ndim == 1:
            # The all-zero spectrum is the exact additive identity regardless
            # of scale.
            if not np.any(a.values):
                return b.copy()
            if not np.any(b.values):
                return a.copy()
            if a.scale_bits == b.scale_bits:
                return IntegerSpectrum(a.values + b.values, a.scale_bits)
            target = min(a.scale_bits, b.scale_bits)
            a_vals = np.round(a.values / float(1 << (a.scale_bits - target)))
            b_vals = np.round(b.values / float(1 << (b.scale_bits - target)))
            return IntegerSpectrum(a_vals + b_vals, target)
        return self._spectrum_add_batched(a, b)

    def _spectrum_add_batched(self, a: IntegerSpectrum, b: IntegerSpectrum) -> IntegerSpectrum:
        """Stacked addition replicating the scalar semantics per batch element.

        A zero element must not drag the common scale down (the scalar path
        returns the other operand untouched), so zero elements take the other
        operand's scale when the per-element target scale is computed.
        """
        half = self._half
        shape = np.broadcast_shapes(a.values.shape, b.values.shape)
        batch = shape[:-1]
        a_vals = np.broadcast_to(a.values, shape)
        b_vals = np.broadcast_to(b.values, shape)
        a_scale = np.broadcast_to(np.asarray(a.scale_bits, dtype=np.int64), batch)
        b_scale = np.broadcast_to(np.asarray(b.scale_bits, dtype=np.int64), batch)

        zero_a = ~np.any(a_vals, axis=-1)
        zero_b = ~np.any(b_vals, axis=-1)
        eff_a = np.where(zero_a, b_scale, a_scale)
        eff_b = np.where(zero_b, a_scale, b_scale)
        target = np.minimum(eff_a, eff_b)
        # Division by an exact power of two; zero rows divide to zero, so a
        # negative exponent for an all-zero row is harmless.
        a_out = np.round(a_vals / np.exp2((a_scale - target).astype(np.float64))[..., None])
        b_out = np.round(b_vals / np.exp2((b_scale - target).astype(np.float64))[..., None])
        scale = np.where(zero_a & zero_b, b_scale, target)
        return IntegerSpectrum(a_out + b_out, scale)

    def spectrum_mul(self, a: IntegerSpectrum, b: IntegerSpectrum) -> IntegerSpectrum:
        self.stats.pointwise_ops += 1
        product = a.values * b.values
        if a.values.ndim == 1 and b.values.ndim == 1:
            combined = a.scale_bits + b.scale_bits
            if combined:
                product = product / float(1 << combined)
            return IntegerSpectrum(np.round(product.real) + 1j * np.round(product.imag), 0)
        combined = np.asarray(a.scale_bits, dtype=np.int64) + np.asarray(
            b.scale_bits, dtype=np.int64
        )
        product = product / np.exp2(combined.astype(np.float64))[..., None]
        values = np.round(product.real) + 1j * np.round(product.imag)
        return IntegerSpectrum(values, np.zeros(values.shape[:-1], dtype=np.int64))

    def spectrum_copy(self, a: IntegerSpectrum) -> IntegerSpectrum:
        return a.copy()

    def engine_options(self):
        return {"twiddle_bits": self.twiddle_bits, "target_msb": self.target_msb}

    # -- stacked-spectrum helpers ------------------------------------------
    def spectrum_shape(self, spectrum: IntegerSpectrum) -> tuple:
        return spectrum.values.shape

    def spectrum_index(self, spectrum: IntegerSpectrum, index) -> IntegerSpectrum:
        scale = spectrum.scale_bits
        if isinstance(scale, np.ndarray):
            picked = scale[index]
            scale = int(picked) if np.ndim(picked) == 0 else picked
        return IntegerSpectrum(spectrum.values[index], scale)

    def spectrum_expand(self, spectrum: IntegerSpectrum, axis: int) -> IntegerSpectrum:
        values = np.expand_dims(spectrum.values, axis)
        scale = spectrum.scale_bits
        if isinstance(scale, np.ndarray):
            # The scale array tracks the batch axes only (no spectral axis),
            # so a negative axis shifts by one.
            scale = np.expand_dims(scale, axis + 1 if axis < 0 else axis)
        return IntegerSpectrum(values, scale)

    def spectrum_take_col(self, spectrum: IntegerSpectrum, col: int) -> IntegerSpectrum:
        values = spectrum.values[..., col, :]
        scale = spectrum.scale_bits
        if isinstance(scale, np.ndarray):
            picked = scale[..., col]
            scale = int(picked) if np.ndim(picked) == 0 else picked
        return IntegerSpectrum(values, scale)

    def spectrum_contract(
        self, stack: IntegerSpectrum, operand: IntegerSpectrum
    ) -> IntegerSpectrum:
        """Fused contraction: one stacked product + one reduction (two ops).

        Every per-row product is normalised to scale 0 with the exact
        rounding of :meth:`spectrum_mul` (division by an exact power of two,
        then round-to-nearest per component), so the accumulator holds exact
        integers in ``complex128`` and the reduction order cannot change a
        single bit — matching the historical equal-scale ``spectrum_add``
        fold of the external product.
        """
        self.stats.pointwise_ops += 2
        s_vals = stack.values
        o_vals = operand.values
        if s_vals.shape[0] == 0:
            raise ValueError("cannot contract an empty digit stack")
        s_scale = np.asarray(stack.scale_bits, dtype=np.int64)
        o_scale = np.asarray(operand.scale_bits, dtype=np.int64)
        # A scalar scale applies to every stacked element uniformly.
        if s_scale.ndim == 0:
            s_scale = np.broadcast_to(s_scale, s_vals.shape[:1])
        if o_scale.ndim == 0:
            o_scale = np.broadcast_to(o_scale, o_vals.shape[:1])
        from repro.tfhe.transform import _align_contraction_axes

        expanded, o_vals = _align_contraction_axes(s_vals[..., None, :], o_vals)
        exp_scale, o_scale = _align_contraction_axes(s_scale[..., None], o_scale)
        combined = exp_scale + o_scale  # (rows, ..., k+1)
        products = (expanded * o_vals) / np.exp2(
            combined.astype(np.float64)
        )[..., None]
        values = np.round(products.real) + 1j * np.round(products.imag)
        acc = np.add.reduce(values, axis=0)
        return IntegerSpectrum(acc, np.zeros(acc.shape[:-1], dtype=np.int64))

    def spectrum_stack(self, spectra) -> IntegerSpectrum:
        values = np.stack([s.values for s in spectra])
        scales = np.stack(
            [
                np.broadcast_to(
                    np.asarray(s.scale_bits, dtype=np.int64), s.values.shape[:-1]
                )
                for s in spectra
            ]
        )
        return IntegerSpectrum(values, scales)

    def spectrum_sum(self, spectrum: IntegerSpectrum) -> IntegerSpectrum:
        scales = np.asarray(spectrum.scale_bits, dtype=np.int64)
        common = int(scales.reshape(-1)[0]) if scales.size else 0
        if np.all(scales == common):
            # The common case (e.g. after a stacked pointwise product, which
            # normalises every element to scale 0): a plain integer-valued sum,
            # identical to folding with spectrum_add.
            self.stats.pointwise_ops += 1
            summed = spectrum.values.sum(axis=0)
            out_scale: "int | np.ndarray"
            if scales.ndim <= 1:
                out_scale = common
            else:
                out_scale = np.full(summed.shape[:-1], common, dtype=np.int64)
            return IntegerSpectrum(summed, out_scale)
        # Mixed per-element scales: fold with spectrum_add so the min-scale
        # rescaling semantics of the scalar path are preserved exactly (the
        # folded adds do their own pointwise-op counting).
        acc = self.spectrum_index(spectrum, 0)
        for j in range(1, spectrum.values.shape[0]):
            acc = self.spectrum_add(acc, self.spectrum_index(spectrum, j))
        return acc

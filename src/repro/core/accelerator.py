"""The MATCHA accelerator facade.

:class:`MatchaAccelerator` ties the pieces of the paper together behind one
object:

* *functional execution* — TFHE gates evaluated with the approximate
  multiplication-less integer transform and aggressive BKU, demonstrating
  that ciphertexts still decrypt correctly (Section 4.1 "Novelty",
  Section 4.3 "Error and Noise");
* *performance/energy modelling* — the cycle-level schedule of a gate on the
  Figure 7 architecture and the Table 2 power envelope, via
  :mod:`repro.arch` and :mod:`repro.platforms`.

The defaults follow the paper: 64-bit dyadic-value-quantised twiddle factors,
BKU factor ``m = 3`` (MATCHA's sweet spot in Figures 9–11), eight
TGSW-cluster/EP-core pipelines at 2 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.gates import TFHEGateEvaluator
from repro.tfhe.keys import TFHECloudKey, TFHESecretKey, generate_cloud_key
from repro.tfhe.params import PAPER_110BIT, TFHEParameters
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class MatchaConfig:
    """Configuration knobs of a MATCHA instance (Section 4.3 defaults)."""

    #: Bit-width of the dyadic-value-quantised twiddle factors (DVQTFs).
    twiddle_bits: int = 64
    #: Bootstrapping-key unrolling factor ``m``.
    unroll_factor: int = 3
    #: Number of TGSW-cluster / EP-core pipeline pairs.
    pipeline_count: int = 8
    #: Clock frequency in Hz.
    clock_hz: float = 2.0e9

    def __post_init__(self) -> None:
        if self.twiddle_bits < 1:
            raise ValueError("twiddle_bits must be >= 1")
        if self.unroll_factor < 1:
            raise ValueError("unroll factor must be >= 1")
        if self.pipeline_count < 1:
            raise ValueError("pipeline count must be >= 1")
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")


class MatchaAccelerator:
    """Functional + analytical model of the MATCHA accelerator."""

    def __init__(
        self,
        params: TFHEParameters = PAPER_110BIT,
        config: MatchaConfig = MatchaConfig(),
    ) -> None:
        self.params = params
        self.config = config
        self.transform = ApproximateNegacyclicTransform(
            params.N, twiddle_bits=config.twiddle_bits
        )

    # -- functional side -----------------------------------------------------
    def build_cloud_key(
        self, secret: TFHESecretKey, rng: SeedLike = None
    ) -> TFHECloudKey:
        """Derive the evaluation key used when gates run on this accelerator.

        The key material is transformed with the accelerator's approximate
        integer FFT and unrolled with the configured BKU factor.
        """
        if secret.params is not self.params and secret.params != self.params:
            raise ValueError("secret key parameters do not match the accelerator")
        return generate_cloud_key(
            secret,
            transform=self.transform,
            unroll_factor=self.config.unroll_factor,
            rng=rng,
        )

    def evaluator(self, cloud_key: TFHECloudKey) -> TFHEGateEvaluator:
        """A gate evaluator bound to a cloud key built by this accelerator."""
        return TFHEGateEvaluator(cloud_key)

    # -- modelling side --------------------------------------------------------
    def performance(self):
        """Latency / throughput / power of this configuration (cycle model).

        Returns the :class:`repro.platforms.base.PlatformReport` of the MATCHA
        platform model evaluated at the configured unroll factor.
        """
        from repro.platforms.matcha import MatchaPlatform

        platform = MatchaPlatform(
            params=self.params,
            pipeline_count=self.config.pipeline_count,
            clock_hz=self.config.clock_hz,
        )
        return platform.report(self.config.unroll_factor)

    def area_and_power(self):
        """The Table 2 component breakdown for this configuration."""
        from repro.arch.energy import matcha_area_power_table

        return matcha_area_power_table()

"""MATCHA's contribution: approximate integer FFT, BKU and the accelerator.

* :mod:`repro.core.lifting` — dyadic-value quantisation and the
  multiplication-less lifting butterfly (Figure 3);
* :mod:`repro.core.twiddle` — twiddle-factor schedules, DVQTF quantisation and
  twiddle-buffer read accounting (Figure 2);
* :mod:`repro.core.conjugate_pair` — the depth-first conjugate-pair FFT
  (structural model, Figure 2);
* :mod:`repro.core.integer_fft` — the vectorised approximate
  multiplication-less integer negacyclic transform (Section 4.1);
* :mod:`repro.core.fft_error` — transform-error measurement in dB (Figure 8);
* :mod:`repro.core.bku` — bootstrapping-key unrolling for arbitrary ``m``
  (Section 4.2, Figures 4–5);
* :mod:`repro.core.pipeline` — the TGSW-cluster / EP-core pipeline model
  (Figure 6);
* :mod:`repro.core.accelerator` — the functional MATCHA accelerator facade.
"""

from repro.core.lifting import DyadicCoefficient, LiftingRotation, LiftingRotationArray
from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.core.bku import (
    UnrolledBlindRotator,
    UnrolledBootstrappingKey,
    generate_unrolled_bootstrapping_key,
)
from repro.core.accelerator import MatchaAccelerator, MatchaConfig

__all__ = [
    "DyadicCoefficient",
    "LiftingRotation",
    "LiftingRotationArray",
    "ApproximateNegacyclicTransform",
    "UnrolledBlindRotator",
    "UnrolledBootstrappingKey",
    "generate_unrolled_bootstrapping_key",
    "MatchaAccelerator",
    "MatchaConfig",
]

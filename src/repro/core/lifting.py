"""The multiplication-less lifting butterfly (Section 4.1, Figure 3).

A twiddle-factor multiplication inside an FFT is a plane rotation.  The
*lifting structure* factors a rotation into three shear ("lifting") steps::

    R(phi) = [[c, -s], [s, c]]
           = [[1, -t], [0, 1]] · [[1, 0], [s, 1]] · [[1, -t], [0, 1]],
    t = tan(phi / 2),  s = sin(phi)

Each step only adds a *rounded, scaled* copy of one component to the other, so
when the scale factors are quantised to dyadic values ``alpha / 2^beta`` the
whole rotation needs only adders and binary shifters — no multipliers — and it
maps integers to integers.  Because each step is a unit-diagonal shear, the
integer map is *exactly invertible* (perfect reconstruction): applying the
inverse steps in reverse order recovers the inputs bit-for-bit, regardless of
the rounding.  The paper's Figure 3(b) example (coefficient 9/128 computed
with a 4-bit and a 7-bit shifter) is reproduced by
:func:`repro.utils.bits.signed_digit_expansion`.

Rotations by arbitrary angles are reduced to a residual in ``[-pi/4, pi/4]``
plus an exact quarter-turn, which keeps ``|t| <= tan(pi/8)`` and ``|s| <=
sqrt(1/2)`` and therefore keeps the dyadic quantisation error small.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.bits import shift_add_apply, signed_digit_expansion


@dataclass(frozen=True)
class DyadicCoefficient:
    """A dyadic-value-quantised coefficient ``numerator / 2^beta``.

    ``beta`` is the paper's twiddle-factor bit-width knob (Figure 8): larger
    ``beta`` means a finer quantisation grid and a smaller approximation
    error, but more shift/add terms per multiplication.
    """

    numerator: int
    beta: int

    @classmethod
    def from_float(cls, value: float, beta: int) -> "DyadicCoefficient":
        """Quantise ``value`` to the nearest multiple of ``2^-beta``."""
        if beta < 0:
            raise ValueError("beta must be non-negative")
        return cls(numerator=int(round(value * (1 << beta))), beta=beta)

    @property
    def value(self) -> float:
        """The exact quantised value as a float."""
        return self.numerator / float(1 << self.beta)

    def quantisation_error(self, reference: float) -> float:
        """Absolute difference between the quantised and the reference value."""
        return abs(self.value - reference)

    def shift_add_terms(self) -> List[Tuple[int, int]]:
        """The signed-digit shift/add schedule realising this coefficient."""
        return signed_digit_expansion(self.numerator, self.beta)

    def adder_count(self) -> int:
        """Number of shifted operands a butterfly core adds for this coefficient."""
        return len(self.shift_add_terms())

    def apply(self, operand: np.ndarray) -> np.ndarray:
        """``round(coefficient * operand)`` — the lifting-step product.

        This is the arithmetic the accelerator realises with shifters and
        adders; the vectorised model computes it as a rounded product of the
        *exactly quantised* coefficient, which matches the shift/add result up
        to the floor-vs-round convention of the final bit (validated against
        :meth:`apply_shift_add` in the tests).
        """
        return np.round(np.asarray(operand, dtype=np.float64) * self.value)

    def apply_shift_add(self, operand: int) -> int:
        """Bit-exact scalar shift/add evaluation (the hardware datapath)."""
        return shift_add_apply(int(operand), self.shift_add_terms())


def _reduce_angle(angle: float) -> Tuple[int, float]:
    """Split ``angle`` into an exact quarter-turn count and a small residual.

    Returns ``(quarter_turns, residual)`` with ``residual`` in
    ``[-pi/4, pi/4]`` and ``quarter_turns`` in ``{0, 1, 2, 3}`` such that
    ``angle ≡ quarter_turns · pi/2 + residual (mod 2·pi)``.
    """
    quarter = round(angle / (math.pi / 2.0))
    residual = angle - quarter * (math.pi / 2.0)
    return quarter % 4, residual


def _apply_quarter_turns(
    re: np.ndarray, im: np.ndarray, quarter: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply an exact rotation by ``quarter * 90`` degrees (sign flips/swaps)."""
    if quarter == 0:
        return re, im
    if quarter == 1:
        return -im, re
    if quarter == 2:
        return -re, -im
    if quarter == 3:
        return im, -re
    raise ValueError("quarter turns must be in {0, 1, 2, 3}")


@dataclass(frozen=True)
class LiftingRotation:
    """A plane rotation by a fixed angle realised with three lifting steps."""

    angle: float
    beta: int

    def __post_init__(self) -> None:
        quarter, residual = _reduce_angle(self.angle)
        object.__setattr__(self, "_quarter", quarter)
        object.__setattr__(
            self, "_tan_half", DyadicCoefficient.from_float(math.tan(residual / 2.0), self.beta)
        )
        object.__setattr__(
            self, "_sin", DyadicCoefficient.from_float(math.sin(residual), self.beta)
        )

    @property
    def quarter_turns(self) -> int:
        return self._quarter  # type: ignore[attr-defined]

    @property
    def tan_half(self) -> DyadicCoefficient:
        return self._tan_half  # type: ignore[attr-defined]

    @property
    def sin(self) -> DyadicCoefficient:
        return self._sin  # type: ignore[attr-defined]

    def adder_count(self) -> int:
        """Total shift/add operand count of the three lifting steps."""
        return 2 * self.tan_half.adder_count() + self.sin.adder_count()

    def forward(self, re: int, im: int) -> Tuple[int, int]:
        """Rotate an integer point by ``angle`` (scalar, rounded lifting steps)."""
        re, im = _apply_quarter_turns(np.float64(re), np.float64(im), self.quarter_turns)
        re = float(re)
        im = float(im)
        re = re - float(self.tan_half.apply(im))
        im = im + float(self.sin.apply(re))
        re = re - float(self.tan_half.apply(im))
        return int(re), int(im)

    def inverse(self, re: int, im: int) -> Tuple[int, int]:
        """Exactly undo :meth:`forward` (perfect reconstruction)."""
        re = float(re)
        im = float(im)
        re = re + float(self.tan_half.apply(im))
        im = im - float(self.sin.apply(re))
        re = re + float(self.tan_half.apply(im))
        back = (4 - self.quarter_turns) % 4
        re, im = _apply_quarter_turns(np.float64(re), np.float64(im), back)
        return int(re), int(im)


class LiftingRotationArray:
    """Vectorised lifting rotations by a fixed *vector* of angles.

    This is the workhorse of the approximate integer FFT: one instance per
    FFT stage (or per twist), rotating element ``j`` of the operand arrays by
    ``angles[j]``.  All coefficients are dyadic-value quantised at
    construction time; applying the rotation performs only additions and
    rounded scalings (the vectorised stand-in for the shift/add datapath).
    """

    def __init__(self, angles: Sequence[float], beta: int) -> None:
        angles = np.asarray(angles, dtype=np.float64)
        self.beta = int(beta)
        quarters = np.round(angles / (math.pi / 2.0)).astype(np.int64)
        residual = angles - quarters * (math.pi / 2.0)
        self.quarters = np.mod(quarters, 4)
        scale = float(1 << self.beta)
        # Exact quantised coefficient values (numerator / 2^beta).
        self.tan_half = np.round(np.tan(residual / 2.0) * scale) / scale
        self.sin = np.round(np.sin(residual) * scale) / scale

    def __len__(self) -> int:
        return int(self.quarters.shape[0])

    def _quarter_turn(
        self, re: np.ndarray, im: np.ndarray, quarters: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        new_re = np.where(
            quarters == 0, re, np.where(quarters == 1, -im, np.where(quarters == 2, -re, im))
        )
        new_im = np.where(
            quarters == 0, im, np.where(quarters == 1, re, np.where(quarters == 2, -im, -re))
        )
        return new_re, new_im

    def forward(self, re: np.ndarray, im: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rotate integer-valued arrays forward by the configured angles."""
        re = np.asarray(re, dtype=np.float64)
        im = np.asarray(im, dtype=np.float64)
        re, im = self._quarter_turn(re, im, self.quarters)
        re = re - np.round(self.tan_half * im)
        im = im + np.round(self.sin * re)
        re = re - np.round(self.tan_half * im)
        return re, im

    def inverse(self, re: np.ndarray, im: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Exactly undo :meth:`forward` on integer-valued arrays."""
        re = np.asarray(re, dtype=np.float64)
        im = np.asarray(im, dtype=np.float64)
        re = re + np.round(self.tan_half * im)
        im = im - np.round(self.sin * re)
        re = re + np.round(self.tan_half * im)
        back = np.mod(4 - self.quarters, 4)
        re, im = self._quarter_turn(re, im, back)
        return re, im

"""Transform-error measurement (Figure 8).

The paper quantifies the error of the approximate multiplication-less integer
FFT/IFFT by the error of a polynomial multiplication performed through the
transform, expressed in dB, as a function of the twiddle-factor bit-width.
The reference is the exact negacyclic product; the baseline is the
double-precision floating-point transform of the TFHE library.

The workload is the one the bootstrapping actually runs: a gadget-decomposed
integer polynomial (coefficients in ``[-Bg/2, Bg/2)``) multiplied by a uniform
torus polynomial (32-bit coefficients), so the measured error is directly the
extra noise one external-product row contributes to a ciphertext.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.polynomial import negacyclic_convolution_int64
from repro.tfhe.torus import TORUS_SCALE
from repro.tfhe.transform import DoubleFFTNegacyclicTransform, NegacyclicTransform
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class FftErrorSample:
    """Error of one transform configuration on the polynomial-product workload."""

    label: str
    twiddle_bits: int | None
    rms_torus_error: float

    @property
    def error_db(self) -> float:
        """Error in dB: ``20 log10`` of the RMS error on the real torus."""
        if self.rms_torus_error <= 0:
            return float("-inf")
        return 20.0 * math.log10(self.rms_torus_error)


def polynomial_product_error(
    transform: NegacyclicTransform,
    degree: int,
    trials: int = 4,
    int_bound: int = 512,
    rng: SeedLike = None,
) -> float:
    """RMS torus error of ``trials`` random polynomial products through ``transform``."""
    rng = make_rng(rng)
    squared = 0.0
    count = 0
    for _ in range(trials):
        int_poly = rng.integers(-int_bound, int_bound, degree)
        torus_poly = rng.integers(-(2**31), 2**31, degree).astype(np.int64)
        exact = negacyclic_convolution_int64(int_poly, torus_poly)
        spectrum = transform.spectrum_mul(
            transform.forward(int_poly), transform.forward(torus_poly)
        )
        approx = transform.backward(spectrum)
        err = (approx - exact).astype(np.float64) / float(TORUS_SCALE)
        squared += float(np.sum(err * err))
        count += err.size
    return math.sqrt(squared / count) if count else 0.0


def sweep_twiddle_bits(
    degree: int = 1024,
    twiddle_bits: Sequence[int] = (10, 16, 20, 24, 28, 32, 38, 44, 52, 58, 64, 68),
    trials: int = 3,
    rng: SeedLike = 0,
) -> List[FftErrorSample]:
    """Figure 8 sweep: approximate-transform error for each twiddle bit-width.

    The returned list ends with the double-precision baseline entry
    (``twiddle_bits = None``), mirroring the horizontal reference line of the
    paper's figure.
    """
    rng = make_rng(rng)
    samples: List[FftErrorSample] = []
    for bits in twiddle_bits:
        transform = ApproximateNegacyclicTransform(degree, twiddle_bits=bits)
        error = polynomial_product_error(transform, degree, trials=trials, rng=rng)
        samples.append(
            FftErrorSample(label=f"approx-{bits}b", twiddle_bits=bits, rms_torus_error=error)
        )
    double = DoubleFFTNegacyclicTransform(degree)
    samples.append(
        FftErrorSample(
            label="double",
            twiddle_bits=None,
            rms_torus_error=polynomial_product_error(double, degree, trials=trials, rng=rng),
        )
    )
    return samples


def error_floor_db(samples: Sequence[FftErrorSample]) -> float:
    """The saturation floor of the approximate transform (largest bit-width)."""
    approx = [s for s in samples if s.twiddle_bits is not None]
    if not approx:
        raise ValueError("no approximate samples provided")
    widest = max(approx, key=lambda s: s.twiddle_bits or 0)
    return widest.error_db

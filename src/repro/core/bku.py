"""Bootstrapping-key unrolling (BKU) — Section 4.2, Figures 4 and 5.

The blind rotation of Algorithm 1 computes ``X^{Σ ā_i s_i}`` with one external
product per secret-key bit.  BKU groups ``m`` bits together: for every group
and every non-empty bit pattern ``p`` it pre-encrypts the indicator product

    ind_p = Π_{j: p_j = 1} s_j · Π_{j: p_j = 0} (1 − s_j)

as a TGSW ciphertext (``2^m − 1`` keys per group).  Because the indicators of
all ``2^m`` patterns sum to one, the rotation of one group collapses to a
single external product with the *bootstrapping key bundle*

    BKB = h + Σ_{p ≠ 0} (X^{e_p} − 1) · BK_p,     e_p = Σ_{j: p_j = 1} ā_j,

exactly the construction of Figure 5 (shown there for ``m = 2``).  The number
of external products per bootstrapping drops from ``n`` to ``n/m``, at the
cost of a bootstrapping key that grows as ``(2^m − 1)/m`` and of bundle
construction work that grows as ``2^m − 1`` — the trade-off MATCHA's pipelined
TGSW clusters are built to hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.tfhe.keys import RawUnrolledGroup, TFHESecretKey
from repro.tfhe.params import TFHEParameters
from repro.tfhe.tgsw import (
    BootstrapWorkspace,
    TgswSample,
    TransformedTgswSample,
    _external_product_rows_reference,
    _reference_row_col,
    tgsw_batch_external_product,
    tgsw_encrypt,
    tgsw_external_product,
    tgsw_identity,
    tgsw_transform,
)
from repro.tfhe.tlwe import TlweBatch, TlweSample
from repro.tfhe.transform import NegacyclicTransform, Spectrum
from repro.utils.rng import SeedLike, make_rng


def group_indices(n: int, unroll_factor: int) -> List[List[int]]:
    """Partition the LWE key indices ``0..n-1`` into groups of ``m`` bits.

    The last group may be smaller when ``m`` does not divide ``n``.
    """
    if unroll_factor < 1:
        raise ValueError("unroll factor must be >= 1")
    return [
        list(range(start, min(start + unroll_factor, n)))
        for start in range(0, n, unroll_factor)
    ]


def indicator_message(bits: Sequence[int], pattern: int) -> int:
    """The plaintext ``Π s_j^{p_j} (1 − s_j)^{1 − p_j}`` for a bit pattern."""
    product = 1
    for j, bit in enumerate(bits):
        selected = (pattern >> j) & 1
        product *= bit if selected else (1 - bit)
    return product


def pattern_exponent(bara: Sequence[int], indices: Sequence[int], pattern: int) -> int:
    """The rotation exponent ``e_p = Σ_{j: p_j = 1} ā_{indices[j]}``."""
    return int(sum(int(bara[indices[j]]) for j in range(len(indices)) if (pattern >> j) & 1))


def x_power_minus_one_polynomial(degree: int, power: int) -> np.ndarray:
    """The integer polynomial ``X^power − 1`` reduced modulo ``X^N + 1``."""
    poly = np.zeros(degree, dtype=np.int64)
    poly[0] -= 1
    power = int(power) % (2 * degree)
    sign = 1 if power < degree else -1
    poly[power % degree] += sign
    return poly


def x_power_minus_one_polynomials(degree: int, powers: np.ndarray) -> np.ndarray:
    """A stack of ``X^power − 1`` polynomials, one row per entry of ``powers``.

    Rows with ``power ≡ 0 (mod 2N)`` come out as the zero polynomial — the
    vanishing bundle term the sequential path skips explicitly.
    """
    powers = np.asarray(powers, dtype=np.int64) % (2 * degree)
    polys = np.zeros(powers.shape + (degree,), dtype=np.int64)
    polys[..., 0] -= 1
    sign = np.where(powers < degree, np.int64(1), np.int64(-1))
    flat = polys.reshape(-1, degree)
    flat[np.arange(powers.size), powers.reshape(-1) % degree] += sign.reshape(-1)
    return polys


@dataclass
class UnrolledKeyGroup:
    """The BKU key material of one group of secret-key bits."""

    indices: List[int]
    #: ``keys[pattern - 1]`` is the (transformed) TGSW encryption of the
    #: indicator of ``pattern`` (patterns are 1 .. 2^size − 1).
    keys: List[TransformedTgswSample]

    @property
    def size(self) -> int:
        return len(self.indices)

    @property
    def pattern_count(self) -> int:
        return (1 << self.size) - 1


@dataclass
class UnrolledBootstrappingKey:
    """The full unrolled bootstrapping key (all groups)."""

    params: TFHEParameters
    unroll_factor: int
    groups: List[UnrolledKeyGroup]

    @property
    def tgsw_key_count(self) -> int:
        """Total number of TGSW ciphertexts (the paper's BK-size blow-up)."""
        return sum(group.pattern_count for group in self.groups)

    @property
    def external_products_per_bootstrap(self) -> int:
        return len(self.groups)


def generate_unrolled_key_material(
    secret: TFHESecretKey,
    transform: NegacyclicTransform,
    unroll_factor: int,
    rng: SeedLike = None,
) -> List[RawUnrolledGroup]:
    """Encrypt the ``(2^m − 1)·⌈n/m⌉`` indicator products of Figure 5.

    Returns the coefficient-domain TGSW samples (what a cloud key stores and
    :mod:`repro.tfhe.serialize` writes); :func:`transform_unrolled_key` moves
    them into the Lagrange domain for evaluation.
    """
    rng = make_rng(rng)
    params = secret.params
    key_bits = secret.lwe_key.key
    groups: List[RawUnrolledGroup] = []
    for indices in group_indices(params.n, unroll_factor):
        bits = [int(key_bits[i]) for i in indices]
        samples: List[TgswSample] = []
        for pattern in range(1, 1 << len(indices)):
            message = indicator_message(bits, pattern)
            samples.append(
                tgsw_encrypt(
                    secret.tlwe_key,
                    message,
                    params.tgsw,
                    transform,
                    noise_stddev=params.tlwe.noise_stddev,
                    rng=rng,
                )
            )
        groups.append(RawUnrolledGroup(indices=indices, samples=samples))
    return groups


def transform_unrolled_key(
    raw_groups: Sequence[RawUnrolledGroup],
    params: TFHEParameters,
    unroll_factor: int,
    transform: NegacyclicTransform,
) -> UnrolledBootstrappingKey:
    """Forward-transform raw BKU key material into an evaluation-ready key.

    Each TGSW sample goes through :func:`repro.tfhe.tgsw.tgsw_transform`
    exactly once — this is the spectrum-cache step an
    :class:`repro.runtime.context.FheContext` runs once per context.
    """
    groups = [
        UnrolledKeyGroup(
            indices=list(raw.indices),
            keys=[tgsw_transform(sample, transform) for sample in raw.samples],
        )
        for raw in raw_groups
    ]
    return UnrolledBootstrappingKey(
        params=params, unroll_factor=unroll_factor, groups=groups
    )


def generate_unrolled_bootstrapping_key(
    secret: TFHESecretKey,
    transform: NegacyclicTransform,
    unroll_factor: int,
    rng: SeedLike = None,
) -> UnrolledBootstrappingKey:
    """Generate and forward-transform the unrolled key in one call."""
    raw = generate_unrolled_key_material(secret, transform, unroll_factor, rng)
    return transform_unrolled_key(raw, secret.params, unroll_factor, transform)


class UnrolledBlindRotator:
    """Blind rotation through bootstrapping-key bundles (Figure 5 / Figure 6 ❶❷).

    Each group performs two steps, exactly the two pipeline stages of MATCHA:

    1. *bundle construction* (TGSW cluster): scale each group key by
       ``X^{e_p} − 1`` in the Lagrange domain and add them to the gadget
       ``h``;
    2. *external product* (EP core): ``ACC ← BKB ⊡ ACC``.
    """

    def __init__(
        self,
        key: UnrolledBootstrappingKey,
        transform: NegacyclicTransform,
        workspace: BootstrapWorkspace | None = None,
    ) -> None:
        self.key = key
        self.transform = transform
        self.workspace = workspace if workspace is not None else BootstrapWorkspace()
        params = key.params
        identity = tgsw_identity(params.tlwe, params.tgsw)
        self._identity_spectra = tgsw_transform(identity, transform)
        #: Counters mirrored by the pipeline/latency models.
        self.bundles_built = 0
        self.external_products = 0

    @property
    def unroll_factor(self) -> int:
        return self.key.unroll_factor

    @property
    def external_products_per_bootstrap(self) -> int:
        return self.key.external_products_per_bootstrap

    # -- pipeline stage 1: the TGSW cluster --------------------------------
    def _build_bundle_core(
        self, group: UnrolledKeyGroup, bara: np.ndarray
    ) -> TransformedTgswSample:
        """Construct the ``BKB`` bundle(s) for one group as one packed tensor.

        ``bara`` has shape ``(n,)`` for a single bootstrapping or ``(B, n)``
        for a batch (the returned tensor then carries the batch axis between
        the row and column axes: ``(rows, B, k+1, N/2)``).  Each non-vanishing
        pattern contributes **one** broadcast spectral multiply-add over the
        whole ``rows × (k+1)`` key tensor instead of a per-polynomial Python
        double loop; the engine counters are topped up to the logical
        per-polynomial pointwise counts.  A per-ciphertext exponent that
        reduces to zero yields an exactly-zero factor polynomial, so the term
        vanishes for that ciphertext alone — bit-identical to skipping it; the
        explicit skip below only fires when the term vanishes for the *whole*
        stack.
        """
        self.bundles_built += 1
        transform = self.transform
        identity = self._identity_spectra
        rows = identity.rows
        cols = identity.mask_count + 1
        bundle = transform.spectrum_copy(identity.tensor)
        degree = self.key.params.N
        group_bara = bara[..., group.indices].astype(np.int64)  # (..., size)
        if group_bara.ndim > 1:
            # Batched bundles: open the batch axis between rows and columns
            # so the per-ciphertext pattern terms broadcast against it.
            bundle = transform.spectrum_expand(bundle, 1)
        for pattern in range(1, (1 << group.size)):
            bits = ((pattern >> np.arange(group.size)) & 1).astype(np.int64)
            exponents = group_bara @ bits  # scalar or (B,)
            if not np.any(exponents % (2 * degree)):
                # X^0 − 1 = 0 everywhere: the term vanishes.
                continue
            factors = x_power_minus_one_polynomials(degree, exponents)
            # (H,) → (1, H) or (B, H) → (B, 1, H): broadcasts over the
            # column axis of the key tensor.
            factor_spec = transform.spectrum_expand(transform.forward(factors), -2)
            key_tensor = group.keys[pattern - 1].tensor  # (rows, k+1, H)
            if exponents.ndim:
                # Batched exponents: open a batch axis between rows and cols.
                key_tensor = transform.spectrum_expand(key_tensor, 1)
            bundle = transform.spectrum_add(
                bundle, transform.spectrum_mul(factor_spec, key_tensor)
            )
            # One broadcast mul + one add covered rows·cols polynomial pairs;
            # top the counters up to the logical per-polynomial counts.
            transform.stats.pointwise_ops += 2 * rows * cols - 2
        return TransformedTgswSample(
            tensor=bundle,
            params=self.key.params.tgsw,
            mask_count=cols - 1,
            degree=degree,
            rows=rows,
        )

    def _build_bundle_reference(
        self, group: UnrolledKeyGroup, bara: np.ndarray
    ) -> List[List[Spectrum]]:
        """The pre-fusion per-(row, col) bundle build (ground truth).

        Returns the historical per-row/per-column spectra list, consumed by
        :func:`repro.tfhe.tgsw._external_product_rows_reference`.
        """
        transform = self.transform
        identity = self._identity_spectra
        rows = identity.rows
        cols = identity.mask_count + 1
        bundle: List[List[Spectrum]] = [
            [
                transform.spectrum_copy(
                    _reference_row_col(identity, transform, r, c)
                )
                for c in range(cols)
            ]
            for r in range(rows)
        ]
        degree = self.key.params.N
        group_bara = np.asarray(bara)[..., group.indices].astype(np.int64)
        for pattern in range(1, (1 << group.size)):
            bits = ((pattern >> np.arange(group.size)) & 1).astype(np.int64)
            exponents = group_bara @ bits
            if not np.any(exponents % (2 * degree)):
                continue
            factors = x_power_minus_one_polynomials(degree, exponents)
            factor_spec = transform.forward(factors)
            bk = group.keys[pattern - 1]
            for r in range(rows):
                for c in range(cols):
                    bundle[r][c] = transform.spectrum_add(
                        bundle[r][c],
                        transform.spectrum_mul(
                            factor_spec, _reference_row_col(bk, transform, r, c)
                        ),
                    )
        return bundle

    def build_bundle(
        self, group: UnrolledKeyGroup, bara: np.ndarray
    ) -> TransformedTgswSample:
        """Construct the bootstrapping key bundle ``BKB`` for one group."""
        return self._build_bundle_core(group, np.asarray(bara))

    def build_bundle_batch(
        self, group: UnrolledKeyGroup, bara: np.ndarray
    ) -> TransformedTgswSample:
        """Construct the ``BKB`` bundles for one group of a whole batch (``(B, n)``)."""
        return self._build_bundle_core(group, np.asarray(bara))

    # -- pipeline stage 2: the EP core --------------------------------------
    def rotate(self, accumulator: TlweSample, bara: np.ndarray) -> TlweSample:
        acc = accumulator
        for group in self.key.groups:
            bundle = self.build_bundle(group, bara)
            acc = tgsw_external_product(bundle, acc, self.transform, self.workspace)
            self.external_products += 1
        return acc

    def rotate_batch(self, accumulators: TlweBatch, bara: np.ndarray) -> TlweBatch:
        """Batched BKU blind rotation: per-group batched bundles + batched EP."""
        acc = accumulators
        for group in self.key.groups:
            bundle = self.build_bundle_batch(group, bara)
            acc = tgsw_batch_external_product(
                bundle, acc, self.transform, self.workspace
            )
            self.external_products += 1
        return acc

    # -- pre-fusion ground truth (property tests / benchmark baseline) -------
    def rotate_reference(self, accumulator: TlweSample, bara: np.ndarray) -> TlweSample:
        """The historical rotation: per-(row, col) bundles + per-plane EP."""
        params = self.key.params
        acc = accumulator
        for group in self.key.groups:
            bundle = self._build_bundle_reference(group, np.asarray(bara))
            acc = TlweSample(
                _external_product_rows_reference(
                    bundle, params.tgsw, params.k, params.N, acc.data, self.transform
                )
            )
            self.external_products += 1
        return acc

    def rotate_batch_reference(
        self, accumulators: TlweBatch, bara: np.ndarray
    ) -> TlweBatch:
        """Batched pre-fusion BKU blind rotation (ground truth)."""
        params = self.key.params
        acc = accumulators
        for group in self.key.groups:
            bundle = self._build_bundle_reference(group, np.asarray(bara))
            acc = TlweBatch(
                _external_product_rows_reference(
                    bundle, params.tgsw, params.k, params.N, acc.data, self.transform
                )
            )
            self.external_products += 1
        return acc


def bootstrapping_key_size_bytes(params: TFHEParameters, unroll_factor: int) -> int:
    """Size of the unrolled bootstrapping key in bytes (32-bit coefficients).

    One TGSW ciphertext holds ``(k+1)·l·(k+1)·N`` 32-bit words; BKU stores
    ``(2^m − 1)`` of them per group of ``m`` key bits — the exponential
    blow-up called out in Section 4.2 and Table 3.
    """
    groups = group_indices(params.n, unroll_factor)
    tgsw_words = (params.k + 1) * params.l * (params.k + 1) * params.N
    total_keys = sum((1 << len(g)) - 1 for g in groups)
    return total_keys * tgsw_words * 4

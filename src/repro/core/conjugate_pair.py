"""Depth-first iterative conjugate-pair FFT (CPFFT) — Section 4.1, Figure 2.

MATCHA's FFT cores traverse the transform depth first: a sub-transform is
completed before the next one starts, which keeps the working set small
(spatial locality) and exposes the conjugate-pair structure in which one
twiddle read serves a whole radix-4-style butterfly.

This module is the *structural* model of that data flow: a recursive
(depth-first) conjugate-pair split-radix FFT that

* works on exact complex numbers or on DVQTF-quantised twiddles,
* counts butterflies, twiddle-buffer reads and the maximum recursion depth,
* records the order in which sub-transforms complete (so the tests can verify
  the depth-first property).

The heavy-duty vectorised engine used inside the TFHE evaluator is
:mod:`repro.core.integer_fft`; this model complements it for the Figure 2
analysis and for op-count inputs to the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.twiddle import TwiddleFactorBuffer


@dataclass
class CpfftStats:
    """Instrumentation of one conjugate-pair FFT execution."""

    butterflies: int = 0
    twiddle_reads: int = 0
    max_depth: int = 0
    #: Sizes of sub-transforms in completion order (depth-first evidence).
    completion_order: List[int] = field(default_factory=list)


class ConjugatePairFFT:
    """Depth-first conjugate-pair split-radix FFT of size ``n`` (sign ``+1``).

    Computes ``X_k = Σ_s x_s · exp(sign · 2πi k s / n)``.  The conjugate-pair
    split decomposes the input into the even samples, the samples at indices
    ``4t + 1`` and the samples at indices ``4t − 1`` (cyclically); the two odd
    branches use the twiddle ``W^k`` and its conjugate, hence a single buffer
    read per butterfly pair.
    """

    def __init__(self, size: int, twiddle_bits: Optional[int] = None, sign: int = 1) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("transform size must be a power of two")
        self.size = size
        self.sign = sign
        self.twiddle_bits = twiddle_bits
        self.buffer = TwiddleFactorBuffer(size, twiddle_bits or 64, sign)
        self.stats = CpfftStats()

    def reset_stats(self) -> None:
        self.stats = CpfftStats()
        self.buffer.reset_reads()

    # ------------------------------------------------------------------ #
    def _twiddle(self, k: int) -> complex:
        """Twiddle ``W^k``: quantised when ``twiddle_bits`` is set, exact otherwise."""
        if self.twiddle_bits is None:
            angle = self.sign * 2.0 * np.pi * k / self.size
            return complex(np.cos(angle), np.sin(angle))
        return self.buffer.read(k).value

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Run the depth-first transform and return the spectrum."""
        values = np.asarray(values, dtype=np.complex128)
        if values.shape[0] != self.size:
            raise ValueError("input length mismatch")
        self.reset_stats()
        indices = np.arange(self.size)
        return self._recurse(values, indices, depth=1)

    def _recurse(self, x: np.ndarray, indices: np.ndarray, depth: int) -> np.ndarray:
        self.stats.max_depth = max(self.stats.max_depth, depth)
        n = indices.shape[0]
        if n == 1:
            self.stats.completion_order.append(1)
            return x[indices].astype(np.complex128)
        if n == 2:
            a, b = x[indices[0]], x[indices[1]]
            self.stats.butterflies += 1
            self.stats.completion_order.append(2)
            return np.array([a + b, a - b], dtype=np.complex128)

        # Conjugate-pair split: even indices, 4t+1 indices, 4t-1 indices.
        even = indices[0::2]
        odd_plus = indices[1::4]
        # The "conjugate" branch takes samples at positions 4t − 1 (cyclically),
        # i.e. n−1, 3, 7, ... — the order matters, it is a time sequence.
        odd_minus = indices[(4 * np.arange(n // 4) - 1) % n]

        even_fft = self._recurse(x, even, depth + 1)
        plus_fft = self._recurse(x, odd_plus, depth + 1)
        minus_fft = self._recurse(x, odd_minus, depth + 1)

        quarter = n // 4
        result = np.empty(n, dtype=np.complex128)
        stride = self.size // n
        for k in range(quarter):
            # A single buffer read provides W^k; its conjugate is derived on
            # the fly (sign flip), which is the conjugate-pair saving.
            w = self._twiddle(k * stride) if k else complex(1.0, 0.0)
            if k:
                self.stats.twiddle_reads += 1
            wc = w.conjugate()
            t_plus = plus_fft[k] * w
            t_minus = minus_fft[k] * wc
            s = t_plus + t_minus
            d = (t_plus - t_minus) * (1j * self.sign)
            result[k] = even_fft[k] + s
            result[k + n // 2] = even_fft[k] - s
            result[k + quarter] = even_fft[k + quarter] + d
            result[k + 3 * quarter] = even_fft[k + quarter] - d
            self.stats.butterflies += 2
        self.stats.completion_order.append(n)
        return result


def reference_dft(values: np.ndarray, sign: int = 1) -> np.ndarray:
    """Direct ``O(n^2)`` DFT used to validate the conjugate-pair flow."""
    values = np.asarray(values, dtype=np.complex128)
    n = values.shape[0]
    k = np.arange(n)
    kernel = np.exp(sign * 2j * np.pi * np.outer(k, k) / n)
    return kernel @ values

"""The two-stage bootstrapping pipeline of MATCHA (Section 4.2, Figure 6).

A bootstrapping with BKU factor ``m`` iterates ``⌈n/m⌉`` times; every
iteration (i) builds the bootstrapping key bundle on a TGSW cluster and
(ii) applies the external product on an EP core.  On a CPU the two steps run
back to back; MATCHA overlaps them: while the EP core consumes bundle ``i``,
the TGSW cluster already builds bundle ``i+1`` (Figure 6(b)).

This module models that pipeline analytically.  The per-stage work is supplied
by the architecture model (:mod:`repro.arch`); here we only reason about how
the two stages overlap, how the pipeline fills and drains, and how well the
stages balance as ``m`` grows — the paper's argument for why the workloads
"can be approximately balanced by adjusting m".

:func:`steady_state_throughput` additionally models *batched* serving: a
pipeline pair that interleaves ``batch_width`` independent bootstrappings pays
the pipeline-fill latency once per batch, mirroring how the functional
simulator's :class:`repro.tfhe.gates.BatchGateEvaluator` amortises per-gate
dispatch overhead across a batch of ciphertexts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineStageTimes:
    """Per-iteration stage latencies in cycles."""

    tgsw_cluster_cycles: float
    ep_core_cycles: float

    @property
    def bottleneck_cycles(self) -> float:
        return max(self.tgsw_cluster_cycles, self.ep_core_cycles)

    @property
    def imbalance(self) -> float:
        """Ratio of the slower to the faster stage (1.0 = perfectly balanced)."""
        slow = self.bottleneck_cycles
        fast = min(self.tgsw_cluster_cycles, self.ep_core_cycles)
        return float("inf") if fast == 0 else slow / fast


@dataclass(frozen=True)
class PipelineSchedule:
    """Latency results of one bootstrapping on one TGSW-cluster/EP-core pair."""

    iterations: int
    stage_times: PipelineStageTimes
    pipelined: bool

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles of the blind rotation.

        Pipelined: one fill of the first stage, then the bottleneck stage
        paces every iteration (Figure 6(b)).  Non-pipelined (the CPU
        behaviour the paper contrasts against): the stages simply add up.
        """
        tgsw = self.stage_times.tgsw_cluster_cycles
        ep = self.stage_times.ep_core_cycles
        if self.iterations == 0:
            return 0.0
        if not self.pipelined:
            return self.iterations * (tgsw + ep)
        return tgsw + self.iterations * self.stage_times.bottleneck_cycles

    @property
    def speedup_over_sequential(self) -> float:
        sequential = self.iterations * (
            self.stage_times.tgsw_cluster_cycles + self.stage_times.ep_core_cycles
        )
        total = self.total_cycles
        return sequential / total if total else 1.0

    @property
    def stage_utilisation(self) -> dict:
        """Fraction of the steady-state time each stage is busy."""
        bottleneck = self.stage_times.bottleneck_cycles
        if bottleneck == 0:
            return {"tgsw_cluster": 0.0, "ep_core": 0.0}
        return {
            "tgsw_cluster": self.stage_times.tgsw_cluster_cycles / bottleneck,
            "ep_core": self.stage_times.ep_core_cycles / bottleneck,
        }


def schedule_bootstrapping(
    iterations: int,
    stage_times: PipelineStageTimes,
    pipelined: bool = True,
) -> PipelineSchedule:
    """Build the pipeline schedule for one bootstrapping."""
    if iterations < 0:
        raise ValueError("iteration count must be non-negative")
    return PipelineSchedule(iterations=iterations, stage_times=stage_times, pipelined=pipelined)


def steady_state_throughput(
    stage_times: PipelineStageTimes,
    iterations: int,
    pipeline_count: int,
    clock_hz: float,
    batch_width: int = 1,
) -> float:
    """Gates per second of ``pipeline_count`` independent bootstrapping pipelines.

    Each TGSW-cluster/EP-core pair processes a different gate (the blind
    rotation itself is sequential), so the accelerator throughput scales with
    the number of pairs.

    ``batch_width`` models a pipeline pair that interleaves ``batch_width``
    independent bootstrappings back to back (the hardware analogue of the
    functional simulator's :class:`repro.tfhe.gates.BatchGateEvaluator`): the
    pipeline-fill latency of the first stage is paid once per *batch* instead
    of once per *gate*, so throughput approaches the bottleneck-stage bound
    ``clock / (iterations · bottleneck)`` as the batch grows.
    """
    if pipeline_count <= 0 or clock_hz <= 0:
        raise ValueError("pipeline count and clock must be positive")
    if batch_width <= 0:
        raise ValueError("batch width must be positive")
    schedule = schedule_bootstrapping(iterations, stage_times, pipelined=True)
    if schedule.total_cycles == 0:
        return float("inf")
    # One fill of the first stage per batch, then the bottleneck stage paces
    # all iterations of all batched gates (Figure 6(b), extended over gates).
    steady = iterations * stage_times.bottleneck_cycles
    batch_cycles = schedule.total_cycles + (batch_width - 1) * steady
    gate_seconds = batch_cycles / (batch_width * clock_hz)
    return pipeline_count / gate_seconds


def batching_speedup(
    stage_times: PipelineStageTimes, iterations: int, batch_width: int
) -> float:
    """Throughput gain of batching ``batch_width`` gates per pipeline vs one."""
    single = steady_state_throughput(stage_times, iterations, 1, 1.0, batch_width=1)
    batched = steady_state_throughput(stage_times, iterations, 1, 1.0, batch_width=batch_width)
    return batched / single


def circuit_level_cycles(
    level_widths,
    stage_times: PipelineStageTimes,
    iterations: int,
    batch_width: int = 1,
    pipeline_count: int = 1,
) -> float:
    """Predicted cycles to run a levelized circuit on the accelerator.

    ``level_widths`` is the gates-per-level profile of a
    :class:`repro.tfhe.executor.LevelSchedule` (``schedule.level_widths``).
    The gates of one level are independent, so their ``width × batch_width``
    bootstrappings spread over ``pipeline_count`` TGSW-cluster/EP-core pairs
    (the paper's pipeline slices) and stream back to back within each pair —
    one pipeline fill per level, then ``ceil(rows / pipeline_count)``
    bootstrappings at the bottleneck-stage rate.  Levels are serialised on
    their data dependencies.  This is the analytic counterpart of the
    functional executor's one-batched-call-per-level strategy.
    """
    if batch_width <= 0:
        raise ValueError("batch width must be positive")
    if pipeline_count <= 0:
        raise ValueError("pipeline count must be positive")
    fill = schedule_bootstrapping(iterations, stage_times, pipelined=True).total_cycles
    steady = iterations * stage_times.bottleneck_cycles
    fill -= steady  # total_cycles = fill of the first stage + one steady pass
    total = 0.0
    for width in level_widths:
        if width < 0:
            raise ValueError("level widths must be non-negative")
        rows = width * batch_width
        if rows:
            per_slice = -(-rows // pipeline_count)
            total += fill + per_slice * steady
    return total


def circuit_levelized_speedup(
    level_widths,
    stage_times: PipelineStageTimes,
    iterations: int,
    batch_width: int = 1,
    pipeline_count: int = 1,
) -> float:
    """Predicted gain of level-parallel execution over eager gate-by-gate.

    The eager baseline follows the dependency-chained single-stream
    execution of the historical circuit helpers: every gate of every word
    bootstraps separately on one pipeline pair, paying the pipeline fill
    ``sum(level_widths) × batch_width`` times and leaving the other slices
    idle.  The levelized executor pays one fill per dependency level and
    spreads each level's independent bootstrappings over all
    ``pipeline_count`` slices — the wider the level (and the larger the word
    batch), the closer the gain gets to ``pipeline_count`` times the fill
    amortisation.
    """
    gates = sum(level_widths)
    if gates == 0:
        return 1.0
    eager = (
        gates
        * batch_width
        * schedule_bootstrapping(iterations, stage_times, pipelined=True).total_cycles
    )
    levelized = circuit_level_cycles(
        level_widths, stage_times, iterations, batch_width, pipeline_count
    )
    return eager / levelized if levelized else 1.0

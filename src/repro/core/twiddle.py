"""Twiddle-factor schedules, DVQTF quantisation and buffer-read accounting.

Two aspects of the paper are modelled here:

* **dyadic-value-quantised twiddle factors (DVQTFs)** — the cosine/sine (or
  lifting-coefficient) values an FFT stage needs, quantised to a configurable
  number of fractional bits (Section 4.1, Figure 8);
* **twiddle-buffer reads** — the paper argues for the depth-first
  conjugate-pair FFT because it needs a single complex root-of-unity read per
  radix-4 butterfly and lets two butterflies of the same block share one read
  (Section 4.1, Figure 2).  :func:`twiddle_read_counts` quantifies the read
  pressure of the breadth-first Cooley–Tukey radix-2 flow against the
  conjugate-pair flow so the Figure 2 bench can report the reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.lifting import DyadicCoefficient


@dataclass(frozen=True)
class QuantisedTwiddle:
    """One twiddle factor quantised to dyadic real and imaginary parts."""

    angle: float
    real: DyadicCoefficient
    imag: DyadicCoefficient

    @property
    def value(self) -> complex:
        return complex(self.real.value, self.imag.value)

    def quantisation_error(self) -> float:
        """Distance between the quantised and the exact root of unity."""
        exact = complex(math.cos(self.angle), math.sin(self.angle))
        return abs(self.value - exact)


class TwiddleFactorBuffer:
    """The twiddle-factor buffer of an FFT core (Figure 7(d)).

    Stores the quantised roots of unity of a transform of size ``size`` and
    counts reads, so the depth-first/breadth-first comparison of Figure 2 can
    be expressed in buffer traffic.
    """

    def __init__(self, size: int, twiddle_bits: int, sign: int = 1) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError("transform size must be a power of two")
        if sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")
        self.size = size
        self.twiddle_bits = int(twiddle_bits)
        self.sign = sign
        self.reads = 0
        self._entries: Dict[int, QuantisedTwiddle] = {}
        for k in range(size):
            angle = sign * 2.0 * math.pi * k / size
            self._entries[k] = QuantisedTwiddle(
                angle=angle,
                real=DyadicCoefficient.from_float(math.cos(angle), twiddle_bits),
                imag=DyadicCoefficient.from_float(math.sin(angle), twiddle_bits),
            )

    def __len__(self) -> int:
        return self.size

    def read(self, index: int) -> QuantisedTwiddle:
        """Read (and count) the twiddle ``W^index``."""
        self.reads += 1
        return self._entries[index % self.size]

    def peek(self, index: int) -> QuantisedTwiddle:
        """Read a twiddle without counting (used by tests)."""
        return self._entries[index % self.size]

    def reset_reads(self) -> None:
        self.reads = 0

    def max_quantisation_error(self) -> float:
        return max(entry.quantisation_error() for entry in self._entries.values())


def stage_angles(size: int, stage_length: int, sign: int = 1) -> np.ndarray:
    """Butterfly angles of one radix-2 stage of a ``size``-point transform."""
    if stage_length < 2 or stage_length > size:
        raise ValueError("stage length out of range")
    return sign * 2.0 * np.pi * np.arange(stage_length // 2) / stage_length


def breadth_first_twiddle_reads(size: int) -> int:
    """Twiddle reads of a breadth-first radix-2 Cooley–Tukey transform.

    One twiddle is read per butterfly; there are ``size/2`` butterflies per
    stage and ``log2(size)`` stages (Figure 2(a) behaviour: no reuse across
    the breadth-first sweep).
    """
    stages = int(math.log2(size))
    return (size // 2) * stages


def conjugate_pair_twiddle_reads(size: int) -> int:
    """Twiddle reads of the depth-first conjugate-pair (split-radix) transform.

    The conjugate-pair decomposition pairs the twiddle ``W^k`` with its
    conjugate ``W^{-k}``, so each radix-4-style butterfly needs a *single*
    complex root-of-unity read; two butterflies of the same block share the
    read, halving it again [Becoulet & Verguet 2021].  The resulting read
    count is ``~size/4 · log2(size)`` minus the trivial (``W^0``) butterflies.
    """
    stages = int(math.log2(size))
    reads = (size // 4) * stages
    # W^0 never needs a buffer read (it is the identity rotation).
    reads -= size // 4
    return max(reads, 0)


def twiddle_read_counts(size: int) -> Dict[str, int]:
    """Read counts of both traversals plus the resulting reduction factor."""
    breadth = breadth_first_twiddle_reads(size)
    depth = conjugate_pair_twiddle_reads(size)
    return {
        "breadth_first_reads": breadth,
        "conjugate_pair_reads": depth,
        "reduction_factor": breadth / depth if depth else float("inf"),
    }


def dvqtf_table(size: int, twiddle_bits: int, sign: int = 1) -> np.ndarray:
    """The full quantised twiddle table as complex values (testing helper)."""
    buffer = TwiddleFactorBuffer(size, twiddle_bits, sign)
    return np.array([buffer.peek(k).value for k in range(size)], dtype=np.complex128)

"""Common platform-model interface used by the Figure 9/10/11 benches."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class PlatformReport:
    """Latency / power / throughput of one platform at one BKU factor."""

    platform: str
    unroll_factor: int
    supported: bool
    gate_latency_ms: float
    power_w: float
    throughput_gates_per_s: float

    @property
    def throughput_per_watt(self) -> float:
        if self.power_w <= 0:
            return 0.0
        return self.throughput_gates_per_s / self.power_w


class Platform(abc.ABC):
    """A hardware platform evaluated on TFHE NAND-class gates."""

    #: Human-readable platform name used in tables/figures.
    name: str = "platform"
    #: Largest BKU factor the platform supports (1 = no BKU support).
    max_unroll_factor: int = 4

    @abc.abstractmethod
    def gate_latency_s(self, unroll_factor: int) -> float:
        """Latency of one bootstrapped gate, in seconds."""

    @abc.abstractmethod
    def power_w(self, unroll_factor: int) -> float:
        """Power drawn while processing gates, in Watts."""

    @abc.abstractmethod
    def concurrent_gates(self, unroll_factor: int) -> float:
        """Number of gates processed concurrently in steady state."""

    # -- derived -------------------------------------------------------------
    def supports(self, unroll_factor: int) -> bool:
        return 1 <= unroll_factor <= self.max_unroll_factor

    def throughput_gates_per_s(self, unroll_factor: int) -> float:
        latency = self.gate_latency_s(unroll_factor)
        if latency <= 0:
            return 0.0
        return self.concurrent_gates(unroll_factor) / latency

    def report(self, unroll_factor: int) -> PlatformReport:
        """The full report at one BKU factor (unsupported factors are flagged)."""
        if not self.supports(unroll_factor):
            return PlatformReport(
                platform=self.name,
                unroll_factor=unroll_factor,
                supported=False,
                gate_latency_ms=float("nan"),
                power_w=self.power_w(1),
                throughput_gates_per_s=0.0,
            )
        return PlatformReport(
            platform=self.name,
            unroll_factor=unroll_factor,
            supported=True,
            gate_latency_ms=self.gate_latency_s(unroll_factor) * 1e3,
            power_w=self.power_w(unroll_factor),
            throughput_gates_per_s=self.throughput_gates_per_s(unroll_factor),
        )

    def sweep(self, unroll_factors: Iterable[int] = (1, 2, 3, 4)) -> List[PlatformReport]:
        """Reports across a range of BKU factors (the x-axis of Figures 9-11)."""
        return [self.report(m) for m in unroll_factors]

    def best_report(self, unroll_factors: Iterable[int] = (1, 2, 3, 4)) -> PlatformReport:
        """The report with the highest throughput among supported factors."""
        supported = [r for r in self.sweep(unroll_factors) if r.supported]
        if not supported:
            raise ValueError(f"{self.name} supports none of the requested factors")
        return max(supported, key=lambda r: r.throughput_gates_per_s)

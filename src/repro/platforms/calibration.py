"""Calibration anchors of the platform models.

The relative behaviour of every platform model (how latency scales with the
BKU factor ``m``, where pipelines or caches saturate) is produced by the
models themselves; a small number of *absolute* constants are pinned to
published measurements so the figures land in the right regime.  They are all
collected here so the provenance of every number is explicit:

* ``CPU_NAND_LATENCY_M1_S`` — 13.1 ms, the TFHE-library NAND latency on the
  paper's Xeon E-2288G baseline (Section 6, Figure 9).
* ``GPU_NAND_LATENCY_M1_S`` — 0.37 ms, the cuFHE NAND latency on a Tesla V100
  (Section 6).
* ``FPGA_TVE_GATE_LATENCY_S`` — per-gate latency of one TFHE Vector Engine
  instance on the Stratix-10 baseline; the paper reports that the FPGA and the
  ASIC baselines need more than 6.8 ms per gate and that the FPGA is slower
  than the CPU per gate.
* ``ASIC_TVE_GATE_LATENCY_S`` — the same engine synthesised in 16 nm; faster
  clock, same architecture (no BKU, no pipelining).
* Power envelopes: Xeon E-2288G TDP 95 W, Tesla V100 250 W (the paper cites
  "> 200 W"), the paper's ~40 W for the FPGA and ~26 W for the ASIC, and the
  39.98 W MATCHA total of Table 2.

EXPERIMENTS.md records, for every figure, the paper's value next to the value
these models produce.
"""

from __future__ import annotations

# --- CPU baseline (8-core Xeon E-2288G, TFHE library) ------------------------
CPU_NAND_LATENCY_M1_S = 13.1e-3
CPU_CORES = 8
CPU_POWER_W = 95.0
#: Per-external-product time implied by the m=1 anchor after removing the
#: fixed per-gate overhead below.
CPU_FIXED_OVERHEAD_S = 1.0e-3
#: Extra per-iteration cost of constructing a bundle term once the term count
#: exceeds what the cores/cache absorb (covers scheduling overhead and LLC
#: conflicts; Section 4.2 lists the three reasons aggressive BKU does not pay
#: off on a CPU).
CPU_BUNDLE_TERM_S = 2.5e-6
#: Bundle terms the CPU absorbs for free (m = 2 keeps the per-iteration cost
#: flat, which is what makes m = 2 the CPU sweet spot).
CPU_FREE_BUNDLE_TERMS = 3

# --- GPU baseline (Tesla V100, cuFHE) ----------------------------------------
GPU_NAND_LATENCY_M1_S = 0.37e-3
GPU_POWER_W = 250.0
GPU_FIXED_OVERHEAD_S = 0.02e-3
#: Additional per-iteration cost per bundle term (the GPU has enough cores to
#: absorb most of the extra work, so this is small).
GPU_BUNDLE_TERM_S = 0.03e-6
#: Effective number of gates in flight (kernel/transfer overlap of cuFHE).
GPU_CONCURRENT_GATES = 1.25

# --- FPGA / ASIC baselines (8 x TVE) ------------------------------------------
FPGA_TVE_GATE_LATENCY_S = 13.0e-3
FPGA_COPIES = 8
FPGA_POWER_W = 40.0
ASIC_TVE_GATE_LATENCY_S = 6.9e-3
ASIC_COPIES = 8
ASIC_POWER_W = 26.0

# --- MATCHA -------------------------------------------------------------------
MATCHA_POWER_W = 39.98
MATCHA_PIPELINES = 8
#: Effective number of bootstrapping-key streams the HBM interface provides.
#: All in-flight gates use the same evaluation key, so MATCHA walks the eight
#: pipelines through the key in lockstep and one broadcast stream serves all
#: of them; the value therefore equals the pipeline count.  Lowering it models
#: a design without key broadcast (each pipeline fetching its own copy), which
#: the ablation bench uses to show how quickly the HBM interface then becomes
#: the throughput bottleneck.
MATCHA_HBM_CONCURRENT_STREAMS = 8.0
#: Global throughput scale applied to the functional-unit lane counts of the
#: architecture description (1.0 = the Figure 7 counts taken at face value).
MATCHA_THROUGHPUT_SCALE = 1.0

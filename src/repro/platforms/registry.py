"""Registry of the evaluated platforms (Figures 9-11 x-axis groups)."""

from __future__ import annotations

from typing import Dict, List

from repro.platforms.asic import AsicPlatform
from repro.platforms.base import Platform
from repro.platforms.cpu import CpuPlatform
from repro.platforms.fpga import FpgaPlatform
from repro.platforms.gpu import GpuPlatform
from repro.platforms.matcha import MatchaPlatform
from repro.tfhe.params import PAPER_110BIT, TFHEParameters


def all_platforms(params: TFHEParameters = PAPER_110BIT) -> List[Platform]:
    """The five platforms of the paper's evaluation, in figure order."""
    return [
        CpuPlatform(params),
        GpuPlatform(params),
        MatchaPlatform(params),
        FpgaPlatform(),
        AsicPlatform(),
    ]


def get_platform(name: str, params: TFHEParameters = PAPER_110BIT) -> Platform:
    """Look up one platform by its display name (case-insensitive)."""
    table: Dict[str, Platform] = {p.name.lower(): p for p in all_platforms(params)}
    key = name.lower()
    if key not in table:
        raise KeyError(f"unknown platform {name!r}; known: {sorted(table)}")
    return table[key]

"""MATCHA platform model, driven by the cycle-level scheduler.

Latency comes from scheduling the gate DFG onto a single pipeline slice (one
TGSW cluster + one EP core + the shared polynomial unit and HBM channel) of
the Figure 7 architecture; a single gate cannot use more than one slice
because the blind rotation is sequential.

Throughput uses all eight slices, each processing its own gate, bounded by
the bootstrapping-key streaming bandwidth of the HBM interface: the unrolled
key does not fit in the 4 MB scratchpad, so every in-flight gate needs the key
streamed in, and only a limited number of such streams fit in 640 GB/s
(pipelines beyond that share a stream).  This is the effect that caps the
benefit of ``m = 4`` in Figures 9-11 together with the 2^m − 1 bundle work.

Power uses the Table 2 envelope (39.98 W), which is what the paper divides by
for throughput per Watt.
"""

from __future__ import annotations

from typing import Dict

from repro.arch.architecture import matcha_architecture
from repro.arch.gate_compiler import compile_gate_dfg
from repro.arch.memory import bootstrapping_key_bytes
from repro.arch.scheduler import ListScheduler, ScheduleResult
from repro.platforms import calibration as cal
from repro.platforms.base import Platform
from repro.tfhe.params import PAPER_110BIT, TFHEParameters


class MatchaPlatform(Platform):
    """Latency/power/throughput model of MATCHA (Figure 7 configuration)."""

    name = "MATCHA"
    max_unroll_factor = 4

    def __init__(
        self,
        params: TFHEParameters = PAPER_110BIT,
        pipeline_count: int = cal.MATCHA_PIPELINES,
        clock_hz: float = 2.0e9,
        hbm_bandwidth_bytes_per_s: float = 640.0e9,
        throughput_scale: float = cal.MATCHA_THROUGHPUT_SCALE,
    ) -> None:
        self.params = params
        self.pipeline_count = pipeline_count
        self.clock_hz = clock_hz
        self.hbm_bandwidth_bytes_per_s = hbm_bandwidth_bytes_per_s
        self.architecture = matcha_architecture(
            pipeline_slices=1,
            clock_hz=clock_hz,
            hbm_bandwidth_bytes_per_s=hbm_bandwidth_bytes_per_s,
            throughput_scale=throughput_scale,
        )
        self._scheduler = ListScheduler(self.architecture)
        self._schedule_cache: Dict[int, ScheduleResult] = {}

    # -- cycle model -----------------------------------------------------------
    def schedule(self, unroll_factor: int) -> ScheduleResult:
        """The (cached) cycle-level schedule of one gate at BKU factor ``m``."""
        if unroll_factor not in self._schedule_cache:
            dfg = compile_gate_dfg(self.params, unroll_factor=unroll_factor)
            self._schedule_cache[unroll_factor] = self._scheduler.schedule(dfg)
        return self._schedule_cache[unroll_factor]

    # -- platform interface ------------------------------------------------------
    def gate_latency_s(self, unroll_factor: int) -> float:
        if not self.supports(unroll_factor):
            raise ValueError(f"unsupported unroll factor {unroll_factor}")
        return self.schedule(unroll_factor).latency_seconds

    def power_w(self, unroll_factor: int) -> float:
        return cal.MATCHA_POWER_W

    def concurrent_gates(self, unroll_factor: int) -> float:
        """Pipelines in flight, capped by the shared bootstrapping-key stream."""
        latency = self.gate_latency_s(unroll_factor)
        compute_bound = float(self.pipeline_count)
        bk_bytes = bootstrapping_key_bytes(self.params, unroll_factor, transformed=True)
        stream_bound_throughput = (
            cal.MATCHA_HBM_CONCURRENT_STREAMS
            * self.hbm_bandwidth_bytes_per_s
            / bk_bytes
        )
        stream_bound = stream_bound_throughput * latency
        return max(1.0, min(compute_bound, stream_bound))

    # -- extras used by analysis/benches -----------------------------------------
    def energy_per_gate_j(self, unroll_factor: int) -> float:
        """Energy of one gate: Table 2 power envelope times gate latency."""
        return self.power_w(unroll_factor) * self.gate_latency_s(unroll_factor)

    def utilisation(self, unroll_factor: int) -> Dict[str, float]:
        return self.schedule(unroll_factor).utilisation_by_unit

"""GPU baseline: Tesla V100 running the cuFHE library.

The V100 has enough parallel resources to absorb the extra bundle terms of
aggressive BKU, so unlike the CPU its gate latency keeps falling as ``m``
grows (Figure 9): the iteration count shrinks by ``1/m`` while the
per-iteration cost only creeps up slightly.  Its weakness is power: at
more than 200 W the best throughput per Watt stays below the ASIC baseline
(Figure 11).
"""

from __future__ import annotations

from repro.platforms import calibration as cal
from repro.platforms.base import Platform
from repro.tfhe.params import PAPER_110BIT, TFHEParameters


class GpuPlatform(Platform):
    """Latency/power/throughput model of the cuFHE V100 baseline."""

    name = "GPU"
    max_unroll_factor = 4

    def __init__(self, params: TFHEParameters = PAPER_110BIT) -> None:
        self.params = params
        iterations_m1 = params.n
        self._per_iteration_s = (
            cal.GPU_NAND_LATENCY_M1_S - cal.GPU_FIXED_OVERHEAD_S
        ) / iterations_m1 - cal.GPU_BUNDLE_TERM_S

    def iterations(self, unroll_factor: int) -> int:
        return -(-self.params.n // unroll_factor)

    def gate_latency_s(self, unroll_factor: int) -> float:
        if not self.supports(unroll_factor):
            raise ValueError(f"unsupported unroll factor {unroll_factor}")
        terms = (1 << unroll_factor) - 1
        per_iteration = self._per_iteration_s + terms * cal.GPU_BUNDLE_TERM_S
        return cal.GPU_FIXED_OVERHEAD_S + self.iterations(unroll_factor) * per_iteration

    def power_w(self, unroll_factor: int) -> float:
        return cal.GPU_POWER_W

    def concurrent_gates(self, unroll_factor: int) -> float:
        return cal.GPU_CONCURRENT_GATES

"""ASIC baseline: the 8-copy TVE design re-synthesised in 16 nm.

The paper constructs its ASIC baseline by synthesising the FPGA TVE design
with the same 16 nm PTM process used for MATCHA: the architecture (no BKU, no
pipelining) is unchanged, but the clock is faster and the power drops to about
26 W, making it the strongest baseline in throughput per Watt (Figure 11).
"""

from __future__ import annotations

from repro.platforms import calibration as cal
from repro.platforms.base import Platform


class AsicPlatform(Platform):
    """Latency/power/throughput model of the synthesised TVE ASIC baseline."""

    name = "ASIC"
    max_unroll_factor = 1

    def __init__(
        self,
        gate_latency_s: float = cal.ASIC_TVE_GATE_LATENCY_S,
        copies: int = cal.ASIC_COPIES,
        power_w: float = cal.ASIC_POWER_W,
    ) -> None:
        self._gate_latency_s = gate_latency_s
        self._copies = copies
        self._power_w = power_w

    def gate_latency_s(self, unroll_factor: int) -> float:
        if not self.supports(unroll_factor):
            raise ValueError("the TVE baselines support only m = 1")
        return self._gate_latency_s

    def power_w(self, unroll_factor: int) -> float:
        return self._power_w

    def concurrent_gates(self, unroll_factor: int) -> float:
        return float(self._copies)

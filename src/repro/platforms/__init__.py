"""Platform models for the evaluation (Section 5 "Our Baselines").

Each platform exposes the same report interface (gate latency, power,
throughput, throughput per Watt as functions of the BKU factor ``m``) so the
Figure 9/10/11 benches can sweep them uniformly:

* :class:`repro.platforms.cpu.CpuPlatform` — 8-core Xeon E-2288G running the
  TFHE library;
* :class:`repro.platforms.gpu.GpuPlatform` — Tesla V100 running cuFHE;
* :class:`repro.platforms.fpga.FpgaPlatform` — 8 copies of the TFHE Vector
  Engine (TVE) on a Stratix-10;
* :class:`repro.platforms.asic.AsicPlatform` — the FPGA baseline re-synthesised
  as an ASIC (the paper's construction);
* :class:`repro.platforms.matcha.MatchaPlatform` — driven by the cycle-level
  scheduler of :mod:`repro.arch`.
"""

from repro.platforms.base import Platform, PlatformReport
from repro.platforms.cpu import CpuPlatform
from repro.platforms.gpu import GpuPlatform
from repro.platforms.fpga import FpgaPlatform
from repro.platforms.asic import AsicPlatform
from repro.platforms.matcha import MatchaPlatform
from repro.platforms.registry import all_platforms, get_platform

__all__ = [
    "Platform",
    "PlatformReport",
    "CpuPlatform",
    "GpuPlatform",
    "FpgaPlatform",
    "AsicPlatform",
    "MatchaPlatform",
    "all_platforms",
    "get_platform",
]

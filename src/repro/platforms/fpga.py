"""FPGA baseline: 8 copies of the TFHE Vector Engine on a Stratix-10 GX2800.

The TVE [Gener et al. 2021] is a programmable vector engine without BKU
support and without a bundle/external-product pipeline, so it is fixed at
``m = 1``; the Stratix-10 board fits eight copies, each processing its own
gate (Section 5 "Our Baselines").
"""

from __future__ import annotations

from repro.platforms import calibration as cal
from repro.platforms.base import Platform


class FpgaPlatform(Platform):
    """Latency/power/throughput model of the 8-copy TVE FPGA baseline."""

    name = "FPGA"
    max_unroll_factor = 1

    def __init__(
        self,
        gate_latency_s: float = cal.FPGA_TVE_GATE_LATENCY_S,
        copies: int = cal.FPGA_COPIES,
        power_w: float = cal.FPGA_POWER_W,
    ) -> None:
        self._gate_latency_s = gate_latency_s
        self._copies = copies
        self._power_w = power_w

    def gate_latency_s(self, unroll_factor: int) -> float:
        if not self.supports(unroll_factor):
            raise ValueError("the TVE baselines support only m = 1")
        return self._gate_latency_s

    def power_w(self, unroll_factor: int) -> float:
        return self._power_w

    def concurrent_gates(self, unroll_factor: int) -> float:
        return float(self._copies)

"""CPU baseline: 8-core Xeon E-2288G running the TFHE library.

The latency model follows the paper's explanation of why aggressive BKU does
not pay off on a CPU (Section 4.2):

* the per-iteration external product cost is fixed, so halving the iteration
  count (m = 2) roughly halves the blind-rotation time (the paper reports a
  49 % reduction);
* beyond ``m = 2`` the ``2^m − 1`` bundle terms exceed what the 8 cores and
  the last-level cache absorb: every extra term adds scale/add work, key
  traffic and synchronisation, so the latency goes back up;
* there is no pipelining between bundle construction and the external
  product, so the two stages simply add.

Throughput assumes each core can run an independent gate stream (the paper's
Figure 10 shows the CPU with m = 2 overtaking the FPGA/ASIC baselines, which
requires more than one gate in flight).
"""

from __future__ import annotations

from repro.platforms import calibration as cal
from repro.platforms.base import Platform
from repro.tfhe.params import PAPER_110BIT, TFHEParameters


class CpuPlatform(Platform):
    """Latency/power/throughput model of the TFHE-library CPU baseline."""

    name = "CPU"
    max_unroll_factor = 4

    def __init__(self, params: TFHEParameters = PAPER_110BIT) -> None:
        self.params = params
        iterations_m1 = params.n
        self._per_iteration_s = (
            cal.CPU_NAND_LATENCY_M1_S - cal.CPU_FIXED_OVERHEAD_S
        ) / iterations_m1

    def iterations(self, unroll_factor: int) -> int:
        return -(-self.params.n // unroll_factor)

    def bundle_terms(self, unroll_factor: int) -> int:
        return (1 << unroll_factor) - 1

    def gate_latency_s(self, unroll_factor: int) -> float:
        if not self.supports(unroll_factor):
            raise ValueError(f"unsupported unroll factor {unroll_factor}")
        terms = self.bundle_terms(unroll_factor)
        # Terms beyond the free budget serialise on the limited cores and
        # thrash the shared cache.
        extra_terms = max(0, terms - cal.CPU_FREE_BUNDLE_TERMS)
        per_iteration = self._per_iteration_s + extra_terms * cal.CPU_BUNDLE_TERM_S
        return cal.CPU_FIXED_OVERHEAD_S + self.iterations(unroll_factor) * per_iteration

    def power_w(self, unroll_factor: int) -> float:
        return cal.CPU_POWER_W

    def concurrent_gates(self, unroll_factor: int) -> float:
        # One gate per physical core; aggressive BKU needs several cores per
        # gate for its bundle terms, which eats into the gate-level parallelism.
        terms = self.bundle_terms(unroll_factor)
        cores_per_gate = max(1.0, terms / cal.CPU_FREE_BUNDLE_TERMS) if terms > cal.CPU_FREE_BUNDLE_TERMS else 1.0
        return max(1.0, cal.CPU_CORES / cores_per_gate)

"""Table 3 (noise comparison), the Section 4.3 DVQTF failure study, and the
per-LUT-width digit-margin table of the programmable-bootstrapping layer."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.fft_error import polynomial_product_error
from repro.core.integer_fft import ApproximateNegacyclicTransform
from repro.tfhe.noise import (
    TfheNoiseModel,
    digit_decision_margin,
    max_safe_fft_error,
)
from repro.tfhe.params import DigitEncoding, PAPER_110BIT, TFHEParameters
from repro.utils.rng import SeedLike
from repro.utils.tables import format_table


def table3_rows(
    params: TFHEParameters = PAPER_110BIT,
    unroll_factors: Sequence[int] = (2, 3, 4, 5),
    fft_error_db: float = -141.0,
) -> List[List[object]]:
    """Rows of Table 3: per-source noise scaling of BKU (m = 2) vs MATCHA (m).

    The entries follow the paper's normalised notation: external-product and
    rounding noise scale as ``1/m`` (δ/m, RO/m), the bootstrapping-key count
    per group grows as ``2^m − 1`` and the FFT/IFFT error level is the
    configured dB figure (−150 dB for the double-precision baseline, the
    measured approximate-transform floor for MATCHA).
    """
    rows: List[List[object]] = []
    for m in unroll_factors:
        model = TfheNoiseModel(params, unroll_factor=m)
        metrics = model.table3_relative_metrics()
        rows.append(
            [
                m,
                f"delta/{m}",
                f"RO/{m}",
                f"{model.keys_per_group} BK",
                f"{fft_error_db:.0f} dB",
                f"{metrics['external_product_noise_scale']:.3f}",
                f"{model.gate_budget().total_stddev:.3e}",
            ]
        )
    return rows


def render_table3(
    params: TFHEParameters = PAPER_110BIT,
    unroll_factors: Sequence[int] = (2, 3, 4, 5),
) -> str:
    """Text rendering of Table 3 (extended with the absolute noise stddev)."""
    return format_table(
        ["m", "EP", "rounding", "BK per group", "I/FFT", "EP scale", "total stddev"],
        table3_rows(params, unroll_factors),
        title="Table 3: noise comparison, BKU (m = 2 baseline) vs MATCHA (general m).",
    )


@dataclass(frozen=True)
class DvqtfStudyRow:
    """One row of the Section 4.3 DVQTF / decryption-failure study."""

    unroll_factor: int
    twiddle_bits: int
    fft_error_stddev: float
    max_safe_stddev: float
    expected_failures_per_1e8_gates: float

    @property
    def safe(self) -> bool:
        return self.fft_error_stddev <= self.max_safe_stddev


def dvqtf_failure_study(
    params: TFHEParameters = PAPER_110BIT,
    configurations: Sequence[tuple] = (
        (2, 16),
        (2, 20),
        (2, 24),
        (2, 38),
        (2, 64),
        (5, 16),
        (5, 20),
        (5, 24),
        (5, 38),
        (5, 64),
    ),
    degree: int | None = None,
    trials: int = 2,
    rng: SeedLike = 0,
) -> List[DvqtfStudyRow]:
    """Reproduce the Section 4.3 DVQTF bit-width study.

    For every ``(m, twiddle_bits)`` configuration the per-product FFT error is
    measured on the actual approximate transform, compared with the largest
    error the noise budget can absorb at that ``m`` (fewer than one expected
    failure in 10^8 gates), and converted into an expected failure count.  The
    qualitative claim of Section 4.3 — the error budget shrinks as ``m`` grows
    because the bootstrapping-key noise grows exponentially, so wider DVQTFs
    are needed at larger ``m`` — appears as the ``max safe err`` column
    shrinking with ``m`` while the measured error only depends on the
    bit-width.  (The absolute bit-width at which the crossover happens differs
    from the paper's 38/64-bit boundary because our fixed-point headroom is
    not identical to MATCHA's RTL; see EXPERIMENTS.md.)
    """
    degree = degree or params.N
    rows: List[DvqtfStudyRow] = []
    error_cache: Dict[int, float] = {}
    for m, bits in configurations:
        if bits not in error_cache:
            transform = ApproximateNegacyclicTransform(degree, twiddle_bits=bits)
            error_cache[bits] = polynomial_product_error(
                transform, degree, trials=trials, int_bound=params.Bg // 2, rng=rng
            )
        measured = error_cache[bits]
        budget = max_safe_fft_error(params, m, target_failures=1.0, gates=1.0e8)
        model = TfheNoiseModel(params, m, fft_error_stddev=measured)
        rows.append(
            DvqtfStudyRow(
                unroll_factor=m,
                twiddle_bits=bits,
                fft_error_stddev=measured,
                max_safe_stddev=budget,
                expected_failures_per_1e8_gates=model.gate_budget().expected_failures(1.0e8),
            )
        )
    return rows


@dataclass(frozen=True)
class DigitMarginRow:
    """One (encoding, unroll factor) point of the digit-margin table."""

    message_bits: int
    carry_bits: int
    unroll_factor: int
    margin: float
    noise_stddev: float
    sigmas_of_headroom: float
    failure_probability: float

    @property
    def fits(self) -> bool:
        """Whether the encoding clears the 4σ rating bar."""
        return self.sigmas_of_headroom >= 4.0


def digit_margin_study(
    params: TFHEParameters,
    encodings: Sequence[DigitEncoding] = (
        DigitEncoding(message_bits=2, carry_bits=0),
        DigitEncoding(message_bits=2, carry_bits=2),
        DigitEncoding(message_bits=3, carry_bits=0),
        DigitEncoding(message_bits=3, carry_bits=3),
        DigitEncoding(message_bits=4, carry_bits=0),
        DigitEncoding(message_bits=4, carry_bits=2),
    ),
    unroll_factors: Sequence[int] = (1, 2),
) -> List[DigitMarginRow]:
    """Per-LUT-width noise margins of programmable bootstrapping.

    For every digit encoding the digit decision margin is ``1/(4P)`` — it
    halves per extra plaintext bit while the bootstrap output noise stays
    fixed, which is exactly the carry-budget trade-off: the rows show how
    many σ of headroom each (message, carry) split leaves under ``params``,
    and hence which encodings :func:`repro.tfhe.noise.validate_digit_encoding`
    admits.  Structural fit (``message_space`` rating, ``N`` divisibility)
    is *not* checked here so the table can also show why a split fails.
    """
    rows: List[DigitMarginRow] = []
    for encoding in encodings:
        for m in unroll_factors:
            model = TfheNoiseModel(params, unroll_factor=m)
            budget = model.digit_budget(encoding)
            sigma = math.sqrt(
                budget.total_variance + model.modswitch_rounding_variance()
            )
            margin = digit_decision_margin(encoding)
            rows.append(
                DigitMarginRow(
                    message_bits=encoding.message_bits,
                    carry_bits=encoding.carry_bits,
                    unroll_factor=m,
                    margin=margin,
                    noise_stddev=sigma,
                    sigmas_of_headroom=margin / sigma if sigma else float("inf"),
                    failure_probability=model.digit_failure_probability(encoding),
                )
            )
    return rows


def render_digit_margins(
    params: TFHEParameters, rows: Sequence[DigitMarginRow] | None = None, **kwargs
) -> str:
    """Text rendering of the per-LUT-width digit-margin table."""
    rows = rows if rows is not None else digit_margin_study(params, **kwargs)
    table_rows = [
        [
            f"{r.message_bits}+{r.carry_bits}",
            r.unroll_factor,
            f"{r.margin:.2e}",
            f"{r.noise_stddev:.2e}",
            f"{r.sigmas_of_headroom:.1f}",
            f"{r.failure_probability:.2e}",
            "yes" if r.fits else "no",
        ]
        for r in rows
    ]
    return format_table(
        ["digit bits", "m", "margin 1/(4P)", "noise stddev", "headroom (sigma)", "P[fail]", "fits"],
        table_rows,
        title=f"Programmable bootstrapping digit margins under {params.name}.",
    )


def render_dvqtf_study(rows: Sequence[DvqtfStudyRow] | None = None, **kwargs) -> str:
    """Text rendering of the DVQTF failure study."""
    rows = rows if rows is not None else dvqtf_failure_study(**kwargs)
    table_rows = [
        [
            r.unroll_factor,
            r.twiddle_bits,
            f"{r.fft_error_stddev:.2e}",
            f"{r.max_safe_stddev:.2e}",
            f"{r.expected_failures_per_1e8_gates:.2e}",
            "yes" if r.safe else "no",
        ]
        for r in rows
    ]
    return format_table(
        ["m", "DVQTF bits", "measured FFT err", "max safe err", "E[failures]/1e8 gates", "safe"],
        table_rows,
        title="Section 4.3: DVQTF bit-width vs decryption-failure budget.",
    )

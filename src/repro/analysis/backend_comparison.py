"""Modeled-vs-measured engine backends: closing the platforms/ loop.

The :mod:`repro.platforms` models predict what the paper's CPU, GPU and
MATCHA evaluations *should* deliver (Figure 10); the engine registry now
ships runnable backends for the same three design points — ``"double"`` /
``"compiled"`` on the CPU, ``"cupy"`` on the GPU, ``"approx"`` for MATCHA's
integer FFT.  This module lines the two up: every registered engine is
mapped onto its modeled platform and the *relative* throughputs are compared
(measured bootstraps/sec on the reduced test rings are not comparable to the
modeled absolute numbers at the paper's 110-bit parameters, but the speedup
over the CPU baseline is the quantity Figure 10 actually argues about).

``benchmarks/bench_engines.py`` feeds its measured bootstraps/sec into
:func:`backend_comparison` and records the resulting table in
``results/BENCH_engines.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.platforms.registry import get_platform
from repro.tfhe.params import PAPER_110BIT, TFHEParameters
from repro.tfhe.transform import available_engines, engine_entry
from repro.utils.tables import format_table

#: Engine kind → the platform model it realises.  The CPU engines all map
#: onto the paper's CPU design point (they differ in software efficiency,
#: not hardware), the CuPy backend onto the GPU, the approximate integer
#: FFT onto MATCHA itself.
ENGINE_PLATFORM: Dict[str, str] = {
    "naive": "CPU",
    "double": "CPU",
    "compiled": "CPU",
    "cupy": "GPU",
    "approx": "MATCHA",
}


@dataclass(frozen=True)
class BackendRow:
    """One engine backend lined up against its modeled platform."""

    engine: str
    device: str
    error_model: str
    available: bool
    unavailable_reason: Optional[str]
    platform: str
    #: Modeled gate throughput of the mapped platform (paper parameters).
    modeled_bootstraps_per_sec: float
    #: Modeled throughput over the modeled CPU baseline (the Fig. 10 ratio).
    modeled_speedup: float
    #: Measured engine throughput (``None`` when the bench did not run it).
    measured_bootstraps_per_sec: Optional[float] = None
    #: Measured throughput over the measured baseline engine.
    measured_speedup: Optional[float] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "device": self.device,
            "error_model": self.error_model,
            "available": self.available,
            "unavailable_reason": self.unavailable_reason,
            "platform": self.platform,
            "modeled_bootstraps_per_sec": self.modeled_bootstraps_per_sec,
            "modeled_speedup": self.modeled_speedup,
            "measured_bootstraps_per_sec": self.measured_bootstraps_per_sec,
            "measured_speedup": self.measured_speedup,
        }


def backend_comparison(
    measured: Optional[Mapping[str, float]] = None,
    params: TFHEParameters = PAPER_110BIT,
    unroll_factor: int = 1,
    baseline_engine: str = "double",
) -> List[BackendRow]:
    """Every registered engine against its modeled platform.

    ``measured`` maps engine kinds to measured bootstraps/sec (typically
    from ``bench_engines.py``); measured speedups are taken over
    ``baseline_engine``'s measurement.  Engines without a platform mapping
    (ad-hoc registrations) are skipped.
    """
    measured = dict(measured or {})
    baseline_measure = measured.get(baseline_engine)
    cpu_model = get_platform("CPU", params).report(unroll_factor)
    rows: List[BackendRow] = []
    for kind, reason in available_engines().items():
        platform_name = ENGINE_PLATFORM.get(kind)
        if platform_name is None:
            continue
        entry = engine_entry(kind)
        model = get_platform(platform_name, params).report(unroll_factor)
        measure = measured.get(kind)
        rows.append(
            BackendRow(
                engine=kind,
                device=entry.device,
                error_model=entry.error_model,
                available=reason is None,
                unavailable_reason=reason,
                platform=platform_name,
                modeled_bootstraps_per_sec=model.throughput_gates_per_s,
                modeled_speedup=(
                    model.throughput_gates_per_s / cpu_model.throughput_gates_per_s
                ),
                measured_bootstraps_per_sec=measure,
                measured_speedup=(
                    measure / baseline_measure
                    if measure is not None and baseline_measure
                    else None
                ),
            )
        )
    return rows


def render_backend_comparison(rows: List[BackendRow]) -> str:
    """Aligned text table of the modeled-vs-measured backend line-up."""

    def _opt(value: Optional[float], fmt: str = "{:.1f}") -> str:
        return fmt.format(value) if value is not None else "-"

    return format_table(
        [
            "engine",
            "platform",
            "device",
            "error model",
            "status",
            "modeled bs/s",
            "modeled x",
            "measured bs/s",
            "measured x",
        ],
        [
            (
                row.engine,
                row.platform,
                row.device,
                row.error_model,
                "ok" if row.available else row.unavailable_reason,
                f"{row.modeled_bootstraps_per_sec:.0f}",
                f"{row.modeled_speedup:.2f}",
                _opt(row.measured_bootstraps_per_sec),
                _opt(row.measured_speedup, "{:.2f}"),
            )
            for row in rows
        ],
        title="Engine backends: modeled platform throughput vs measured engines",
    )

"""Figure 1: latency breakdown of TFHE gates.

The figure decomposes each bootstrapped gate's latency into four buckets:
``gate`` (the linear combination of the input ciphertexts), ``other`` (the
non-transform part of the bootstrapping: decomposition, pointwise products,
accumulator updates, sample extraction, key switching) and the ``IFFT`` and
``FFT`` kernels.  The paper's observations are that the bootstrapping costs
about 99 % of a gate and that the transforms cost roughly 80 % of the
bootstrapping, with the forward (IFFT) bucket much larger than the backward
(FFT) bucket because it runs four times as often.

Two reproduction modes are provided:

* :func:`gate_latency_breakdown` — an operation-count model evaluated on the
  paper's 110-bit parameters using per-kernel CPU costs anchored to the
  13.1 ms NAND latency (deterministic; used by the bench);
* :func:`measure_gate_breakdown` — wall-clock measurement of the functional
  simulator on a reduced parameter set, with the transform calls timed through
  a proxy (validates the model's ordering: IFFT > FFT > other > gate).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from repro.tfhe.gates import PLAINTEXT_GATES, TFHEGateEvaluator, encrypt_bit
from repro.tfhe.keys import generate_keys
from repro.tfhe.params import PAPER_110BIT, TEST_SMALL, TFHEParameters
from repro.tfhe.transform import NegacyclicTransform, make_transform
from repro.utils.rng import SeedLike, make_rng
from repro.utils.tables import format_table

#: Per-call CPU cost of one double-precision transform of a degree-1024
#: polynomial, anchored so the NAND total matches the 13.1 ms CPU baseline.
CPU_TRANSFORM_SECONDS = 2.1e-6
#: CPU cost of the non-transform work of one external product (decomposition,
#: pointwise MACs, accumulator update).
CPU_EP_OTHER_SECONDS = 3.4e-6
#: CPU cost of the per-gate epilogue (sample extract + key switch).
CPU_EPILOGUE_SECONDS = 0.85e-3
#: CPU cost of the linear combination ("gate" bucket).
CPU_LINEAR_SECONDS = 8.0e-6


@dataclass(frozen=True)
class GateBreakdown:
    """Latency breakdown of one gate, in seconds per bucket."""

    gate: str
    gate_linear_s: float
    other_s: float
    ifft_s: float
    fft_s: float

    @property
    def total_s(self) -> float:
        return self.gate_linear_s + self.other_s + self.ifft_s + self.fft_s

    @property
    def bootstrap_s(self) -> float:
        return self.other_s + self.ifft_s + self.fft_s

    def percentages(self) -> Dict[str, float]:
        total = self.total_s
        return {
            "gate": 100.0 * self.gate_linear_s / total,
            "other": 100.0 * self.other_s / total,
            "ifft": 100.0 * self.ifft_s / total,
            "fft": 100.0 * self.fft_s / total,
        }

    @property
    def bootstrap_fraction(self) -> float:
        """Fraction of the gate latency spent in the bootstrapping."""
        return self.bootstrap_s / self.total_s

    @property
    def transform_fraction_of_bootstrap(self) -> float:
        """Fraction of the bootstrapping spent in FFT + IFFT kernels."""
        return (self.ifft_s + self.fft_s) / self.bootstrap_s


#: The gates shown in Figure 1.
FIGURE1_GATES = ("and", "or", "nand", "xor", "xnor")


def gate_latency_breakdown(
    params: TFHEParameters = PAPER_110BIT,
    gates: tuple = FIGURE1_GATES,
    unroll_factor: int = 1,
) -> List[GateBreakdown]:
    """Operation-count breakdown on the CPU baseline (deterministic model)."""
    iterations = -(-params.n // unroll_factor)
    forward_per_iteration = (params.k + 1) * params.l
    backward_per_iteration = params.k + 1

    breakdowns = []
    for gate in gates:
        # All bootstrapped two-input gates share the same bootstrapping cost;
        # XOR/XNOR do one extra scaling in the linear part.
        linear = CPU_LINEAR_SECONDS * (1.5 if gate in ("xor", "xnor") else 1.0)
        ifft = iterations * forward_per_iteration * CPU_TRANSFORM_SECONDS
        fft = iterations * backward_per_iteration * CPU_TRANSFORM_SECONDS
        other = iterations * CPU_EP_OTHER_SECONDS + CPU_EPILOGUE_SECONDS
        breakdowns.append(
            GateBreakdown(
                gate=gate, gate_linear_s=linear, other_s=other, ifft_s=ifft, fft_s=fft
            )
        )
    return breakdowns


class _TimingTransformProxy(NegacyclicTransform):
    """Wraps a transform and accumulates wall-clock time per direction."""

    def __init__(self, inner: NegacyclicTransform) -> None:
        super().__init__(inner.degree)
        self.inner = inner
        self.forward_seconds = 0.0
        self.backward_seconds = 0.0

    def forward(self, coeffs):
        start = time.perf_counter()
        result = self.inner.forward(coeffs)
        self.forward_seconds += time.perf_counter() - start
        return result

    def backward(self, spectrum):
        start = time.perf_counter()
        result = self.inner.backward(spectrum)
        self.backward_seconds += time.perf_counter() - start
        return result

    def spectrum_zero(self):
        return self.inner.spectrum_zero()

    def spectrum_add(self, a, b):
        return self.inner.spectrum_add(a, b)

    def spectrum_mul(self, a, b):
        return self.inner.spectrum_mul(a, b)

    def spectrum_copy(self, a):
        return self.inner.spectrum_copy(a)

    def spectrum_shape(self, spectrum):
        return self.inner.spectrum_shape(spectrum)

    def spectrum_index(self, spectrum, index):
        return self.inner.spectrum_index(spectrum, index)

    def spectrum_stack(self, spectra):
        return self.inner.spectrum_stack(spectra)

    def spectrum_sum(self, spectrum):
        return self.inner.spectrum_sum(spectrum)

    def spectrum_expand(self, spectrum, axis):
        return self.inner.spectrum_expand(spectrum, axis)

    def spectrum_take_col(self, spectrum, col):
        return self.inner.spectrum_take_col(spectrum, col)

    def spectrum_contract(self, stack, operand):
        return self.inner.spectrum_contract(stack, operand)


def measure_gate_breakdown(
    params: TFHEParameters = TEST_SMALL,
    gate: str = "nand",
    transform_kind: str = "double",
    rng: SeedLike = 0,
) -> GateBreakdown:
    """Wall-clock breakdown of one gate on the functional simulator."""
    rng = make_rng(rng)
    proxy = _TimingTransformProxy(make_transform(transform_kind, params.N))
    secret, cloud = generate_keys(params, proxy, unroll_factor=1, rng=rng)
    evaluator = TFHEGateEvaluator(cloud)
    _ = cloud.blind_rotator  # warm the spectrum cache outside the timed window
    ca, cb = encrypt_bit(secret, 1, rng), encrypt_bit(secret, 0, rng)

    proxy.forward_seconds = 0.0
    proxy.backward_seconds = 0.0
    start = time.perf_counter()
    linear_probe_start = time.perf_counter()
    evaluator.constant(1)  # negligible, used to estimate per-call overhead
    linear_estimate = time.perf_counter() - linear_probe_start

    evaluator.gate(gate, ca, cb)
    total = time.perf_counter() - start

    ifft = proxy.forward_seconds
    fft = proxy.backward_seconds
    other = max(total - ifft - fft - linear_estimate, 0.0)
    return GateBreakdown(
        gate=gate, gate_linear_s=linear_estimate, other_s=other, ifft_s=ifft, fft_s=fft
    )


def render_figure1(breakdowns: List[GateBreakdown] | None = None) -> str:
    """Text rendering of Figure 1 (percentages per gate)."""
    breakdowns = breakdowns or gate_latency_breakdown()
    rows = []
    for b in breakdowns:
        pct = b.percentages()
        rows.append(
            [
                b.gate.upper(),
                f"{pct['gate']:.1f}",
                f"{pct['other']:.1f}",
                f"{pct['ifft']:.1f}",
                f"{pct['fft']:.1f}",
                f"{b.total_s * 1e3:.2f}",
            ]
        )
    return format_table(
        ["gate", "gate %", "other %", "IFFT %", "FFT %", "total (ms)"],
        rows,
        title="Figure 1: TFHE gate latency breakdown (CPU cost model).",
    )

"""Modeled vs measured: the telemetry traces read back as Figure 1.

:mod:`repro.analysis.breakdown` reproduces the paper's Figure-1 latency
taxonomy from an operation-count model.  This module closes the loop from
the *other* side: it aggregates the span timings the telemetry subsystem
records while the serving stack runs real jobs, folds them into the same
stage taxonomy, and prints the modeled and measured splits side by side.

The mapping from spans to Figure-1 buckets:

========================  ====================================================
span name                 Figure-1 bucket
========================  ====================================================
``engine_contract``       blind rotation (the model's IFFT + FFT + per-
                          iteration "other"; the spans cannot split the
                          transform out of the fused kernel, so the three
                          modeled buckets are summed for comparison)
``keyswitch``             epilogue (sample extract + key switch — the
                          model's ``CPU_EPILOGUE_SECONDS``)
``enqueue``,
``coalesce_wait``,
``flush``/\ ``worker_-
dispatch`` residue,
``reply``                 serving overhead — no modeled counterpart (the
                          paper's figure measures a bare gate); reported so
                          the batching cost is visible next to the crypto
========================  ====================================================

Spans can come from three places: a live :class:`repro.telemetry.Tracer`,
the JSON of a server ``trace_export`` reply, or a Chrome trace-event file
saved from one.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.breakdown import (
    CPU_EPILOGUE_SECONDS,
    GateBreakdown,
    gate_latency_breakdown,
)
from repro.tfhe.params import TEST_TINY, TFHEParameters
from repro.utils.tables import format_table

__all__ = [
    "SERVING_STAGES",
    "stage_totals",
    "spans_from_chrome",
    "measure_serving_breakdown",
    "render_measured_vs_modeled",
]

#: Stage rows of the measured table, in presentation order.  ``blind_rotate``
#: and ``keyswitch`` have modeled counterparts; the rest are serving overhead.
SERVING_STAGES = (
    "coalesce_wait",
    "dispatch_overhead",
    "blind_rotate",
    "keyswitch",
    "reply",
)


def spans_from_chrome(doc: Any) -> List[Dict[str, Any]]:
    """Normalise a Chrome trace-event document into span dicts.

    ``doc`` may be the parsed document, its JSON text, or a file path.
    Returns dicts with ``name`` and ``duration`` (seconds) keys — the shape
    :func:`stage_totals` consumes.
    """
    if isinstance(doc, (str, bytes)):
        text = str(doc)
        if not text.lstrip().startswith("{"):
            with open(text, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        else:
            doc = json.loads(text)
    events = doc["traceEvents"] if isinstance(doc, Mapping) else doc
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        spans.append(
            {"name": event["name"], "duration": float(event.get("dur", 0.0)) / 1e6}
        )
    return spans


def _span_fields(span: Any) -> tuple:
    """(name, duration) of a span dict, Span object, or mapping."""
    if isinstance(span, Mapping):
        return span["name"], float(span.get("duration", 0.0))
    return span.name, float(span.duration)


def stage_totals(spans: Iterable[Any]) -> Dict[str, float]:
    """Fold spans into Figure-1 stage buckets (seconds per stage).

    The ``flush`` and ``worker_dispatch`` spans *contain* the engine stages,
    so their own time is reported as the residue after subtracting the
    contained crypto — that residue is the scheduling/IPC overhead.  When
    both a flush and a worker_dispatch cover the same round (pool path),
    the dispatch is the inner one: the residue uses flush as the envelope.
    """
    raw: Dict[str, float] = {}
    for span in spans:
        name, duration = _span_fields(span)
        raw[name] = raw.get(name, 0.0) + duration
    blind_rotate = raw.get("engine_contract", 0.0)
    keyswitch = raw.get("keyswitch", 0.0)
    envelope = raw.get("flush", 0.0) or raw.get("worker_dispatch", 0.0)
    overhead = max(envelope - blind_rotate - keyswitch, 0.0)
    return {
        "coalesce_wait": raw.get("coalesce_wait", 0.0),
        "dispatch_overhead": overhead,
        "blind_rotate": blind_rotate,
        "keyswitch": keyswitch,
        "reply": raw.get("reply", 0.0),
    }


def measure_serving_breakdown(
    params: TFHEParameters = TEST_TINY,
    gates: int = 8,
    rng: int = 0,
) -> Dict[str, float]:
    """Run real gates through a traced scheduler; return stage totals.

    Builds a keypair, a telemetry-enabled :class:`BatchScheduler`, submits
    ``gates`` NAND gates and flushes once, then aggregates the recorded
    spans.  Pure in-process (inline dispatcher) so the numbers isolate
    scheduling + crypto without socket noise.
    """
    from repro.runtime.scheduler import BatchScheduler
    from repro.telemetry import Telemetry
    from repro.tfhe.gates import encrypt_bit
    from repro.tfhe.keys import generate_keys
    from repro.tfhe.transform import DoubleFFTNegacyclicTransform

    secret, cloud = generate_keys(
        params,
        DoubleFFTNegacyclicTransform(params.N),
        unroll_factor=1,
        rng=rng,
        eager=False,
    )
    telemetry = Telemetry()
    scheduler = BatchScheduler(telemetry=telemetry)
    scheduler.register_client("breakdown", cloud)
    session = scheduler.session("breakdown")
    ca, cb = encrypt_bit(secret, 1, rng), encrypt_bit(secret, 0, rng)
    for _ in range(gates):
        session.submit_gate("nand", ca, cb)
    scheduler.flush()
    return stage_totals(telemetry.tracer.spans())


def render_measured_vs_modeled(
    measured: Optional[Mapping[str, float]] = None,
    modeled: Optional[GateBreakdown] = None,
    rows_measured: int = 8,
) -> str:
    """Side-by-side table: paper's modeled split vs telemetry-measured split.

    ``measured`` holds stage totals over ``rows_measured`` bootstrapped rows
    (so per-gate values are totals / rows); ``modeled`` is one gate of the
    Figure-1 cost model.  Serving-only stages print ``—`` in the modeled
    column: the paper's figure times a bare gate with no batching front.
    """
    if measured is None:
        measured = measure_serving_breakdown(gates=rows_measured)
    if modeled is None:
        modeled = gate_latency_breakdown(gates=("nand",))[0]

    epilogue = min(modeled.other_s, CPU_EPILOGUE_SECONDS)
    modeled_per_stage = {
        "blind_rotate": modeled.ifft_s + modeled.fft_s + (modeled.other_s - epilogue),
        "keyswitch": epilogue,
    }
    measured_total = sum(measured.get(stage, 0.0) for stage in SERVING_STAGES)
    modeled_total = modeled.total_s

    rows = []
    for stage in SERVING_STAGES:
        measured_s = measured.get(stage, 0.0)
        measured_pct = 100.0 * measured_s / measured_total if measured_total else 0.0
        per_gate_ms = measured_s / max(rows_measured, 1) * 1e3
        if stage in modeled_per_stage:
            modeled_pct = 100.0 * modeled_per_stage[stage] / modeled_total
            modeled_cell = f"{modeled_pct:.1f}"
        else:
            modeled_cell = "—"
        rows.append([stage, modeled_cell, f"{measured_pct:.1f}", f"{per_gate_ms:.3f}"])
    return format_table(
        ["stage", "modeled %", "measured %", "measured ms/gate"],
        rows,
        title=(
            "Figure 1 revisited: cost-model split vs telemetry-measured split "
            f"({rows_measured} gates, one flush)."
        ),
    )


def main() -> None:  # pragma: no cover - exercised by the CI smoke job
    print(render_measured_vs_modeled())


if __name__ == "__main__":  # pragma: no cover
    main()

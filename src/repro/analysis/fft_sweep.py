"""Figure 2 (depth-first FFT) and Figure 8 (approximate FFT error) analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.conjugate_pair import ConjugatePairFFT
from repro.core.fft_error import FftErrorSample, sweep_twiddle_bits
from repro.core.twiddle import twiddle_read_counts
from repro.utils.rng import SeedLike, make_rng
from repro.utils.tables import format_table


# --------------------------------------------------------------------------- #
# Figure 8                                                                     #
# --------------------------------------------------------------------------- #
def fft_error_sweep(
    degree: int = 1024,
    twiddle_bits: Sequence[int] = (10, 16, 20, 24, 28, 32, 38, 44, 52, 58, 64, 68),
    trials: int = 3,
    rng: SeedLike = 0,
) -> List[FftErrorSample]:
    """The Figure 8 data: error (dB) of the approximate transform vs DVQTF bits."""
    return sweep_twiddle_bits(degree=degree, twiddle_bits=twiddle_bits, trials=trials, rng=rng)


def render_figure8(samples: List[FftErrorSample] | None = None) -> str:
    """Text rendering of Figure 8."""
    samples = samples or fft_error_sweep()
    rows = []
    for s in samples:
        bits = "double (64-bit float)" if s.twiddle_bits is None else str(s.twiddle_bits)
        rows.append([bits, f"{s.error_db:.1f}"])
    return format_table(
        ["twiddle factor bits", "error (dB)"],
        rows,
        title="Figure 8: error of the approximate multiplication-less integer FFT & IFFT.",
    )


# --------------------------------------------------------------------------- #
# Figure 2                                                                     #
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DepthFirstComparison:
    """Structural comparison of the breadth-first and depth-first traversals."""

    transform_size: int
    breadth_first_twiddle_reads: int
    conjugate_pair_twiddle_reads: int
    twiddle_read_reduction: float
    max_recursion_depth: int
    #: Completion order of sub-transform sizes — depth-first completes small
    #: sub-transforms before the enclosing ones (Figure 2(b)).
    completion_order_head: List[int]
    depth_first: bool


def depth_first_comparison(
    transform_size: int = 512, rng: SeedLike = 0
) -> DepthFirstComparison:
    """Run the structural CPFFT model and gather the Figure 2 evidence."""
    rng = make_rng(rng)
    counts = twiddle_read_counts(transform_size)
    fft = ConjugatePairFFT(transform_size, twiddle_bits=None)
    fft.transform(rng.normal(size=transform_size) + 1j * rng.normal(size=transform_size))
    order = fft.stats.completion_order
    # Depth-first property: the full-size transform completes last, and some
    # smaller sub-transform completes before any transform of the next level
    # up has started to complete.
    depth_first = bool(order and order[-1] == transform_size and order[0] <= 2)
    return DepthFirstComparison(
        transform_size=transform_size,
        breadth_first_twiddle_reads=int(counts["breadth_first_reads"]),
        conjugate_pair_twiddle_reads=int(counts["conjugate_pair_reads"]),
        twiddle_read_reduction=float(counts["reduction_factor"]),
        max_recursion_depth=fft.stats.max_depth,
        completion_order_head=list(order[:8]),
        depth_first=depth_first,
    )


def render_figure2(comparison: DepthFirstComparison | None = None) -> str:
    """Text rendering of the Figure 2 comparison."""
    comparison = comparison or depth_first_comparison()
    rows = [
        ["transform size", comparison.transform_size],
        ["breadth-first twiddle reads", comparison.breadth_first_twiddle_reads],
        ["conjugate-pair twiddle reads", comparison.conjugate_pair_twiddle_reads],
        ["twiddle-read reduction", f"{comparison.twiddle_read_reduction:.2f}x"],
        ["max recursion depth", comparison.max_recursion_depth],
        ["depth-first completion", comparison.depth_first],
    ]
    return format_table(
        ["metric", "value"],
        rows,
        title="Figure 2: breadth-first vs depth-first (conjugate-pair) FFT traversal.",
    )

"""Figures 9-11 (platform comparison) and Table 2 (power and area)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.arch.energy import matcha_area_power_table
from repro.platforms.base import Platform, PlatformReport
from repro.platforms.registry import all_platforms
from repro.tfhe.params import PAPER_110BIT, TFHEParameters
from repro.utils.tables import format_table

UNROLL_FACTORS = (1, 2, 3, 4)


@dataclass(frozen=True)
class ComparisonResult:
    """All platform reports plus the paper's headline ratios."""

    reports: Dict[str, List[PlatformReport]]

    def best(self, platform: str) -> PlatformReport:
        supported = [r for r in self.reports[platform] if r.supported]
        return max(supported, key=lambda r: r.throughput_gates_per_s)

    def at(self, platform: str, unroll_factor: int) -> PlatformReport:
        for report in self.reports[platform]:
            if report.unroll_factor == unroll_factor:
                return report
        raise KeyError(f"no report for {platform} at m={unroll_factor}")

    # -- headline ratios (Section 6) -----------------------------------------
    @property
    def matcha_vs_gpu_throughput(self) -> float:
        """MATCHA best throughput over GPU best throughput (paper: 2.3x)."""
        return (
            self.best("MATCHA").throughput_gates_per_s
            / self.best("GPU").throughput_gates_per_s
        )

    @property
    def matcha_vs_asic_throughput_per_watt(self) -> float:
        """MATCHA best throughput/W over ASIC throughput/W (paper: 6.3x)."""
        return self.best("MATCHA").throughput_per_watt / self.best("ASIC").throughput_per_watt

    @property
    def cpu_bku_latency_reduction(self) -> float:
        """Latency reduction of CPU m=2 over m=1 (paper: 49 %)."""
        m1 = self.at("CPU", 1).gate_latency_ms
        m2 = self.at("CPU", 2).gate_latency_ms
        return 1.0 - m2 / m1

    @property
    def cpu_best_unroll(self) -> int:
        supported = [r for r in self.reports["CPU"] if r.supported]
        return min(supported, key=lambda r: r.gate_latency_ms).unroll_factor

    @property
    def matcha_best_latency_unroll(self) -> int:
        supported = [r for r in self.reports["MATCHA"] if r.supported]
        return min(supported, key=lambda r: r.gate_latency_ms).unroll_factor


def platform_comparison(
    params: TFHEParameters = PAPER_110BIT,
    unroll_factors: Sequence[int] = UNROLL_FACTORS,
    platforms: Iterable[Platform] | None = None,
) -> ComparisonResult:
    """Sweep every platform across the BKU factors (the Figure 9-11 data)."""
    platforms = list(platforms) if platforms is not None else all_platforms(params)
    reports = {p.name: p.sweep(unroll_factors) for p in platforms}
    return ComparisonResult(reports=reports)


def _metric_table(
    result: ComparisonResult,
    metric: str,
    title: str,
    formatter=lambda v: f"{v:.4g}",
) -> str:
    platforms = list(result.reports.keys())
    rows = []
    for m in UNROLL_FACTORS:
        row: List[object] = [m]
        for name in platforms:
            report = result.at(name, m)
            if not report.supported:
                row.append("n/a")
            else:
                row.append(formatter(getattr(report, metric)))
        rows.append(row)
    return format_table(["m"] + platforms, rows, title=title)


def render_figure9(result: ComparisonResult | None = None) -> str:
    """Figure 9: NAND gate latency (ms) per platform and BKU factor."""
    result = result or platform_comparison()
    return _metric_table(result, "gate_latency_ms", "Figure 9: NAND gate latency (ms).")


def render_figure10(result: ComparisonResult | None = None) -> str:
    """Figure 10: NAND gate throughput (gates/s)."""
    result = result or platform_comparison()
    return _metric_table(
        result, "throughput_gates_per_s", "Figure 10: NAND gate throughput (gates/s)."
    )


def render_figure11(result: ComparisonResult | None = None) -> str:
    """Figure 11: NAND gate throughput per Watt (gates/s/W)."""
    result = result or platform_comparison()
    return _metric_table(
        result, "throughput_per_watt", "Figure 11: NAND gate throughput per Watt."
    )


def render_table2() -> str:
    """Table 2: power and area of MATCHA at 2 GHz."""
    envelope = matcha_area_power_table()
    return format_table(
        ["Name", "Spec", "Power (W)", "Area (mm^2)"],
        envelope.as_rows(),
        title="Table 2: the power and area of MATCHA operating at 2 GHz.",
    )

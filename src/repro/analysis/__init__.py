"""Generators for every table and figure of the paper's evaluation.

Each module produces plain Python data (lists of rows / dictionaries of
series) plus a text rendering, so the benchmark harness can both assert on
the numbers and print paper-style tables:

* :mod:`repro.analysis.schemes` — Table 1 (HE scheme comparison);
* :mod:`repro.analysis.breakdown` — Figure 1 (gate latency breakdown);
* :mod:`repro.analysis.fft_sweep` — Figure 2 (depth-first FFT) and Figure 8
  (approximate FFT error vs twiddle bits);
* :mod:`repro.analysis.noise_tables` — Table 3 (noise comparison) and the
  DVQTF decryption-failure study of Section 4.3;
* :mod:`repro.analysis.comparison` — Figures 9, 10 and 11 (latency,
  throughput and throughput/Watt across platforms and BKU factors) and
  Table 2 (power and area);
* :mod:`repro.analysis.backend_comparison` — the runnable engine backends
  lined up against the modeled CPU/GPU/MATCHA platforms (modeled vs
  measured speedups, fed by ``benchmarks/bench_engines.py``).
"""

from repro.analysis.schemes import table1_rows, render_table1
from repro.analysis.breakdown import gate_latency_breakdown, render_figure1
from repro.analysis.fft_sweep import fft_error_sweep, render_figure8, depth_first_comparison
from repro.analysis.noise_tables import table3_rows, render_table3
from repro.analysis.comparison import (
    platform_comparison,
    render_figure9,
    render_figure10,
    render_figure11,
    render_table2,
)
from repro.analysis.backend_comparison import (
    backend_comparison,
    render_backend_comparison,
)

__all__ = [
    "table1_rows",
    "render_table1",
    "gate_latency_breakdown",
    "render_figure1",
    "fft_error_sweep",
    "render_figure8",
    "depth_first_comparison",
    "table3_rows",
    "render_table3",
    "platform_comparison",
    "render_figure9",
    "render_figure10",
    "render_figure11",
    "render_table2",
    "backend_comparison",
    "render_backend_comparison",
]

"""Table 1: comparison between HE schemes.

The table positions TFHE among the major FHE families: which homomorphic
operations they support natively, which data types they operate on and how
expensive their bootstrapping is.  The bootstrapping figures are the
literature values the paper cites; the TFHE row is the one this repository
actually implements and measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.utils.tables import format_table


@dataclass(frozen=True)
class SchemeEntry:
    """One row of Table 1."""

    scheme: str
    operations: str
    data_type: str
    bootstrapping: str
    bootstrapping_seconds: float
    supports_boolean_gates: bool
    unlimited_depth_practical: bool


TABLE1_SCHEMES: List[SchemeEntry] = [
    SchemeEntry("BGV", "mult, add", "integer", "~800 s", 800.0, False, False),
    SchemeEntry("BFV", "mult, add", "integer", "> 1000 s", 1000.0, False, False),
    SchemeEntry("CKKS", "mult, add", "fixed point", "~500 s", 500.0, False, False),
    SchemeEntry("FHEW", "Boolean", "binary", "< 1 s", 1.0, True, True),
    SchemeEntry("TFHE", "Boolean", "binary", "13 ms", 0.013, True, True),
]


def table1_rows() -> List[List[str]]:
    """Rows of Table 1 in the paper's column order."""
    return [
        [entry.scheme, entry.operations, entry.data_type, entry.bootstrapping]
        for entry in TABLE1_SCHEMES
    ]


def fastest_bootstrapping() -> SchemeEntry:
    """The scheme with the fastest bootstrapping (the paper's argument for TFHE)."""
    return min(TABLE1_SCHEMES, key=lambda e: e.bootstrapping_seconds)


def bootstrapping_speedup_over(scheme: str) -> float:
    """How much faster TFHE's bootstrapping is than the named scheme's."""
    table = {e.scheme: e for e in TABLE1_SCHEMES}
    if scheme not in table:
        raise KeyError(f"unknown scheme {scheme!r}")
    return table[scheme].bootstrapping_seconds / table["TFHE"].bootstrapping_seconds


def render_table1() -> str:
    """Text rendering of Table 1."""
    return format_table(
        ["Scheme", "FHE Op.", "Data Type", "Bootstrapping"],
        table1_rows(),
        title="Table 1: The comparison between various HE schemes.",
    )

"""Plaintext co-simulation of circuit netlists.

The compiler's correctness story rests on one primitive: evaluating a
:class:`repro.tfhe.netlist.Circuit` over *plain* bits, using the same
truth tables (:data:`repro.tfhe.gates.PLAINTEXT_GATES`) the encrypted
evaluators bootstrap against.  Every optimization pass is checked
semantics-preserving by simulating the circuit before and after the rewrite
over randomized inputs (:func:`verify_equivalent`), and the benchmark /
example compare encrypted executions against :func:`simulate` outputs.

Simulation is deliberately eager and dead-code-free — only the live cone of
the requested outputs is evaluated, mirroring :func:`repro.tfhe.executor.execute`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.tfhe.circuits import bits_to_int, int_to_bits
from repro.tfhe.gates import PLAINTEXT_GATES
from repro.tfhe.netlist import Circuit
from repro.utils.rng import SeedLike, make_rng


class EquivalenceError(AssertionError):
    """Raised when two circuits disagree on some plaintext input."""


def simulate_bits(
    circuit: Circuit,
    inputs: Mapping[str, Sequence[int]],
    outputs: Optional[Sequence[str]] = None,
) -> Dict[str, List[int]]:
    """Evaluate a netlist over plain bits; returns LSB-first output bits.

    ``inputs`` maps input names to LSB-first bit lists, exactly like the
    ciphertext executors.  Inputs entirely outside the live cone of the
    requested outputs may be omitted.
    """
    output_names = tuple(outputs) if outputs is not None else tuple(circuit.output_wires)
    live = circuit.live_nodes(output_names)
    values: Dict[int, int] = {}
    for name, wires in circuit.input_wires.items():
        if not any(w in live for w in wires):
            continue
        if name not in inputs:
            raise ValueError(f"missing circuit input {name!r}")
        provided = [int(bool(bit)) for bit in inputs[name]]
        if len(provided) != len(wires):
            raise ValueError(
                f"input {name!r} expects {len(wires)} bits, got {len(provided)}"
            )
        values.update(zip(wires, provided))
    for node in circuit.nodes:
        if node.node_id not in live or node.op == "input":
            continue
        if node.op == "const":
            values[node.node_id] = node.value
        elif node.op == "not":
            values[node.node_id] = 1 - values[node.args[0]]
        elif node.op == "copy":
            values[node.node_id] = values[node.args[0]]
        elif node.op == "lut":
            index = 0
            for position, arg in enumerate(node.args):
                index |= values[arg] << position
            values[node.node_id] = (node.value >> index) & 1
        else:
            values[node.node_id] = PLAINTEXT_GATES[node.op](
                values[node.args[0]], values[node.args[1]]
            )
    return {
        name: [values[w] for w in circuit.output_wires[name]] for name in output_names
    }


def simulate(
    circuit: Circuit,
    inputs: Mapping[str, int],
    outputs: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Integer-level simulation: unsigned words in, unsigned words out.

    Each input integer is split into the declared width of its input word
    (wrapping modulo ``2**width``); each output word is reassembled LSB
    first.  This is the reference semantics of a traced encrypted program.
    """
    bit_inputs = {
        name: int_to_bits(int(value), circuit.input_width(name))
        for name, value in inputs.items()
    }
    return {
        name: bits_to_int(bits)
        for name, bits in simulate_bits(circuit, bit_inputs, outputs).items()
    }


def random_inputs(
    circuit: Circuit, rng: SeedLike = None
) -> Dict[str, int]:
    """One random integer per declared input word, uniform over its width."""
    rng = make_rng(rng)
    return {
        name: int(rng.integers(0, 2 ** len(wires)))
        for name, wires in circuit.input_wires.items()
    }


def verify_equivalent(
    before: Circuit,
    after: Circuit,
    trials: int = 16,
    rng: SeedLike = None,
    exhaustive_limit: int = 256,
) -> None:
    """Check two circuits agree on every output over randomized inputs.

    Both circuits must declare the same input words (name and width) and the
    same output names.  When the total input space is at most
    ``exhaustive_limit`` points the check is exhaustive instead of sampled.
    Raises :class:`EquivalenceError` on the first disagreement, naming the
    failing assignment — this is the semantics-preservation oracle every
    optimization pass is property-tested against.
    """
    before_sig = {name: len(w) for name, w in before.input_wires.items()}
    after_sig = {name: len(w) for name, w in after.input_wires.items()}
    if before_sig != after_sig:
        raise EquivalenceError(
            f"input signatures differ: {before_sig} vs {after_sig}"
        )
    if set(before.output_wires) != set(after.output_wires):
        raise EquivalenceError(
            f"output names differ: {sorted(before.output_wires)} vs "
            f"{sorted(after.output_wires)}"
        )
    total_bits = sum(before_sig.values())
    if 2**total_bits <= exhaustive_limit:
        assignments = []
        names = sorted(before_sig)
        for point in range(2**total_bits):
            values = {}
            cursor = point
            for name in names:
                width = before_sig[name]
                values[name] = cursor & ((1 << width) - 1)
                cursor >>= width
            assignments.append(values)
    else:
        rng = make_rng(rng)
        assignments = [random_inputs(before, rng) for _ in range(trials)]
    for values in assignments:
        expected = simulate(before, values)
        actual = simulate(after, values)
        if expected != actual:
            raise EquivalenceError(
                f"circuits disagree on {values}: {expected} vs {actual}"
            )


__all__ = [
    "EquivalenceError",
    "random_inputs",
    "simulate",
    "simulate_bits",
    "verify_equivalent",
]

"""Encrypted-program compiler: tracing frontend + netlist optimization passes.

The compiler turns an ordinary Python function into an optimized
:class:`repro.tfhe.netlist.Circuit` ready for any of the repo's executors::

    from repro.compiler import FheUint16, PassManager, fhe_max, trace

    circuit = trace(lambda a, b, c: fhe_max(a * 3 + b, b - c),
                    FheUint16("a"), FheUint16("b"), FheUint16("c"))
    manager = PassManager(verify=True)
    optimized = manager.run(circuit)          # fewer gates == fewer bootstraps
    print(manager.summary())

* :mod:`repro.compiler.frontend` — :class:`FheUint` / :class:`FheBool`
  symbolic types and :func:`trace`;
* :mod:`repro.compiler.passes` — the :class:`PassManager` pipeline
  (constant folding, NOT/COPY absorption, CSE, depth rebalancing, LUT
  clustering, DCE);
* :mod:`repro.compiler.radix` — the digit-LUT lowering: :func:`trace_radix`
  records the same functions as :class:`RadixProgram` ops for
  :class:`repro.tfhe.integers.RadixEvaluator`;
* :mod:`repro.compiler.sim` — plaintext co-simulation, the semantics oracle
  every pass is verified against.
"""

from repro.compiler.frontend import (
    FheBool,
    FheUint,
    FheUint4,
    FheUint8,
    FheUint16,
    FheUint32,
    FheValue,
    TraceError,
    fhe_abs,
    fhe_max,
    fhe_min,
    fhe_select,
    trace,
)
from repro.compiler.passes import (
    DEFAULT_PIPELINE,
    LUT_PIPELINE,
    OptimizationError,
    PASSES,
    PassManager,
    PassStats,
    circuit_depth,
    live_gate_count,
    lutify,
    optimize,
)
from repro.compiler.radix import (
    RadixBool,
    RadixOp,
    RadixProgram,
    RadixTraceError,
    RadixUint,
    RadixUint8,
    RadixUint16,
    RadixValue,
    trace_radix,
    verify_against_boolean,
)
from repro.compiler.sim import (
    EquivalenceError,
    random_inputs,
    simulate,
    simulate_bits,
    verify_equivalent,
)

__all__ = [
    "DEFAULT_PIPELINE",
    "EquivalenceError",
    "LUT_PIPELINE",
    "FheBool",
    "FheUint",
    "FheUint4",
    "FheUint8",
    "FheUint16",
    "FheUint32",
    "FheValue",
    "OptimizationError",
    "PASSES",
    "PassManager",
    "PassStats",
    "RadixBool",
    "RadixOp",
    "RadixProgram",
    "RadixTraceError",
    "RadixUint",
    "RadixUint8",
    "RadixUint16",
    "RadixValue",
    "TraceError",
    "circuit_depth",
    "fhe_abs",
    "fhe_max",
    "fhe_min",
    "fhe_select",
    "live_gate_count",
    "lutify",
    "optimize",
    "random_inputs",
    "simulate",
    "simulate_bits",
    "trace",
    "trace_radix",
    "verify_against_boolean",
    "verify_equivalent",
]

"""Radix lowering of traced integer programs onto programmable bootstrapping.

The boolean frontend (:mod:`repro.compiler.frontend`) lowers ``+ * < ==`` to
ripple adders, shift-add multipliers and comparator trees — tens to hundreds
of gate bootstrappings per 16-bit operation.  This module traces the *same*
Python functions into a :class:`RadixProgram` whose operations are the
digit-LUT primitives of :class:`repro.tfhe.integers.RadixEvaluator` instead:
an addition is digit-wise linear (zero bootstraps until carries must be
normalised), a multiply is one batched partial-product lookup plus carry
sweeps, and comparisons are packed sign/equality lookups.

The two lowerings share one semantics — unsigned arithmetic wrapping modulo
``2**width`` — so a radix program is verified by plaintext co-simulation
against the boolean trace of the same function
(:func:`verify_against_boolean`), exactly the oracle the optimizer passes
use.

Example::

    from repro.compiler import RadixUint16, trace_radix

    def score(a, b):
        return a * b + 42

    program = trace_radix(score, RadixUint16("a"), RadixUint16("b"))
    program.simulate({"a": 3, "b": 5})      # {'out': 57}
    program.run(evaluator, {"a": enc_a, "b": enc_b})   # encrypted RadixInt
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.tfhe.integers import RadixEvaluator, RadixInt
from repro.utils.rng import SeedLike, make_rng


class RadixTraceError(TypeError):
    """Raised for malformed radix-traced programs."""


@dataclass(frozen=True)
class RadixOp:
    """One SSA operation of a radix program.

    ``kind`` is one of ``add``, ``add_scalar``, ``mul``, ``scale`` (uint →
    uint) or ``gt``, ``eq`` (uint → bool); ``args`` are value ids, ``scalar``
    the plain-int operand of the scalar forms.
    """

    kind: str
    out: int
    args: Tuple[int, ...]
    scalar: Optional[int] = None


@dataclass
class RadixProgram:
    """A traced integer program over one shared bit width.

    ``width_bits`` is the wrapping modulus exponent shared by every integer
    value (mirroring the fixed-width :class:`~repro.compiler.frontend.FheUint`
    trace).  Boolean results (comparisons) occupy their own value ids and
    decode as 0/1.
    """

    name: str
    width_bits: int
    inputs: Dict[str, int] = field(default_factory=dict)  # name -> value id
    ops: List[RadixOp] = field(default_factory=list)
    outputs: Dict[str, int] = field(default_factory=dict)
    bool_values: set = field(default_factory=set)

    @property
    def modulus(self) -> int:
        return 1 << self.width_bits

    def digit_width(self, evaluator: RadixEvaluator) -> int:
        """Digits per integer under the evaluator's encoding."""
        bits = evaluator.encoding.message_bits
        if self.width_bits % bits:
            raise RadixTraceError(
                f"width {self.width_bits} bits is not a whole number of "
                f"{bits}-bit digits"
            )
        return self.width_bits // bits

    # -- plaintext co-simulation --------------------------------------------
    def simulate(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """Reference semantics: unsigned ints in, unsigned ints / 0-1 out."""
        values: Dict[int, int] = {}
        for name, vid in self.inputs.items():
            if name not in inputs:
                raise RadixTraceError(f"missing program input {name!r}")
            values[vid] = int(inputs[name]) % self.modulus
        for op in self.ops:
            a = values[op.args[0]]
            if op.kind == "add":
                values[op.out] = (a + values[op.args[1]]) % self.modulus
            elif op.kind == "add_scalar":
                values[op.out] = (a + op.scalar) % self.modulus
            elif op.kind == "mul":
                values[op.out] = (a * values[op.args[1]]) % self.modulus
            elif op.kind == "scale":
                values[op.out] = (a * op.scalar) % self.modulus
            elif op.kind == "gt":
                values[op.out] = int(a > values[op.args[1]])
            elif op.kind == "eq":
                values[op.out] = int(a == values[op.args[1]])
            else:  # pragma: no cover - trace builders emit only known kinds
                raise RadixTraceError(f"unknown radix op {op.kind!r}")
        return {name: values[vid] for name, vid in self.outputs.items()}

    # -- encrypted execution -------------------------------------------------
    def run(
        self, evaluator: RadixEvaluator, inputs: Dict[str, RadixInt]
    ) -> Dict[str, object]:
        """Execute under encryption; uint outputs are :class:`RadixInt`,
        bool outputs are single digit ciphertexts of 0/1."""
        digits = self.digit_width(evaluator)
        values: Dict[int, object] = {}
        for name, vid in self.inputs.items():
            if name not in inputs:
                raise RadixTraceError(f"missing encrypted input {name!r}")
            operand = inputs[name]
            if operand.width != digits:
                raise RadixTraceError(
                    f"input {name!r} has {operand.width} digits, the program "
                    f"needs {digits} under this encoding"
                )
            values[vid] = operand
        for op in self.ops:
            a = values[op.args[0]]
            if op.kind == "add":
                values[op.out] = evaluator.add(a, values[op.args[1]])
            elif op.kind == "add_scalar":
                values[op.out] = evaluator.add_scalar(a, op.scalar)
            elif op.kind == "mul":
                values[op.out] = evaluator.mul(a, values[op.args[1]])
            elif op.kind == "scale":
                values[op.out] = evaluator.scale(a, op.scalar)
            elif op.kind == "gt":
                values[op.out] = evaluator.gt(a, values[op.args[1]])
            elif op.kind == "eq":
                values[op.out] = evaluator.eq(a, values[op.args[1]])
        return {name: values[vid] for name, vid in self.outputs.items()}


class _RadixTracer:
    def __init__(self, name: str, width_bits: int) -> None:
        self.program = RadixProgram(name=name, width_bits=width_bits)
        self._next = 0

    def new_id(self) -> int:
        vid = self._next
        self._next += 1
        return vid

    def emit(self, kind: str, args: Tuple[int, ...], scalar: Optional[int] = None) -> int:
        out = self.new_id()
        self.program.ops.append(RadixOp(kind=kind, out=out, args=args, scalar=scalar))
        return out


class RadixValue:
    """Base class of radix-traced values (an SSA id on a shared tracer)."""

    __slots__ = ("tracer", "vid")

    def __init__(self, tracer: _RadixTracer, vid: int) -> None:
        self.tracer = tracer
        self.vid = vid

    def __bool__(self) -> None:
        raise RadixTraceError(
            "encrypted values have no plaintext truth value inside a trace"
        )


class RadixBool(RadixValue):
    """A radix-traced comparison result (decrypts to 0 or 1)."""


class RadixUint(RadixValue):
    """A radix-traced unsigned integer of the program's shared width.

    ``RadixUint(width_bits, "name")`` builds an *unbound* input spec for
    :func:`trace_radix`; the curried aliases :func:`RadixUint8` /
    :func:`RadixUint16` read better at call sites.  Bound instances support
    ``+ * > < ==`` against other traced values or plain ints — exactly the
    operator subset the digit-LUT evaluator accelerates.
    """

    __slots__ = ("width_bits", "name")

    def __init__(
        self, width_bits: int, name: str | None = None, *, _bound=None
    ) -> None:
        if _bound is not None:
            tracer, vid = _bound
            super().__init__(tracer, vid)
            self.width_bits = width_bits
            self.name = name
        else:
            if width_bits <= 0:
                raise RadixTraceError("width must be positive")
            if not name:
                raise RadixTraceError("an input spec needs a name: RadixUint(16, 'a')")
            self.width_bits = width_bits
            self.name = name
            self.tracer = None
            self.vid = None

    def _bind(self, tracer: _RadixTracer) -> "RadixUint":
        vid = tracer.new_id()
        tracer.program.inputs[self.name] = vid
        return RadixUint(self.width_bits, self.name, _bound=(tracer, vid))

    def _lift(self, vid: int) -> "RadixUint":
        return RadixUint(self.width_bits, None, _bound=(self.tracer, vid))

    def _peer(self, other) -> Optional[int]:
        if isinstance(other, RadixUint):
            if other.tracer is not self.tracer:
                raise RadixTraceError("cannot mix values from different traces")
            if other.width_bits != self.width_bits:
                raise RadixTraceError(
                    f"operand widths differ: {other.width_bits} vs {self.width_bits}"
                )
            return other.vid
        if isinstance(other, int):
            return None
        raise RadixTraceError(
            f"cannot trace operand of type {type(other).__name__}"
        )

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other):
        peer = self._peer(other)
        if peer is None:
            return self._lift(
                self.tracer.emit("add_scalar", (self.vid,), int(other))
            )
        return self._lift(self.tracer.emit("add", (self.vid, peer)))

    __radd__ = __add__

    def __mul__(self, other):
        peer = self._peer(other)
        if peer is None:
            return self._lift(self.tracer.emit("scale", (self.vid,), int(other)))
        return self._lift(self.tracer.emit("mul", (self.vid, peer)))

    __rmul__ = __mul__

    # -- comparisons ---------------------------------------------------------
    def _const_peer(self, value: int) -> int:
        """A plain int as a traced value (a zero plus a scalar addition)."""
        raise RadixTraceError(
            "comparisons against plain ints are not traced; encrypt the "
            "constant as an input instead"
        )

    def __gt__(self, other):
        peer = self._peer(other)
        if peer is None:
            self._const_peer(other)
        return RadixBool(self.tracer, self.tracer.emit("gt", (self.vid, peer)))

    def __lt__(self, other):
        peer = self._peer(other)
        if peer is None:
            self._const_peer(other)
        return RadixBool(self.tracer, self.tracer.emit("gt", (peer, self.vid)))

    def __eq__(self, other):
        peer = self._peer(other)
        if peer is None:
            self._const_peer(other)
        return RadixBool(self.tracer, self.tracer.emit("eq", (self.vid, peer)))

    __hash__ = None  # symbolic equality makes instances unhashable


def RadixUint8(name: str) -> RadixUint:
    """An 8-bit radix input spec."""
    return RadixUint(8, name)


def RadixUint16(name: str) -> RadixUint:
    """A 16-bit radix input spec."""
    return RadixUint(16, name)


def trace_radix(
    fn: Callable, *specs: RadixUint, name: str | None = None
) -> RadixProgram:
    """Record ``fn(*specs)`` as a :class:`RadixProgram`.

    Mirrors :func:`repro.compiler.frontend.trace`: ``specs`` are unbound
    :class:`RadixUint` input declarations (all of one width — radix programs
    share a single modulus), the function runs once, and its return value —
    one traced value, a tuple (``out0, out1, ...``) or a ``{name: value}``
    dict — becomes the program's outputs (a single value is named ``out``).
    """
    if not specs:
        raise RadixTraceError("trace_radix needs at least one input spec")
    for spec in specs:
        if not isinstance(spec, RadixUint) or spec.tracer is not None:
            raise RadixTraceError(
                "trace_radix arguments must be unbound RadixUint specs"
            )
    widths = {spec.width_bits for spec in specs}
    if len(widths) > 1:
        raise RadixTraceError(
            f"all radix inputs must share one width, got {sorted(widths)}"
        )
    tracer = _RadixTracer(
        name or getattr(fn, "__name__", "traced") or "traced", widths.pop()
    )
    bound = []
    for spec in specs:
        if spec.name in tracer.program.inputs:
            raise RadixTraceError(f"duplicate input name {spec.name!r}")
        bound.append(spec._bind(tracer))
    result = fn(*bound)

    if isinstance(result, RadixValue):
        named = {"out": result}
    elif isinstance(result, dict):
        named = dict(result)
    elif isinstance(result, (tuple, list)):
        named = {f"out{i}": value for i, value in enumerate(result)}
    else:
        raise RadixTraceError(
            "a radix-traced function must return traced values, got "
            f"{type(result).__name__}"
        )
    if not named:
        raise RadixTraceError("a radix-traced function must return a value")
    for out_name, value in named.items():
        if not isinstance(value, RadixValue) or value.tracer is not tracer:
            raise RadixTraceError(f"output {out_name!r} is not from this trace")
        tracer.program.outputs[out_name] = value.vid
        if isinstance(value, RadixBool):
            tracer.program.bool_values.add(value.vid)
    return tracer.program


def verify_against_boolean(
    program: RadixProgram,
    circuit,
    trials: int = 32,
    rng: SeedLike = 0,
) -> None:
    """Co-simulate a radix program against a boolean trace of the same fn.

    Both lowerings must agree on every output for randomized inputs (the
    boolean circuit is simulated with :func:`repro.compiler.sim.simulate`).
    Raises :class:`RadixTraceError` on the first disagreement — this is the
    compiler's cross-lowering correctness oracle.
    """
    from repro.compiler.sim import simulate

    rng = make_rng(rng)
    names = sorted(program.inputs)
    for _ in range(trials):
        values = {
            name: int(rng.integers(0, program.modulus)) for name in names
        }
        expected = program.simulate(values)
        actual = simulate(circuit, values)
        if expected != actual:
            raise RadixTraceError(
                f"radix and boolean lowerings disagree on {values}: "
                f"{expected} vs {actual}"
            )


__all__ = [
    "RadixBool",
    "RadixOp",
    "RadixProgram",
    "RadixTraceError",
    "RadixUint",
    "RadixUint8",
    "RadixUint16",
    "RadixValue",
    "trace_radix",
    "verify_against_boolean",
]

"""Tracing frontend: ordinary Python arithmetic recorded into a netlist.

An encrypted program is just a Python function over symbolic values::

    from repro.compiler import FheUint16, fhe_max, trace

    def score(a, b, c):
        return fhe_max(a * 3 + b, b - c)

    circuit = trace(score, FheUint16("a"), FheUint16("b"), FheUint16("c"))

:func:`trace` runs the function once with :class:`FheUint` / :class:`FheBool`
arguments whose operators (``+ - * & | ^ ~ << >> == != < <= > >=`` plus
:func:`fhe_min` / :func:`fhe_max` / :func:`fhe_abs` / :func:`fhe_select`)
append gates to a shared :class:`repro.tfhe.netlist.Circuit` through the same
``*_into`` builders the hand-written word-level constructors use — a traced
adder is gate-for-gate the :func:`repro.tfhe.netlist.adder_netlist` adder.
Plain ``int`` operands become words of constant wires (the optimizer's
constant-folding pass then collapses everything they touch), and constant
shift amounts rearrange wires for free.

Arithmetic is unsigned and wraps modulo ``2**width``, matching
:func:`repro.tfhe.circuits.int_to_bits`; comparison results are
:class:`FheBool` (one wire) and can select between words via
:func:`fhe_select`.  The traced :class:`~repro.tfhe.netlist.Circuit` runs
unchanged through :func:`repro.tfhe.executor.execute`,
:class:`repro.tfhe.executor.CircuitExecutor` and
:meth:`repro.runtime.scheduler.EvaluationSession.submit_circuit` — optimize
it first with :class:`repro.compiler.passes.PassManager`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, Union

from repro.tfhe.circuits import int_to_bits
from repro.tfhe.netlist import (
    Circuit,
    absolute_into,
    equal_into,
    greater_than_into,
    maximum_into,
    minimum_into,
    multiply_into,
    negate_into,
    ripple_add_into,
    shift_left_into,
    shift_right_into,
)


class TraceError(TypeError):
    """Raised for malformed traced programs (mixed traces, bad widths, ...)."""


class _TracedCircuit(Circuit):
    """A circuit whose :meth:`constant` deduplicates wires.

    The ``*_into`` netlist builders call ``constant`` freely (ripple carries,
    shift fills, coerced int operands), so a naive trace would sprout dozens
    of identical constant nodes; sharing at most one 0 and one 1 wire keeps
    traced netlists canonical before any pass runs.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._const_cache: Dict[int, int] = {}

    def constant(self, bit: int) -> int:
        bit = int(bool(bit))
        if bit not in self._const_cache:
            self._const_cache[bit] = super().constant(bit)
        return self._const_cache[bit]


class _Tracer:
    """Shared per-trace state: the circuit under construction."""

    def __init__(self, name: str) -> None:
        self.circuit = _TracedCircuit(name)

    def const_word(self, value: int, width: int) -> List[int]:
        """A plain integer as ``width`` constant wires (wrapping modulo 2**width)."""
        return [self.circuit.constant(b) for b in int_to_bits(int(value), width)]


class FheValue:
    """Base class of traced values; binds wires to the trace that made them."""

    __slots__ = ("tracer", "wires")

    def __init__(self, tracer: _Tracer, wires: Sequence[int]) -> None:
        self.tracer = tracer
        self.wires = list(wires)

    @property
    def width(self) -> int:
        return len(self.wires)

    # Symbolic values have no truth value: Python would silently call __bool__
    # on `if a == b:` and burn the comparison result.
    def __bool__(self) -> None:  # pragma: no cover - message is the point
        raise TraceError(
            "encrypted values have no plaintext truth value inside a trace; "
            "use fhe_select(cond, if_true, if_false) instead of `if`"
        )


def _coerce(
    value: "FheValue | int", like: FheValue, width: int | None = None
) -> List[int]:
    """Wires of an operand: traced values pass through, ints become constants."""
    width = like.width if width is None else width
    if isinstance(value, FheValue):
        if value.tracer is not like.tracer:
            raise TraceError("cannot mix values from different traces")
        if value.width != width:
            raise TraceError(
                f"operand widths differ: {value.width} vs {width} "
                "(explicitly resize with slicing/extension before mixing)"
            )
        return value.wires
    if isinstance(value, int):
        return like.tracer.const_word(int(value), width)
    raise TraceError(f"cannot trace operand of type {type(value).__name__}")


class FheBool(FheValue):
    """A traced encrypted bit (one wire).

    Instances come from comparisons on :class:`FheUint` or from tracing a
    declared ``FheBool("name")`` input.  Supports ``& | ^ ~`` and drives
    :func:`fhe_select`.  Construct input specs as ``FheBool("flag")``; the
    instance is *unbound* until :func:`trace` declares it on a circuit.
    """

    __slots__ = ("name",)

    def __init__(self, name: str | None = None, *, _bound=None) -> None:
        if _bound is not None:
            tracer, wire = _bound
            super().__init__(tracer, [wire])
            self.name = name
        else:
            if not name:
                raise TraceError("an input spec needs a name: FheBool('flag')")
            self.name = name
            self.tracer = None
            self.wires = []

    @property
    def wire(self) -> int:
        return self.wires[0]

    def _bind(self, tracer: _Tracer) -> "FheBool":
        wire = tracer.circuit.inputs(self.name, 1)[0]
        return FheBool(self.name, _bound=(tracer, wire))

    def _lift(self, wire: int) -> "FheBool":
        return FheBool(None, _bound=(self.tracer, wire))

    def _gate(self, op: str, other: "FheBool | int") -> "FheBool":
        wires = _coerce(other, self, width=1)
        return self._lift(self.tracer.circuit.gate(op, self.wire, wires[0]))

    def __and__(self, other):
        return self._gate("and", other)

    __rand__ = __and__

    def __or__(self, other):
        return self._gate("or", other)

    __ror__ = __or__

    def __xor__(self, other):
        return self._gate("xor", other)

    __rxor__ = __xor__

    def __invert__(self):
        return self._lift(self.tracer.circuit.not_(self.wire))

    def __eq__(self, other):  # symbolic, like FheUint
        return self._gate("xnor", other)

    def __ne__(self, other):
        return self._gate("xor", other)

    __hash__ = None  # symbolic equality makes instances unhashable


class FheUint(FheValue):
    """A traced unsigned integer of fixed ``width`` (wrapping arithmetic).

    ``FheUint(width, "name")`` builds an input spec for :func:`trace`;
    the width-curried aliases :data:`FheUint4` / :data:`FheUint8` /
    :data:`FheUint16` / :data:`FheUint32` read better at call sites.
    Operator results are new :class:`FheUint` / :class:`FheBool` values on
    the same trace.
    """

    __slots__ = ("name",)

    def __init__(
        self, width: int, name: str | None = None, *, _bound=None
    ) -> None:
        if _bound is not None:
            tracer, wires = _bound
            if len(wires) != width:
                raise TraceError(f"expected {width} wires, got {len(wires)}")
            super().__init__(tracer, wires)
            self.name = name
        else:
            if width <= 0:
                raise TraceError("width must be positive")
            if not name:
                raise TraceError("an input spec needs a name: FheUint(8, 'a')")
            self.name = name
            self.tracer = None
            self.wires = [None] * width

    def _bind(self, tracer: _Tracer) -> "FheUint":
        wires = tracer.circuit.inputs(self.name, self.width)
        return FheUint(self.width, self.name, _bound=(tracer, wires))

    def _lift(self, wires: Sequence[int]) -> "FheUint":
        return FheUint(len(list(wires)), None, _bound=(self.tracer, list(wires)))

    def _lift_bool(self, wire: int) -> FheBool:
        return FheBool(None, _bound=(self.tracer, wire))

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other):
        wires = _coerce(other, self)
        c = self.tracer.circuit
        return self._lift(ripple_add_into(c, self.wires, wires)[: self.width])

    __radd__ = __add__

    def __sub__(self, other):
        wires = _coerce(other, self)
        c = self.tracer.circuit
        return self._lift(
            ripple_add_into(c, self.wires, negate_into(c, wires))[: self.width]
        )

    def __rsub__(self, other):
        wires = _coerce(other, self)
        c = self.tracer.circuit
        return self._lift(
            ripple_add_into(c, wires, negate_into(c, self.wires))[: self.width]
        )

    def __mul__(self, other):
        wires = _coerce(other, self)
        return self._lift(multiply_into(self.tracer.circuit, self.wires, wires))

    __rmul__ = __mul__

    def __neg__(self):
        return self._lift(negate_into(self.tracer.circuit, self.wires))

    # -- bitwise -------------------------------------------------------------
    def _bitwise(self, op: str, other) -> "FheUint":
        wires = _coerce(other, self)
        c = self.tracer.circuit
        return self._lift([c.gate(op, a, b) for a, b in zip(self.wires, wires)])

    def __and__(self, other):
        return self._bitwise("and", other)

    __rand__ = __and__

    def __or__(self, other):
        return self._bitwise("or", other)

    __ror__ = __or__

    def __xor__(self, other):
        return self._bitwise("xor", other)

    __rxor__ = __xor__

    def __invert__(self):
        c = self.tracer.circuit
        return self._lift([c.not_(w) for w in self.wires])

    def __lshift__(self, amount):
        if not isinstance(amount, int):
            raise TraceError("shift amounts must be plain ints inside a trace")
        return self._lift(shift_left_into(self.tracer.circuit, self.wires, amount))

    def __rshift__(self, amount):
        if not isinstance(amount, int):
            raise TraceError("shift amounts must be plain ints inside a trace")
        return self._lift(shift_right_into(self.tracer.circuit, self.wires, amount))

    # -- comparisons ---------------------------------------------------------
    def __eq__(self, other):
        wires = _coerce(other, self)
        return self._lift_bool(equal_into(self.tracer.circuit, self.wires, wires))

    def __ne__(self, other):
        eq = self.__eq__(other)
        return ~eq

    __hash__ = None  # symbolic equality makes instances unhashable

    def __gt__(self, other):
        wires = _coerce(other, self)
        return self._lift_bool(
            greater_than_into(self.tracer.circuit, self.wires, wires)
        )

    def __lt__(self, other):
        wires = _coerce(other, self)
        return self._lift_bool(
            greater_than_into(self.tracer.circuit, wires, self.wires)
        )

    def __ge__(self, other):
        return ~self.__lt__(other)

    def __le__(self, other):
        return ~self.__gt__(other)


def FheUint4(name: str) -> FheUint:
    """A 4-bit unsigned input spec."""
    return FheUint(4, name)


def FheUint8(name: str) -> FheUint:
    """An 8-bit unsigned input spec."""
    return FheUint(8, name)


def FheUint16(name: str) -> FheUint:
    """A 16-bit unsigned input spec."""
    return FheUint(16, name)


def FheUint32(name: str) -> FheUint:
    """A 32-bit unsigned input spec."""
    return FheUint(32, name)


# -- traced word-level functions ---------------------------------------------


def _as_pair(a, b) -> Tuple[FheValue, List[int]]:
    """Normalise a two-operand call where at least one side must be traced."""
    if isinstance(a, FheValue):
        return a, _coerce(b, a)
    if isinstance(b, FheValue):
        return b, _coerce(a, b)
    raise TraceError("at least one operand must be a traced FheUint/FheBool")


def fhe_max(a: Union[FheUint, int], b: Union[FheUint, int]) -> FheUint:
    """Unsigned maximum (comparator + multiplexer, like ``maximum_netlist``)."""
    anchor, _ = _as_pair(a, b)
    c = anchor.tracer.circuit
    wires_a = _coerce(a, anchor)
    wires_b = _coerce(b, anchor)
    return anchor._lift(maximum_into(c, wires_a, wires_b))


def fhe_min(a: Union[FheUint, int], b: Union[FheUint, int]) -> FheUint:
    """Unsigned minimum (comparator + flipped multiplexer)."""
    anchor, _ = _as_pair(a, b)
    c = anchor.tracer.circuit
    wires_a = _coerce(a, anchor)
    wires_b = _coerce(b, anchor)
    return anchor._lift(minimum_into(c, wires_a, wires_b))


def fhe_abs(a: FheUint) -> FheUint:
    """Two's-complement absolute value (sign bit selects the negation)."""
    if not isinstance(a, FheUint):
        raise TraceError("fhe_abs takes a traced FheUint")
    return a._lift(absolute_into(a.tracer.circuit, a.wires))


def fhe_select(
    cond: FheBool,
    if_true: Union[FheValue, int],
    if_false: Union[FheValue, int],
) -> FheValue:
    """Word-level multiplexer: ``cond ? if_true : if_false``.

    ``cond`` must be a traced :class:`FheBool`; the branches may be traced
    words (of equal width) or plain ints coerced to the other branch's
    width.  Two plain-int branches are allowed too — the result width is
    the smallest that holds both (``fhe_select(cond, 1, 0)`` is ``cond`` as
    a one-bit word).  This is the traced replacement for a Python ``if``.
    """
    if not isinstance(cond, FheBool):
        raise TraceError("fhe_select condition must be a traced FheBool")
    if isinstance(if_true, FheValue):
        anchor = if_true
    elif isinstance(if_false, FheValue):
        anchor = if_false
    else:
        if not isinstance(if_true, int) or not isinstance(if_false, int):
            raise TraceError("fhe_select branches must be traced values or ints")
        width = max(int(if_true).bit_length(), int(if_false).bit_length(), 1)
        anchor = FheUint(
            width, None, _bound=(cond.tracer, cond.tracer.const_word(if_true, width))
        )
    if anchor.tracer is not cond.tracer:
        raise TraceError("cannot mix values from different traces")
    wires_t = _coerce(if_true, anchor)
    wires_f = _coerce(if_false, anchor)
    c = cond.tracer.circuit
    out = [c.mux(cond.wire, t, f) for t, f in zip(wires_t, wires_f)]
    if isinstance(anchor, FheBool):
        return FheBool(None, _bound=(cond.tracer, out[0]))
    return FheUint(len(out), None, _bound=(cond.tracer, out))


# -- trace entry point --------------------------------------------------------

TraceResult = Union[FheValue, Tuple, List, Dict[str, FheValue]]


def _declare_outputs(circuit: Circuit, result: TraceResult, tracer: _Tracer) -> None:
    if isinstance(result, FheValue):
        named = {"out": result}
    elif isinstance(result, dict):
        named = dict(result)
    elif isinstance(result, (tuple, list)):
        named = {f"out{i}": value for i, value in enumerate(result)}
    else:
        raise TraceError(
            "a traced function must return FheUint/FheBool values "
            f"(or a tuple/dict of them), got {type(result).__name__}"
        )
    if not named:
        raise TraceError("a traced function must return at least one value")
    for name, value in named.items():
        if not isinstance(value, FheValue):
            raise TraceError(
                f"output {name!r} is not a traced value "
                f"({type(value).__name__}); return FheUint/FheBool results"
            )
        if value.tracer is not tracer:
            raise TraceError(f"output {name!r} belongs to a different trace")
        circuit.output(name, value.wires)


def trace(fn: Callable, *specs: FheValue, name: str | None = None) -> Circuit:
    """Record ``fn(*specs)`` into a :class:`repro.tfhe.netlist.Circuit`.

    ``specs`` are *unbound* input declarations (``FheUint16("a")``,
    ``FheBool("flag")``, ...) in the positional order of ``fn``'s
    parameters; each becomes a named circuit input word.  The function runs
    exactly once; its return value — one traced value, a tuple (outputs
    ``out0, out1, ...``) or a ``{name: value}`` dict — becomes the circuit's
    outputs (a single value is named ``out``).  The circuit is validated
    before it is returned.
    """
    tracer = _Tracer(name or getattr(fn, "__name__", "traced") or "traced")
    bound = []
    for spec in specs:
        if not isinstance(spec, FheValue) or spec.tracer is not None:
            raise TraceError(
                "trace arguments must be unbound input specs such as "
                "FheUint16('a') or FheBool('flag')"
            )
        bound.append(spec._bind(tracer))
    result = fn(*bound)
    _declare_outputs(tracer.circuit, result, tracer)
    tracer.circuit.validate()
    return tracer.circuit


__all__ = [
    "FheBool",
    "FheUint",
    "FheUint4",
    "FheUint8",
    "FheUint16",
    "FheUint32",
    "FheValue",
    "TraceError",
    "fhe_abs",
    "fhe_max",
    "fhe_min",
    "fhe_select",
    "trace",
]

"""Circuit → Circuit optimization passes and the pipeline that runs them.

Every saved gate is a saved bootstrapping — the dominant cost of TFHE-style
gate evaluation (the paper's Figure-1 breakdown) — so the compiler's job
after tracing is to *shrink* the netlist before the executor ever sees it.
Each pass is a structural rewrite over :class:`repro.tfhe.netlist.Circuit`
that preserves the input/output interface (all declared input words survive,
output names and widths are unchanged) and the plaintext semantics
(:func:`repro.compiler.sim.verify_equivalent` is the oracle):

``fold``    — constant folding: gates with constant inputs collapse to
              constants, copies or NOTs (a mux whose select is constant
              reduces to the picked branch through the same rules).
``absorb``  — NOT/COPY absorption: linear nodes are chased to their roots
              and complemented inputs are folded into the consuming gate's
              affine form (``xor(not a, b)`` → ``xnor(a, b)``) — legal
              because the ten-gate vocabulary is closed under input
              complementation.
``cse``     — common-subexpression elimination: structurally identical
              nodes (up to commutativity, including the ``andny``/``andyn``
              and ``orny``/``oryn`` mirror pairs) are deduplicated.
``balance`` — ASAP depth rebalancing: single-use chains of one associative
              gate (``and``/``or``/``xor``) are regrouped into balanced
              trees, combining earliest-ready operands first, which shortens
              the level count :class:`repro.tfhe.executor.CircuitExecutor`
              must serialize.
``dce``     — dead-node elimination: everything outside the live cone of
              the outputs is dropped (the rewrite-level generalisation of
              :meth:`repro.tfhe.netlist.Circuit.live_nodes`).

:class:`PassManager` runs a pipeline of passes (optionally to a fixpoint),
records a :class:`PassStats` per application (gates and depth before/after)
and can co-simulate every rewrite against its input circuit.
:func:`optimize` is the one-call convenience wrapper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler.sim import verify_equivalent
from repro.tfhe.gates import PLAINTEXT_GATES
from repro.tfhe.lut import MAX_LUT_ARITY, boolean_lut_spec
from repro.tfhe.netlist import BOOTSTRAPPED_OPS, Circuit, Node
from repro.utils.rng import SeedLike, make_rng


class OptimizationError(RuntimeError):
    """Raised when a pass produces a circuit that fails verification."""


# --------------------------------------------------------------------------- #
# gate algebra tables (derived from the truth tables, never hand-written)     #
# --------------------------------------------------------------------------- #


def _truth(op: str) -> Tuple[int, int, int, int]:
    f = PLAINTEXT_GATES[op]
    return (f(0, 0), f(0, 1), f(1, 0), f(1, 1))


def _op_for_truth(table: Tuple[int, int, int, int]) -> Optional[str]:
    for name in PLAINTEXT_GATES:
        if _truth(name) == table:
            return name
    return None


def _complement_table(position: int) -> Dict[str, str]:
    """``op`` → the op computing the same function with input ``position`` inverted."""
    out: Dict[str, str] = {}
    for name, f in PLAINTEXT_GATES.items():
        if position == 0:
            flipped = (f(1, 0), f(1, 1), f(0, 0), f(0, 1))
        else:
            flipped = (f(0, 1), f(0, 0), f(1, 1), f(1, 0))
        target = _op_for_truth(flipped)
        assert target is not None, f"gate set not closed under complement: {name}"
        out[name] = target
    return out


#: ``op`` → op with the first / second input complemented.  The ten-gate
#: vocabulary is closed under input complementation, which is what makes
#: NOT absorption a pure renaming.
COMPLEMENT_FIRST: Dict[str, str] = _complement_table(0)
COMPLEMENT_SECOND: Dict[str, str] = _complement_table(1)

#: Commutative gates (args may be sorted for structural comparison).
COMMUTATIVE_OPS = frozenset(
    name for name in PLAINTEXT_GATES if _truth(name)[1] == _truth(name)[2]
)

#: Mirror pairs: ``op(a, b) == MIRROR[op](b, a)`` for the non-commutative gates.
MIRROR: Dict[str, str] = {
    name: _op_for_truth((_truth(name)[0], _truth(name)[2], _truth(name)[1], _truth(name)[3]))
    for name in PLAINTEXT_GATES
    if name not in COMMUTATIVE_OPS
}

#: Associative + commutative gates eligible for tree rebalancing.
BALANCEABLE_OPS = frozenset(("and", "or", "xor"))


def _restrict_lut(
    table: int, args: Sequence[int], known: Dict[int, int]
) -> Tuple[int, List[int]]:
    """Restrict a lut truth table on constant inputs and prune dead ones.

    Returns ``(reduced_table, kept_positions)`` where ``kept_positions`` are
    the argument indices the restricted function still depends on (order
    preserved).  Restriction can only *lower* the affine realisation cost of
    a feasible table (fixing an input folds its weight into the offset;
    pruned inputs had weight zero), so the reduced table is always accepted
    by :meth:`repro.tfhe.netlist.Circuit.lut` again.
    """
    free = [i for i, a in enumerate(args) if a not in known]
    fixed_index = 0
    for i, a in enumerate(args):
        if a in known:
            fixed_index |= known[a] << i
    outputs: List[int] = []
    for m in range(1 << len(free)):
        index = fixed_index
        for j, position in enumerate(free):
            index |= ((m >> j) & 1) << position
        outputs.append((table >> index) & 1)
    kept: List[int] = []
    for j, position in enumerate(free):
        if any(
            outputs[m] != outputs[m ^ (1 << j)] for m in range(len(outputs))
        ):
            kept.append(j)
    reduced = 0
    for m in range(1 << len(kept)):
        index = 0
        for slot, j in enumerate(kept):
            index |= ((m >> slot) & 1) << j
        reduced |= outputs[index] << m
    return reduced, [free[j] for j in kept]


# --------------------------------------------------------------------------- #
# shared rewrite machinery                                                    #
# --------------------------------------------------------------------------- #


def circuit_depth(circuit: Circuit, outputs: Optional[Sequence[str]] = None) -> int:
    """Bootstrapped critical-path length of the live cone (executor levels)."""
    live = circuit.live_nodes(outputs)
    level: Dict[int, int] = {}
    depth = 0
    for node in circuit.nodes:
        if node.node_id not in live:
            continue
        base = max((level[a] for a in node.args), default=0)
        level[node.node_id] = base + (1 if node.is_bootstrapped else 0)
        depth = max(depth, level[node.node_id])
    return depth


def live_gate_count(circuit: Circuit, outputs: Optional[Sequence[str]] = None) -> int:
    """Bootstrapped gates inside the live cone (what the executor will pay for)."""
    live = circuit.live_nodes(outputs)
    return sum(1 for nid in live if circuit.node(nid).is_bootstrapped)


class _Rebuild:
    """Rebuilds a circuit while preserving its input/output interface.

    All input words are redeclared up front (even if dead after the rewrite —
    the interface is part of the circuit's contract), then the pass emits
    replacement nodes in SSA order while maintaining ``wire_map`` from old to
    new wires.  ``finish`` re-declares every output through the map.
    """

    def __init__(self, old: Circuit) -> None:
        self.old = old
        self.new = Circuit(old.name)
        self.wire_map: Dict[int, int] = {}
        self._consts: Dict[int, int] = {}
        for name, wires in old.input_wires.items():
            for old_wire, new_wire in zip(wires, self.new.inputs(name, len(wires))):
                self.wire_map[old_wire] = new_wire

    def const(self, bit: int) -> int:
        """A constant wire in the new circuit, deduplicated."""
        bit = int(bool(bit))
        if bit not in self._consts:
            self._consts[bit] = self.new.constant(bit)
        return self._consts[bit]

    def emit_like(self, node: Node, args: Sequence[int]) -> int:
        """Emit a copy of ``node`` over already-mapped ``args``."""
        if node.op == "const":
            return self.const(node.value)
        if node.op == "not":
            return self.new.not_(args[0])
        if node.op == "copy":
            return self.new.copy(args[0])
        if node.op == "lut":
            return self.new.lut(node.value, args)
        return self.new.gate(node.op, args[0], args[1])

    def finish(self) -> Circuit:
        for name, wires in self.old.output_wires.items():
            self.new.output(name, [self.wire_map[w] for w in wires])
        self.new.validate()
        return self.new


# --------------------------------------------------------------------------- #
# the passes                                                                  #
# --------------------------------------------------------------------------- #


def fold_constants(circuit: Circuit) -> Circuit:
    """Collapse everything reachable from constant wires.

    One SSA walk with forward value tracking, so constants cascade through
    arbitrarily deep cones in a single application: a gate with two known
    inputs becomes a constant, a gate with one known input restricts to a
    constant, an alias of the live input, or a NOT of it (the four possible
    single-variable truth tables).  A gate whose two inputs map to the *same*
    wire restricts along the diagonal the same way (``xnor(x, x)`` → 1,
    ``and(x, x)`` → ``x``, ``nand(x, x)`` → ``not x``).  A three-gate mux
    whose select folded to a constant reduces to the selected branch through
    exactly these rules.
    """
    rebuild = _Rebuild(circuit)
    known: Dict[int, int] = {}
    for node in circuit.nodes:
        if node.op == "input":
            continue
        if node.op == "const":
            known[node.node_id] = node.value
            rebuild.wire_map[node.node_id] = rebuild.const(node.value)
        elif node.op == "not":
            arg = node.args[0]
            if arg in known:
                known[node.node_id] = 1 - known[arg]
                rebuild.wire_map[node.node_id] = rebuild.const(1 - known[arg])
            else:
                rebuild.wire_map[node.node_id] = rebuild.new.not_(
                    rebuild.wire_map[arg]
                )
        elif node.op == "copy":
            arg = node.args[0]
            if arg in known:
                known[node.node_id] = known[arg]
            rebuild.wire_map[node.node_id] = (
                rebuild.const(known[arg])
                if arg in known
                else rebuild.new.copy(rebuild.wire_map[arg])
            )
        elif node.op == "lut":
            table, kept = _restrict_lut(node.value, node.args, known)
            if not kept:
                value = table & 1
                known[node.node_id] = value
                rebuild.wire_map[node.node_id] = rebuild.const(value)
            elif len(kept) == 1:
                free_wire = rebuild.wire_map[node.args[kept[0]]]
                if table == 0b10:  # identity in the surviving input
                    rebuild.wire_map[node.node_id] = free_wire
                else:  # 0b01: negation (constant tables have no kept inputs)
                    rebuild.wire_map[node.node_id] = rebuild.new.not_(free_wire)
            else:
                rebuild.wire_map[node.node_id] = rebuild.new.lut(
                    table, [rebuild.wire_map[node.args[p]] for p in kept]
                )
        else:
            a, b = node.args
            if a in known and b in known:
                value = PLAINTEXT_GATES[node.op](known[a], known[b])
                known[node.node_id] = value
                rebuild.wire_map[node.node_id] = rebuild.const(value)
            elif a in known or b in known or rebuild.wire_map[a] == rebuild.wire_map[b]:
                f = PLAINTEXT_GATES[node.op]
                if a in known:
                    free = b
                    table = (f(known[a], 0), f(known[a], 1))
                elif b in known:
                    free = a
                    table = (f(0, known[b]), f(1, known[b]))
                else:  # same wire on both inputs: restrict to the diagonal
                    free = a
                    table = (f(0, 0), f(1, 1))
                free_wire = rebuild.wire_map[free]
                if table == (0, 0) or table == (1, 1):
                    known[node.node_id] = table[0]
                    rebuild.wire_map[node.node_id] = rebuild.const(table[0])
                elif table == (0, 1):  # identity in the free input
                    rebuild.wire_map[node.node_id] = free_wire
                else:  # (1, 0): negation of the free input
                    rebuild.wire_map[node.node_id] = rebuild.new.not_(free_wire)
            else:
                rebuild.wire_map[node.node_id] = rebuild.new.gate(
                    node.op, rebuild.wire_map[a], rebuild.wire_map[b]
                )
    return rebuild.finish()


def absorb_linear(circuit: Circuit) -> Circuit:
    """Fold NOT/COPY chains into the gates that consume them.

    Every wire is resolved to ``(root, negated)`` by chasing linear nodes;
    gate inputs then use the root directly, renaming the gate through
    :data:`COMPLEMENT_FIRST` / :data:`COMPLEMENT_SECOND` when the chain had
    odd negation parity.  Linear nodes are never re-emitted — only outputs
    that resolve with a pending negation keep a single trailing NOT.
    """
    resolved: Dict[int, Tuple[int, bool]] = {}
    for node in circuit.nodes:
        if node.op == "copy":
            resolved[node.node_id] = resolved[node.args[0]]
        elif node.op == "not":
            root, neg = resolved[node.args[0]]
            resolved[node.node_id] = (root, not neg)
        else:
            resolved[node.node_id] = (node.node_id, False)

    rebuild = _Rebuild(circuit)
    trailing_not: Dict[int, int] = {}

    def mapped(wire: int) -> int:
        """New wire for an old wire, materialising one NOT per negated root."""
        root, neg = resolved[wire]
        base = rebuild.wire_map[root]
        if not neg:
            return base
        if root not in trailing_not:
            trailing_not[root] = rebuild.new.not_(base)
        return trailing_not[root]

    for node in circuit.nodes:
        if node.op in ("input", "not", "copy"):
            continue  # inputs pre-mapped; linear nodes absorbed
        if node.op == "const":
            rebuild.wire_map[node.node_id] = rebuild.const(node.value)
            continue
        if node.op == "lut":
            roots = [resolved[a] for a in node.args]
            neg_mask = sum(1 << i for i, (_, neg) in enumerate(roots) if neg)
            table = node.value
            if neg_mask:
                # Complementing input i negates its affine weight, so the
                # permuted table stays realisable at the same cost.
                table = sum(
                    ((node.value >> (m ^ neg_mask)) & 1) << m
                    for m in range(1 << len(node.args))
                )
            rebuild.wire_map[node.node_id] = rebuild.new.lut(
                table, [rebuild.wire_map[root] for root, _ in roots]
            )
            continue
        (ra, na), (rb, nb) = resolved[node.args[0]], resolved[node.args[1]]
        op = node.op
        if na:
            op = COMPLEMENT_FIRST[op]
        if nb:
            op = COMPLEMENT_SECOND[op]
        rebuild.wire_map[node.node_id] = rebuild.new.gate(
            op, rebuild.wire_map[ra], rebuild.wire_map[rb]
        )

    # Outputs may reference absorbed linear nodes; route them through mapped().
    for name, wires in circuit.output_wires.items():
        rebuild.new.output(name, [mapped(w) for w in wires])
    rebuild.new.validate()
    return rebuild.new


def eliminate_common_subexpressions(circuit: Circuit) -> Circuit:
    """Structural deduplication of identical nodes (gate-level CSE).

    The structural key sorts the arguments of commutative gates and rewrites
    the ``andny``/``andyn`` and ``orny``/``oryn`` mirror pairs onto a single
    canonical spelling, so ``andny(a, b)`` and ``andyn(b, a)`` — the same
    Boolean function — share one bootstrapping.
    """
    rebuild = _Rebuild(circuit)
    seen: Dict[Tuple, int] = {}
    for node in circuit.nodes:
        if node.op == "input":
            continue
        args = tuple(rebuild.wire_map[a] for a in node.args)
        if node.op == "const":
            key: Tuple = ("const", node.value)
        elif node.op == "lut":
            key = ("lut", node.value, args)
        elif node.op in ("not", "copy"):
            key = (node.op, args[0])
        elif node.op in COMMUTATIVE_OPS:
            key = (node.op,) + tuple(sorted(args))
        else:
            mirror = MIRROR[node.op]
            # Pick the lexicographically smaller (op, args) spelling.
            key = min((node.op, args), (mirror, (args[1], args[0])))
        if key in seen:
            rebuild.wire_map[node.node_id] = seen[key]
        else:
            seen[key] = rebuild.wire_map[node.node_id] = rebuild.emit_like(
                node, args
            )
    return rebuild.finish()


def eliminate_dead_nodes(circuit: Circuit) -> Circuit:
    """Drop every node outside the live cone of the declared outputs.

    Input words always survive (the interface is part of the contract — the
    executors already skip dead input wires), everything else is renumbered
    compactly.  This generalises
    :meth:`repro.tfhe.netlist.Circuit.live_nodes` from a query to a rewrite,
    so downstream consumers (serialization, the scheduler) never see dead
    gates at all.
    """
    live = circuit.live_nodes()
    rebuild = _Rebuild(circuit)
    for node in circuit.nodes:
        if node.op == "input" or node.node_id not in live:
            continue
        args = [rebuild.wire_map[a] for a in node.args]
        rebuild.wire_map[node.node_id] = rebuild.emit_like(node, args)
    return rebuild.finish()


def rebalance_depth(circuit: Circuit) -> Circuit:
    """Regroup associative gate chains into depth-minimal balanced trees.

    A chain like ``and(and(and(a, b), c), d)`` (the equality comparator's
    accumulator, depth 3) computes a symmetric function, so it may be
    regrouped as ``and(and(a, b), and(c, d))`` (depth 2).  Only single-use
    interior nodes are collapsed — a chain node consumed elsewhere stays a
    leaf — and operands are combined cheapest-level-first (a two-element
    min-heap on the operands' ASAP levels), which is optimal for the
    ``max(level_a, level_b) + 1`` level recurrence and also exploits leaves
    that become ready at different times.
    """
    fanout: Dict[int, int] = {}
    for node in circuit.nodes:
        for arg in node.args:
            fanout[arg] = fanout.get(arg, 0) + 1
    for wires in circuit.output_wires.values():
        for wire in wires:
            fanout[wire] = fanout.get(wire, 0) + 1

    def is_interior(nid: int, op: str) -> bool:
        node = circuit.node(nid)
        return node.op == op and fanout.get(nid, 0) == 1

    # Roots of maximal chains: same-op gates that are not themselves interior.
    user_op: Dict[int, str] = {}
    for node in circuit.nodes:
        for arg in node.args:
            user_op[arg] = node.op  # fanout-1 nodes have exactly one user

    def leaves(nid: int, op: str) -> List[int]:
        out: List[int] = []
        for arg in circuit.node(nid).args:
            if is_interior(arg, op):
                out.extend(leaves(arg, op))
            else:
                out.append(arg)
        return out

    rebuild = _Rebuild(circuit)
    level: Dict[int, int] = {w: 0 for w in rebuild.wire_map.values()}

    def emit_gate(op: str, a: int, b: int) -> int:
        wire = rebuild.new.gate(op, a, b)
        level[wire] = max(level.get(a, 0), level.get(b, 0)) + 1
        return wire

    for node in circuit.nodes:
        if node.op == "input":
            continue
        nid = node.node_id
        if node.op in BALANCEABLE_OPS and is_interior(nid, user_op.get(nid, "")):
            continue  # collapsed into its chain root
        if node.op in BALANCEABLE_OPS:
            chain = leaves(nid, node.op)
            if len(chain) > 2:
                heap = [(level.get(rebuild.wire_map[w], 0), rebuild.wire_map[w]) for w in chain]
                heapq.heapify(heap)
                while len(heap) > 1:
                    la, a = heapq.heappop(heap)
                    lb, b = heapq.heappop(heap)
                    wire = emit_gate(node.op, a, b)
                    heapq.heappush(heap, (level[wire], wire))
                rebuild.wire_map[nid] = heap[0][1]
                continue
        args = [rebuild.wire_map[a] for a in node.args]
        wire = rebuild.emit_like(node, args)
        level[wire] = max((level.get(a, 0) for a in args), default=0) + (
            1 if node.is_bootstrapped else 0
        )
        rebuild.wire_map[nid] = wire
    return rebuild.finish()


# --------------------------------------------------------------------------- #
#: Node kinds lutify may pull into a cone (everything except inputs/consts).
_ABSORBABLE_OPS = frozenset(BOOTSTRAPPED_OPS) | {"lut", "not", "copy"}


def lutify(circuit: Circuit, max_arity: int = MAX_LUT_ARITY) -> Circuit:
    """Cluster single-output gate cones into k-input ``lut`` nodes.

    Greedy cone growing, roots visited outputs-first: starting from each
    bootstrapped node, a fan-in leaf is absorbed into the cone when (a) it
    is an interior node (gate, lut, NOT or COPY — never an input or
    constant), (b) the widened cut stays within ``max_arity`` inputs, and
    (c) the cone's truth table keeps a single-bootstrap realisation
    (:func:`repro.tfhe.lut.boolean_lut_spec`) — the feasibility invariant
    that makes every accepted expansion executable.  Absorption *duplicates*
    logic rather than consuming it: each cone only ever replaces its root
    with one lut, so shared interiors may be pulled into several cones
    (``xor(a, b)`` folds into both the sum and carry cones of a full adder);
    whichever interiors end up unreferenced are swept by the ``dce`` pass
    that must follow.  Replacing one bootstrapped root by one lut is
    cost-neutral at worst, so the pass is monotone in bootstrappings; a cone
    is only committed when it covers at least two bootstrapped nodes, which
    is when an actual saving is possible.

    Run *after* ``fold``/``absorb``/``cse`` (see :data:`LUT_PIPELINE`):
    those passes canonicalise the netlist so cones are maximal, and ``dce``
    afterwards sweeps the absorbed interiors.
    """

    def cone_table(members: set, root: int, leaves: List[int]) -> int:
        """Truth table of the cone over its cut (exhaustive, ≤ 2^4 points)."""
        member_nodes = [circuit.node(m) for m in sorted(members)]
        table = 0
        for m in range(1 << len(leaves)):
            values = {leaf: (m >> i) & 1 for i, leaf in enumerate(leaves)}
            for n in member_nodes:
                if n.op == "not":
                    values[n.node_id] = 1 - values[n.args[0]]
                elif n.op == "copy":
                    values[n.node_id] = values[n.args[0]]
                elif n.op == "lut":
                    index = sum(values[a] << i for i, a in enumerate(n.args))
                    values[n.node_id] = (n.value >> index) & 1
                else:
                    values[n.node_id] = PLAINTEXT_GATES[n.op](
                        values[n.args[0]], values[n.args[1]]
                    )
            table |= values[root] << m
        return table

    def cone_leaves(members: frozenset) -> List[int]:
        """The cut of a member set: non-member args, in first-use order."""
        leaves: List[int] = []
        for m in sorted(members):
            for a in circuit.node(m).args:
                if a not in members and a not in leaves:
                    leaves.append(a)
        return leaves

    cones: Dict[int, Tuple[int, List[int]]] = {}
    state_budget = 256  # states explored per root; cones are tiny in practice
    for node in reversed(circuit.nodes):
        nid = node.node_id
        if not node.is_bootstrapped:
            continue
        # Bounded DFS over member sets: intermediate states may be infeasible
        # (the 4-input cut of a growing majority cone is not realisable even
        # though the final 3-input one is), so feasibility selects the best
        # committed cone rather than gating every expansion step.
        best: Optional[Tuple[int, int, frozenset, List[int]]] = None
        start = frozenset((nid,))
        stack = [start]
        seen = {start}
        explored = 0
        while stack and explored < state_budget:
            members = stack.pop()
            explored += 1
            leaves = cone_leaves(members)
            boot = sum(1 for m in members if circuit.node(m).is_bootstrapped)
            if boolean_lut_spec(cone_table(members, nid, leaves), len(leaves)):
                candidate = (boot, -len(leaves), members, leaves)
                if best is None or candidate[:2] > best[:2]:
                    best = candidate
            for leaf in leaves:
                if circuit.node(leaf).op not in _ABSORBABLE_OPS:
                    continue
                trial = members | {leaf}
                if trial in seen:
                    continue
                trial_leaves = cone_leaves(trial)
                if not trial_leaves or len(trial_leaves) > max_arity:
                    continue
                seen.add(trial)
                stack.append(trial)
        if best is not None and best[0] >= 2:
            _, _, members, leaves = best
            cones[nid] = (cone_table(members, nid, leaves), leaves)

    rebuild = _Rebuild(circuit)
    for node in circuit.nodes:
        nid = node.node_id
        if node.op == "input":
            continue
        if nid in cones:
            table, leaves = cones[nid]
            rebuild.wire_map[nid] = rebuild.new.lut(
                table, [rebuild.wire_map[w] for w in leaves]
            )
        else:
            args = [rebuild.wire_map[a] for a in node.args]
            rebuild.wire_map[nid] = rebuild.emit_like(node, args)
    return rebuild.finish()


# --------------------------------------------------------------------------- #
# the pipeline                                                                #
# --------------------------------------------------------------------------- #

#: Registered passes, in canonical pipeline order.
PASSES: Dict[str, Callable[[Circuit], Circuit]] = {
    "fold": fold_constants,
    "absorb": absorb_linear,
    "cse": eliminate_common_subexpressions,
    "balance": rebalance_depth,
    "lutify": lutify,
    "dce": eliminate_dead_nodes,
}

#: Default pipeline: folding first exposes copies/NOTs, absorption cleans
#: them up so CSE sees canonical gates, rebalancing runs on the shrunk
#: netlist, a second CSE merges tree substructure, and DCE renumbers last.
DEFAULT_PIPELINE: Tuple[str, ...] = ("fold", "absorb", "cse", "balance", "cse", "dce")

#: Pipeline with LUT clustering: lutify runs *after* the gate-level cleanup
#: (cones are grown over a canonical, deduplicated netlist — folding or CSE
#: after lutify would see opaque tables and miss rewrites) and *before* DCE,
#: which sweeps the gate interiors the cones absorbed.
LUT_PIPELINE: Tuple[str, ...] = (
    "fold",
    "absorb",
    "cse",
    "balance",
    "cse",
    "lutify",
    "dce",
)


@dataclass(frozen=True)
class PassStats:
    """Instrumentation of one pass application (live-cone numbers)."""

    name: str
    nodes_before: int
    nodes_after: int
    gates_before: int
    gates_after: int
    depth_before: int
    depth_after: int

    @property
    def gates_removed(self) -> int:
        return self.gates_before - self.gates_after

    @property
    def changed(self) -> bool:
        """Whether the pass changed any instrumented quantity."""
        return (
            self.nodes_before != self.nodes_after
            or self.gates_before != self.gates_after
            or self.depth_before != self.depth_after
        )

    def __str__(self) -> str:
        return (
            f"{self.name:>8}: gates {self.gates_before:>5} -> {self.gates_after:<5} "
            f"depth {self.depth_before:>3} -> {self.depth_after:<3} "
            f"nodes {self.nodes_before:>5} -> {self.nodes_after:<5}"
        )


class PassManager:
    """Runs a pipeline of circuit passes with instrumentation and verification.

    ``passes`` is a sequence of registered pass names (default
    :data:`DEFAULT_PIPELINE`); the pipeline repeats until it stops changing
    the circuit, up to ``max_iterations`` sweeps.  With ``verify=True`` every
    pass application is checked semantics-preserving against its input by
    plaintext co-simulation (:func:`repro.compiler.sim.verify_equivalent`)
    over ``trials`` randomized assignments (exhaustive for small input
    spaces); a mismatch raises :class:`OptimizationError` naming the pass.
    ``stats`` holds one :class:`PassStats` per application of the last run.
    """

    def __init__(
        self,
        passes: Optional[Sequence[str]] = None,
        verify: bool = False,
        trials: int = 16,
        rng: SeedLike = 0,
        max_iterations: int = 4,
    ) -> None:
        names = tuple(passes) if passes is not None else DEFAULT_PIPELINE
        unknown = [name for name in names if name not in PASSES]
        if unknown:
            raise ValueError(
                f"unknown passes {unknown}; registered: {sorted(PASSES)}"
            )
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.pass_names = names
        self.verify = verify
        self.trials = trials
        self.rng = make_rng(rng)
        self.max_iterations = max_iterations
        self.stats: List[PassStats] = []

    def _apply(self, name: str, circuit: Circuit) -> Circuit:
        result = PASSES[name](circuit)
        self.stats.append(
            PassStats(
                name=name,
                nodes_before=len(circuit.nodes),
                nodes_after=len(result.nodes),
                gates_before=live_gate_count(circuit),
                gates_after=live_gate_count(result),
                depth_before=circuit_depth(circuit),
                depth_after=circuit_depth(result),
            )
        )
        if self.verify:
            try:
                verify_equivalent(circuit, result, trials=self.trials, rng=self.rng)
            except AssertionError as exc:
                raise OptimizationError(
                    f"pass {name!r} changed circuit semantics: {exc}"
                ) from exc
        return result

    def run(self, circuit: Circuit) -> Circuit:
        """Optimize ``circuit``; the input is never mutated."""
        circuit.validate()
        self.stats = []
        for _ in range(self.max_iterations):
            sweep_start = len(self.stats)
            for name in self.pass_names:
                circuit = self._apply(name, circuit)
            if not any(s.changed for s in self.stats[sweep_start:]):
                break
        return circuit

    def summary(self) -> str:
        """Human-readable per-pass table of the last run."""
        return "\n".join(str(s) for s in self.stats)


def optimize(
    circuit: Circuit,
    passes: Optional[Sequence[str]] = None,
    verify: bool = False,
    rng: SeedLike = 0,
) -> Circuit:
    """One-call pipeline: ``optimize(trace(fn, ...))`` → executable circuit."""
    return PassManager(passes=passes, verify=verify, rng=rng).run(circuit)


__all__ = [
    "BALANCEABLE_OPS",
    "LUT_PIPELINE",
    "lutify",
    "COMMUTATIVE_OPS",
    "COMPLEMENT_FIRST",
    "COMPLEMENT_SECOND",
    "DEFAULT_PIPELINE",
    "MIRROR",
    "OptimizationError",
    "PASSES",
    "PassManager",
    "PassStats",
    "absorb_linear",
    "circuit_depth",
    "eliminate_common_subexpressions",
    "eliminate_dead_nodes",
    "fold_constants",
    "live_gate_count",
    "optimize",
    "rebalance_depth",
]

"""Architecture descriptions (the paper's "AD" abstraction).

An :class:`ArchitectureDescription` lists the functional-unit classes of an
accelerator (how many instances, which operations they execute, how much work
one instance retires per cycle, start-up latency and energy per unit of work)
together with the memory system parameters.  The Figure 7 MATCHA instance is
produced by :func:`matcha_architecture`; the scheduler
(:mod:`repro.arch.scheduler`) maps gate DFGs onto any description, which the
ablation benches use to vary the number of EP cores, butterfly cores per FFT
core, clock frequency and HBM bandwidth.

Fidelity note: the unit throughputs below are derived from the component
counts of Figure 7 / Table 2 (128 butterfly cores per FFT core, 16 MAC lanes
per TGSW cluster, ...), with one global calibration factor applied by
:mod:`repro.platforms.calibration` so the absolute single-gate latency lands
in the regime the paper reports.  Relative behaviour across the BKU factor
``m`` and across architecture ablations is produced by the model itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.arch.ops import OpType


@dataclass(frozen=True)
class FunctionalUnitSpec:
    """One class of functional units of an accelerator."""

    name: str
    count: int
    ops: FrozenSet[OpType]
    #: Elementary work units retired per cycle by one instance.
    throughput_per_cycle: float
    #: Fixed pipeline start-up cost per scheduled node, in cycles.
    startup_cycles: float = 0.0
    #: Dynamic energy per elementary work unit, in picojoules.
    energy_per_work_pj: float = 1.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("unit count must be positive")
        if self.throughput_per_cycle <= 0:
            raise ValueError("throughput must be positive")
        if self.startup_cycles < 0:
            raise ValueError("startup cycles must be non-negative")

    def cycles_for(self, work: float) -> float:
        """Cycles one instance needs to retire ``work`` elementary operations."""
        return self.startup_cycles + work / self.throughput_per_cycle


@dataclass(frozen=True)
class MemorySystemSpec:
    """Scratchpad / register / HBM parameters of the accelerator."""

    spm_banks: int = 32
    spm_kb: int = 4096
    register_file_kb_per_ep: int = 256
    register_banks_per_ep: int = 8
    register_file_kb_per_tgsw: int = 16
    register_banks_per_tgsw: int = 2
    hbm_bandwidth_bytes_per_s: float = 640.0e9
    crossbar_width_bits: int = 256


@dataclass(frozen=True)
class ArchitectureDescription:
    """A complete accelerator description consumable by the scheduler."""

    name: str
    clock_hz: float
    units: Tuple[FunctionalUnitSpec, ...]
    memory: MemorySystemSpec = MemorySystemSpec()
    static_power_w: float = 0.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        seen = set()
        for unit in self.units:
            if unit.name in seen:
                raise ValueError(f"duplicate functional unit name {unit.name!r}")
            seen.add(unit.name)

    def unit_for_op(self, op: OpType) -> FunctionalUnitSpec:
        """The functional-unit class that executes ``op`` (first match)."""
        for unit in self.units:
            if op in unit.ops:
                return unit
        raise KeyError(f"no functional unit supports {op}")

    def supports(self, op: OpType) -> bool:
        return any(op in unit.ops for unit in self.units)

    def seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def unit_map(self) -> Dict[str, FunctionalUnitSpec]:
        return {unit.name: unit for unit in self.units}


def matcha_architecture(
    pipeline_slices: int = 1,
    clock_hz: float = 2.0e9,
    butterfly_cores_per_fft: int = 128,
    ifft_cores_per_ep: int = 4,
    mac_lanes_per_ep: int = 16,
    tgsw_lanes_per_cluster: int = 64,
    poly_unit_lanes: int = 32,
    hbm_bandwidth_bytes_per_s: float = 640.0e9,
    throughput_scale: float = 1.0,
) -> ArchitectureDescription:
    """The Figure 7 MATCHA architecture, restricted to ``pipeline_slices`` pairs.

    A *pipeline slice* is one TGSW cluster plus one EP core; a single gate only
    ever exercises one slice (the blind rotation is sequential), so the
    latency model schedules onto one slice and the throughput model multiplies
    by the number of slices (eight in the paper's configuration).

    ``tgsw_lanes_per_cluster`` and ``mac_lanes_per_ep`` are *effective vector
    lanes*: Table 2 lists 16 multiplier/adder pairs per TGSW cluster and 4 per
    EP core; the effective lane counts used here fold in the SIMD width those
    units need to sustain the pipeline balance the paper reports, and they are
    exposed so ablation benches can sweep them.
    """
    if pipeline_slices <= 0:
        raise ValueError("pipeline slice count must be positive")
    scale = float(throughput_scale)
    butterflies_per_cycle = butterfly_cores_per_fft * scale
    units = (
        FunctionalUnitSpec(
            name="ifft_core",
            count=ifft_cores_per_ep * pipeline_slices,
            ops=frozenset({OpType.IFFT}),
            throughput_per_cycle=butterflies_per_cycle,
            startup_cycles=16.0,
            energy_per_work_pj=6.0,
        ),
        FunctionalUnitSpec(
            name="fft_core",
            count=1 * pipeline_slices,
            ops=frozenset({OpType.FFT}),
            throughput_per_cycle=butterflies_per_cycle,
            startup_cycles=16.0,
            energy_per_work_pj=6.0,
        ),
        FunctionalUnitSpec(
            name="ep_mac",
            count=1 * pipeline_slices,
            ops=frozenset({OpType.POINTWISE_MAC, OpType.DECOMPOSE}),
            throughput_per_cycle=mac_lanes_per_ep * scale,
            startup_cycles=4.0,
            energy_per_work_pj=3.0,
        ),
        FunctionalUnitSpec(
            name="tgsw_cluster",
            count=1 * pipeline_slices,
            ops=frozenset({OpType.TGSW_SCALE, OpType.TGSW_ADD}),
            throughput_per_cycle=tgsw_lanes_per_cluster * scale,
            startup_cycles=4.0,
            energy_per_work_pj=2.0,
        ),
        FunctionalUnitSpec(
            name="poly_unit",
            count=1,
            ops=frozenset(
                {
                    OpType.POLY_LINEAR,
                    OpType.ROTATE,
                    OpType.SAMPLE_EXTRACT,
                    OpType.KEYSWITCH,
                }
            ),
            throughput_per_cycle=poly_unit_lanes * scale,
            startup_cycles=2.0,
            energy_per_work_pj=0.8,
        ),
        FunctionalUnitSpec(
            name="hbm",
            count=1,
            ops=frozenset({OpType.HBM_TRANSFER, OpType.SPM_TRANSFER}),
            # Work unit is bytes; per-cycle bandwidth at the given clock.
            throughput_per_cycle=hbm_bandwidth_bytes_per_s / clock_hz,
            startup_cycles=32.0,
            energy_per_work_pj=7.0,
        ),
        FunctionalUnitSpec(
            name="gate_engine",
            count=pipeline_slices,
            # Circuit-level scheduling: one node is a *whole* bootstrapped
            # gate (work 1.0) retired by one pipeline slice, or a bootstrap-
            # free linear node (work 0.0).  The rate folds the slice's entire
            # blind rotation (~20k cycles/gate at the paper's operating
            # point) into a single-number throughput so circuit DFGs from
            # repro.tfhe.netlist can be list-scheduled like gate DFGs.
            ops=frozenset({OpType.BOOTSTRAPPED_GATE, OpType.LINEAR_GATE}),
            throughput_per_cycle=(1.0 / 20000.0) * scale,
            startup_cycles=0.0,
            energy_per_work_pj=1.0e6,
        ),
    )
    return ArchitectureDescription(
        name=f"matcha-{pipeline_slices}slice",
        clock_hz=clock_hz,
        units=units,
        memory=MemorySystemSpec(hbm_bandwidth_bytes_per_s=hbm_bandwidth_bytes_per_s),
        static_power_w=8.0,
    )

"""The operation set of the MATCHA datapath.

Every node of a gate DFG carries one of these operation types; the
architecture description declares which functional-unit class executes which
type and at what throughput.  The split mirrors Figure 7: FFT/IFFT kernels run
on the butterfly-core arrays, TGSW scale/add work runs on the TGSW clusters,
pointwise multiply-accumulate and decomposition run on the EP cores, and the
polynomial-level bookkeeping (linear gate combinations, rotations, sample
extraction, key switching) runs on the polynomial unit.
"""

from __future__ import annotations

from enum import Enum, unique


@unique
class OpType(Enum):
    """Operation classes recognised by the architecture description."""

    #: Forward transform, coefficients -> Lagrange domain (TFHE's "IFFT").
    IFFT = "ifft"
    #: Backward transform, Lagrange domain -> coefficients (TFHE's "FFT").
    FFT = "fft"
    #: Pointwise multiply-accumulate of spectra during an external product.
    POINTWISE_MAC = "pointwise_mac"
    #: Gadget decomposition of an accumulator polynomial.
    DECOMPOSE = "decompose"
    #: Scaling of one bootstrapping key by (X^e - 1) during bundle construction.
    TGSW_SCALE = "tgsw_scale"
    #: Accumulation of scaled keys into the bundle.
    TGSW_ADD = "tgsw_add"
    #: Polynomial additions/subtractions of the linear gate combination.
    POLY_LINEAR = "poly_linear"
    #: Rotation of the test vector / accumulator by a power of X.
    ROTATE = "rotate"
    #: Sample extraction of the accumulator's constant coefficient.
    SAMPLE_EXTRACT = "sample_extract"
    #: One digit layer of the LWE key switch.
    KEYSWITCH = "keyswitch"
    #: Scratchpad <-> register-file transfer.
    SPM_TRANSFER = "spm_transfer"
    #: HBM -> scratchpad transfer (bootstrapping-key streaming).
    HBM_TRANSFER = "hbm_transfer"
    #: One whole bootstrapped Boolean gate (circuit-level DFGs, where the
    #: schedulable unit is a gate rather than a step inside one).
    BOOTSTRAPPED_GATE = "bootstrapped_gate"
    #: A bootstrap-free circuit node: input, constant, NOT or copy.
    LINEAR_GATE = "linear_gate"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Operations that the paper accounts to the "FFT"/"IFFT" buckets of Figure 1.
TRANSFORM_OPS = (OpType.IFFT, OpType.FFT)

#: Operations accounted to the "other" bucket of the bootstrapping breakdown.
BOOTSTRAP_OTHER_OPS = (
    OpType.POINTWISE_MAC,
    OpType.DECOMPOSE,
    OpType.TGSW_SCALE,
    OpType.TGSW_ADD,
    OpType.ROTATE,
    OpType.SAMPLE_EXTRACT,
    OpType.KEYSWITCH,
)

#: Operations accounted to the "gate" bucket (the linear pre-combination).
GATE_OPS = (OpType.POLY_LINEAR,)

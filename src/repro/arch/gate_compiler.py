"""Compile a bootstrapped TFHE gate into a data-flow graph.

This is the stand-in for the paper's use of OpenCGRA: "OpenCGRA first
compiles a TFHE logic operation into a data flow graph (DFG) of the operations
supported by MATCHA, solves its dependencies, and removes structural hazards"
(Section 5).  The compiler below expands Algorithm 1 with BKU factor ``m``
into explicit per-iteration nodes:

* a bootstrapping-key HBM/SPM transfer and ``2^m − 1`` TGSW scale/add nodes
  (the TGSW-cluster stage of Figure 6),
* the gadget decomposition, ``(k+1)·l`` forward transforms, the pointwise
  multiply-accumulate and ``k+1`` backward transforms of the external product
  (the EP-core stage),

plus the per-gate prologue (linear combination, mod switch, test-vector
rotation) and epilogue (sample extraction, key switch).

The node *work* amounts are elementary-operation counts (butterflies, MACs,
coefficient operations); the architecture description turns them into cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.arch.dfg import DataFlowGraph
from repro.arch.ops import OpType
from repro.tfhe.params import TFHEParameters


@dataclass(frozen=True)
class GateWorkloads:
    """Elementary-work constants of one gate for a parameter set."""

    transform_butterflies: float
    decompose_coeffs: float
    pointwise_macs: float
    tgsw_scale_macs: float
    bundle_patterns: int
    iterations: int
    linear_coeffs: float
    rotate_coeffs: float
    extract_coeffs: float
    keyswitch_ops: float
    bk_bytes_per_iteration: float


def gate_workloads(params: TFHEParameters, unroll_factor: int) -> GateWorkloads:
    """Derive the per-node work amounts for ``params`` and BKU factor ``m``."""
    if unroll_factor < 1:
        raise ValueError("unroll factor must be >= 1")
    n, N, k, l = params.n, params.N, params.k, params.l
    half = N // 2
    stages = int(math.log2(half)) if half > 1 else 1
    transform_butterflies = (half // 2) * stages
    rows = (k + 1) * l
    bundle_patterns = (1 << unroll_factor) - 1
    iterations = -(-n // unroll_factor)
    # One transformed TGSW ciphertext: rows x (k+1) spectra of N/2 complex
    # values, 8 bytes per value (64-bit fixed point).
    bk_bytes = bundle_patterns * rows * (k + 1) * half * 8
    return GateWorkloads(
        transform_butterflies=float(transform_butterflies),
        decompose_coeffs=float(rows * N),
        pointwise_macs=float(rows * (k + 1) * half),
        tgsw_scale_macs=float(rows * (k + 1) * half),
        bundle_patterns=bundle_patterns,
        iterations=iterations,
        linear_coeffs=float(2 * (n + 1)),
        rotate_coeffs=float((k + 1) * N),
        extract_coeffs=float(k * N),
        keyswitch_ops=float(k * N * params.keyswitch.length * (n + 1)),
        bk_bytes_per_iteration=float(bk_bytes),
    )


def compile_gate_dfg(
    params: TFHEParameters,
    unroll_factor: int = 1,
    include_keyswitch: bool = True,
    include_memory_traffic: bool = True,
) -> DataFlowGraph:
    """Build the DFG of one bootstrapped gate (NAND-class) for BKU factor ``m``."""
    work = gate_workloads(params, unroll_factor)
    k, l = params.k, params.l
    rows = (k + 1) * l

    dfg = DataFlowGraph()

    # Prologue: linear combination of the input ciphertexts, mod switch and
    # test-vector rotation.
    linear = dfg.add_node(OpType.POLY_LINEAR, work.linear_coeffs, tag="gate-linear")
    rotate = dfg.add_node(
        OpType.ROTATE, work.rotate_coeffs, tag="testvector-rotate", predecessors=[linear]
    )

    previous_acc = rotate
    for iteration in range(work.iterations):
        tag = f"iter{iteration}"

        # --- TGSW-cluster stage: bundle construction ----------------------
        bundle_deps: List[int] = []
        if include_memory_traffic:
            hbm = dfg.add_node(
                OpType.HBM_TRANSFER,
                work.bk_bytes_per_iteration,
                tag=f"{tag}-bk-stream",
            )
            bundle_deps.append(hbm)
        scale_nodes = []
        for pattern in range(work.bundle_patterns):
            scale_nodes.append(
                dfg.add_node(
                    OpType.TGSW_SCALE,
                    work.tgsw_scale_macs,
                    tag=f"{tag}-scale{pattern}",
                    predecessors=bundle_deps,
                )
            )
        bundle = dfg.add_node(
            OpType.TGSW_ADD,
            work.tgsw_scale_macs * max(work.bundle_patterns - 1, 1),
            tag=f"{tag}-bundle",
            predecessors=scale_nodes if scale_nodes else bundle_deps,
        )

        # --- EP-core stage: external product -------------------------------
        decompose = dfg.add_node(
            OpType.DECOMPOSE,
            work.decompose_coeffs,
            tag=f"{tag}-decompose",
            predecessors=[previous_acc],
        )
        iffts = [
            dfg.add_node(
                OpType.IFFT,
                work.transform_butterflies,
                tag=f"{tag}-ifft{row}",
                predecessors=[decompose],
            )
            for row in range(rows)
        ]
        mac = dfg.add_node(
            OpType.POINTWISE_MAC,
            work.pointwise_macs,
            tag=f"{tag}-mac",
            predecessors=iffts + [bundle],
        )
        ffts = [
            dfg.add_node(
                OpType.FFT,
                work.transform_butterflies,
                tag=f"{tag}-fft{col}",
                predecessors=[mac],
            )
            for col in range(k + 1)
        ]
        # The accumulator of the next iteration depends on all backward
        # transforms of this iteration.
        previous_acc = dfg.add_node(
            OpType.POLY_LINEAR, float(params.N * (k + 1)), tag=f"{tag}-acc", predecessors=ffts
        )

    # Epilogue: sample extraction and (optionally) the key switch.
    extract = dfg.add_node(
        OpType.SAMPLE_EXTRACT,
        work.extract_coeffs,
        tag="sample-extract",
        predecessors=[previous_acc],
    )
    if include_keyswitch:
        dfg.add_node(
            OpType.KEYSWITCH, work.keyswitch_ops, tag="keyswitch", predecessors=[extract]
        )
    dfg.validate()
    return dfg

"""Cycle-level hardware modelling substrate (the OpenCGRA stand-in).

The paper evaluates MATCHA by compiling a TFHE logic operation into a data
flow graph (DFG), abstracting the hardware into an architecture description
(AD) and scheduling the DFG onto the AD to obtain latency and energy
(Section 5).  This package provides the same methodology:

* :mod:`repro.arch.ops` — the operation set MATCHA executes;
* :mod:`repro.arch.dfg` — data-flow graphs with dependency/critical-path
  analysis;
* :mod:`repro.arch.gate_compiler` — compiles a bootstrapped TFHE gate into a
  DFG for a given parameter set and BKU factor;
* :mod:`repro.arch.architecture` — architecture descriptions (functional
  units, register banks, scratchpad, crossbar, HBM) and the Figure 7 MATCHA
  instance;
* :mod:`repro.arch.scheduler` — a resource-constrained list scheduler that
  maps a DFG onto an AD and reports cycles, utilisation and energy;
* :mod:`repro.arch.energy` — component power/area models and the Table 2
  breakdown;
* :mod:`repro.arch.memory` — scratchpad, crossbar and HBM bandwidth models.
"""

from repro.arch.ops import OpType
from repro.arch.dfg import DataFlowGraph, DfgNode
from repro.arch.gate_compiler import compile_gate_dfg
from repro.arch.architecture import ArchitectureDescription, matcha_architecture
from repro.arch.scheduler import ListScheduler, ScheduleResult
from repro.arch.energy import matcha_area_power_table

__all__ = [
    "OpType",
    "DataFlowGraph",
    "DfgNode",
    "compile_gate_dfg",
    "ArchitectureDescription",
    "matcha_architecture",
    "ListScheduler",
    "ScheduleResult",
    "matcha_area_power_table",
]

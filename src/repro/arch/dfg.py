"""Data-flow graphs.

A DFG node is one operation with a *work* amount (elementary operations, e.g.
butterflies or multiply-accumulates); edges are data dependencies.  The gate
compiler produces a DFG per TFHE gate and the scheduler maps it onto an
architecture description.  The graph also supports the structural queries the
tests and the analysis need: topological order, critical path (in work units)
and per-operation work totals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.arch.ops import OpType


@dataclass
class DfgNode:
    """One operation of a data-flow graph."""

    node_id: int
    op: OpType
    #: Amount of elementary work (unit defined per op type, e.g. butterflies
    #: for transforms, MACs for pointwise products, coefficients for linear ops).
    work: float
    #: Free-form label used by breakdowns ("iteration", "stage", ...).
    tag: str = ""
    predecessors: List[int] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)


class DataFlowGraph:
    """A directed acyclic graph of :class:`DfgNode` operations."""

    def __init__(self) -> None:
        self._nodes: Dict[int, DfgNode] = {}
        self._next_id = 0

    # -- construction -------------------------------------------------------
    def add_node(
        self,
        op: OpType,
        work: float,
        tag: str = "",
        predecessors: Optional[Sequence[int]] = None,
    ) -> int:
        """Add a node and its incoming dependency edges; returns the node id."""
        if work < 0:
            raise ValueError("work must be non-negative")
        node_id = self._next_id
        self._next_id += 1
        node = DfgNode(node_id=node_id, op=op, work=float(work), tag=tag)
        self._nodes[node_id] = node
        for pred in predecessors or ():
            self.add_edge(pred, node_id)
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        """Add a dependency edge ``src -> dst``."""
        if src not in self._nodes or dst not in self._nodes:
            raise KeyError("both endpoints must exist before adding an edge")
        if src == dst:
            raise ValueError("self-loops are not allowed")
        self._nodes[src].successors.append(dst)
        self._nodes[dst].predecessors.append(src)

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> DfgNode:
        return self._nodes[node_id]

    def nodes(self) -> Iterable[DfgNode]:
        return self._nodes.values()

    def topological_order(self) -> List[int]:
        """Kahn topological sort; raises if the graph has a cycle."""
        in_degree = {nid: len(n.predecessors) for nid, n in self._nodes.items()}
        ready = deque(sorted(nid for nid, deg in in_degree.items() if deg == 0))
        order: List[int] = []
        while ready:
            nid = ready.popleft()
            order.append(nid)
            for succ in self._nodes[nid].successors:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            raise ValueError("data-flow graph contains a cycle")
        return order

    def node_levels(self, cost=None) -> Dict[int, int]:
        """ASAP dependency level of every node.

        ``cost(node)`` is the integer depth a node adds along any path through
        it (default 1 for every node); a node's level is the maximum level
        among its predecessors plus its own cost.  Zero-cost nodes (e.g.
        sources or linear circuit ops) share the level of their deepest
        predecessor, which is exactly what the level-parallel circuit
        executor needs: only bootstrapped gates advance the schedule.
        """
        if cost is None:
            cost = lambda node: 1  # noqa: E731 - tiny default weight
        levels: Dict[int, int] = {}
        for nid in self.topological_order():
            node = self._nodes[nid]
            incoming = max((levels[p] for p in node.predecessors), default=0)
            levels[nid] = incoming + int(cost(node))
        return levels

    def levelize(self, cost=None) -> List[List[int]]:
        """Bucket node ids by ASAP level (``result[k]`` holds level-``k`` nodes).

        Nodes within a bucket are mutually independent *given* the preceding
        buckets, so every bucket can be issued as one parallel wave — the
        dependency-solving step of the paper's compile flow, applied to whole
        circuits.  Buckets are ordered by node id for determinism.
        """
        levels = self.node_levels(cost)
        depth = max(levels.values(), default=0)
        buckets: List[List[int]] = [[] for _ in range(depth + 1)]
        for nid in sorted(levels):
            buckets[levels[nid]].append(nid)
        return buckets

    def depth(self, cost=None) -> int:
        """Number of dependency levels (the critical path in ``cost`` units)."""
        return max(self.node_levels(cost).values(), default=0)

    def critical_path_work(self) -> float:
        """Longest path through the graph, weighted by node work."""
        longest: Dict[int, float] = {}
        for nid in self.topological_order():
            node = self._nodes[nid]
            incoming = max((longest[p] for p in node.predecessors), default=0.0)
            longest[nid] = incoming + node.work
        return max(longest.values(), default=0.0)

    def work_by_op(self) -> Dict[OpType, float]:
        """Total work per operation type (inputs to the breakdown figures)."""
        totals: Dict[OpType, float] = {}
        for node in self._nodes.values():
            totals[node.op] = totals.get(node.op, 0.0) + node.work
        return totals

    def count_by_op(self) -> Dict[OpType, int]:
        """Node counts per operation type."""
        counts: Dict[OpType, int] = {}
        for node in self._nodes.values():
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def validate(self) -> None:
        """Structural sanity checks (acyclic, consistent edge lists)."""
        self.topological_order()
        for nid, node in self._nodes.items():
            for succ in node.successors:
                if nid not in self._nodes[succ].predecessors:
                    raise ValueError("inconsistent successor/predecessor lists")

"""Resource-constrained list scheduling of a DFG onto an architecture.

The scheduler fills the role OpenCGRA plays in the paper: given the gate DFG
and the architecture description it "computes the latency and the energy
consumption of each TFHE logic operation by scheduling and mapping the DFG
onto the AD" (Section 5).

Algorithm: classic critical-path list scheduling.  Node priorities are the
longest downstream path (in cycles); ready nodes are dispatched to the
earliest-available instance of the functional-unit class that supports their
operation.  The result records the makespan, per-unit busy time and
utilisation, per-operation-class cycle totals (used for the Figure 1
breakdown) and the dynamic + static energy.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.arch.architecture import ArchitectureDescription
from repro.arch.dfg import DataFlowGraph
from repro.arch.ops import OpType


@dataclass
class ScheduledNode:
    """Placement of one DFG node on one functional-unit instance."""

    node_id: int
    op: OpType
    unit_name: str
    instance: int
    start_cycle: float
    end_cycle: float


@dataclass
class ScheduleResult:
    """Outcome of scheduling one DFG onto one architecture description."""

    architecture: ArchitectureDescription
    makespan_cycles: float
    placements: List[ScheduledNode]
    busy_cycles_by_unit: Dict[str, float]
    cycles_by_op: Dict[OpType, float]
    dynamic_energy_j: float

    @property
    def latency_seconds(self) -> float:
        return self.architecture.seconds(self.makespan_cycles)

    @property
    def utilisation_by_unit(self) -> Dict[str, float]:
        result: Dict[str, float] = {}
        unit_map = self.architecture.unit_map()
        for name, busy in self.busy_cycles_by_unit.items():
            capacity = self.makespan_cycles * unit_map[name].count
            result[name] = busy / capacity if capacity else 0.0
        return result

    @property
    def static_energy_j(self) -> float:
        return self.architecture.static_power_w * self.latency_seconds

    @property
    def total_energy_j(self) -> float:
        return self.dynamic_energy_j + self.static_energy_j

    @property
    def average_power_w(self) -> float:
        seconds = self.latency_seconds
        return self.total_energy_j / seconds if seconds else 0.0

    def breakdown_fraction(self, ops: Tuple[OpType, ...]) -> float:
        """Fraction of total scheduled cycles spent in the given op classes."""
        total = sum(self.cycles_by_op.values())
        if not total:
            return 0.0
        return sum(self.cycles_by_op.get(op, 0.0) for op in ops) / total


class ListScheduler:
    """Critical-path list scheduler for :class:`DataFlowGraph` instances."""

    def __init__(self, architecture: ArchitectureDescription) -> None:
        self.architecture = architecture

    def _node_cycles(self, op: OpType, work: float) -> float:
        return self.architecture.unit_for_op(op).cycles_for(work)

    def _priorities(self, dfg: DataFlowGraph) -> Dict[int, float]:
        """Longest path (in cycles) from each node to any sink."""
        order = dfg.topological_order()
        priority: Dict[int, float] = {}
        for nid in reversed(order):
            node = dfg.node(nid)
            own = self._node_cycles(node.op, node.work)
            downstream = max((priority[s] for s in node.successors), default=0.0)
            priority[nid] = own + downstream
        return priority

    def schedule(self, dfg: DataFlowGraph) -> ScheduleResult:
        """Map ``dfg`` onto the architecture and return the schedule."""
        for node in dfg.nodes():
            if not self.architecture.supports(node.op):
                raise KeyError(f"architecture has no unit for {node.op}")

        priority = self._priorities(dfg)
        unit_map = self.architecture.unit_map()

        # Earliest-free time of every unit instance.
        instance_free: Dict[str, List[float]] = {
            unit.name: [0.0] * unit.count for unit in self.architecture.units
        }
        # Earliest data-ready time of every node.
        ready_time: Dict[int, float] = {}
        remaining_preds: Dict[int, int] = {}
        ready_heap: List[Tuple[float, float, int]] = []

        for node in dfg.nodes():
            remaining_preds[node.node_id] = len(node.predecessors)
            if not node.predecessors:
                ready_time[node.node_id] = 0.0
                heapq.heappush(ready_heap, (0.0, -priority[node.node_id], node.node_id))

        placements: List[ScheduledNode] = []
        busy: Dict[str, float] = {unit.name: 0.0 for unit in self.architecture.units}
        cycles_by_op: Dict[OpType, float] = {}
        finish_time: Dict[int, float] = {}
        dynamic_energy_pj = 0.0
        makespan = 0.0

        while ready_heap:
            data_ready, _, nid = heapq.heappop(ready_heap)
            node = dfg.node(nid)
            unit = self.architecture.unit_for_op(node.op)
            free_list = instance_free[unit.name]
            instance = min(range(len(free_list)), key=free_list.__getitem__)
            start = max(data_ready, free_list[instance])
            duration = unit.cycles_for(node.work)
            end = start + duration
            free_list[instance] = end
            finish_time[nid] = end
            makespan = max(makespan, end)
            busy[unit.name] += duration
            cycles_by_op[node.op] = cycles_by_op.get(node.op, 0.0) + duration
            dynamic_energy_pj += unit.energy_per_work_pj * node.work
            placements.append(
                ScheduledNode(
                    node_id=nid,
                    op=node.op,
                    unit_name=unit.name,
                    instance=instance,
                    start_cycle=start,
                    end_cycle=end,
                )
            )
            for succ in node.successors:
                remaining_preds[succ] -= 1
                succ_ready = max(
                    ready_time.get(succ, 0.0), end
                )
                ready_time[succ] = succ_ready
                if remaining_preds[succ] == 0:
                    heapq.heappush(ready_heap, (succ_ready, -priority[succ], succ))

        if len(placements) != len(dfg):
            raise RuntimeError("scheduler failed to place every node")

        return ScheduleResult(
            architecture=self.architecture,
            makespan_cycles=makespan,
            placements=placements,
            busy_cycles_by_unit=busy,
            cycles_by_op=cycles_by_op,
            dynamic_energy_j=dynamic_energy_pj * 1.0e-12,
        )

"""Power and area models (Table 2).

The paper implements MATCHA in RTL, synthesises it in a 16 nm PTM process and
models the SRAM components with CACTI; Table 2 reports the resulting power and
area per component at 2 GHz.  We cannot rerun synthesis, so this module

* records the Table 2 component breakdown as structured data (and checks that
  the sub-totals and totals are internally consistent), and
* provides a first-order parametric model (logic power/area proportional to
  lane counts, SRAM power/area proportional to capacity with a bank overhead)
  that is anchored to the Table 2 values, so the ablation benches can ask
  "what if MATCHA had 4 EP cores?" or "what if the scratchpad were 8 MB?" and
  get answers that move in the right direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ComponentSpec:
    """One row of Table 2."""

    name: str
    spec: str
    power_w: float
    area_mm2: float
    count: int = 1

    @property
    def total_power_w(self) -> float:
        return self.power_w * self.count

    @property
    def total_area_mm2(self) -> float:
        return self.area_mm2 * self.count


#: Per-instance TGSW-cluster and EP-core numbers from Table 2.
TGSW_CLUSTER = ComponentSpec(
    name="TGSW cluster",
    spec="x16 multipliers & adders, and a 16KB, 2-bank reg. file",
    power_w=0.98,
    area_mm2=0.368,
)
EP_CORE = ComponentSpec(
    name="EP core",
    spec="4 IFFT, 1 FFT, x4 multipliers & adders, and a 256KB, 8-bank reg. file",
    power_w=2.87,
    area_mm2=1.89,
)
POLYNOMIAL_UNIT = ComponentSpec(
    name="polynomial unit",
    spec="x32 adders & cmps & logic units, and a 8KB, 2-bank reg. file",
    power_w=2.33,
    area_mm2=0.32,
)
CROSSBAR = ComponentSpec(
    name="crossbar",
    spec="1/2 8x32/8 NoCs (256b bit-sliced)",
    power_w=2.11,
    area_mm2=0.44,
)
SPM = ComponentSpec(
    name="SPM",
    spec="a 4MB, 32-bank SPM",
    power_w=3.52,
    area_mm2=3.25,
)
MEMORY_CONTROLLER = ComponentSpec(
    name="mem ctrl",
    spec="memory controller and HBM2 PHY",
    power_w=1.225,
    area_mm2=14.9,
)


@dataclass(frozen=True)
class AcceleratorEnvelope:
    """Total power/area of an accelerator configuration."""

    components: tuple
    total_power_w: float
    total_area_mm2: float

    def as_rows(self) -> List[List[object]]:
        """Rows for text-table rendering (name, spec, power, area)."""
        rows = [
            [c.name, c.spec, round(c.total_power_w, 3), round(c.total_area_mm2, 3)]
            for c in self.components
        ]
        rows.append(["Total", "", round(self.total_power_w, 3), round(self.total_area_mm2, 3)])
        return rows


def matcha_area_power_table(
    ep_cores: int = 8,
    tgsw_clusters: int = 8,
) -> AcceleratorEnvelope:
    """The Table 2 breakdown for a MATCHA with the given core counts.

    With the default eight EP cores and eight TGSW clusters this reproduces
    the paper's 39.98 W and 36.96 mm² totals exactly; other counts scale the
    per-pipeline components linearly (the shared polynomial unit, crossbar,
    SPM and memory controller do not scale).
    """
    components = (
        ComponentSpec(
            TGSW_CLUSTER.name,
            TGSW_CLUSTER.spec,
            TGSW_CLUSTER.power_w,
            TGSW_CLUSTER.area_mm2,
            count=tgsw_clusters,
        ),
        ComponentSpec(
            EP_CORE.name, EP_CORE.spec, EP_CORE.power_w, EP_CORE.area_mm2, count=ep_cores
        ),
        POLYNOMIAL_UNIT,
        CROSSBAR,
        SPM,
        MEMORY_CONTROLLER,
    )
    total_power = sum(c.total_power_w for c in components)
    total_area = sum(c.total_area_mm2 for c in components)
    return AcceleratorEnvelope(
        components=components, total_power_w=total_power, total_area_mm2=total_area
    )


def sram_power_area(capacity_kb: float, banks: int) -> Dict[str, float]:
    """First-order SRAM estimator anchored to the Table 2 SPM row.

    Power and area scale linearly with capacity, with a 3 % per-bank overhead
    for decoders and peripheral logic.  The anchor point is the 4 MB, 32-bank
    scratchpad (3.52 W, 3.25 mm²).
    """
    if capacity_kb <= 0 or banks <= 0:
        raise ValueError("capacity and bank count must be positive")
    anchor_kb = 4096.0
    anchor_banks = 32
    scale = capacity_kb / anchor_kb
    bank_overhead = 1.0 + 0.03 * (banks - anchor_banks) / anchor_banks
    return {
        "power_w": SPM.power_w * scale * bank_overhead,
        "area_mm2": SPM.area_mm2 * scale * bank_overhead,
    }


def logic_power_area(lanes: int, reference_lanes: int, reference: ComponentSpec) -> Dict[str, float]:
    """First-order logic estimator: power/area proportional to lane count."""
    if lanes <= 0 or reference_lanes <= 0:
        raise ValueError("lane counts must be positive")
    scale = lanes / reference_lanes
    return {
        "power_w": reference.power_w * scale,
        "area_mm2": reference.area_mm2 * scale,
    }


def gate_energy_joules(power_w: float, latency_s: float) -> float:
    """Energy of one gate given accelerator power and gate latency."""
    if power_w < 0 or latency_s < 0:
        raise ValueError("power and latency must be non-negative")
    return power_w * latency_s

"""Memory-system models: scratchpad, register banks, crossbar and HBM.

Three memory effects matter for MATCHA:

* the bootstrapping key grows exponentially with the BKU factor ``m`` and
  never fits in the 4 MB scratchpad, so it streams from HBM2 at 640 GB/s —
  this stream bounds how aggressively ``m`` can be raised;
* the TGSW clusters see sequential accesses (two register banks suffice,
  read one while writing the other) whereas the FFT/IFFT kernels see
  irregular accesses (eight banks per EP core) — Section 4.2/4.3;
* all compute units reach the scratchpad through bit-sliced crossbars whose
  bandwidth must cover the accumulator traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tfhe.params import TFHEParameters


def tgsw_ciphertext_bytes(params: TFHEParameters, transformed: bool = True) -> int:
    """Size of one (optionally Lagrange-domain) TGSW ciphertext in bytes.

    Coefficient-domain samples store ``(k+1)·l·(k+1)·N`` 32-bit words; the
    transformed representation keeps ``N/2`` complex values per polynomial,
    each a pair of 64-bit fixed-point words (16 bytes), doubling the
    footprint — the price MATCHA pays for keeping the keys in the Lagrange
    domain.
    """
    k, l, N = params.k, params.l, params.N
    words = (k + 1) * l * (k + 1)
    if transformed:
        return words * (N // 2) * 16
    return words * N * 4


def bootstrapping_key_bytes(
    params: TFHEParameters, unroll_factor: int, transformed: bool = True
) -> int:
    """Total bootstrapping-key footprint for BKU factor ``m``.

    ``⌈n/m⌉`` groups of ``2^m − 1`` TGSW ciphertexts each (Figure 5): the
    exponential blow-up of Section 4.2.
    """
    if unroll_factor < 1:
        raise ValueError("unroll factor must be >= 1")
    n = params.n
    groups, remainder = divmod(n, unroll_factor)
    keys = groups * ((1 << unroll_factor) - 1)
    if remainder:
        keys += (1 << remainder) - 1
    return keys * tgsw_ciphertext_bytes(params, transformed)


def keyswitch_key_bytes(params: TFHEParameters) -> int:
    """Size of the LWE key-switching key in bytes."""
    ks = params.keyswitch
    return params.k * params.N * ks.length * ks.base * (params.n + 1) * 4


def hbm_stream_seconds(num_bytes: float, bandwidth_bytes_per_s: float) -> float:
    """Time to stream ``num_bytes`` from HBM at the given bandwidth."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError("bandwidth must be positive")
    return float(num_bytes) / bandwidth_bytes_per_s


def fits_in_spm(num_bytes: float, spm_kb: float = 4096.0) -> bool:
    """Whether a working set fits in the scratchpad."""
    return float(num_bytes) <= spm_kb * 1024.0


@dataclass(frozen=True)
class BankConflictModel:
    """Probabilistic bank-conflict model for a multi-banked memory.

    ``accesses_per_cycle`` independent accesses hit ``banks`` banks uniformly
    at random; the expected slowdown is the expected maximum occupancy of any
    bank, which we approximate with the standard balls-into-bins expectation.
    Sequential access streams (the TGSW clusters) should use
    ``sequential=True``, which removes conflicts entirely — that is exactly
    why a TGSW cluster needs only two register banks while an EP core needs
    eight (Section 4.3).
    """

    banks: int
    accesses_per_cycle: int
    sequential: bool = False

    def expected_conflict_factor(self) -> float:
        """Expected slowdown factor (serving cycles over conflict-free cycles).

        The conflict-free service time of ``n`` accesses over ``b`` banks is
        ``n / b`` cycles; with random bank targets the banks load unevenly and
        the busiest bank paces the service.  The expected maximum load is
        approximated with the standard balls-into-bins bound
        ``n/b + sqrt(2 (n/b) ln b)``.
        """
        if self.banks <= 0:
            raise ValueError("bank count must be positive")
        if self.accesses_per_cycle <= 1 or self.sequential:
            return 1.0
        n, b = float(self.accesses_per_cycle), float(self.banks)
        ideal = n / b
        max_load = ideal + math.sqrt(2.0 * max(ideal, 1.0) * math.log(b)) if b > 1 else n
        return max(1.0, max_load / max(ideal, 1e-12))

    def service_cycles(self) -> float:
        """Expected cycles to serve one cycle's worth of accesses.

        This is the absolute metric that improves with more banks (the
        conflict *factor* above is relative to an ideal that itself improves).
        """
        if self.banks <= 0:
            raise ValueError("bank count must be positive")
        if self.accesses_per_cycle <= 0:
            return 0.0
        ideal = self.accesses_per_cycle / self.banks
        if self.sequential:
            return max(1.0, ideal)
        return max(1.0, ideal * self.expected_conflict_factor())


@dataclass(frozen=True)
class CrossbarModel:
    """A bit-sliced crossbar between cores/clusters and the scratchpad."""

    ports_in: int
    ports_out: int
    width_bits: int = 256
    clock_hz: float = 2.0e9

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Aggregate bandwidth with every output port busy each cycle."""
        return self.ports_out * (self.width_bits / 8.0) * self.clock_hz

    def transfer_seconds(self, num_bytes: float) -> float:
        return float(num_bytes) / self.bandwidth_bytes_per_s


def matcha_crossbars(clock_hz: float = 2.0e9) -> dict:
    """The two 8x32 crossbars plus the 8x8 core-to-core crossbar of Table 2."""
    return {
        "spm_to_cores": CrossbarModel(ports_in=32, ports_out=8, clock_hz=clock_hz),
        "cores_to_spm": CrossbarModel(ports_in=8, ports_out=32, clock_hz=clock_hz),
        "core_to_core": CrossbarModel(ports_in=8, ports_out=8, clock_hz=clock_hz),
    }

"""Plain-text table rendering for the evaluation harness.

The benchmark modules regenerate every table and figure of the paper as text;
this helper produces aligned, pipe-separated tables so the output of
``pytest benchmarks/ --benchmark-only`` can be compared side by side with the
paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)

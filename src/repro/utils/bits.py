"""Bit-level helpers used across the TFHE substrate and the hardware models.

The approximate multiplication-less FFT replaces every twiddle-factor
multiplication with additions and binary shifts.  The helpers in this module
convert dyadic coefficients into the shift/add schedule actually executed by a
MATCHA butterfly core, and provide the 32/64-bit wrap-around conversions that
the torus arithmetic relies on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def bit_length(value: int) -> int:
    """Number of bits needed to represent ``abs(value)``."""
    return int(abs(int(value))).bit_length()


def to_signed_32(value: int) -> int:
    """Reduce an integer modulo 2^32 into the signed int32 range."""
    value &= _MASK32
    if value >= 1 << 31:
        value -= 1 << 32
    return value


def to_signed_64(value: int) -> int:
    """Reduce an integer modulo 2^64 into the signed int64 range."""
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def signed_digit_expansion(numerator: int, beta: int) -> List[Tuple[int, int]]:
    """Expand a dyadic coefficient ``numerator / 2**beta`` into shift/add terms.

    Returns a list of ``(sign, shift)`` pairs such that::

        numerator / 2**beta == sum(sign * 2**-shift for sign, shift in terms)

    The expansion uses the canonical non-adjacent form (NAF) of ``numerator``,
    which minimises the number of non-zero digits and therefore the number of
    adders a butterfly core needs (the paper's example 9/128 = 1/2^4 + 1/2^7
    is exactly the NAF expansion).
    """
    if beta < 0:
        raise ValueError("beta must be non-negative")
    terms: List[Tuple[int, int]] = []
    n = int(numerator)
    position = 0
    while n != 0:
        if n & 1:
            digit = 2 - (n & 3)  # +1 if n % 4 == 1, -1 if n % 4 == 3
            n -= digit
            shift = beta - position
            terms.append((digit, shift))
        n >>= 1
        position += 1
    terms.reverse()
    return terms


def evaluate_signed_digits(terms: List[Tuple[int, int]]) -> float:
    """Evaluate a signed-digit expansion back into a float (for testing)."""
    return float(sum(sign * 2.0 ** (-shift) for sign, shift in terms))


def shift_add_apply(value: int, terms: List[Tuple[int, int]]) -> int:
    """Apply a signed-digit (shift/add) schedule to an integer operand.

    This is the scalar, bit-exact model of what a MATCHA butterfly core does:
    ``value * (numerator / 2**beta)`` computed as a sum of arithmetic right
    shifts.  Shifts use floor semantics, matching a hardware arithmetic
    shifter; the accumulated result is the integer the hardware would produce
    before any final rounding.
    """
    accumulator = 0
    for sign, shift in terms:
        if shift >= 0:
            accumulator += sign * (int(value) >> shift)
        else:
            accumulator += sign * (int(value) << (-shift))
    return accumulator


def wrap_int32(array: np.ndarray) -> np.ndarray:
    """Wrap an integer array into int32 with modulo-2^32 semantics."""
    return np.asarray(array, dtype=np.int64).astype(np.uint32).astype(np.int32)


def wrap_int64(array: np.ndarray) -> np.ndarray:
    """Wrap an integer array into int64 with modulo-2^64 semantics."""
    return np.asarray(array).astype(np.uint64).astype(np.int64)

"""Schema-consistent benchmark result files (``results/BENCH_*.json``).

Every benchmark that tracks the performance trajectory across PRs writes its
machine-readable results through :func:`write_bench_json`, so downstream
tooling can diff bootstraps/sec between revisions without caring which bench
produced the number.  The schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "name": "<bench name>",
      "git_rev": "<short rev or 'unknown'>",
      "entries": [
        {
          "label": "<measurement point>",
          "engine": "<transform engine kind>",
          "params": "<parameter-set name>",
          "batch_width": <int>,
          "bootstraps_per_sec": <float>,
          "baseline_bootstraps_per_sec": <float>,
          "speedup": <float>
        },
        ...
      ],
      "extra": { ... free-form per-bench detail ... }
    }

``tools/bench.py`` is the unified CLI runner around this module: it executes
the registered benchmarks and validates existing result files against the
schema (what CI does after the bench jobs).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
from typing import Any, Dict, List, Optional

SCHEMA = "repro-bench/1"

#: Keys every entry must carry (the cross-PR comparable core).
ENTRY_KEYS = (
    "label",
    "engine",
    "params",
    "batch_width",
    "bootstraps_per_sec",
    "baseline_bootstraps_per_sec",
    "speedup",
)


def repo_root() -> pathlib.Path:
    """The repository root (two levels above ``src/repro/utils``)."""
    return pathlib.Path(__file__).resolve().parents[3]


def results_dir() -> pathlib.Path:
    path = repo_root() / "results"
    path.mkdir(exist_ok=True)
    return path


def git_rev() -> str:
    """The short git revision of the working tree (``"unknown"`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def make_entry(
    label: str,
    engine: str,
    params: str,
    batch_width: int,
    bootstraps_per_sec: float,
    baseline_bootstraps_per_sec: float,
) -> Dict[str, Any]:
    """One schema entry; the speedup is derived, never hand-written."""
    return {
        "label": label,
        "engine": engine,
        "params": params,
        "batch_width": int(batch_width),
        "bootstraps_per_sec": float(bootstraps_per_sec),
        "baseline_bootstraps_per_sec": float(baseline_bootstraps_per_sec),
        "speedup": float(bootstraps_per_sec) / float(baseline_bootstraps_per_sec),
    }


def write_bench_json(
    name: str,
    entries: List[Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> pathlib.Path:
    """Write ``results/BENCH_<name>.json`` and return the path."""
    payload = {
        "schema": SCHEMA,
        "name": name,
        "git_rev": git_rev(),
        "entries": entries,
        "extra": extra or {},
    }
    validate_payload(payload)
    path = results_dir() / f"BENCH_{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def validate_payload(payload: Dict[str, Any]) -> None:
    """Raise ``ValueError`` when a payload does not match ``repro-bench/1``."""
    if payload.get("schema") != SCHEMA:
        raise ValueError(f"unexpected schema: {payload.get('schema')!r}")
    for key in ("name", "git_rev", "entries"):
        if key not in payload:
            raise ValueError(f"missing top-level key: {key!r}")
    if not isinstance(payload["entries"], list) or not payload["entries"]:
        raise ValueError("entries must be a non-empty list")
    for i, entry in enumerate(payload["entries"]):
        missing = [key for key in ENTRY_KEYS if key not in entry]
        if missing:
            raise ValueError(f"entry {i} is missing keys: {missing}")


def validate_file(path: pathlib.Path) -> None:
    """Validate one ``BENCH_*.json`` file against the schema."""
    with open(path) as handle:
        validate_payload(json.load(handle))

"""Deterministic random number generation.

Every stochastic component (key sampling, noise sampling, Monte-Carlo noise
experiments) accepts either a seed or a ``numpy.random.Generator``.  Using a
single helper keeps the whole library reproducible: the unit tests, the
examples and the benchmark harness all pin seeds through this function.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread a single stream
    through sub-components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)

"""Shared utilities: bit manipulation, deterministic RNG and text tables."""

from repro.utils.bits import (
    bit_length,
    is_power_of_two,
    signed_digit_expansion,
    to_signed_32,
    to_signed_64,
)
from repro.utils.rng import make_rng
from repro.utils.tables import format_table

__all__ = [
    "bit_length",
    "is_power_of_two",
    "signed_digit_expansion",
    "to_signed_32",
    "to_signed_64",
    "make_rng",
    "format_table",
]

"""MATCHA reproduction: TFHE + an accelerator model for TFHE gate bootstrapping.

The package is organised as:

* :mod:`repro.tfhe` — a from-scratch TFHE cryptosystem (the substrate the
  paper accelerates);
* :mod:`repro.core` — the paper's contribution: approximate
  multiplication-less integer FFT/IFFT, bootstrapping-key unrolling and the
  pipelined MATCHA accelerator;
* :mod:`repro.arch` — the cycle-level data-flow-graph scheduler and
  power/area models (the stand-in for the paper's OpenCGRA methodology);
* :mod:`repro.platforms` — CPU / GPU / FPGA / ASIC / MATCHA platform models
  used by the evaluation;
* :mod:`repro.analysis` — generators for every table and figure of the paper;
* :mod:`repro.runtime` — the serving layer: :class:`FheContext` (engine +
  spectrum-cached cloud keys) and the cross-session :class:`BatchScheduler`;
* :mod:`repro.compiler` — the encrypted-program compiler: a tracing
  frontend (:func:`trace` over :class:`FheUint` / :class:`FheBool`) and the
  gate-shrinking :class:`PassManager` optimization pipeline.
"""

from repro.tfhe import (
    PAPER_110BIT,
    TEST_MEDIUM,
    TEST_SMALL,
    TEST_TINY,
    BatchGateEvaluator,
    Circuit,
    CircuitExecutor,
    LweBatch,
    TFHEGateEvaluator,
    TFHEParameters,
    decrypt_bit,
    decrypt_bit_batch,
    decrypt_bits,
    encrypt_bit,
    encrypt_bit_batch,
    encrypt_bits,
    generate_keys,
    make_transform,
    schedule_circuit,
)
from repro.runtime import BatchScheduler, EvaluationSession, FheContext
from repro.compiler import (
    FheBool,
    FheUint,
    FheUint4,
    FheUint8,
    FheUint16,
    FheUint32,
    PassManager,
    fhe_abs,
    fhe_max,
    fhe_min,
    fhe_select,
    optimize,
    trace,
)

__version__ = "1.4.0"

__all__ = [
    "BatchScheduler",
    "EvaluationSession",
    "FheBool",
    "FheContext",
    "FheUint",
    "FheUint4",
    "FheUint8",
    "FheUint16",
    "FheUint32",
    "PassManager",
    "fhe_abs",
    "fhe_max",
    "fhe_min",
    "fhe_select",
    "optimize",
    "trace",
    "PAPER_110BIT",
    "TEST_MEDIUM",
    "TEST_SMALL",
    "TEST_TINY",
    "BatchGateEvaluator",
    "Circuit",
    "CircuitExecutor",
    "LweBatch",
    "TFHEGateEvaluator",
    "TFHEParameters",
    "decrypt_bit",
    "decrypt_bit_batch",
    "decrypt_bits",
    "encrypt_bit",
    "encrypt_bit_batch",
    "encrypt_bits",
    "generate_keys",
    "make_transform",
    "schedule_circuit",
    "__version__",
]

"""LWE key switching.

After ``SampleExtract`` the bootstrapped ciphertext lives under the extracted
ring key of dimension ``k·N``; the ``KeySwitch`` step (last line of
Algorithm 1) converts it back to the original ``n``-dimensional LWE key so the
output of one gate can feed the next.

The key-switching key encrypts, for every bit ``i`` of the input key, every
digit position ``j`` and every digit value ``v``, the torus element
``v · key_in[i] / base^j``.  Switching decomposes each mask coefficient of the
input sample into ``t`` base-``2^basebit`` digits and subtracts the matching
key-switching samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tfhe.lwe import LweBatch, LweKey, LweSample
from repro.tfhe.params import KeySwitchParams
from repro.tfhe.torus import torus32_from_int64
from repro.utils.rng import SeedLike, make_rng


@dataclass
class KeySwitchKey:
    """Key-switching key from an input LWE key to an output LWE key.

    ``data`` has shape ``(n_in, t, base, n_out + 1)``: the last axis packs the
    mask ``a`` (first ``n_out`` entries) and the body ``b`` (last entry) of
    each key-switching sample.
    """

    params: KeySwitchParams
    data: np.ndarray
    input_dimension: int
    output_dimension: int
    #: Lazily-built flat gather tables of :func:`_keyswitch_totals`.
    _flat_data: np.ndarray | None = field(default=None, repr=False, compare=False)
    _flat_rows: np.ndarray | None = field(default=None, repr=False, compare=False)
    _digit_shifts: np.ndarray | None = field(default=None, repr=False, compare=False)

    def _gather_tables(self):
        """``(flat_data, flat_rows, shifts)`` for the one-shot digit gather.

        ``flat_data`` is the key viewed as ``(n_in·t·base, n_out + 1)``;
        ``flat_rows[j, i] = (i·t + j)·base`` is the flat offset of sample
        ``(i, j, digit 0)``, so ``flat_rows + digits`` indexes every selected
        sample of every digit level in one ``take``.
        """
        if self._flat_data is None:
            t = self.params.length
            self._flat_data = self.data.reshape(-1, self.data.shape[-1])
            rows = (np.arange(self.input_dimension, dtype=np.int64) * t)[None, :]
            self._flat_rows = (rows + np.arange(t, dtype=np.int64)[:, None]) * self.params.base
            self._digit_shifts = np.array(
                [32 - self.params.base_bits * (j + 1) for j in range(t)],
                dtype=np.int64,
            )
        return self._flat_data, self._flat_rows, self._digit_shifts


def keyswitch_key_generate(
    input_key: LweKey,
    output_key: LweKey,
    params: KeySwitchParams,
    rng: SeedLike = None,
) -> KeySwitchKey:
    """Generate the key-switching key ``KS_{input_key -> output_key}``."""
    rng = make_rng(rng)
    n_in = input_key.dimension
    n_out = output_key.dimension
    base = params.base
    t = params.length

    data = np.zeros((n_in, t, base, n_out + 1), dtype=np.int32)
    in_bits = input_key.key.astype(np.int64)
    out_bits = output_key.key.astype(np.int64)

    # Vectorised generation: sample all masks and noises in one shot.
    a = rng.integers(
        low=-(2**31), high=2**31, size=(n_in, t, base, n_out), dtype=np.int64
    )
    noise = np.round(
        rng.normal(0.0, params.noise_stddev, size=(n_in, t, base)) * (2.0**32)
    ).astype(np.int64)

    digit_values = np.arange(base, dtype=np.int64)
    for j in range(t):
        shift = 32 - params.base_bits * (j + 1)
        if shift < 0:
            raise ValueError("key-switch decomposition exceeds 32 bits")
        # message[i, v] = v * key_in[i] * 2^shift
        message = (digit_values[None, :] * in_bits[:, None]) << shift
        phase = a[:, j, :, :] @ out_bits
        b = torus32_from_int64(phase + noise[:, j, :] + message)
        data[:, j, :, :n_out] = torus32_from_int64(a[:, j, :, :])
        data[:, j, :, n_out] = b
    return KeySwitchKey(
        params=params, data=data, input_dimension=n_in, output_dimension=n_out
    )


def _keyswitch_totals(ks: KeySwitchKey, a: np.ndarray) -> np.ndarray:
    """Sum of the key-switching samples selected by the digits of ``a``.

    ``a`` is an int32 mask array of shape ``(..., n_in)``; the result has
    shape ``(..., n_out + 1)``.  Shared by the scalar and the batched apply.
    """
    params = ks.params
    base_bits = params.base_bits
    t = params.length
    mask = params.base - 1

    # Round the mask coefficients to the precision kept by the decomposition.
    # The rounded value must be re-reduced modulo 2^32: coefficients near the
    # torus wrap-around (a ≈ 2^32 − 1) otherwise carry into bit 32, outside
    # the torus representation.
    rounding = 1 << (32 - base_bits * t - 1) if 32 - base_bits * t - 1 >= 0 else 0
    a_in = ((a.astype(np.int64) & 0xFFFFFFFF) + rounding) & 0xFFFFFFFF

    flat_data, flat_rows, shifts = ks._gather_tables()
    # All digit levels extract in one broadcast shift/mask and gather through
    # one flat `take` (integer addition is exact, so the single fused
    # reduction is bit-identical to the historical per-level accumulation).
    # For very wide batches the (t, B, n_in, n_out+1) gather is chunked so the
    # peak stays bounded (~t times the per-level footprint of one chunk).
    shifts = shifts.reshape((t,) + (1,) * a_in.ndim)
    flat_rows = flat_rows.reshape((t,) + (1,) * (a_in.ndim - 1) + (ks.input_dimension,))
    if a_in.ndim == 2 and a_in.shape[0] > 64:
        totals = np.empty(a_in.shape[:-1] + (ks.output_dimension + 1,), dtype=np.int64)
        for start in range(0, a_in.shape[0], 64):
            chunk = a_in[start : start + 64]
            digits = (chunk[None] >> shifts) & mask
            selected = flat_data.take(flat_rows + digits, axis=0)
            totals[start : start + 64] = selected.sum(axis=(0, -2), dtype=np.int64)
        return totals
    digits = (a_in[None] >> shifts) & mask  # (t, ..., n_in)
    selected = flat_data.take(flat_rows + digits, axis=0)  # (t, ..., n_in, n_out+1)
    return selected.sum(axis=(0, -2), dtype=np.int64)


def _keyswitch_totals_reference(ks: KeySwitchKey, a: np.ndarray) -> np.ndarray:
    """The historical per-digit-level accumulation (ground truth).

    Kept verbatim as the bit-identity reference of the one-shot gather in
    :func:`_keyswitch_totals` (integer addition is exact, so the two orders
    agree bit for bit) and as the benchmark's pre-fusion baseline epilogue.
    """
    params = ks.params
    base_bits = params.base_bits
    t = params.length
    mask = params.base - 1
    rounding = 1 << (32 - base_bits * t - 1) if 32 - base_bits * t - 1 >= 0 else 0
    a_in = ((a.astype(np.int64) & 0xFFFFFFFF) + rounding) & 0xFFFFFFFF

    rows = np.arange(ks.input_dimension)
    totals = np.zeros(a_in.shape[:-1] + (ks.output_dimension + 1,), dtype=np.int64)
    for j in range(t):
        shift = 32 - base_bits * (j + 1)
        digits = ((a_in >> shift) & mask).astype(np.int64)  # (..., n_in)
        selected = ks.data[rows, j, digits]  # (..., n_in, n_out + 1)
        totals += selected.sum(axis=-2, dtype=np.int64)
    return totals


def keyswitch_apply_reference(ks: KeySwitchKey, sample: LweSample) -> LweSample:
    """Key switch through the historical per-level loop (test/bench baseline)."""
    if sample.dimension != ks.input_dimension:
        raise ValueError("sample dimension does not match key-switching key")
    n_out = ks.output_dimension
    totals = _keyswitch_totals_reference(ks, sample.a)
    a_out = torus32_from_int64(-totals[:n_out])
    b_out = torus32_from_int64(int(np.int64(sample.b)) - int(totals[n_out]))
    return LweSample(a=a_out, b=np.int32(b_out))


def keyswitch_apply_batch_reference(ks: KeySwitchKey, batch: LweBatch) -> LweBatch:
    """Batched key switch through the historical per-level loop (baseline)."""
    if batch.dimension != ks.input_dimension:
        raise ValueError("sample dimension does not match key-switching key")
    n_out = ks.output_dimension
    totals = _keyswitch_totals_reference(ks, batch.a)  # (B, n_out + 1)
    a_out = torus32_from_int64(-totals[..., :n_out])
    b_out = torus32_from_int64(batch.b.astype(np.int64) - totals[..., n_out])
    return LweBatch(a=a_out, b=b_out)


def keyswitch_apply(ks: KeySwitchKey, sample: LweSample) -> LweSample:
    """Switch ``sample`` (under the input key) to the output key."""
    if sample.dimension != ks.input_dimension:
        raise ValueError("sample dimension does not match key-switching key")
    n_out = ks.output_dimension
    totals = _keyswitch_totals(ks, sample.a)
    a_out = torus32_from_int64(-totals[:n_out])
    b_out = torus32_from_int64(int(np.int64(sample.b)) - int(totals[n_out]))
    return LweSample(a=a_out, b=np.int32(b_out))


def keyswitch_apply_batch(ks: KeySwitchKey, batch: LweBatch) -> LweBatch:
    """Switch a whole batch of samples in one vectorised gather/sum.

    Bit-identical to applying :func:`keyswitch_apply` to every row.
    """
    if batch.dimension != ks.input_dimension:
        raise ValueError("sample dimension does not match key-switching key")
    n_out = ks.output_dimension
    totals = _keyswitch_totals(ks, batch.a)  # (B, n_out + 1)
    a_out = torus32_from_int64(-totals[..., :n_out])
    b_out = torus32_from_int64(batch.b.astype(np.int64) - totals[..., n_out])
    return LweBatch(a=a_out, b=b_out)

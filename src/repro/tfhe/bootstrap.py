"""Gate bootstrapping (Algorithm 1 of the paper).

A TFHE logic gate is a linear combination of the input ciphertexts followed by
a *gate bootstrapping*: the noisy phase of the combined sample is
homomorphically decrypted into a rotation of a test polynomial, the rotated
accumulator is extracted back to a scalar LWE sample and key-switched to the
original key.  The blind rotation (the loop over the ``n`` mask coefficients,
each step an external product) dominates the latency of every gate; its FFT
and IFFT kernels are the target of MATCHA's approximate integer transforms.

Two blind-rotation strategies are provided:

* :class:`CmuxBlindRotator` — the classical TFHE-library strategy
  (``ACC ← CMux(BK_i, X^{ā_i}·ACC, ACC)``), one secret-key bit per external
  product;
* :class:`repro.core.bku.UnrolledBlindRotator` — bootstrapping-key unrolling
  (Figure 5), ``m`` secret-key bits per external product using a bundle built
  from ``2^m − 1`` TGSW keys.  MATCHA's pipelined datapath targets this form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Protocol, Sequence

import numpy as np

from repro.tfhe.keyswitch import KeySwitchKey, keyswitch_apply, keyswitch_apply_batch
from repro.tfhe.lwe import LweBatch, LweSample
from repro.tfhe.params import DigitEncoding, TFHEParameters
from repro.tfhe.tgsw import (
    BootstrapWorkspace,
    TransformedTgswSample,
    _cmux_rotate_data,
    tgsw_batch_cmux_reference,
    tgsw_batch_cmux_rotate,
    tgsw_cmux_reference,
)
from repro.tfhe.tlwe import (
    TlweBatch,
    TlweSample,
    tlwe_batch_rotate,
    tlwe_batch_sample_extract,
    tlwe_batch_trivial,
    tlwe_rotate,
    tlwe_sample_extract,
    tlwe_trivial,
)
from repro.tfhe.torus import modswitch_from_torus32, modswitch_to_torus32
from repro.tfhe.transform import NegacyclicTransform


@dataclass
class BootstrapProfile:
    """Operation counts of a bootstrapping, used for the Figure 1 breakdown."""

    forward_transforms: int = 0
    backward_transforms: int = 0
    external_products: int = 0
    pointwise_ops: int = 0
    linear_ops: int = 0
    keyswitch_ops: int = 0

    def merge(self, other: "BootstrapProfile") -> "BootstrapProfile":
        return BootstrapProfile(
            self.forward_transforms + other.forward_transforms,
            self.backward_transforms + other.backward_transforms,
            self.external_products + other.external_products,
            self.pointwise_ops + other.pointwise_ops,
            self.linear_ops + other.linear_ops,
            self.keyswitch_ops + other.keyswitch_ops,
        )


class BlindRotator(Protocol):
    """Strategy interface for the blind-rotation loop of Algorithm 1."""

    def rotate(self, accumulator: TlweSample, bara: np.ndarray) -> TlweSample:
        """Homomorphically multiply the accumulator by ``X^{Σ ā_i·s_i}``."""
        ...

    def rotate_batch(self, accumulators: TlweBatch, bara: np.ndarray) -> TlweBatch:
        """Blind-rotate a whole stack of accumulators, ``bara`` of shape ``(B, n)``."""
        ...

    @property
    def external_products_per_bootstrap(self) -> int:
        """Number of external products one blind rotation performs."""
        ...


class CmuxBlindRotator:
    """Classical blind rotation: one CMux (external product) per key bit.

    Every step runs the fused kernel of :func:`repro.tfhe.tgsw.tgsw_cmux_rotate`
    — the ``(X^{ā_i} − 1)·ACC`` difference is one gather-subtract, the
    external product one stacked forward/contract/backward — staged through a
    :class:`repro.tfhe.tgsw.BootstrapWorkspace` shared across all ``n`` steps
    (and across every bootstrapping that reuses this rotator).  The pre-fusion
    path is preserved as :meth:`rotate_reference` /
    :meth:`rotate_batch_reference` for property tests and benchmarks.
    """

    def __init__(
        self,
        bootstrapping_key: Sequence[TransformedTgswSample],
        transform: NegacyclicTransform,
        workspace: BootstrapWorkspace | None = None,
    ) -> None:
        self.bootstrapping_key = list(bootstrapping_key)
        self.transform = transform
        self.workspace = workspace if workspace is not None else BootstrapWorkspace()

    @property
    def external_products_per_bootstrap(self) -> int:
        return len(self.bootstrapping_key)

    def rotate(self, accumulator: TlweSample, bara: np.ndarray) -> TlweSample:
        data = accumulator.data
        transform = self.transform
        workspace = self.workspace
        powers = np.asarray(bara).tolist()  # plain ints, hoisted out of the loop
        if len(powers) < len(self.bootstrapping_key):
            raise ValueError(
                f"blind rotation needs one rotation amount per key bit: got "
                f"{len(powers)} for {len(self.bootstrapping_key)} key bits"
            )
        for bk_i, power in zip(self.bootstrapping_key, powers):
            if power == 0:
                continue
            data = _cmux_rotate_data(bk_i, data, power, transform, workspace)
        return TlweSample(data)

    def rotate_batch(self, accumulators: TlweBatch, bara: np.ndarray) -> TlweBatch:
        """Rotate every in-flight accumulator in lockstep over the key bits.

        A ciphertext whose rotation amount is zero at step ``i`` still passes
        through the (vectorised) fused CMux, but its ``(X^0 − 1)·ACC``
        difference is exactly zero, so its accumulator comes back
        bit-identical to the sequential path's skip.
        """
        acc = accumulators
        for i, bk_i in enumerate(self.bootstrapping_key):
            powers = bara[:, i]
            if not powers.any():
                continue
            acc = tgsw_batch_cmux_rotate(
                bk_i, acc, powers, self.transform, self.workspace
            )
        return acc

    # -- pre-fusion ground truth (property tests / benchmark baseline) -------
    def rotate_reference(self, accumulator: TlweSample, bara: np.ndarray) -> TlweSample:
        """The historical step: materialised rotation + per-digit-plane CMux.

        Faithful to the pre-fusion implementation including its per-row
        rotation loop, so the external-product benchmark's baseline measures
        the path this PR replaced (the current :func:`tlwe_rotate` is
        vectorised).
        """
        from repro.tfhe.polynomial import poly_mul_by_xk

        acc = accumulator
        for i, bk_i in enumerate(self.bootstrapping_key):
            power = int(bara[i])
            if power == 0:
                continue
            rotated = TlweSample(
                np.stack(
                    [
                        poly_mul_by_xk(acc.data[row], power)
                        for row in range(acc.data.shape[0])
                    ]
                ).astype(np.int32)
            )
            acc = tgsw_cmux_reference(bk_i, rotated, acc, self.transform)
        return acc

    def rotate_batch_reference(
        self, accumulators: TlweBatch, bara: np.ndarray
    ) -> TlweBatch:
        """Batched pre-fusion blind rotation (ground truth)."""
        acc = accumulators
        for i, bk_i in enumerate(self.bootstrapping_key):
            powers = bara[:, i]
            if not powers.any():
                continue
            rotated = tlwe_batch_rotate(acc, powers)
            acc = tgsw_batch_cmux_reference(bk_i, rotated, acc, self.transform)
        return acc


def make_test_vector(params: TFHEParameters, mu: int) -> np.ndarray:
    """The all-``mu`` test polynomial used by gate bootstrapping.

    After the blind rotation by ``X^{-p̄}`` (where ``p̄`` is the rescaled phase
    of the input sample) the constant coefficient of the test polynomial is
    ``+mu`` when the phase is positive and ``-mu`` when it is negative.
    Memoised (and write-protected) per ``(N, mu)`` — every gate bootstrapping
    of a parameter set shares one constant vector.
    """
    return _make_test_vector_cached(params.N, int(np.int32(mu)))


@lru_cache(maxsize=None)
def _make_test_vector_cached(degree: int, mu: int) -> np.ndarray:
    vector = np.full(degree, np.int32(mu), dtype=np.int32)
    vector.setflags(write=False)
    return vector


def encode_lut(
    params: TFHEParameters,
    table,
    message_bits: int,
    carry_bits: int = 0,
) -> np.ndarray:
    """Encode an arbitrary lookup table as a redundant test polynomial.

    ``table`` lists the output digit (in ``[0, P)``) for every input digit in
    ``[0, P)`` where ``P = 2^(message_bits + carry_bits)``.  Each input digit
    owns a run of ``r = N/P`` consecutive coefficients centred on its encoded
    phase, so a blind rotation by the (noisy) phase of a digit ciphertext
    lands inside the right run as long as the noise stays within ``1/(4P)``.

    The guard half-run at the top of the polynomial (phases just below
    ``1/2``) belongs — negacyclically — to digit 0 approached from below:
    those coefficients carry ``−encode(table[0])`` so that a slightly
    *negative* phase on digit 0 still extracts ``+encode(table[0])``.

    The result is memoised (and write-protected) per ``(N, encoding, table
    bytes)`` — the cache key is the table contents, not a scalar ``mu``.
    """
    encoding = DigitEncoding(message_bits, carry_bits)
    encoding.validate_for(params)
    space = encoding.space
    entries = np.asarray(table, dtype=np.int64).ravel()
    if entries.shape[0] != space:
        raise ValueError(
            f"lookup table must have exactly P={space} entries, got "
            f"{entries.shape[0]}"
        )
    if np.any((entries < 0) | (entries >= space)):
        raise ValueError(f"lookup-table outputs must lie in [0, {space})")
    return _encode_lut_cached(
        params.N, message_bits, carry_bits, entries.tobytes()
    )


@lru_cache(maxsize=None)
def _encode_lut_cached(
    degree: int, message_bits: int, carry_bits: int, table_bytes: bytes
) -> np.ndarray:
    encoding = DigitEncoding(message_bits, carry_bits)
    space = encoding.space
    table = np.frombuffer(table_bytes, dtype=np.int64)
    run = degree // space
    j = np.arange(degree, dtype=np.int64)
    slot = (j + run // 2) // run  # digit owning coefficient j (run-centred)
    encoded = modswitch_to_torus32(table, encoding.torus_space)
    vector = np.where(
        slot < space,
        encoded[np.minimum(slot, space - 1)],
        # Guard half-run: negacyclic wrap of digit 0's lower noise tail.
        -encoded[0],
    ).astype(np.int32)
    vector.setflags(write=False)
    return vector


def modswitch_sample(sample: LweSample, degree: int) -> tuple[int, np.ndarray]:
    """Rescale a sample's coefficients from the torus to ``Z_{2N}`` (Rounding).

    Returns ``(b̄, ā)`` as used by Algorithm 1 line 2.
    """
    space = 2 * degree
    barb = int(modswitch_from_torus32(sample.b, space))
    bara = np.asarray(modswitch_from_torus32(sample.a, space), dtype=np.int64)
    return barb, bara


def modswitch_batch(batch: LweBatch, degree: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised rounding of a batch: returns ``(b̄ (B,), ā (B, n))``."""
    space = 2 * degree
    barb = np.asarray(modswitch_from_torus32(batch.b, space), dtype=np.int64)
    bara = np.asarray(modswitch_from_torus32(batch.a, space), dtype=np.int64)
    return barb, bara


def blind_rotate_and_extract(
    sample: LweSample,
    test_vector: np.ndarray,
    rotator: BlindRotator,
    params: TFHEParameters,
) -> LweSample:
    """Lines 2–8 of Algorithm 1: rounding, blind rotation and sample extraction."""
    degree = params.N
    barb, bara = modswitch_sample(sample, degree)
    accumulator = tlwe_trivial(test_vector, params.k)
    if barb != 0:
        accumulator = tlwe_rotate(accumulator, -barb)
    accumulator = rotator.rotate(accumulator, bara)
    return tlwe_sample_extract(accumulator, index=0)


def blind_rotate_and_extract_batch(
    batch: LweBatch,
    test_vector: np.ndarray,
    rotator: BlindRotator,
    params: TFHEParameters,
) -> LweBatch:
    """Batched lines 2–8 of Algorithm 1: one vectorised pass over the batch.

    ``test_vector`` is either one shared ``(N,)`` polynomial or a ``(B, N)``
    stack giving every row its *own* test vector — one blind rotation can mix
    rows that bootstrap against different lookup tables (boolean gates next
    to programmable digit LUTs).  Bit-identical to looping
    :func:`blind_rotate_and_extract` over the rows; only the NumPy dispatch
    overhead is amortised across the batch.
    """
    degree = params.N
    barb, bara = modswitch_batch(batch, degree)
    accumulators = tlwe_batch_trivial(test_vector, params.k, batch.batch_size)
    accumulators = tlwe_batch_rotate(accumulators, -barb)
    accumulators = rotator.rotate_batch(accumulators, bara)
    return tlwe_batch_sample_extract(accumulators, index=0)


def _require_gate_space(params: TFHEParameters) -> None:
    """Gate bootstrapping encodes at ±1/8: the 8-ary space must be rated."""
    if params.message_space < 8:
        raise ValueError(
            f"gate bootstrapping needs the 8-ary message space but "
            f"{params.name!r} is rated for message_space={params.message_space}"
        )


def bootstrap_without_keyswitch(
    sample: LweSample,
    mu: int,
    rotator: BlindRotator,
    params: TFHEParameters,
) -> LweSample:
    """Bootstrap ``sample`` to a fresh sample of ``±mu`` under the extracted key."""
    _require_gate_space(params)
    test_vector = make_test_vector(params, mu)
    return blind_rotate_and_extract(sample, test_vector, rotator, params)


def gate_bootstrap(
    sample: LweSample,
    mu: int,
    rotator: BlindRotator,
    keyswitch_key: KeySwitchKey,
    params: TFHEParameters,
) -> LweSample:
    """Full gate bootstrapping: blind rotate, extract, then key switch.

    The output encrypts ``+mu`` when the phase of ``sample`` is positive and
    ``-mu`` otherwise, under the original ``n``-dimensional key and with a
    fresh (input-independent) noise level.
    """
    extracted = bootstrap_without_keyswitch(sample, mu, rotator, params)
    return keyswitch_apply(keyswitch_key, extracted)


def bootstrap_without_keyswitch_batch(
    batch: LweBatch,
    mu: int,
    rotator: BlindRotator,
    params: TFHEParameters,
) -> LweBatch:
    """Batched bootstrap to fresh samples of ``±mu`` under the extracted key."""
    _require_gate_space(params)
    test_vector = make_test_vector(params, mu)
    return blind_rotate_and_extract_batch(batch, test_vector, rotator, params)


def gate_bootstrap_batch(
    batch: LweBatch,
    mu: int,
    rotator: BlindRotator,
    keyswitch_key: KeySwitchKey,
    params: TFHEParameters,
) -> LweBatch:
    """Full gate bootstrapping of a whole batch of ciphertexts at once.

    The blind rotation, sample extraction and key switch all run vectorised
    over the batch axis; the output rows are bit-identical to calling
    :func:`gate_bootstrap` on each input row.
    """
    extracted = bootstrap_without_keyswitch_batch(batch, mu, rotator, params)
    return keyswitch_apply_batch(keyswitch_key, extracted)


def context_gate_bootstrap(context, sample: LweSample, mu: int) -> LweSample:
    """Gate bootstrapping with all state pulled from an evaluation context.

    ``context`` is anything exposing ``rotator`` / ``keyswitch_key`` /
    ``params`` (an :class:`repro.runtime.context.FheContext`; duck-typed so
    this module stays independent of the runtime layer).  Accessing
    ``context.rotator`` is what builds — once — the cloud-key spectrum cache.
    """
    return gate_bootstrap(
        sample, mu, context.rotator, context.keyswitch_key, context.params
    )


def context_gate_bootstrap_batch(context, batch: LweBatch, mu: int) -> LweBatch:
    """Batched :func:`context_gate_bootstrap` (one vectorised pass per call)."""
    return gate_bootstrap_batch(
        batch, mu, context.rotator, context.keyswitch_key, context.params
    )


# --------------------------------------------------------------------------- #
# programmable bootstrapping                                                  #
# --------------------------------------------------------------------------- #


def programmable_bootstrap(
    sample: LweSample,
    table,
    encoding: DigitEncoding,
    rotator: BlindRotator,
    keyswitch_key: KeySwitchKey,
    params: TFHEParameters,
) -> LweSample:
    """Evaluate ``table[digit]`` homomorphically on one digit ciphertext.

    Exactly the gate-bootstrapping pipeline — mod-switch, blind rotation,
    sample extraction, key switch — with the all-``mu`` test vector replaced
    by the redundant encoding of ``table`` (see :func:`encode_lut`).  The
    output is a fresh digit ciphertext of ``table[digit]``.
    """
    test_vector = encode_lut(
        params, table, encoding.message_bits, encoding.carry_bits
    )
    extracted = blind_rotate_and_extract(sample, test_vector, rotator, params)
    return keyswitch_apply(keyswitch_key, extracted)


def programmable_bootstrap_batch(
    batch: LweBatch,
    tables,
    encoding: DigitEncoding,
    rotator: BlindRotator,
    keyswitch_key: KeySwitchKey,
    params: TFHEParameters,
) -> LweBatch:
    """Batched programmable bootstrapping with a possibly different LUT per row.

    ``tables`` is either one table applied to every row or a sequence of
    ``batch_size`` tables; all rows share the single fused blind rotation.
    """
    tables = list(tables) if _is_table_sequence(tables) else [tables]
    if len(tables) == 1:
        test_vector = encode_lut(
            params, tables[0], encoding.message_bits, encoding.carry_bits
        )
    else:
        if len(tables) != batch.batch_size:
            raise ValueError(
                f"got {len(tables)} lookup tables for {batch.batch_size} rows"
            )
        test_vector = np.stack(
            [
                encode_lut(
                    params, t, encoding.message_bits, encoding.carry_bits
                )
                for t in tables
            ]
        )
    extracted = blind_rotate_and_extract_batch(
        batch, test_vector, rotator, params
    )
    return keyswitch_apply_batch(keyswitch_key, extracted)


def _is_table_sequence(tables) -> bool:
    """Whether ``tables`` is a sequence of tables (vs one flat table)."""
    if isinstance(tables, np.ndarray):
        return tables.ndim == 2
    return bool(tables) and not np.isscalar(tables[0]) and hasattr(tables[0], "__len__")


def context_programmable_bootstrap(
    context, sample: LweSample, table, encoding: DigitEncoding
) -> LweSample:
    """Programmable bootstrap with all state pulled from an evaluation context."""
    return programmable_bootstrap(
        sample, table, encoding, context.rotator, context.keyswitch_key, context.params
    )


def context_programmable_bootstrap_batch(
    context, batch: LweBatch, tables, encoding: DigitEncoding
) -> LweBatch:
    """Batched :func:`context_programmable_bootstrap` (one fused blind rotation)."""
    return programmable_bootstrap_batch(
        batch, tables, encoding, context.rotator, context.keyswitch_key, context.params
    )

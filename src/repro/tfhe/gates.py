"""Homomorphic Boolean gates.

Every two-input gate is a fixed affine combination of the input ciphertexts
followed by a gate bootstrapping to the messages ``±1/8`` (Section 2,
``Logic[c0, c1]``).  The affine combinations follow the reference TFHE
library; e.g. a NAND gate computes ``(0, 1/8) − c_a − c_b`` and bootstraps the
result, so the output encrypts *true* unless both inputs are true.

``NOT`` and ``COPY``/``CONSTANT`` are purely linear and need no bootstrapping,
which is why the paper reports the latency of the bootstrapped gates only
(they are all dominated by the same bootstrapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.tfhe.bootstrap import gate_bootstrap
from repro.tfhe.keys import TFHECloudKey, TFHESecretKey
from repro.tfhe.lwe import (
    LweSample,
    gate_message,
    lwe_add,
    lwe_add_constant,
    lwe_decrypt_bit,
    lwe_encrypt,
    lwe_encrypt_trivial,
    lwe_negate,
    lwe_scale,
    lwe_sub,
)
from repro.tfhe.torus import double_to_torus32
from repro.utils.rng import SeedLike, make_rng

#: Gate-bootstrapping message: 1/8 on the torus.
MU = np.int32(double_to_torus32(0.125))


@dataclass
class GateCounters:
    """Counts of evaluated gates and bootstrappings (for throughput reporting)."""

    gates: int = 0
    bootstraps: int = 0

    def reset(self) -> None:
        self.gates = 0
        self.bootstraps = 0


class TFHEGateEvaluator:
    """Evaluates homomorphic Boolean gates with a given cloud key.

    The evaluator is the main public entry point of the functional library::

        secret, cloud = generate_keys(TEST_SMALL, rng=1)
        evaluator = TFHEGateEvaluator(cloud)
        c = evaluator.nand(encrypt_bit(secret, 1), encrypt_bit(secret, 0))
    """

    def __init__(self, cloud_key: TFHECloudKey) -> None:
        self.cloud_key = cloud_key
        self.counters = GateCounters()

    # -- internal helpers --------------------------------------------------
    def _bootstrap(self, sample: LweSample) -> LweSample:
        self.counters.bootstraps += 1
        return gate_bootstrap(
            sample,
            int(MU),
            self.cloud_key.blind_rotator,
            self.cloud_key.keyswitch_key,
            self.cloud_key.params,
        )

    def _binary_gate(
        self, offset_eighths: int, ca: LweSample, cb: LweSample, sign_a: int, sign_b: int
    ) -> LweSample:
        """Generic bootstrapped gate: ``(0, offset/8) + sign_a·ca + sign_b·cb``."""
        self.counters.gates += 1
        combined = lwe_encrypt_trivial(
            ca.dimension, np.int32(offset_eighths * int(MU))
        )
        combined = lwe_add(combined, lwe_scale(sign_a, ca))
        combined = lwe_add(combined, lwe_scale(sign_b, cb))
        return self._bootstrap(combined)

    # -- linear (bootstrapping-free) gates ----------------------------------
    def constant(self, bit: int) -> LweSample:
        """A trivial (noiseless) encryption of a public constant bit."""
        self.counters.gates += 1
        return lwe_encrypt_trivial(self.cloud_key.params.n, gate_message(bit))

    def not_(self, ca: LweSample) -> LweSample:
        """Homomorphic NOT: plain negation, no bootstrapping (Section 5)."""
        self.counters.gates += 1
        return lwe_negate(ca)

    def copy(self, ca: LweSample) -> LweSample:
        """Identity gate (returns a copy of the ciphertext)."""
        self.counters.gates += 1
        return ca.copy()

    # -- bootstrapped two-input gates ---------------------------------------
    def nand(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic NAND: bootstrap of ``(0, 1/8) − ca − cb``."""
        return self._binary_gate(1, ca, cb, -1, -1)

    def and_(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic AND: bootstrap of ``(0, −1/8) + ca + cb``."""
        return self._binary_gate(-1, ca, cb, 1, 1)

    def or_(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic OR: bootstrap of ``(0, 1/8) + ca + cb``."""
        return self._binary_gate(1, ca, cb, 1, 1)

    def nor(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic NOR: bootstrap of ``(0, −1/8) − ca − cb``."""
        return self._binary_gate(-1, ca, cb, -1, -1)

    def andny(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic (NOT a) AND b."""
        return self._binary_gate(-1, ca, cb, -1, 1)

    def andyn(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic a AND (NOT b)."""
        return self._binary_gate(-1, ca, cb, 1, -1)

    def orny(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic (NOT a) OR b."""
        return self._binary_gate(1, ca, cb, -1, 1)

    def oryn(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic a OR (NOT b)."""
        return self._binary_gate(1, ca, cb, 1, -1)

    def xor(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic XOR: bootstrap of ``(0, 1/4) + 2·(ca + cb)``."""
        self.counters.gates += 1
        combined = lwe_encrypt_trivial(ca.dimension, np.int32(2 * int(MU)))
        combined = lwe_add(combined, lwe_scale(2, lwe_add(ca, cb)))
        return self._bootstrap(combined)

    def xnor(self, ca: LweSample, cb: LweSample) -> LweSample:
        """Homomorphic XNOR: bootstrap of ``(0, −1/4) − 2·(ca + cb)``."""
        self.counters.gates += 1
        combined = lwe_encrypt_trivial(ca.dimension, np.int32(-2 * int(MU)))
        combined = lwe_sub(combined, lwe_scale(2, lwe_add(ca, cb)))
        return self._bootstrap(combined)

    def mux(self, sel: LweSample, if_true: LweSample, if_false: LweSample) -> LweSample:
        """Homomorphic multiplexer ``sel ? if_true : if_false``.

        Implemented as ``OR(AND(sel, if_true), ANDNY(sel, if_false))`` — three
        bootstrapped gates.  (The TFHE library has a cheaper two-bootstrap MUX
        using an intermediate key switch; the composition used here is the
        simplest correct form.)
        """
        picked_true = self.and_(sel, if_true)
        picked_false = self.andny(sel, if_false)
        return self.or_(picked_true, picked_false)

    #: Name → bound method lookup used by the circuit examples and benches.
    GATE_NAMES = (
        "nand",
        "and",
        "or",
        "nor",
        "xor",
        "xnor",
        "andny",
        "andyn",
        "orny",
        "oryn",
    )

    def gate(self, name: str, ca: LweSample, cb: LweSample) -> LweSample:
        """Evaluate a two-input gate by name (``"nand"``, ``"xor"``, ...)."""
        table: Dict[str, Callable[[LweSample, LweSample], LweSample]] = {
            "nand": self.nand,
            "and": self.and_,
            "or": self.or_,
            "nor": self.nor,
            "xor": self.xor,
            "xnor": self.xnor,
            "andny": self.andny,
            "andyn": self.andyn,
            "orny": self.orny,
            "oryn": self.oryn,
        }
        if name not in table:
            raise ValueError(f"unknown gate {name!r}")
        return table[name](ca, cb)


def encrypt_bit(secret: TFHESecretKey, bit: int, rng: SeedLike = None) -> LweSample:
    """Client-side encryption of one Boolean as a gate-bootstrapping ciphertext."""
    rng = make_rng(rng)
    return lwe_encrypt(secret.lwe_key, gate_message(bit), rng=rng)


def decrypt_bit(secret: TFHESecretKey, sample: LweSample) -> int:
    """Client-side decryption of a gate-bootstrapping ciphertext."""
    return lwe_decrypt_bit(secret.lwe_key, sample)


def encrypt_bits(secret: TFHESecretKey, bits, rng: SeedLike = None):
    """Encrypt an iterable of bits (least-significant first for integers)."""
    rng = make_rng(rng)
    return [encrypt_bit(secret, int(b), rng) for b in bits]


def decrypt_bits(secret: TFHESecretKey, samples):
    """Decrypt a list of ciphertexts back to a list of bits."""
    return [decrypt_bit(secret, s) for s in samples]


#: Plaintext truth tables used by the test-suite to check every gate.
PLAINTEXT_GATES: Dict[str, Callable[[int, int], int]] = {
    "nand": lambda a, b: 1 - (a & b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "nor": lambda a, b: 1 - (a | b),
    "xor": lambda a, b: a ^ b,
    "xnor": lambda a, b: 1 - (a ^ b),
    "andny": lambda a, b: (1 - a) & b,
    "andyn": lambda a, b: a & (1 - b),
    "orny": lambda a, b: (1 - a) | b,
    "oryn": lambda a, b: a | (1 - b),
}
